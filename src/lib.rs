//! # lemur
//!
//! A from-scratch Rust reproduction of **Lemur** (CoNEXT 2020: *"Meeting
//! SLOs in Cross-Platform NFV"*): SLO-aware placement and meta-compilation
//! of network-function chains across heterogeneous hardware — a PISA ToR
//! switch, commodity servers, SmartNICs, and OpenFlow switches — together
//! with simulated substrates for every one of those platforms.
//!
//! This facade crate re-exports the workspace so applications can depend on
//! a single crate:
//!
//! * [`packet`] — wire formats (Ethernet/VLAN/IPv4/UDP/TCP/NSH), buffers.
//! * [`nf`] — the 14-NF software library (Table 3) with from-scratch
//!   AES-128-CBC and ChaCha20.
//! * [`core`] — the chain spec language, NF-graph IR, SLOs, and the
//!   canonical Table 2 chains.
//! * [`p4sim`] / [`ebpf`] / [`openflow`] / [`bess`] — platform substrates.
//! * [`lp`] — simplex LP + branch-and-bound MILP.
//! * [`placer`] — Lemur's Placer: heuristic, Optimal, baselines, ablations.
//! * [`metacompiler`] — P4/BESS/eBPF/OpenFlow code generation + the real
//!   stage oracle.
//! * [`dataplane`] — the cross-platform execution engine.
//! * [`control`] — the online supervisor: transactional hitless
//!   reconfiguration, rollback, backoff, and chaos-plan generation.
//! * [`fleet`] — multi-PoP fleet control: sharded supervisors under a
//!   global coordinator, a lossy control channel, and cross-PoP failover.
//!
//! ## Quickstart
//!
//! ```
//! use lemur::core::spec::parse_spec;
//! use lemur::placer::{placement::PlacementProblem, profiles::NfProfiles,
//!                     topology::Topology};
//!
//! let spec = parse_spec(
//!     "c = ACL -> Encrypt -> IPv4Fwd\nslo(c, t_min='1G', t_max='10G')\n",
//! ).unwrap();
//! let problem = PlacementProblem::new(
//!     spec.chains, Topology::testbed(), NfProfiles::table4());
//! let oracle = lemur::metacompiler::CompilerOracle::new();
//! let placement = lemur::placer::heuristic::place(&problem, &oracle).unwrap();
//! assert!(placement.chain_rates_bps[0] >= 1e9);
//! ```

pub use lemur_bess as bess;
pub use lemur_control as control;
pub use lemur_core as core;
pub use lemur_dataplane as dataplane;
pub use lemur_ebpf as ebpf;
pub use lemur_fleet as fleet;
pub use lemur_lp as lp;
pub use lemur_metacompiler as metacompiler;
pub use lemur_nf as nf;
pub use lemur_openflow as openflow;
pub use lemur_p4sim as p4sim;
pub use lemur_packet as packet;
pub use lemur_placer as placer;
