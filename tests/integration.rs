//! Cross-crate integration tests: spec → Placer → meta-compiler →
//! executed dataplane, plus the paper's headline comparative claims at a
//! test-friendly scale. (The full sweeps live in the `exp_*` binaries.)

use lemur::core::chains::{canonical_chain, extreme_nat_chain, CanonicalChain};
use lemur::core::graph::ChainSpec;
use lemur::core::spec::parse_spec;
use lemur::core::Slo;
use lemur::dataplane::{SimConfig, Testbed, TrafficSpec};
use lemur::metacompiler::CompilerOracle;
use lemur::placer::oracle::StageOracle;
use lemur::placer::placement::PlacementProblem;
use lemur::placer::profiles::NfProfiles;
use lemur::placer::topology::Topology;

fn delta_problem(which: &[CanonicalChain], delta: f64) -> (PlacementProblem, Vec<TrafficSpec>) {
    let mut specs = Vec::new();
    let chains: Vec<ChainSpec> = which
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let t = TrafficSpec::for_chain(i + 1, 1e9).expect("chain index in range");
            let agg = t.aggregate();
            specs.push(t);
            ChainSpec {
                name: format!("chain{}", w.index()),
                graph: canonical_chain(*w),
                slo: None,
                aggregate: Some(agg),
            }
        })
        .collect();
    let mut p = PlacementProblem::new(chains, Topology::testbed(), NfProfiles::table4());
    for i in 0..p.chains.len() {
        let base = p.base_rate_bps(i);
        p.chains[i].slo = Some(Slo::elastic_pipe(delta * base, 100e9));
    }
    (p, specs)
}

/// The full pipeline on a spec-language chain: parse, place, compile,
/// execute, and verify the SLO end to end.
#[test]
fn spec_to_measured_slo() {
    let spec = parse_spec(
        "c = ACL -> Encrypt -> IPv4Fwd\n\
         slo(c, t_min='2G', t_max='100G')\n\
         aggregate(c, src='10.1.0.0/16')\n",
    )
    .unwrap();
    let problem = PlacementProblem::new(spec.chains, Topology::testbed(), NfProfiles::table4());
    let oracle = CompilerOracle::new();
    let placement = lemur::placer::heuristic::place(&problem, &oracle).unwrap();
    assert!(
        placement.chain_rates_bps[0] >= 2e9,
        "prediction below t_min"
    );
    let deployment = lemur::metacompiler::compile(&problem, &placement).unwrap();
    let mut testbed = Testbed::build(&problem, &placement, deployment).unwrap();
    let mut traffic = TrafficSpec::for_chain(1, placement.chain_rates_bps[0] * 1.05)
        .expect("chain index in range");
    traffic.src_prefix = "10.1.0.0/16".parse().unwrap();
    let report = testbed.run(
        &[traffic],
        SimConfig {
            duration_s: 0.005,
            warmup_s: 0.001,
            ..SimConfig::default()
        },
    );
    assert!(
        report.per_chain[0].delivered_bps >= 2e9 * 0.95,
        "measured {} below t_min",
        report.per_chain[0].delivered_bps
    );
}

/// Every canonical chain places, compiles, and moves traffic end to end.
#[test]
fn all_canonical_chains_run_end_to_end() {
    let oracle = CompilerOracle::new();
    for which in CanonicalChain::ALL {
        let (p, mut specs) = delta_problem(&[which], 0.5);
        let placement = lemur::placer::heuristic::place(&p, &oracle)
            .unwrap_or_else(|e| panic!("chain {which:?}: {e}"));
        let deployment = lemur::metacompiler::compile(&p, &placement).unwrap();
        let mut testbed = Testbed::build(&p, &placement, deployment).unwrap();
        specs[0].offered_bps = (placement.chain_rates_bps[0] * 0.9).max(1e8);
        let report = testbed.run(
            &specs,
            SimConfig {
                duration_s: 0.004,
                warmup_s: 0.001,
                ..SimConfig::default()
            },
        );
        let c = &report.per_chain[0];
        assert!(c.delivered_packets > 50, "chain {which:?} delivered {c:?}");
        let total = c.delivered_packets + c.dropped_packets;
        assert!(
            (c.dropped_packets as f64) < 0.3 * total as f64,
            "chain {which:?}: excessive drops {c:?}"
        );
    }
}

/// Figure 2's comparative feasibility claims, at one δ per regime:
/// all schemes feasible at δ=0.5; only Lemur-class at δ=1.5 (chain set b).
#[test]
fn comparison_feasibility_shape() {
    use lemur::placer::{ablations, baselines, brute, heuristic};
    let oracle = CompilerOracle::new();
    let set = [
        CanonicalChain::Chain1,
        CanonicalChain::Chain2,
        CanonicalChain::Chain3,
    ];

    let (p, _) = delta_problem(&set, 0.5);
    assert!(heuristic::place(&p, &oracle).is_ok());
    assert!(baselines::hw_preferred(&p, &oracle).is_ok());
    assert!(baselines::sw_preferred(&p, &oracle).is_ok());
    assert!(baselines::greedy(&p, &oracle).is_ok());
    assert!(baselines::min_bounce(&p, &oracle).is_ok());

    let (p, _) = delta_problem(&set, 1.5);
    let lemur = heuristic::place(&p, &oracle).expect("Lemur feasible at δ=1.5");
    assert!(
        baselines::sw_preferred(&p, &oracle).is_err(),
        "SW must fail at δ=1.5"
    );
    assert!(
        baselines::min_bounce(&p, &oracle).is_err(),
        "MinBounce must fail at δ=1.5"
    );
    // Lemur's marginal beats the surviving baselines.
    for r in [
        baselines::hw_preferred(&p, &oracle),
        baselines::greedy(&p, &oracle),
    ]
    .into_iter()
    .flatten()
    {
        assert!(
            lemur.marginal_bps + 1e6 >= r.marginal_bps,
            "Lemur {:.2}G below baseline {:.2}G",
            lemur.marginal_bps / 1e9,
            r.marginal_bps / 1e9
        );
    }
    // Heuristic matches brute force.
    let opt = brute::optimal(&p, &oracle, brute::BruteConfig::default()).unwrap();
    let gap = (opt.marginal_bps - lemur.marginal_bps) / opt.marginal_bps.max(1.0);
    assert!(gap < 0.02, "heuristic {gap:.3} away from optimal");
    // Ablations are strictly weaker at this δ.
    assert!(ablations::no_core_allocation(&p, &oracle).is_err());
}

/// The §5.2 stage experiment boundary: 10 NATs fit the 12-stage pipeline,
/// 11 do not, and Lemur still places the 11-NAT chain.
#[test]
fn extreme_nat_boundary() {
    use lemur::placer::oracle::StageVerdict;
    let oracle = CompilerOracle::new();
    for (n, fits) in [(10usize, true), (11, false)] {
        let mut p = PlacementProblem::new(
            vec![ChainSpec {
                name: format!("x{n}"),
                graph: extreme_nat_chain(n),
                slo: Some(Slo::elastic_pipe(0.0, 100e9)),
                aggregate: None,
            }],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        let base = p.base_rate_bps(0);
        p.chains[0].slo = Some(Slo::elastic_pipe(base, 100e9));
        let hw = lemur::placer::baselines::hw_preferred_assignment(&p);
        match oracle.check(&p, &hw) {
            StageVerdict::Fits { stages } => {
                assert!(fits, "{n} NATs should overflow but fit in {stages}")
            }
            StageVerdict::OutOfStages { .. } => assert!(!fits, "{n} NATs should fit"),
        }
        assert!(
            lemur::placer::heuristic::place(&p, &oracle).is_ok(),
            "Lemur must place the {n}-NAT chain"
        );
    }
}

/// Multi-server scaling (Figure 3a): two 8-core servers roughly double
/// one, and δ=1.5 is infeasible on a single 8-core box.
#[test]
fn multi_server_scaling() {
    let oracle = CompilerOracle::new();
    let set = [
        CanonicalChain::Chain1,
        CanonicalChain::Chain2,
        CanonicalChain::Chain3,
    ];
    let place_on = |n_servers: usize, delta: f64| {
        let mut specs = Vec::new();
        let chains: Vec<ChainSpec> = set
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let t = TrafficSpec::for_chain(i + 1, 1e9).expect("chain index in range");
                let agg = t.aggregate();
                specs.push(t);
                ChainSpec {
                    name: format!("chain{}", w.index()),
                    graph: canonical_chain(*w),
                    slo: None,
                    aggregate: Some(agg),
                }
            })
            .collect();
        let mut p = PlacementProblem::new(
            chains,
            Topology::with_servers(n_servers),
            NfProfiles::table4(),
        );
        for i in 0..p.chains.len() {
            let base = p.base_rate_bps(i);
            p.chains[i].slo = Some(Slo::elastic_pipe(delta * base, 100e9));
        }
        lemur::placer::heuristic::place(&p, &oracle)
    };
    let one = place_on(1, 0.5).expect("1 server at δ=0.5");
    let two = place_on(2, 0.5).expect("2 servers at δ=0.5");
    assert!(
        two.aggregate_bps > 1.8 * one.aggregate_bps,
        "2 servers {:.2}G should ~double 1 server {:.2}G",
        two.aggregate_bps / 1e9,
        one.aggregate_bps / 1e9
    );
    assert!(
        place_on(1, 1.5).is_err(),
        "single 8-core box infeasible at δ=1.5"
    );
    assert!(place_on(2, 1.5).is_ok(), "two servers feasible at δ=1.5");
}

/// Latency SLOs are honored by the placement (and tightening them first
/// costs throughput, then feasibility).
#[test]
fn latency_bounds_trade_throughput() {
    let oracle = CompilerOracle::new();
    let mut rates = Vec::new();
    for d_max_us in [90.0f64, 45.0] {
        let mut topo = Topology::testbed();
        topo.servers[0].cores_per_socket = 6;
        let (mut p, _) = {
            let mut specs = Vec::new();
            let chains: Vec<ChainSpec> = [CanonicalChain::Chain1, CanonicalChain::Chain4]
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    let t = TrafficSpec::for_chain(i + 1, 1e9).expect("chain index in range");
                    let agg = t.aggregate();
                    specs.push(t);
                    ChainSpec {
                        name: format!("chain{}", w.index()),
                        graph: canonical_chain(*w),
                        slo: None,
                        aggregate: Some(agg),
                    }
                })
                .collect();
            (
                PlacementProblem::new(chains, topo, NfProfiles::table4()),
                specs,
            )
        };
        for i in 0..p.chains.len() {
            let base = p.base_rate_bps(i);
            p.chains[i].slo =
                Some(Slo::elastic_pipe(0.75 * base, 100e9).with_latency_ns(d_max_us * 1e3));
        }
        let e = lemur::placer::heuristic::place(&p, &oracle)
            .unwrap_or_else(|err| panic!("d_max={d_max_us}: {err}"));
        for (ci, lat) in e.latency_ns.iter().enumerate() {
            assert!(
                *lat <= d_max_us * 1e3,
                "chain {ci} latency {lat} over bound"
            );
        }
        rates.push(e.aggregate_bps);
    }
    assert!(
        rates[0] > rates[1],
        "loose bound {:.2}G must beat tight bound {:.2}G",
        rates[0] / 1e9,
        rates[1] / 1e9
    );
}
