//! Determinism properties of the fault-injected dataplane.
//!
//! Two guarantees the fault subsystem must never lose:
//!
//! 1. A `(SimConfig seed, FaultPlan)` pair fully determines the run — two
//!    executions produce bit-identical `SimReport`s (stats, timeline, and
//!    window samples included).
//! 2. An *empty* `FaultPlan` is not merely "no faults fired" but a no-op:
//!    the report equals a plain `Testbed::run` byte for byte, so fault
//!    support cannot perturb the pre-existing experiments.

use lemur::core::chains::{canonical_chain, CanonicalChain};
use lemur::core::graph::ChainSpec;
use lemur::core::Slo;
use lemur::dataplane::{FaultKind, FaultPlan, SimConfig, SimReport, Testbed, TrafficSpec};
use lemur::placer::oracle::AlwaysFits;
use lemur::placer::placement::PlacementProblem;
use lemur::placer::profiles::NfProfiles;
use lemur::placer::topology::Topology;
use proptest::prelude::*;

const DURATION_S: f64 = 0.003;

/// Full pipeline for one Chain3 tenant; `plan: None` uses the plain
/// `run()` entry point, `Some(plan)` goes through `run_with_faults` (with
/// the SLO guard armed iff `guard`).
fn run_once(seed: u64, plan: Option<&FaultPlan>, guard: bool) -> SimReport {
    let spec = TrafficSpec::for_chain(1, 1e9).expect("chain index in range");
    let agg = spec.aggregate();
    let chains = vec![ChainSpec {
        name: "chain3".to_string(),
        graph: canonical_chain(CanonicalChain::Chain3),
        slo: None,
        aggregate: Some(agg),
    }];
    let mut problem = PlacementProblem::new(chains, Topology::testbed(), NfProfiles::table4());
    let base = problem.base_rate_bps(0);
    problem.chains[0].slo = Some(Slo::elastic_pipe(0.5 * base, 100e9));
    let placement = lemur::placer::heuristic::place(&problem, &AlwaysFits).unwrap();
    let deployment = lemur::metacompiler::compile(&problem, &placement).unwrap();
    let mut testbed = Testbed::build(&problem, &placement, deployment).unwrap();
    let mut offered = vec![spec];
    offered[0].offered_bps = placement.chain_rates_bps[0] * 1.1;
    let config = SimConfig {
        duration_s: DURATION_S,
        warmup_s: DURATION_S / 5.0,
        seed,
        ..SimConfig::default()
    };
    match plan {
        None => testbed.run(&offered, config),
        Some(plan) => {
            let slos: Vec<Option<Slo>> = if guard {
                problem.chains.iter().map(|c| c.slo).collect()
            } else {
                Vec::new()
            };
            testbed.run_with_faults(&offered, config, plan, &slos)
        }
    }
}

proptest! {
    #![cases = 3]

    /// Same seed + same plan ⇒ bit-identical reports, faults and all.
    #[test]
    fn faulted_runs_bit_identical(
        seed in 0u64..1_000_000,
        down_at in 1_000_000u64..1_800_000,
        flap_ns in 100_000u64..600_000,
        surge in 1.1f64..3.0,
    ) {
        let plan = FaultPlan::empty()
            .link_flap(0, down_at, down_at + flap_ns)
            .with(900_000, FaultKind::TrafficSurge { chain: 0, factor: surge });
        let a = run_once(seed, Some(&plan), true);
        let b = run_once(seed, Some(&plan), true);
        prop_assert!(!a.timeline.is_empty(), "plan should land in the timeline");
        prop_assert_eq!(a, b);
    }

    /// An empty plan reproduces the plain `run()` report exactly.
    #[test]
    fn empty_plan_reproduces_plain_run(seed in 0u64..1_000_000) {
        let with_empty = run_once(seed, Some(&FaultPlan::empty()), false);
        let plain = run_once(seed, None, false);
        prop_assert!(with_empty.timeline.is_empty());
        prop_assert!(with_empty.windows.is_empty());
        prop_assert_eq!(with_empty, plain);
    }
}
