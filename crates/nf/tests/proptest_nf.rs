//! Property-based tests for NF data structures and invariants.

use lemur_nf::crypto::{cbc_decrypt, cbc_encrypt, Aes128, ChaCha20};
use lemur_nf::fwd::LpmTrie;
use lemur_nf::urlfilter::AhoCorasick;
use lemur_packet::ipv4::{Address, Cidr};
use proptest::prelude::*;

fn arb_cidr() -> impl Strategy<Value = Cidr> {
    (any::<u32>(), 0u8..=32)
        .prop_map(|(addr, len)| Cidr::new(Address::from_u32(addr), len).unwrap())
}

proptest! {
    /// The LPM trie agrees with a brute-force longest-prefix scan for any
    /// route table and query address.
    #[test]
    fn lpm_matches_linear_scan(
        routes in prop::collection::vec((arb_cidr(), any::<u32>()), 0..40),
        queries in prop::collection::vec(any::<u32>(), 0..40),
    ) {
        let mut trie = LpmTrie::new();
        for (prefix, value) in &routes {
            trie.insert(*prefix, *value);
        }
        for q in queries {
            let addr = Address::from_u32(q);
            // Brute force: longest matching prefix, later insertion wins
            // ties (the trie replaces on re-insert of the same prefix).
            let expect = routes
                .iter()
                .enumerate()
                .filter(|(_, (p, _))| p.contains(addr))
                .max_by_key(|(i, (p, _))| (p.prefix_len(), *i))
                .map(|(_, (_, v))| *v);
            prop_assert_eq!(trie.lookup(addr).copied(), expect);
        }
    }

    /// AES-CBC decrypt(encrypt(x)) == x for any key, IV, and plaintext.
    #[test]
    fn aes_cbc_roundtrip(
        key: [u8; 16],
        iv: [u8; 16],
        data in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        let aes = Aes128::new(&key);
        let ct = cbc_encrypt(&aes, &iv, &data);
        prop_assert_eq!(ct.len() % 16, 0);
        prop_assert!(ct.len() > data.len());
        let pt = cbc_decrypt(&aes, &iv, &ct).expect("valid padding");
        prop_assert_eq!(pt, data);
    }

    /// ChaCha20 double application is the identity; single application
    /// changes any non-empty input (keystream is never all-zero).
    #[test]
    fn chacha_involutive(
        key: [u8; 32],
        nonce: [u8; 12],
        counter: u32,
        data in prop::collection::vec(any::<u8>(), 1..300),
    ) {
        let cipher = ChaCha20::new(&key, &nonce);
        let mut buf = data.clone();
        cipher.apply(counter, &mut buf);
        cipher.apply(counter, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// Aho–Corasick agrees with naive substring search for arbitrary
    /// patterns and haystacks.
    #[test]
    fn aho_corasick_matches_naive(
        patterns in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 1..6), 1..6),
        haystack in prop::collection::vec(any::<u8>(), 0..120),
    ) {
        let ac = AhoCorasick::new(&patterns);
        let naive = patterns.iter().any(|p| {
            !p.is_empty() && haystack.windows(p.len()).any(|w| w == &p[..])
        });
        prop_assert_eq!(ac.any_match(&haystack), naive);
    }

    /// Content-defined chunk boundaries are strictly increasing, cover the
    /// payload, and respect the minimum chunk size.
    #[test]
    fn dedup_boundaries_well_formed(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let bounds = lemur_nf::dedup::chunk_boundaries(&data);
        prop_assert_eq!(*bounds.last().unwrap(), data.len());
        let mut prev = 0usize;
        for (i, b) in bounds.iter().enumerate() {
            if i + 1 < bounds.len() {
                // Interior boundaries respect the minimum chunk size.
                prop_assert!(*b >= prev + 32, "chunk too small: {prev}..{b}");
            }
            prop_assert!(*b >= prev);
            prev = *b;
        }
    }
}
