//! Property tests for the NF snapshot/restore protocol: a restored NF is
//! observationally identical to one that lived through its whole history
//! (same fingerprint AND same outputs on a random continuation trace),
//! and corruption is all-or-nothing — a corrupted wire image never
//! decodes, and a restore that fails leaves the target bit-identical.

use lemur_nf::dedup::Dedup;
use lemur_nf::lb::LoadBalancer;
use lemur_nf::limiter::Limiter;
use lemur_nf::monitor::Monitor;
use lemur_nf::nat::Nat;
use lemur_nf::{NetworkFunction, NfCtx, NfKind, NfParams, NfSnapshot, Verdict};
use lemur_packet::{ethernet, ipv4, PacketBuf};
use proptest::prelude::*;

const EXT: ipv4::Address = ipv4::Address::new(198, 18, 0, 1);

/// One random trace element: (src ip, src port, payload seed).
type Step = (u32, u16, u16);

fn frame(step: &Step) -> PacketBuf {
    let (ip, port, seed) = *step;
    let payload = [(seed >> 8) as u8, seed as u8, 0x5A, (ip >> 24) as u8];
    lemur_packet::builder::udp_packet(
        ethernet::Address([2, 0, 0, 0, 0, 1]),
        ethernet::Address([2, 0, 0, 0, 0, 2]),
        ipv4::Address::from_u32(ip),
        ipv4::Address::new(8, 8, 8, 8),
        port,
        53,
        &payload,
    )
}

/// Every snapshot-bearing stateful NF, freshly configured.
fn subjects() -> Vec<(&'static str, Box<dyn NetworkFunction>)> {
    vec![
        (
            "nat",
            Box::new(Nat::new(EXT, 4000, 256)) as Box<dyn NetworkFunction>,
        ),
        ("lb", Box::new(LoadBalancer::from_params(&NfParams::new()))),
        ("dedup", Box::new(Dedup::from_params(&NfParams::new()))),
        ("monitor", Box::new(Monitor::new())),
        ("limiter", Box::new(Limiter::new(1e9, 1e6))),
    ]
}

/// Replay a trace, returning every observable output (verdict + frame).
fn drive(nf: &mut dyn NetworkFunction, trace: &[Step], t0: u64) -> Vec<(Verdict, Vec<u8>)> {
    trace
        .iter()
        .enumerate()
        .map(|(i, step)| {
            let ctx = NfCtx {
                now_ns: t0 + 1_000 * i as u64,
            };
            let mut p = frame(step);
            let v = nf.process(&ctx, &mut p);
            (v, p.as_slice().to_vec())
        })
        .collect()
}

proptest! {
    /// Snapshot → wire → decode → restore is observationally identical to
    /// never having migrated: the fingerprints match, and an arbitrary
    /// continuation trace (re-hitting established state and creating new
    /// state) produces byte-identical outputs from both instances.
    #[test]
    fn restore_is_observationally_identical(
        establish in prop::collection::vec((any::<u32>(), any::<u16>(), any::<u16>()), 1..32),
        cont in prop::collection::vec((any::<u32>(), any::<u16>(), any::<u16>()), 0..32),
    ) {
        for (tag, mut golden) in subjects() {
            drive(&mut *golden, &establish, 0);
            let snap = golden.snapshot_state().expect("stateful NF exports state");
            let decoded = NfSnapshot::decode(&snap.encode()).expect("clean wire decodes");
            prop_assert_eq!(decoded.fingerprint(), snap.fingerprint());

            let mut restored = golden.clone_fresh();
            restored.restore_state(&decoded).expect("clean snapshot restores");
            prop_assert_eq!(
                golden.state_fingerprint(),
                restored.state_fingerprint(),
                "{}: fingerprint diverged after restore",
                tag
            );

            // Continuation replays established flows first, then new ones.
            let t0 = 1_000 * establish.len() as u64;
            let full: Vec<Step> = establish.iter().chain(cont.iter()).copied().collect();
            let a = drive(&mut *golden, &full, t0);
            let b = drive(&mut *restored, &full, t0);
            prop_assert_eq!(a, b, "{}: outputs diverged after restore", tag);
            prop_assert_eq!(
                golden.state_fingerprint(),
                restored.state_fingerprint(),
                "{}: state diverged after continuation",
                tag
            );
        }
    }

    /// Any single-byte corruption of any snapshot's wire image is caught
    /// at decode — framing or checksum — before a restore can even start.
    #[test]
    fn corrupted_wire_never_decodes(
        establish in prop::collection::vec((any::<u32>(), any::<u16>(), any::<u16>()), 1..16),
        pos in any::<u16>(),
        mask in 1u8..=255,
    ) {
        for (tag, mut nf) in subjects() {
            drive(&mut *nf, &establish, 0);
            let wire = nf.snapshot_state().expect("state").encode();
            let mut bad = wire.clone();
            let at = pos as usize % bad.len();
            bad[at] ^= mask;
            prop_assert!(
                NfSnapshot::decode(&bad).is_err(),
                "{}: corrupt byte {} accepted",
                tag,
                at
            );
        }
    }

    /// Restores are all-or-nothing. A payload-level corruption that
    /// passes wire framing (re-wrapped, so the checksum matches the
    /// corrupted bytes) either restores completely or is rejected with
    /// the target's own state left bit-identical — never half-applied.
    #[test]
    fn failed_restore_leaves_target_untouched(
        mine in prop::collection::vec((any::<u32>(), any::<u16>(), any::<u16>()), 1..16),
        theirs in prop::collection::vec((any::<u32>(), any::<u16>(), any::<u16>()), 1..16),
        pos in any::<u16>(),
        mask in 1u8..=255,
    ) {
        for (tag, mut source) in subjects() {
            drive(&mut *source, &theirs, 0);
            let snap = source.snapshot_state().expect("state");
            let mut payload = snap.payload.clone();
            if payload.is_empty() {
                continue;
            }
            let at = pos as usize % payload.len();
            payload[at] ^= mask;
            let forged = NfSnapshot::new(snap.kind, payload);

            let mut target = source.clone_fresh();
            drive(&mut *target, &mine, 0);
            let before = target.state_fingerprint();
            match target.restore_state(&forged) {
                // Semantically still valid: the corruption hit a benign
                // field and the state was replaced wholesale.
                Ok(()) => {}
                Err(_) => prop_assert_eq!(
                    target.state_fingerprint(),
                    before,
                    "{}: rejected restore mutated the target",
                    tag
                ),
            }
        }
    }
}

#[test]
fn kind_mismatch_rejected_without_mutation() {
    let mut nat = Nat::new(EXT, 4000, 64);
    let ctx = NfCtx::default();
    nat.process(&ctx, &mut frame(&(0x0a000001, 7777, 1)));
    let nat_snap = nat.snapshot_state().expect("nat state");
    assert_eq!(nat_snap.kind, NfKind::Nat);

    let mut lb = LoadBalancer::from_params(&NfParams::new());
    lb.process(&ctx, &mut frame(&(0x0a000002, 8888, 2)));
    let before = lb.state_fingerprint();
    assert!(lb.restore_state(&nat_snap).is_err());
    assert_eq!(lb.state_fingerprint(), before);
}
