//! BPF-style `Match` NF: flexible classification onto output gates.
//!
//! Branch points in NF chains are realized by this NF: it evaluates a list
//! of (pattern → gate) entries and emits the packet on the first matching
//! gate, mirroring BESS's `BPF` module with output gates. The paper's
//! Chain 1 starts with `BPF` classifiers, and branching syntax like
//! `ACL -> [{'vlan_tag': 0x1, Encryption}] -> Forward` lowers to a Match.

use crate::{NetworkFunction, NfCtx, NfKind, NfParams, ParamValue, Verdict};
use lemur_packet::builder::vlan_peek;
use lemur_packet::flow::{salted_hash, FiveTuple, TrafficAggregate};
use lemur_packet::PacketBuf;

/// One classification entry.
#[derive(Debug, Clone)]
pub struct MatchEntry {
    /// Optional 5-tuple aggregate filter.
    pub aggregate: Option<TrafficAggregate>,
    /// Optional VLAN tag filter (the paper's `'vlan_tag': 0x1` example).
    pub vlan_tag: Option<u16>,
    /// Optional modular hash filter: matches when
    /// `symmetric_hash % modulus == remainder` — used to emulate the
    /// historical traffic splits operators configure at branches (§3.2).
    pub hash_split: Option<(u64, u64)>,
    /// Output gate for matching packets.
    pub gate: usize,
}

impl MatchEntry {
    fn matches(&self, pkt: &PacketBuf, tuple: Option<&FiveTuple>, salt: u8) -> bool {
        if let Some(tag) = self.vlan_tag {
            if vlan_peek(pkt.as_slice()) != Some(tag) {
                return false;
            }
        }
        if let Some(agg) = &self.aggregate {
            match tuple {
                Some(t) if agg.matches(t) => {}
                _ => return false,
            }
        }
        if let Some((modulus, remainder)) = self.hash_split {
            match tuple {
                Some(t) if salted_hash(t.symmetric_hash(), salt) % modulus == remainder => {}
                _ => return false,
            }
        }
        true
    }
}

/// The Match NF. Packets matching no entry go to `default_gate`.
pub struct Match {
    entries: Vec<MatchEntry>,
    default_gate: usize,
    /// Per-stage hash seed (see `lemur_packet::flow::salted_hash`).
    salt: u8,
}

impl Match {
    /// Build from explicit entries.
    pub fn new(entries: Vec<MatchEntry>, default_gate: usize) -> Match {
        Match {
            entries,
            default_gate,
            salt: 0,
        }
    }

    /// Set the per-stage hash seed (builder style).
    pub fn with_salt(mut self, salt: u8) -> Match {
        self.salt = salt;
        self
    }

    /// A match that splits traffic evenly over `n` gates by flow hash —
    /// the shape used for the paper's "3x NAT (branched)" fan-outs.
    pub fn even_split(n: usize) -> Match {
        assert!(n > 0);
        let entries = (0..n)
            .map(|g| MatchEntry {
                aggregate: Some(TrafficAggregate::any()),
                vlan_tag: None,
                hash_split: Some((n as u64, g as u64)),
                gate: g,
            })
            .collect();
        Match {
            entries,
            default_gate: 0,
            salt: 0,
        }
    }

    /// Build from spec parameters:
    /// `split=N` for an even N-way split (`salt=S` decorrelates successive
    /// splits), or `entries=[{'vlan_tag': T, 'gate': G}, ...]`.
    pub fn from_params(params: &NfParams) -> Match {
        let salt = params.int_or("salt", 0) as u8;
        if let Some(n) = params.get("split").and_then(ParamValue::as_int) {
            return Match::even_split(n.max(1) as usize).with_salt(salt);
        }
        let mut entries = Vec::new();
        if let Some(list) = params.get("entries").and_then(ParamValue::as_list) {
            for item in list {
                let Some(d) = item.as_dict() else { continue };
                entries.push(MatchEntry {
                    aggregate: None,
                    vlan_tag: d
                        .get("vlan_tag")
                        .and_then(ParamValue::as_int)
                        .map(|v| v as u16),
                    hash_split: None,
                    gate: d.get("gate").and_then(ParamValue::as_int).unwrap_or(0) as usize,
                });
            }
        }
        if entries.is_empty() {
            // A bare BPF matches everything onto gate 0.
            entries.push(MatchEntry {
                aggregate: Some(TrafficAggregate::any()),
                vlan_tag: None,
                hash_split: None,
                gate: 0,
            });
        }
        Match {
            entries,
            default_gate: 0,
            salt,
        }
    }

    /// Classify against an already-parsed 5-tuple. Shared by
    /// [`NetworkFunction::process`] and the fused parse-once path.
    pub(crate) fn classify(&self, pkt: &PacketBuf, tuple: Option<&FiveTuple>) -> Verdict {
        for e in &self.entries {
            if e.matches(pkt, tuple, self.salt) {
                return Verdict::Gate(e.gate);
            }
        }
        Verdict::Gate(self.default_gate)
    }

    /// True when classification reads nothing but the 5-tuple: no entry
    /// filters on the VLAN tag, so [`Match::classify`] is a pure function
    /// of the parsed tuple and the fused dataplane may memoize it per
    /// flow.
    pub(crate) fn is_tuple_pure(&self) -> bool {
        self.entries.iter().all(|e| e.vlan_tag.is_none())
    }

    /// Number of distinct output gates referenced.
    pub fn num_gates(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.gate + 1)
            .max()
            .unwrap_or(1)
            .max(self.default_gate + 1)
    }
}

impl NetworkFunction for Match {
    fn kind(&self) -> NfKind {
        NfKind::Match
    }

    fn process(&mut self, _ctx: &NfCtx, pkt: &mut PacketBuf) -> Verdict {
        let tuple = FiveTuple::parse(pkt.as_slice()).ok();
        self.classify(pkt, tuple.as_ref())
    }

    fn clone_fresh(&self) -> Box<dyn NetworkFunction> {
        Box::new(Match {
            entries: self.entries.clone(),
            default_gate: self.default_gate,
            salt: self.salt,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_packet::builder::{udp_packet, vlan_push};
    use lemur_packet::{ethernet, ipv4};

    fn pkt(src_port: u16) -> PacketBuf {
        udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(10, 0, 0, 1),
            ipv4::Address::new(10, 0, 0, 2),
            src_port,
            80,
            b"x",
        )
    }

    #[test]
    fn even_split_covers_all_gates_and_is_deterministic() {
        let mut m = Match::even_split(3);
        let ctx = NfCtx::default();
        let mut seen = [0usize; 3];
        for port in 1000..1200 {
            let mut p = pkt(port);
            match m.process(&ctx, &mut p) {
                Verdict::Gate(g) => seen[g] += 1,
                other => panic!("unexpected verdict {other:?}"),
            }
            // Same packet always goes to the same gate.
            let mut p2 = pkt(port);
            let v2 = m.process(&ctx, &mut p2);
            let mut p3 = pkt(port);
            assert_eq!(v2, m.process(&ctx, &mut p3));
        }
        assert!(seen.iter().all(|&c| c > 20), "imbalanced split: {seen:?}");
        assert_eq!(m.num_gates(), 3);
    }

    #[test]
    fn vlan_tag_entry() {
        let entries = vec![MatchEntry {
            aggregate: None,
            vlan_tag: Some(0x1),
            hash_split: None,
            gate: 1,
        }];
        let mut m = Match::new(entries, 0);
        let ctx = NfCtx::default();
        let mut tagged = pkt(1);
        vlan_push(&mut tagged, 0x1);
        assert_eq!(m.process(&ctx, &mut tagged), Verdict::Gate(1));
        let mut untagged = pkt(1);
        assert_eq!(m.process(&ctx, &mut untagged), Verdict::Gate(0));
    }

    #[test]
    fn aggregate_entry() {
        let agg = TrafficAggregate::from_src_prefix("10.0.0.0/8".parse().unwrap());
        let entries = vec![MatchEntry {
            aggregate: Some(agg),
            vlan_tag: None,
            hash_split: None,
            gate: 2,
        }];
        let mut m = Match::new(entries, 5);
        let ctx = NfCtx::default();
        assert_eq!(m.process(&ctx, &mut pkt(1)), Verdict::Gate(2));
        assert_eq!(m.num_gates(), 6);
    }

    #[test]
    fn bare_match_forwards_to_gate_zero() {
        let mut m = Match::from_params(&NfParams::new());
        let ctx = NfCtx::default();
        assert_eq!(m.process(&ctx, &mut pkt(7)), Verdict::Gate(0));
    }

    #[test]
    fn split_param() {
        let mut params = NfParams::new();
        params.set("split", ParamValue::Int(4));
        let m = Match::from_params(&params);
        assert_eq!(m.num_gates(), 4);
    }
}
