//! Open-addressing flow table keyed by [`FiveTuple`].
//!
//! The per-flow NFs (Monitor, and the fused dataplane's classifier memo)
//! sit on the per-packet fast path, where a comparison-based `BTreeMap`
//! descent costs several cache misses per packet. [`FlowMap`] is a linear-
//! probing hash table with a cheap multiply-mix key hash that callers can
//! compute once per packet and reuse across every table that packet
//! touches (`*_hashed` entry points) — the fused dataplane parses *and*
//! hashes once per packet, then probes the classifier memo and the
//! Monitor's flow table with the same hash.
//!
//! Iteration order is unspecified; [`FlowMap::sorted_entries`] yields
//! key-ordered entries so snapshots and state fingerprints stay canonical
//! (bit-identical to the previous `BTreeMap` encoding).

use lemur_packet::flow::FiveTuple;

/// Hash of the 13 tuple bytes: the fields pack into two words that are
/// mixed splitmix64-style — a handful of multiplies instead of a
/// byte-at-a-time loop, since this runs once per packet. Stable across
/// platforms — it feeds table placement only, never serialized state.
#[inline]
pub fn tuple_hash(t: &FiveTuple) -> u64 {
    const M: u64 = 0x9e37_79b9_7f4a_7c15;
    let a = ((t.src_ip.to_u32() as u64) << 32) | t.dst_ip.to_u32() as u64;
    let b = ((t.src_port as u64) << 40) | ((t.dst_port as u64) << 24) | ((t.protocol as u64) << 16);
    let mut h = (a ^ M).wrapping_mul(M);
    h ^= h >> 29;
    h = (h ^ b).wrapping_mul(M);
    h ^= h >> 32;
    h
}

/// One occupied slot.
#[derive(Debug, Clone)]
struct Slot<V> {
    hash: u64,
    key: FiveTuple,
    value: V,
}

/// Linear-probing hash map from [`FiveTuple`] to `V` with precomputed-hash
/// entry points. Capacity is a power of two; the table grows at 7/8 load.
#[derive(Debug, Clone)]
pub struct FlowMap<V> {
    slots: Vec<Option<Slot<V>>>,
    len: usize,
}

impl<V> Default for FlowMap<V> {
    fn default() -> Self {
        FlowMap::new()
    }
}

impl<V> FlowMap<V> {
    /// An empty map (allocates on first insert).
    pub fn new() -> FlowMap<V> {
        FlowMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, (0..new_cap).map(|_| None).collect());
        self.len = 0;
        for slot in old.into_iter().flatten() {
            self.insert_fresh(slot);
        }
    }

    /// Insert a slot known not to be present (rehash / post-probe path).
    fn insert_fresh(&mut self, slot: Slot<V>) {
        let mask = self.mask();
        let mut i = (slot.hash as usize) & mask;
        loop {
            if self.slots[i].is_none() {
                self.slots[i] = Some(slot);
                self.len += 1;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Look up with a precomputed [`tuple_hash`].
    #[inline]
    pub fn get_hashed(&self, hash: u64, key: &FiveTuple) -> Option<&V> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut i = (hash as usize) & mask;
        loop {
            match &self.slots[i] {
                None => return None,
                Some(s) if s.hash == hash && s.key == *key => return Some(&s.value),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Look up, hashing the key.
    pub fn get(&self, key: &FiveTuple) -> Option<&V> {
        self.get_hashed(tuple_hash(key), key)
    }

    /// Entry-style upsert with a precomputed hash: returns the value for
    /// `key`, inserting `default()` first when absent.
    #[inline]
    pub fn get_mut_or_insert_with_hashed(
        &mut self,
        hash: u64,
        key: &FiveTuple,
        default: impl FnOnce() -> V,
    ) -> &mut V {
        if self.slots.is_empty() || self.len + 1 > self.slots.len() - self.slots.len() / 8 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = (hash as usize) & mask;
        loop {
            match &self.slots[i] {
                Some(s) if s.hash == hash && s.key == *key => break,
                Some(_) => {
                    i = (i + 1) & mask;
                    continue;
                }
                None => {
                    self.slots[i] = Some(Slot {
                        hash,
                        key: *key,
                        value: default(),
                    });
                    self.len += 1;
                    break;
                }
            }
        }
        self.slots[i]
            .as_mut()
            .map(|s| &mut s.value)
            .expect("slot just resolved")
    }

    /// Entry-style upsert, hashing the key.
    pub fn get_mut_or_insert_with(
        &mut self,
        key: &FiveTuple,
        default: impl FnOnce() -> V,
    ) -> &mut V {
        self.get_mut_or_insert_with_hashed(tuple_hash(key), key, default)
    }

    /// Unordered iteration over entries.
    pub fn iter(&self) -> impl Iterator<Item = (&FiveTuple, &V)> {
        self.slots.iter().flatten().map(|s| (&s.key, &s.value))
    }

    /// Key-ordered entries — the canonical order for snapshots and
    /// fingerprints (matches `BTreeMap` iteration).
    pub fn sorted_entries(&self) -> Vec<(&FiveTuple, &V)> {
        let mut v: Vec<(&FiveTuple, &V)> = self.iter().collect();
        v.sort_unstable_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// Keep only entries whose `(key, value)` satisfies the predicate.
    pub fn retain(&mut self, mut f: impl FnMut(&FiveTuple, &V) -> bool) {
        // Collect survivors and rebuild: linear probing cannot delete
        // in place without tombstones, and retain is off the fast path.
        let cap = self.slots.len();
        let old = std::mem::replace(&mut self.slots, (0..cap).map(|_| None).collect());
        self.len = 0;
        for slot in old.into_iter().flatten() {
            if f(&slot.key, &slot.value) {
                self.insert_fresh(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_packet::ipv4;

    fn t(n: u8) -> FiveTuple {
        FiveTuple {
            src_ip: ipv4::Address::new(10, 0, 0, n),
            dst_ip: ipv4::Address::new(192, 168, 0, 1),
            src_port: 1000 + n as u16,
            dst_port: 80,
            protocol: 17,
        }
    }

    #[test]
    fn insert_get_grow_and_len() {
        let mut m: FlowMap<u64> = FlowMap::new();
        assert!(m.is_empty());
        for i in 0..200u8 {
            *m.get_mut_or_insert_with(&t(i), || 0) += i as u64;
        }
        assert_eq!(m.len(), 200);
        for i in 0..200u8 {
            assert_eq!(m.get(&t(i)), Some(&(i as u64)));
        }
        assert_eq!(m.get(&t(201)), None);
        // Upsert hits the existing entry.
        *m.get_mut_or_insert_with(&t(3), || 999) += 1;
        assert_eq!(m.get(&t(3)), Some(&4));
        assert_eq!(m.len(), 200);
    }

    #[test]
    fn hashed_entry_points_match_plain_ones() {
        let mut m: FlowMap<&'static str> = FlowMap::new();
        let key = t(7);
        let h = tuple_hash(&key);
        m.get_mut_or_insert_with_hashed(h, &key, || "v");
        assert_eq!(m.get_hashed(h, &key), Some(&"v"));
        assert_eq!(m.get(&key), Some(&"v"));
    }

    #[test]
    fn sorted_entries_are_key_ordered() {
        let mut m: FlowMap<u32> = FlowMap::new();
        for i in [9u8, 3, 200, 1, 45] {
            m.get_mut_or_insert_with(&t(i), || i as u32);
        }
        let entries = m.sorted_entries();
        let keys: Vec<&FiveTuple> = entries.iter().map(|e| e.0).collect();
        let mut expect = keys.clone();
        expect.sort();
        assert_eq!(keys, expect);
    }

    #[test]
    fn retain_and_clear() {
        let mut m: FlowMap<u8> = FlowMap::new();
        for i in 0..50u8 {
            m.get_mut_or_insert_with(&t(i), || i);
        }
        m.retain(|_, v| v % 2 == 0);
        assert_eq!(m.len(), 25);
        assert_eq!(m.get(&t(4)), Some(&4));
        assert_eq!(m.get(&t(5)), None);
        // Deleted keys don't break probe chains for surviving ones.
        for i in (0..50u8).step_by(2) {
            assert!(m.get(&t(i)).is_some());
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&t(4)), None);
    }
}
