//! Batched aggregate updates for the hybrid flow/packet engine.
//!
//! The hybrid dataplane (`lemur-dataplane`'s `flowsim` module) advances
//! its long-tail flows analytically once per SLO window instead of
//! packet-by-packet. The tail still has *state effects* on the stateful
//! NFs it notionally traverses — Monitor counters grow, the Limiter's
//! token bucket drains, NAT binds ports, the LB pins flow affinity — so
//! every [`crate::NetworkFunction`] accepts an [`AggregateUpdate`]: "this
//! many packets/bytes/new flows crossed you during the window
//! `[window_start_ns, window_end_ns)`".
//!
//! Two contracts keep hybrid runs conservation-checkable:
//!
//! 1. **Exact-integer admission**: [`AggregateOutcome`] returns whole
//!    packets (and the matching bytes) admitted downstream; the engine
//!    charges the difference to its drop ledger, so
//!    `injected == delivered + drops + in_flight` stays an integer
//!    identity even with analytic traffic.
//! 2. **Side-band accounting**: aggregate mass is tracked in dedicated
//!    counters *outside* the migratable snapshot wire format
//!    ([`crate::snapshot`]) — an epoch swap carries the exact per-packet
//!    state and resets the analytic tail, which the engine re-applies on
//!    the next window. [`AggregateObservables`] exposes the combined view
//!    (exact + tail) for equivalence checks against full packet-level runs.

/// One window's worth of analytic tail traffic crossing an NF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregateUpdate {
    /// Packets arriving at the NF during the window.
    pub packets: u64,
    /// Bytes arriving (`packets × frame length` — the tail is CBR-framed).
    pub bytes: u64,
    /// Flows whose first packet falls inside this window.
    pub new_flows: u64,
    /// Window bounds (virtual ns). `window_end_ns` drives time-based
    /// state evolution (token refill, idle timers).
    pub window_start_ns: u64,
    pub window_end_ns: u64,
}

impl AggregateUpdate {
    /// Per-packet frame length implied by the update (0 when empty).
    pub fn frame_len(&self) -> u64 {
        self.bytes.checked_div(self.packets).unwrap_or(0)
    }
}

/// What an NF lets through of an [`AggregateUpdate`]: whole packets and
/// the matching bytes. The difference from the input is the NF's verdict
/// drop mass for the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregateOutcome {
    pub packets: u64,
    pub bytes: u64,
}

impl AggregateOutcome {
    /// Pass the whole update through unchanged (the default for NFs whose
    /// semantics never drop on state).
    pub fn pass(update: &AggregateUpdate) -> AggregateOutcome {
        AggregateOutcome {
            packets: update.packets,
            bytes: update.bytes,
        }
    }
}

/// A state summary combining exact per-packet counters with accumulated
/// aggregate (tail) mass — the quantity the hybrid/packet equivalence
/// suite compares across engine modes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AggregateObservables {
    /// Packets the NF has accounted for (exact + tail).
    pub packets: u64,
    /// Bytes the NF has accounted for (exact + tail).
    pub bytes: u64,
    /// Flow-grained state entries (Monitor flows, NAT bindings, LB
    /// affinity pins), exact + tail mass.
    pub flows: u64,
    /// Kind-specific scalar (the Limiter exports its token level; 0
    /// elsewhere).
    pub scalar: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_len_and_pass() {
        let u = AggregateUpdate {
            packets: 10,
            bytes: 640,
            new_flows: 3,
            window_start_ns: 0,
            window_end_ns: 1_000_000,
        };
        assert_eq!(u.frame_len(), 64);
        assert_eq!(
            AggregateOutcome::pass(&u),
            AggregateOutcome {
                packets: 10,
                bytes: 640
            }
        );
        let empty = AggregateUpdate {
            packets: 0,
            bytes: 0,
            new_flows: 0,
            window_start_ns: 0,
            window_end_ns: 1,
        };
        assert_eq!(empty.frame_len(), 0);
    }
}
