//! Dedup NF: network redundancy elimination in the EndRE style (Table 3).
//!
//! The NF maintains a fingerprint store of recently seen payload chunks.
//! Payloads are split at content-defined boundaries chosen by a Rabin-style
//! rolling hash; chunks already in the store are replaced by an 8-byte
//! fingerprint token. This reproduces the two properties the paper calls
//! out (§5.2 "Data-dependent NFs"): per-packet cycles vary with content,
//! and the egress byte rate is lower than the ingress rate on redundant
//! traffic.

use crate::snapshot::{Decoder, Encoder};
use crate::{NetworkFunction, NfCtx, NfKind, NfParams, NfSnapshot, SnapshotError, Verdict};
use lemur_packet::ethernet::{self, EtherType};
use lemur_packet::ipv4::Protocol;
use lemur_packet::{ipv4, tcp, udp, vlan, PacketBuf};
use std::collections::BTreeMap;

/// Rolling-hash window size (bytes).
const WINDOW: usize = 16;
/// A boundary is declared when `hash % ANCHOR_MOD == ANCHOR_MOD - 1`,
/// giving an expected chunk size of ANCHOR_MOD bytes.
const ANCHOR_MOD: u64 = 64;
/// Minimum chunk size worth deduplicating.
const MIN_CHUNK: usize = 32;
/// Escape byte marking a fingerprint token in the compressed payload.
const TOKEN_ESCAPE: u8 = 0xF5;

/// Content-defined chunk boundaries of `data` (end offsets, always ending
/// with `data.len()`).
pub fn chunk_boundaries(data: &[u8]) -> Vec<usize> {
    let mut bounds = Vec::new();
    if data.len() < WINDOW {
        bounds.push(data.len());
        return bounds;
    }
    let mut hash: u64 = 0;
    // Polynomial rolling hash with multiplier; windowed by subtracting the
    // outgoing byte's contribution.
    const BASE: u64 = 257;
    let mut base_pow: u64 = 1; // BASE^(WINDOW-1)
    for _ in 0..WINDOW - 1 {
        base_pow = base_pow.wrapping_mul(BASE);
    }
    for i in 0..data.len() {
        if i >= WINDOW {
            hash = hash.wrapping_sub((data[i - WINDOW] as u64).wrapping_mul(base_pow));
        }
        hash = hash.wrapping_mul(BASE).wrapping_add(data[i] as u64);
        let last = *bounds.last().unwrap_or(&0);
        if i + 1 - last >= MIN_CHUNK && hash % ANCHOR_MOD == ANCHOR_MOD - 1 {
            bounds.push(i + 1);
        }
    }
    if *bounds.last().unwrap_or(&0) != data.len() {
        bounds.push(data.len());
    }
    bounds
}

/// 64-bit FNV-1a, used as the chunk fingerprint.
pub fn fingerprint(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The Dedup NF.
pub struct Dedup {
    /// fingerprint → (insertion epoch). Bounded FIFO-ish store, in key
    /// order so snapshots are canonical.
    store: BTreeMap<u64, u64>,
    capacity: usize,
    epoch: u64,
    bytes_in: u64,
    bytes_out: u64,
}

impl Dedup {
    /// Create with a fingerprint-store capacity.
    pub fn new(capacity: usize) -> Dedup {
        Dedup {
            store: BTreeMap::new(),
            capacity: capacity.max(16),
            epoch: 0,
            bytes_in: 0,
            bytes_out: 0,
        }
    }

    /// Build from spec parameters: `store=N` fingerprints (default 65536).
    pub fn from_params(params: &NfParams) -> Dedup {
        Dedup::new(params.int_or("store", 65_536).max(16) as usize)
    }

    /// Ratio of egress to ingress payload bytes observed so far (1.0 = no
    /// redundancy removed).
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes_in == 0 {
            1.0
        } else {
            self.bytes_out as f64 / self.bytes_in as f64
        }
    }

    /// Number of fingerprints currently stored.
    pub fn store_size(&self) -> usize {
        self.store.len()
    }

    fn remember(&mut self, fp: u64) {
        if self.store.len() >= self.capacity {
            // Evict the oldest ~1/8 of entries; coarse but O(n) only on
            // saturation, keeping the hot path cheap.
            let cutoff = self.epoch.saturating_sub((self.capacity as u64) * 7 / 8);
            self.store.retain(|_, &mut e| e >= cutoff);
        }
        self.store.insert(fp, self.epoch);
        self.epoch += 1;
    }

    /// Encode a payload: known chunks become `TOKEN_ESCAPE || fp(8B)`,
    /// literal bytes equal to the escape are doubled.
    fn encode(&mut self, payload: &[u8]) -> Vec<u8> {
        let bounds = chunk_boundaries(payload);
        let mut out = Vec::with_capacity(payload.len() + 8);
        let mut start = 0usize;
        for &end in &bounds {
            let chunk = &payload[start..end];
            start = end;
            if chunk.len() >= MIN_CHUNK {
                let fp = fingerprint(chunk);
                if self.store.contains_key(&fp) {
                    out.push(TOKEN_ESCAPE);
                    out.push(0x01); // token marker
                    out.extend_from_slice(&fp.to_be_bytes());
                    continue;
                }
                self.remember(fp);
            }
            for &b in chunk {
                out.push(b);
                if b == TOKEN_ESCAPE {
                    out.push(0x00); // literal escape
                }
            }
        }
        out
    }

    fn payload_range(frame: &[u8]) -> Option<std::ops::Range<usize>> {
        let eth = ethernet::Frame::new_checked(frame).ok()?;
        let l3 = match eth.ethertype() {
            EtherType::Ipv4 => ethernet::HEADER_LEN,
            EtherType::Vlan => {
                let tag = vlan::Tag::new_checked(eth.payload()).ok()?;
                if tag.inner_ethertype() != EtherType::Ipv4 {
                    return None;
                }
                ethernet::HEADER_LEN + vlan::TAG_LEN
            }
            _ => return None,
        };
        let ip = ipv4::Packet::new_checked(&frame[l3..]).ok()?;
        let l4 = l3 + ip.header_len() as usize;
        let start = match ip.protocol() {
            Protocol::Udp => l4 + udp::HEADER_LEN,
            Protocol::Tcp => {
                let t = tcp::Packet::new_checked(&frame[l4..]).ok()?;
                l4 + t.header_len() as usize
            }
            _ => return None,
        };
        (start <= frame.len()).then_some(start..frame.len())
    }
}

impl NetworkFunction for Dedup {
    fn kind(&self) -> NfKind {
        NfKind::Dedup
    }

    fn process(&mut self, _ctx: &NfCtx, pkt: &mut PacketBuf) -> Verdict {
        let Some(range) = Dedup::payload_range(pkt.as_slice()) else {
            return Verdict::Forward;
        };
        let payload = pkt.as_slice()[range.clone()].to_vec();
        self.bytes_in += payload.len() as u64;
        let encoded = self.encode(&payload);
        self.bytes_out += encoded.len() as u64;
        if encoded.len() < payload.len() {
            // Only rewrite when we actually shrink the packet; equal-size
            // or grown encodings (escape doubling) are not worth it.
            let l3 = {
                let eth = ethernet::Frame::new_unchecked(pkt.as_slice());
                match eth.ethertype() {
                    EtherType::Vlan => ethernet::HEADER_LEN + vlan::TAG_LEN,
                    _ => ethernet::HEADER_LEN,
                }
            };
            pkt.truncate(range.start);
            pkt.extend_tail(&encoded);
            // Fix lengths/checksums.
            let frame_len = pkt.len();
            let data = pkt.as_mut_slice();
            let (src, dst, l4, protocol) = {
                let ip = ipv4::Packet::new_unchecked(&data[l3..]);
                (
                    ip.src(),
                    ip.dst(),
                    l3 + ip.header_len() as usize,
                    ip.protocol(),
                )
            };
            {
                let mut ip = ipv4::Packet::new_unchecked(&mut data[l3..]);
                ip.set_total_len((frame_len - l3) as u16);
                ip.fill_checksum();
            }
            match protocol {
                Protocol::Udp => {
                    let mut u = udp::Packet::new_unchecked(&mut data[l4..]);
                    u.set_length((frame_len - l4) as u16);
                    u.fill_checksum(src, dst);
                }
                Protocol::Tcp => {
                    let mut t = tcp::Packet::new_unchecked(&mut data[l4..]);
                    t.fill_checksum(src, dst);
                }
                _ => {}
            }
        }
        Verdict::Forward
    }

    /// The fingerprint store shards by flow under the demux's flow hashing,
    /// so Dedup is replicable (the paper replicates it on two cores, §5.3);
    /// replicas just see lower hit rates.
    fn is_stateful(&self) -> bool {
        false
    }

    fn clone_fresh(&self) -> Box<dyn NetworkFunction> {
        Box::new(Dedup::new(self.capacity))
    }

    fn snapshot_state(&self) -> Option<NfSnapshot> {
        let mut e = Encoder::new();
        e.u64(self.capacity as u64);
        e.u64(self.epoch);
        e.u64(self.bytes_in);
        e.u64(self.bytes_out);
        e.u32(self.store.len() as u32);
        for (fp, epoch) in &self.store {
            e.u64(*fp);
            e.u64(*epoch);
        }
        Some(NfSnapshot::new(NfKind::Dedup, e.finish()))
    }

    fn restore_state(&mut self, snapshot: &NfSnapshot) -> Result<(), SnapshotError> {
        snapshot.expect_kind(NfKind::Dedup)?;
        let mut d = Decoder::new(&snapshot.payload);
        let capacity = d.u64()? as usize;
        if capacity < 16 {
            return Err(SnapshotError::Invalid("Dedup capacity below minimum"));
        }
        let epoch = d.u64()?;
        let bytes_in = d.u64()?;
        let bytes_out = d.u64()?;
        let n = d.u32()? as usize;
        let mut staged = BTreeMap::new();
        for _ in 0..n {
            let fp = d.u64()?;
            let e = d.u64()?;
            if e >= epoch {
                return Err(SnapshotError::Invalid("Dedup entry from the future"));
            }
            if staged.insert(fp, e).is_some() {
                return Err(SnapshotError::Invalid("duplicate Dedup fingerprint"));
            }
        }
        d.done()?;
        self.capacity = capacity;
        self.epoch = epoch;
        self.bytes_in = bytes_in;
        self.bytes_out = bytes_out;
        self.store = staged;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_packet::builder::udp_packet;

    fn pkt(payload: &[u8]) -> PacketBuf {
        udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(10, 0, 0, 1),
            ipv4::Address::new(10, 0, 0, 2),
            1,
            2,
            payload,
        )
    }

    /// A payload long enough to contain several content-defined chunks.
    fn redundant_payload() -> Vec<u8> {
        // Repeating, content-rich text so anchors appear.
        let mut v = Vec::new();
        for i in 0..10 {
            v.extend_from_slice(
                format!("The quick brown fox {i} jumps over the lazy dog! ").as_bytes(),
            );
        }
        v
    }

    #[test]
    fn boundaries_cover_payload() {
        let data = redundant_payload();
        let bounds = chunk_boundaries(&data);
        assert_eq!(*bounds.last().unwrap(), data.len());
        let mut prev = 0;
        for &b in &bounds {
            assert!(b > prev || (b == 0 && prev == 0));
            prev = b;
        }
    }

    #[test]
    fn boundaries_are_content_defined() {
        // Shifting the data must keep interior boundaries aligned to
        // content, so common chunks repeat.
        let data = redundant_payload();
        let b1 = chunk_boundaries(&data);
        assert!(b1.len() > 2, "expected several chunks, got {b1:?}");
    }

    #[test]
    fn second_copy_shrinks() {
        let mut d = Dedup::new(1024);
        let ctx = NfCtx::default();
        let payload = redundant_payload();
        let mut first = pkt(&payload);
        let len_first = first.len();
        d.process(&ctx, &mut first);
        // First copy: nothing in store yet, no shrink (sizes may equal).
        assert!(first.len() <= len_first);
        let mut second = pkt(&payload);
        d.process(&ctx, &mut second);
        assert!(
            second.len() < len_first,
            "duplicate payload must compress: {} vs {}",
            second.len(),
            len_first
        );
        assert!(d.compression_ratio() < 1.0);
    }

    #[test]
    fn compressed_packet_remains_valid() {
        let mut d = Dedup::new(1024);
        let ctx = NfCtx::default();
        let payload = redundant_payload();
        let mut a = pkt(&payload);
        d.process(&ctx, &mut a);
        let mut b = pkt(&payload);
        d.process(&ctx, &mut b);
        let eth = ethernet::Frame::new_checked(b.as_slice()).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let u = udp::Packet::new_checked(ip.payload()).unwrap();
        assert!(u.verify_checksum(ip.src(), ip.dst()));
    }

    #[test]
    fn unique_traffic_not_compressed() {
        let mut d = Dedup::new(1024);
        let ctx = NfCtx::default();
        for i in 0u32..20 {
            let payload: Vec<u8> = (0..400u32)
                .map(|j| {
                    (j.wrapping_mul(2654435761)
                        .wrapping_add(i.wrapping_mul(96557))
                        >> 13) as u8
                })
                .collect();
            let mut p = pkt(&payload);
            let before = p.len();
            d.process(&ctx, &mut p);
            assert_eq!(p.len(), before, "unique payloads must not shrink");
        }
    }

    #[test]
    fn fingerprint_is_stable_and_distinct() {
        assert_eq!(fingerprint(b"abc"), fingerprint(b"abc"));
        assert_ne!(fingerprint(b"abc"), fingerprint(b"abd"));
    }

    #[test]
    fn store_capacity_bounded() {
        let mut d = Dedup::new(32);
        let ctx = NfCtx::default();
        for i in 0u32..200 {
            let payload: Vec<u8> = (0..200u32)
                .map(|j| ((j * 31 + i * 1009) % 251) as u8)
                .collect();
            d.process(&ctx, &mut pkt(&payload));
        }
        assert!(d.store_size() <= 64, "store grew to {}", d.store_size());
    }

    #[test]
    fn short_payload_passthrough() {
        let mut d = Dedup::new(64);
        let ctx = NfCtx::default();
        let mut p = pkt(b"tiny");
        let before = p.as_slice().to_vec();
        assert_eq!(d.process(&ctx, &mut p), Verdict::Forward);
        assert_eq!(p.as_slice(), &before[..]);
    }
}
