//! UrlFilter NF: HTML/URL keyword filtering over packet payloads (Table 3).
//!
//! Implements multi-pattern search with a from-scratch Aho–Corasick
//! automaton, which is also what gives the NF its high cycle cost in the
//! profiles (payload scanning touches every byte).

use crate::{NetworkFunction, NfCtx, NfKind, NfParams, ParamValue, Verdict};
use lemur_packet::ethernet::{self, EtherType};
use lemur_packet::ipv4::Protocol;
use lemur_packet::{ipv4, tcp, udp, vlan, PacketBuf};
use std::collections::VecDeque;

/// A case-sensitive multi-pattern matcher (Aho–Corasick).
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// goto function: node → (byte → node), dense 256-wide rows.
    goto_fn: Vec<[u32; 256]>,
    /// True if any pattern ends at this node (directly or via suffix links).
    terminal: Vec<bool>,
    num_patterns: usize,
}

impl AhoCorasick {
    /// Build the automaton from patterns (empty patterns are ignored).
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> AhoCorasick {
        const NONE: u32 = u32::MAX;
        // Phase 1: trie.
        let mut children: Vec<[u32; 256]> = vec![[NONE; 256]];
        let mut terminal = vec![false];
        let mut count = 0usize;
        for pat in patterns {
            let bytes = pat.as_ref();
            if bytes.is_empty() {
                continue;
            }
            count += 1;
            let mut node = 0u32;
            for &b in bytes {
                let next = children[node as usize][b as usize];
                node = if next == NONE {
                    children.push([NONE; 256]);
                    terminal.push(false);
                    let id = (children.len() - 1) as u32;
                    children[node as usize][b as usize] = id;
                    id
                } else {
                    next
                };
            }
            terminal[node as usize] = true;
        }
        // Phase 2: BFS to compute failure links and complete the goto
        // function into a DFA (each missing edge points where the failure
        // chain would land).
        let n = children.len();
        let mut fail = vec![0u32; n];
        let mut queue = VecDeque::new();
        for slot in children[0].iter_mut() {
            let c = *slot;
            if c == NONE {
                *slot = 0;
            } else {
                fail[c as usize] = 0;
                queue.push_back(c);
            }
        }
        while let Some(node) = queue.pop_front() {
            let f = fail[node as usize] as usize;
            if terminal[f] {
                terminal[node as usize] = true;
            }
            let frow = children[f];
            for (b, slot) in children[node as usize].iter_mut().enumerate() {
                let c = *slot;
                if c == NONE {
                    *slot = frow[b];
                } else {
                    fail[c as usize] = frow[b];
                    queue.push_back(c);
                }
            }
        }
        AhoCorasick {
            goto_fn: children,
            terminal,
            num_patterns: count,
        }
    }

    /// True if any pattern occurs in `haystack`.
    pub fn any_match(&self, haystack: &[u8]) -> bool {
        let mut node = 0u32;
        for &b in haystack {
            node = self.goto_fn[node as usize][b as usize];
            if self.terminal[node as usize] {
                return true;
            }
        }
        false
    }

    /// Number of patterns compiled in.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }
}

/// The UrlFilter NF: drops packets whose L4 payload contains any blocked
/// keyword. Packets without an L4 payload pass through.
pub struct UrlFilter {
    matcher: AhoCorasick,
    patterns: Vec<Vec<u8>>,
    scanned: u64,
    blocked: u64,
}

impl UrlFilter {
    /// Create from blocked keywords.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> UrlFilter {
        UrlFilter {
            matcher: AhoCorasick::new(patterns),
            patterns: patterns.iter().map(|p| p.as_ref().to_vec()).collect(),
            scanned: 0,
            blocked: 0,
        }
    }

    /// Build from spec parameters: `blocked=['evil.example', ...]`
    /// (defaults to a small canonical blocklist).
    pub fn from_params(params: &NfParams) -> UrlFilter {
        let mut patterns: Vec<Vec<u8>> = Vec::new();
        if let Some(list) = params.get("blocked").and_then(ParamValue::as_list) {
            for item in list {
                if let Some(s) = item.as_str() {
                    patterns.push(s.as_bytes().to_vec());
                }
            }
        }
        if patterns.is_empty() {
            patterns = ["malware.example", "phish.example", "blocked.example"]
                .iter()
                .map(|s| s.as_bytes().to_vec())
                .collect();
        }
        UrlFilter::new(&patterns)
    }

    /// Packets dropped by the filter so far.
    pub fn blocked(&self) -> u64 {
        self.blocked
    }

    fn payload_range(frame: &[u8]) -> Option<std::ops::Range<usize>> {
        let eth = ethernet::Frame::new_checked(frame).ok()?;
        let l3 = match eth.ethertype() {
            EtherType::Ipv4 => ethernet::HEADER_LEN,
            EtherType::Vlan => {
                let tag = vlan::Tag::new_checked(eth.payload()).ok()?;
                if tag.inner_ethertype() != EtherType::Ipv4 {
                    return None;
                }
                ethernet::HEADER_LEN + vlan::TAG_LEN
            }
            _ => return None,
        };
        let ip = ipv4::Packet::new_checked(&frame[l3..]).ok()?;
        let l4 = l3 + ip.header_len() as usize;
        let start = match ip.protocol() {
            Protocol::Udp => l4 + udp::HEADER_LEN,
            Protocol::Tcp => {
                let t = tcp::Packet::new_checked(&frame[l4..]).ok()?;
                l4 + t.header_len() as usize
            }
            _ => return None,
        };
        (start <= frame.len()).then_some(start..frame.len())
    }
}

impl NetworkFunction for UrlFilter {
    fn kind(&self) -> NfKind {
        NfKind::UrlFilter
    }

    fn process(&mut self, _ctx: &NfCtx, pkt: &mut PacketBuf) -> Verdict {
        let Some(range) = Self::payload_range(pkt.as_slice()) else {
            return Verdict::Forward; // nothing scannable
        };
        self.scanned += 1;
        if self.matcher.any_match(&pkt.as_slice()[range]) {
            self.blocked += 1;
            Verdict::Drop
        } else {
            Verdict::Forward
        }
    }

    fn clone_fresh(&self) -> Box<dyn NetworkFunction> {
        Box::new(UrlFilter::new(&self.patterns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_packet::builder::{tcp_packet, udp_packet};

    fn http(payload: &[u8]) -> PacketBuf {
        tcp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(10, 0, 0, 1),
            ipv4::Address::new(93, 184, 216, 34),
            40000,
            80,
            tcp::Flags::PSH,
            payload,
        )
    }

    #[test]
    fn aho_corasick_basics() {
        let ac = AhoCorasick::new(&["he", "she", "his", "hers"]);
        assert!(ac.any_match(b"ushers"));
        assert!(ac.any_match(b"his story"));
        assert!(ac.any_match(b"hi there")); // "he" inside "there"
        assert!(!ac.any_match(b"ham and eggs"));
        assert!(!ac.any_match(b""));
        assert_eq!(ac.num_patterns(), 4);
    }

    #[test]
    fn aho_corasick_overlapping_suffixes() {
        // Pattern that is a suffix of another must still fire via the
        // failure chain.
        let ac = AhoCorasick::new(&["abcd", "bc"]);
        assert!(ac.any_match(b"xxbcxx"));
        assert!(ac.any_match(b"xabcdx"));
        let ac2 = AhoCorasick::new(&["aaa"]);
        assert!(ac2.any_match(b"aaaa"));
        assert!(!ac2.any_match(b"aabaab"));
    }

    #[test]
    fn aho_corasick_matches_naive_search() {
        let patterns = [b"lem".as_slice(), b"urf".as_slice(), b"xyz".as_slice()];
        let ac = AhoCorasick::new(&patterns);
        let texts: [&[u8]; 5] = [
            b"lemur filter",
            b"surf",
            b"surfing lemurs",
            b"nothing here",
            b"xy z",
        ];
        for text in texts {
            let expect = patterns
                .iter()
                .any(|p| text.windows(p.len()).any(|w| w == *p));
            assert_eq!(ac.any_match(text), expect, "text {:?}", text);
        }
    }

    #[test]
    fn blocks_bad_urls() {
        let mut f = UrlFilter::from_params(&NfParams::new());
        let ctx = NfCtx::default();
        let mut bad = http(b"GET http://malware.example/payload HTTP/1.1");
        let mut good = http(b"GET http://example.com/ HTTP/1.1");
        assert_eq!(f.process(&ctx, &mut bad), Verdict::Drop);
        assert_eq!(f.process(&ctx, &mut good), Verdict::Forward);
        assert_eq!(f.blocked(), 1);
    }

    #[test]
    fn custom_blocklist() {
        let mut params = NfParams::new();
        params.set(
            "blocked",
            ParamValue::List(vec![ParamValue::Str("forbidden".into())]),
        );
        let mut f = UrlFilter::from_params(&params);
        let ctx = NfCtx::default();
        assert_eq!(
            f.process(&ctx, &mut http(b"this is forbidden text")),
            Verdict::Drop
        );
        assert_eq!(
            f.process(&ctx, &mut http(b"GET malware.example")),
            Verdict::Forward,
            "default blocklist must be replaced, not extended"
        );
    }

    #[test]
    fn udp_payload_scanned_too() {
        let mut f = UrlFilter::new(&["secret"]);
        let ctx = NfCtx::default();
        let mut p = udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(1, 1, 1, 1),
            ipv4::Address::new(2, 2, 2, 2),
            1,
            2,
            b"the secret word",
        );
        assert_eq!(f.process(&ctx, &mut p), Verdict::Drop);
    }

    #[test]
    fn non_ip_passes() {
        let mut f = UrlFilter::new(&["x"]);
        let ctx = NfCtx::default();
        let mut garbage = PacketBuf::from_bytes(&[0u8; 30]);
        assert_eq!(f.process(&ctx, &mut garbage), Verdict::Forward);
    }

    #[test]
    fn pattern_split_across_scan_is_found_within_packet() {
        let mut f = UrlFilter::new(&["needle"]);
        let ctx = NfCtx::default();
        let mut hay = Vec::new();
        hay.extend_from_slice(&[b'n'; 100]);
        hay.extend_from_slice(b"needle");
        hay.extend_from_slice(&[b'e'; 100]);
        assert_eq!(f.process(&ctx, &mut http(&hay)), Verdict::Drop);
    }
}
