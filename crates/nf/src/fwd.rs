//! IPv4 forwarding NF with a longest-prefix-match binary trie.

use crate::{NetworkFunction, NfCtx, NfKind, NfParams, ParamValue, Verdict};
use lemur_packet::ethernet::{self, EtherType};
use lemur_packet::ipv4::{self, Cidr};
use lemur_packet::{vlan, PacketBuf};

/// A binary (bit-at-a-time) longest-prefix-match trie mapping IPv4 prefixes
/// to values.
#[derive(Debug, Clone, Default)]
pub struct LpmTrie<V: Clone> {
    nodes: Vec<Node<V>>,
}

#[derive(Debug, Clone)]
struct Node<V> {
    children: [Option<usize>; 2],
    value: Option<V>,
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node {
            children: [None, None],
            value: None,
        }
    }
}

impl<V: Clone> LpmTrie<V> {
    /// An empty trie.
    pub fn new() -> LpmTrie<V> {
        LpmTrie {
            nodes: vec![Node::default()],
        }
    }

    /// Insert (or replace) a prefix→value mapping.
    pub fn insert(&mut self, prefix: Cidr, value: V) {
        let bits = prefix.address().to_u32();
        let mut node = 0usize;
        for i in 0..prefix.prefix_len() {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            node = match self.nodes[node].children[bit] {
                Some(n) => n,
                None => {
                    self.nodes.push(Node::default());
                    let n = self.nodes.len() - 1;
                    self.nodes[node].children[bit] = Some(n);
                    n
                }
            };
        }
        self.nodes[node].value = Some(value);
    }

    /// Longest-prefix match for an address.
    pub fn lookup(&self, addr: ipv4::Address) -> Option<&V> {
        let bits = addr.to_u32();
        let mut node = 0usize;
        let mut best = self.nodes[0].value.as_ref();
        for i in 0..32 {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(n) => {
                    node = n;
                    if let Some(v) = &self.nodes[node].value {
                        best = Some(v);
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.value.is_some()).count()
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A forwarding entry: next-hop MAC and egress port index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextHop {
    pub mac: ethernet::Address,
    pub port: u8,
}

/// IPv4 forwarding NF ("IP Address match", Table 3): looks up the
/// destination address and rewrites the destination MAC; packets with no
/// route are dropped.
pub struct Ipv4Fwd {
    table: LpmTrie<NextHop>,
}

impl Ipv4Fwd {
    /// Build from an explicit route table.
    pub fn new(routes: Vec<(Cidr, NextHop)>) -> Ipv4Fwd {
        let mut table = LpmTrie::new();
        for (prefix, hop) in routes {
            table.insert(prefix, hop);
        }
        Ipv4Fwd { table }
    }

    /// Build from spec parameters:
    /// `routes=[{'prefix': '10.0.0.0/8', 'port': 1}]`. A bare `IPv4Fwd`
    /// gets a default route on port 0 so canonical chains forward.
    pub fn from_params(params: &NfParams) -> Ipv4Fwd {
        let mut routes = Vec::new();
        if let Some(list) = params.get("routes").and_then(ParamValue::as_list) {
            for item in list {
                let Some(d) = item.as_dict() else { continue };
                let Some(prefix) = d
                    .get("prefix")
                    .and_then(ParamValue::as_str)
                    .and_then(|s| s.parse::<Cidr>().ok())
                else {
                    continue;
                };
                let port = d.get("port").and_then(ParamValue::as_int).unwrap_or(0) as u8;
                routes.push((
                    prefix,
                    NextHop {
                        mac: ethernet::Address([2, 0, 0, 0, 0, port]),
                        port,
                    },
                ));
            }
        }
        if routes.is_empty() {
            // Prefix length 0 is always valid; an empty table (which
            // drops everything) is the fallback rather than a panic.
            if let Ok(all) = Cidr::new(ipv4::Address::new(0, 0, 0, 0), 0) {
                routes.push((
                    all,
                    NextHop {
                        mac: ethernet::Address([2, 0, 0, 0, 0, 0]),
                        port: 0,
                    },
                ));
            }
        }
        Ipv4Fwd::new(routes)
    }

    fn dst_of(pkt: &PacketBuf) -> Option<ipv4::Address> {
        let frame = pkt.as_slice();
        let eth = ethernet::Frame::new_checked(frame).ok()?;
        let l3_off = match eth.ethertype() {
            EtherType::Ipv4 => ethernet::HEADER_LEN,
            EtherType::Vlan => {
                let tag = vlan::Tag::new_checked(eth.payload()).ok()?;
                if tag.inner_ethertype() != EtherType::Ipv4 {
                    return None;
                }
                ethernet::HEADER_LEN + vlan::TAG_LEN
            }
            _ => return None,
        };
        ipv4::Packet::new_checked(&frame[l3_off..])
            .ok()
            .map(|p| p.dst())
    }
}

impl NetworkFunction for Ipv4Fwd {
    fn kind(&self) -> NfKind {
        NfKind::Ipv4Fwd
    }

    fn process(&mut self, _ctx: &NfCtx, pkt: &mut PacketBuf) -> Verdict {
        let Some(dst) = Self::dst_of(pkt) else {
            return Verdict::Drop;
        };
        let Some(hop) = self.table.lookup(dst).copied() else {
            return Verdict::Drop;
        };
        let mut eth = ethernet::Frame::new_unchecked(pkt.as_mut_slice());
        eth.set_dst(hop.mac);
        Verdict::Forward
    }

    fn clone_fresh(&self) -> Box<dyn NetworkFunction> {
        Box::new(Ipv4Fwd {
            table: self.table.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_packet::builder::udp_packet;

    fn hop(n: u8) -> NextHop {
        NextHop {
            mac: ethernet::Address([2, 0, 0, 0, 0, n]),
            port: n,
        }
    }

    #[test]
    fn lpm_longest_wins() {
        let mut t = LpmTrie::new();
        t.insert("10.0.0.0/8".parse().unwrap(), 1);
        t.insert("10.1.0.0/16".parse().unwrap(), 2);
        t.insert("10.1.2.0/24".parse().unwrap(), 3);
        assert_eq!(t.lookup(ipv4::Address::new(10, 9, 9, 9)), Some(&1));
        assert_eq!(t.lookup(ipv4::Address::new(10, 1, 9, 9)), Some(&2));
        assert_eq!(t.lookup(ipv4::Address::new(10, 1, 2, 9)), Some(&3));
        assert_eq!(t.lookup(ipv4::Address::new(11, 0, 0, 1)), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn lpm_default_route() {
        let mut t = LpmTrie::new();
        t.insert("0.0.0.0/0".parse().unwrap(), 99);
        t.insert("192.168.0.0/16".parse().unwrap(), 1);
        assert_eq!(t.lookup(ipv4::Address::new(8, 8, 8, 8)), Some(&99));
        assert_eq!(t.lookup(ipv4::Address::new(192, 168, 1, 1)), Some(&1));
    }

    #[test]
    fn lpm_replace_value() {
        let mut t = LpmTrie::new();
        t.insert("10.0.0.0/8".parse().unwrap(), 1);
        t.insert("10.0.0.0/8".parse().unwrap(), 2);
        assert_eq!(t.lookup(ipv4::Address::new(10, 0, 0, 1)), Some(&2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lpm_host_route() {
        let mut t = LpmTrie::new();
        t.insert("192.0.2.7/32".parse().unwrap(), 7);
        assert_eq!(t.lookup(ipv4::Address::new(192, 0, 2, 7)), Some(&7));
        assert_eq!(t.lookup(ipv4::Address::new(192, 0, 2, 8)), None);
    }

    #[test]
    fn fwd_rewrites_mac() {
        let mut fwd = Ipv4Fwd::new(vec![
            ("10.0.0.0/8".parse().unwrap(), hop(1)),
            ("20.0.0.0/8".parse().unwrap(), hop(2)),
        ]);
        let ctx = NfCtx::default();
        let mut pkt = udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 9]),
            ethernet::Address([0xff; 6]),
            ipv4::Address::new(1, 1, 1, 1),
            ipv4::Address::new(20, 0, 0, 5),
            1,
            2,
            b"x",
        );
        assert_eq!(fwd.process(&ctx, &mut pkt), Verdict::Forward);
        let eth = ethernet::Frame::new_checked(pkt.as_slice()).unwrap();
        assert_eq!(eth.dst(), hop(2).mac);
    }

    #[test]
    fn fwd_drops_unroutable() {
        let mut fwd = Ipv4Fwd::new(vec![("10.0.0.0/8".parse().unwrap(), hop(1))]);
        let ctx = NfCtx::default();
        let mut pkt = udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 9]),
            ethernet::Address([0xff; 6]),
            ipv4::Address::new(1, 1, 1, 1),
            ipv4::Address::new(99, 0, 0, 5),
            1,
            2,
            b"x",
        );
        assert_eq!(fwd.process(&ctx, &mut pkt), Verdict::Drop);
    }

    #[test]
    fn fwd_through_vlan_tag() {
        let mut fwd = Ipv4Fwd::from_params(&NfParams::new());
        let ctx = NfCtx::default();
        let mut pkt = udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 9]),
            ethernet::Address([0xff; 6]),
            ipv4::Address::new(1, 1, 1, 1),
            ipv4::Address::new(2, 2, 2, 2),
            1,
            2,
            b"x",
        );
        lemur_packet::builder::vlan_push(&mut pkt, 5);
        assert_eq!(fwd.process(&ctx, &mut pkt), Verdict::Forward);
    }
}
