//! Token-bucket rate limiter NF.
//!
//! The Limiter is one of the two non-replicable NFs (Table 3, bold): its
//! bucket is global state that cannot be split across cores without
//! breaking the rate guarantee.

use crate::snapshot::{Decoder, Encoder};
use crate::{
    AggregateObservables, AggregateOutcome, AggregateUpdate, NetworkFunction, NfCtx, NfKind,
    NfParams, NfSnapshot, SnapshotError, Verdict,
};
use lemur_packet::PacketBuf;

/// Token bucket limiter: admits packets while tokens (bytes) are available,
/// refilling continuously at `rate_bps / 8` bytes per second up to `burst`.
pub struct Limiter {
    rate_bps: f64,
    burst_bytes: f64,
    tokens: f64,
    last_refill_ns: u64,
}

impl Limiter {
    /// Create with a rate (bits/second) and burst (bytes).
    pub fn new(rate_bps: f64, burst_bytes: f64) -> Limiter {
        assert!(rate_bps > 0.0 && burst_bytes > 0.0);
        Limiter {
            rate_bps,
            burst_bytes,
            tokens: burst_bytes,
            last_refill_ns: 0,
        }
    }

    /// Build from spec parameters: `rate_bps` (default 10 Gbps) and
    /// `burst_bytes` (default 1 MiB).
    pub fn from_params(params: &NfParams) -> Limiter {
        Limiter::new(
            params.float_or("rate_bps", 10e9),
            params.float_or("burst_bytes", 1024.0 * 1024.0),
        )
    }

    /// Configured rate in bits per second.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn refill(&mut self, now_ns: u64) {
        if now_ns > self.last_refill_ns {
            let dt = (now_ns - self.last_refill_ns) as f64 / 1e9;
            self.tokens = (self.tokens + dt * self.rate_bps / 8.0).min(self.burst_bytes);
            self.last_refill_ns = now_ns;
        }
    }
}

impl NetworkFunction for Limiter {
    fn kind(&self) -> NfKind {
        NfKind::Limiter
    }

    fn process(&mut self, ctx: &NfCtx, pkt: &mut PacketBuf) -> Verdict {
        self.refill(ctx.now_ns);
        let need = pkt.len() as f64;
        if self.tokens >= need {
            self.tokens -= need;
            Verdict::Forward
        } else {
            Verdict::Drop
        }
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn clone_fresh(&self) -> Box<dyn NetworkFunction> {
        Box::new(Limiter::new(self.rate_bps, self.burst_bytes))
    }

    fn snapshot_state(&self) -> Option<NfSnapshot> {
        let mut e = Encoder::new();
        e.f64(self.rate_bps);
        e.f64(self.burst_bytes);
        e.f64(self.tokens);
        e.u64(self.last_refill_ns);
        Some(NfSnapshot::new(NfKind::Limiter, e.finish()))
    }

    fn restore_state(&mut self, snapshot: &NfSnapshot) -> Result<(), SnapshotError> {
        snapshot.expect_kind(NfKind::Limiter)?;
        let mut d = Decoder::new(&snapshot.payload);
        let rate_bps = d.f64()?;
        let burst_bytes = d.f64()?;
        let tokens = d.f64()?;
        let last_refill_ns = d.u64()?;
        if !(rate_bps > 0.0 && burst_bytes > 0.0) {
            return Err(SnapshotError::Invalid("Limiter rate/burst not positive"));
        }
        if !(0.0..=burst_bytes).contains(&tokens) {
            return Err(SnapshotError::Invalid("Limiter tokens outside bucket"));
        }
        d.done()?;
        self.rate_bps = rate_bps;
        self.burst_bytes = burst_bytes;
        self.tokens = tokens;
        self.last_refill_ns = last_refill_ns;
        Ok(())
    }

    /// Drain the bucket by the tail's byte mass: refill to the window end,
    /// then admit whole frames while tokens last. The admitted count is
    /// exact-integer so the engine's ledger closes.
    fn apply_aggregate(&mut self, update: &AggregateUpdate) -> AggregateOutcome {
        self.refill(update.window_end_ns);
        let frame = update.frame_len();
        let admitted = match (self.tokens as u64).checked_div(frame) {
            Some(whole_frames) => update.packets.min(whole_frames),
            None => update.packets,
        };
        self.tokens -= (admitted * frame) as f64;
        AggregateOutcome {
            packets: admitted,
            bytes: admitted * frame,
        }
    }

    fn observables(&self) -> AggregateObservables {
        AggregateObservables {
            packets: 0,
            bytes: 0,
            flows: 0,
            scalar: self.tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(len: usize) -> PacketBuf {
        PacketBuf::zeroed(len)
    }

    #[test]
    fn burst_admitted_then_dropped() {
        // 8 kbps = 1000 bytes/s; burst 2000 bytes.
        let mut l = Limiter::new(8_000.0, 2_000.0);
        let ctx = NfCtx { now_ns: 0 };
        assert_eq!(l.process(&ctx, &mut pkt(1500)), Verdict::Forward);
        assert_eq!(l.process(&ctx, &mut pkt(400)), Verdict::Forward);
        // 1900 bytes consumed; 200-byte packet exceeds the 100 remaining.
        assert_eq!(l.process(&ctx, &mut pkt(200)), Verdict::Drop);
    }

    #[test]
    fn refill_over_time() {
        let mut l = Limiter::new(8_000.0, 1_000.0); // 1000 B/s
        let mut ctx = NfCtx { now_ns: 0 };
        assert_eq!(l.process(&ctx, &mut pkt(1000)), Verdict::Forward);
        assert_eq!(l.process(&ctx, &mut pkt(1000)), Verdict::Drop);
        // After one second, the bucket is full again.
        ctx.now_ns = 1_000_000_000;
        assert_eq!(l.process(&ctx, &mut pkt(1000)), Verdict::Forward);
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut l = Limiter::new(8e9, 500.0);
        let ctx = NfCtx {
            now_ns: 10_000_000_000,
        };
        // Ten seconds at 1 GB/s would be 10 GB of tokens, but burst caps
        // the bucket at 500 bytes.
        assert_eq!(l.process(&ctx, &mut pkt(400)), Verdict::Forward);
        assert_eq!(l.process(&ctx, &mut pkt(400)), Verdict::Drop);
    }

    #[test]
    fn sustained_rate_converges() {
        // 8 Mbps = 1 MB/s; send 1000-byte packets every 0.5 ms (2 MB/s
        // offered) for one simulated second: about half should pass.
        let mut l = Limiter::new(8e6, 10_000.0);
        let mut admitted = 0usize;
        let total = 2000usize;
        for i in 0..total {
            let ctx = NfCtx {
                now_ns: (i as u64) * 500_000,
            };
            if l.process(&ctx, &mut pkt(1000)) == Verdict::Forward {
                admitted += 1;
            }
        }
        let ratio = admitted as f64 / total as f64;
        assert!((0.45..=0.55).contains(&ratio), "admitted ratio {ratio}");
    }

    #[test]
    fn is_stateful() {
        assert!(Limiter::new(1e9, 1e6).is_stateful());
    }

    #[test]
    fn aggregate_drains_and_caps() {
        // 8 kbps = 1000 B/s; burst 2000 B. A window of 30 × 100-byte
        // frames wants 3000 B but only 2000 B of tokens exist at t=0.
        let mut l = Limiter::new(8_000.0, 2_000.0);
        let out = l.apply_aggregate(&AggregateUpdate {
            packets: 30,
            bytes: 3_000,
            new_flows: 5,
            window_start_ns: 0,
            window_end_ns: 0,
        });
        assert_eq!(out.packets, 20);
        assert_eq!(out.bytes, 2_000);
        assert!(l.observables().scalar < 1.0);
        // One second later the bucket refilled 1000 B: 10 more frames fit.
        let out = l.apply_aggregate(&AggregateUpdate {
            packets: 30,
            bytes: 3_000,
            new_flows: 0,
            window_start_ns: 0,
            window_end_ns: 1_000_000_000,
        });
        assert_eq!(out.packets, 10);
    }

    #[test]
    fn clone_fresh_resets_bucket() {
        let mut l = Limiter::new(8_000.0, 1_000.0);
        let ctx = NfCtx { now_ns: 0 };
        assert_eq!(l.process(&ctx, &mut pkt(1000)), Verdict::Forward);
        let mut fresh = l.clone_fresh();
        // Fresh clone has a full bucket again.
        assert_eq!(fresh.process(&ctx, &mut pkt(1000)), Verdict::Forward);
    }
}
