//! Carrier-grade NAT NF (Table 3).
//!
//! Source NAT: internal (ip, port) pairs are mapped to ports on a single
//! external address, allocated from a pool. The reverse map rewrites return
//! traffic. NAT is the second non-replicable NF (Table 3, bold): the paper
//! notes it *could* be replicated by partitioning the port space, but the
//! meta-compiler does not generate that replication yet (§3.2) — neither do
//! we.

use crate::snapshot::{Decoder, Encoder};
use crate::{
    AggregateObservables, AggregateOutcome, AggregateUpdate, NetworkFunction, NfCtx, NfKind,
    NfParams, NfSnapshot, ParamValue, SnapshotError, Verdict,
};
use lemur_packet::ethernet::{self, EtherType};
use lemur_packet::ipv4::{self, Protocol};
use lemur_packet::{tcp, udp, vlan, PacketBuf};
use std::collections::BTreeMap;

/// Internal endpoint key.
type Endpoint = (ipv4::Address, u16);

#[derive(Debug, Clone, Copy)]
struct Binding {
    external_port: u16,
    last_used_ns: u64,
}

/// Carrier-grade source NAT.
pub struct Nat {
    external_ip: ipv4::Address,
    port_base: u16,
    port_count: u16,
    /// internal endpoint → binding, in key order so snapshots are canonical
    /// and idle-eviction ties break deterministically.
    forward: BTreeMap<Endpoint, Binding>,
    /// external port → internal endpoint
    reverse: BTreeMap<u16, Endpoint>,
    next_port_hint: u16,
    /// Bindings idle longer than this are reclaimed when the pool is full.
    idle_timeout_ns: u64,
    /// Prefix considered "internal"; traffic *to* `external_ip` is treated
    /// as return traffic.
    translated: u64,
    dropped_no_ports: u64,
    /// Port-pool mass claimed by analytic-tail flows
    /// ([`NetworkFunction::apply_aggregate`]): consumes pool capacity but
    /// stays outside the snapshot wire format.
    tail_flows: u64,
}

impl Nat {
    /// Create a NAT with an external IP and a port pool `[base, base+count)`.
    pub fn new(external_ip: ipv4::Address, port_base: u16, port_count: u16) -> Nat {
        assert!(port_count > 0);
        Nat {
            external_ip,
            port_base,
            port_count,
            forward: BTreeMap::new(),
            reverse: BTreeMap::new(),
            next_port_hint: 0,
            idle_timeout_ns: 60_000_000_000, // 60 s
            translated: 0,
            dropped_no_ports: 0,
            tail_flows: 0,
        }
    }

    /// Build from spec parameters: `entries` (pool size, default 12000 to
    /// match Table 4's "NAT (12000 entries)") and `external_ip`.
    pub fn from_params(params: &NfParams) -> Nat {
        let count = params
            .get("entries")
            .and_then(ParamValue::as_int)
            .unwrap_or(12_000)
            .clamp(1, 60_000) as u16;
        let ip = params
            .str_or("external_ip", "198.18.0.1")
            .parse()
            .unwrap_or(ipv4::Address::new(198, 18, 0, 1));
        Nat::new(ip, 2048, count)
    }

    /// Number of active bindings.
    pub fn active_bindings(&self) -> usize {
        self.forward.len()
    }

    /// Packets successfully translated.
    pub fn translated(&self) -> u64 {
        self.translated
    }

    /// Packets dropped because the port pool was exhausted.
    pub fn dropped_no_ports(&self) -> u64 {
        self.dropped_no_ports
    }

    fn allocate_port(&mut self, now_ns: u64) -> Option<u16> {
        // Linear probe from the hint; ports are dense so this is O(1)
        // amortized until the pool saturates.
        for i in 0..self.port_count {
            let idx = (self.next_port_hint + i) % self.port_count;
            let port = self.port_base + idx;
            if !self.reverse.contains_key(&port) {
                self.next_port_hint = (idx + 1) % self.port_count;
                return Some(port);
            }
        }
        // Pool full: evict the most idle binding if it has expired.
        let victim = self
            .forward
            .iter()
            .min_by_key(|(_, b)| b.last_used_ns)
            .map(|(ep, b)| (*ep, *b))?;
        if now_ns.saturating_sub(victim.1.last_used_ns) >= self.idle_timeout_ns {
            self.forward.remove(&victim.0);
            self.reverse.remove(&victim.1.external_port);
            Some(victim.1.external_port)
        } else {
            None
        }
    }

    fn encode_state(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u32(self.external_ip.to_u32());
        e.u16(self.port_base);
        e.u16(self.port_count);
        e.u16(self.next_port_hint);
        e.u64(self.idle_timeout_ns);
        e.u64(self.translated);
        e.u64(self.dropped_no_ports);
        e.u32(self.forward.len() as u32);
        for ((ip, port), b) in &self.forward {
            e.u32(ip.to_u32());
            e.u16(*port);
            e.u16(b.external_port);
            e.u64(b.last_used_ns);
        }
        e.finish()
    }

    /// Decode a NAT snapshot's binding table without building a `Nat`:
    /// `(external_ip, bindings)` in canonical key order. This is the
    /// hand-off point for cross-platform migration — the dataplane turns
    /// these rows into P4 table entries when a NAT node moves from a
    /// server onto the ToR.
    pub fn decode_bindings(
        snapshot: &NfSnapshot,
    ) -> Result<(ipv4::Address, Vec<NatBinding>), SnapshotError> {
        snapshot.expect_kind(NfKind::Nat)?;
        let mut d = Decoder::new(&snapshot.payload);
        let external_ip = ipv4::Address::from_u32(d.u32()?);
        let _port_base = d.u16()?;
        let _port_count = d.u16()?;
        let _hint = d.u16()?;
        let _idle = d.u64()?;
        let _translated = d.u64()?;
        let _dropped = d.u64()?;
        let n = d.u32()? as usize;
        let mut bindings = Vec::with_capacity(n);
        for _ in 0..n {
            let ip = ipv4::Address::from_u32(d.u32()?);
            let int_port = d.u16()?;
            let ext_port = d.u16()?;
            let _last_used = d.u64()?;
            bindings.push((ip, int_port, ext_port));
        }
        d.done()?;
        Ok((external_ip, bindings))
    }
}

/// One decoded NAT binding: `(internal_ip, internal_port, external_port)`.
pub type NatBinding = (ipv4::Address, u16, u16);

/// Where the L3/L4 headers sit, shared with other rewriting NFs.
fn l3_offset(frame: &[u8]) -> Option<usize> {
    let eth = ethernet::Frame::new_checked(frame).ok()?;
    match eth.ethertype() {
        EtherType::Ipv4 => Some(ethernet::HEADER_LEN),
        EtherType::Vlan => {
            let tag = vlan::Tag::new_checked(eth.payload()).ok()?;
            (tag.inner_ethertype() == EtherType::Ipv4)
                .then_some(ethernet::HEADER_LEN + vlan::TAG_LEN)
        }
        _ => None,
    }
}

impl NetworkFunction for Nat {
    fn kind(&self) -> NfKind {
        NfKind::Nat
    }

    fn process(&mut self, ctx: &NfCtx, pkt: &mut PacketBuf) -> Verdict {
        let Some(l3) = l3_offset(pkt.as_slice()) else {
            return Verdict::Drop;
        };
        let (src, dst, protocol, l4) = {
            let Ok(ip) = ipv4::Packet::new_checked(&pkt.as_slice()[l3..]) else {
                return Verdict::Drop;
            };
            (
                ip.src(),
                ip.dst(),
                ip.protocol(),
                l3 + ip.header_len() as usize,
            )
        };
        if !matches!(protocol, Protocol::Udp | Protocol::Tcp) {
            return Verdict::Drop;
        }
        let (src_port, dst_port) = {
            let data = pkt.as_slice();
            match protocol {
                Protocol::Udp => {
                    let Ok(u) = udp::Packet::new_checked(&data[l4..]) else {
                        return Verdict::Drop;
                    };
                    (u.src_port(), u.dst_port())
                }
                _ => {
                    let Ok(t) = tcp::Packet::new_checked(&data[l4..]) else {
                        return Verdict::Drop;
                    };
                    (t.src_port(), t.dst_port())
                }
            }
        };

        // Inbound return traffic: destination is our external address.
        if dst == self.external_ip {
            let Some(&(int_ip, int_port)) = self.reverse.get(&dst_port) else {
                return Verdict::Drop; // no binding
            };
            if let Some(b) = self.forward.get_mut(&(int_ip, int_port)) {
                b.last_used_ns = ctx.now_ns;
            }
            rewrite(pkt, l3, l4, protocol, None, Some((int_ip, int_port)));
            self.translated += 1;
            return Verdict::Forward;
        }

        // Outbound: translate source.
        let key = (src, src_port);
        let port = match self.forward.get_mut(&key) {
            Some(b) => {
                b.last_used_ns = ctx.now_ns;
                b.external_port
            }
            None => {
                let Some(port) = self.allocate_port(ctx.now_ns) else {
                    self.dropped_no_ports += 1;
                    return Verdict::Drop;
                };
                self.forward.insert(
                    key,
                    Binding {
                        external_port: port,
                        last_used_ns: ctx.now_ns,
                    },
                );
                self.reverse.insert(port, key);
                port
            }
        };
        rewrite(pkt, l3, l4, protocol, Some((self.external_ip, port)), None);
        self.translated += 1;
        Verdict::Forward
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn clone_fresh(&self) -> Box<dyn NetworkFunction> {
        Box::new(Nat::new(self.external_ip, self.port_base, self.port_count))
    }

    fn snapshot_state(&self) -> Option<NfSnapshot> {
        Some(NfSnapshot::new(NfKind::Nat, self.encode_state()))
    }

    /// Tail flows claim ports from the same finite pool the exact bindings
    /// draw on; packets of flows that cannot bind are dropped. Bound tail
    /// flows pass, so the per-packet mass scales by the bound fraction.
    fn apply_aggregate(&mut self, update: &AggregateUpdate) -> AggregateOutcome {
        let free = (self.port_count as u64)
            .saturating_sub(self.forward.len() as u64)
            .saturating_sub(self.tail_flows);
        let bound = update.new_flows.min(free);
        let refused = update.new_flows - bound;
        self.tail_flows += bound;
        if refused == 0 || update.new_flows == 0 {
            self.translated += update.packets;
            return AggregateOutcome::pass(update);
        }
        // Unbindable flows lose their whole window share (integer split;
        // the remainder stays with admitted traffic so mass is conserved).
        let lost_packets = update.packets * refused / update.new_flows;
        let admitted = update.packets - lost_packets;
        self.dropped_no_ports += lost_packets;
        self.translated += admitted;
        AggregateOutcome {
            packets: admitted,
            bytes: admitted * update.frame_len(),
        }
    }

    fn observables(&self) -> AggregateObservables {
        AggregateObservables {
            packets: self.translated,
            bytes: 0,
            flows: self.forward.len() as u64 + self.tail_flows,
            scalar: 0.0,
        }
    }

    fn restore_state(&mut self, snapshot: &NfSnapshot) -> Result<(), SnapshotError> {
        snapshot.expect_kind(NfKind::Nat)?;
        let mut d = Decoder::new(&snapshot.payload);
        let external_ip = ipv4::Address::from_u32(d.u32()?);
        let port_base = d.u16()?;
        let port_count = d.u16()?;
        if port_count == 0 {
            return Err(SnapshotError::Invalid("NAT port pool is empty"));
        }
        let next_port_hint = d.u16()?;
        if next_port_hint >= port_count {
            return Err(SnapshotError::Invalid("NAT port hint outside pool"));
        }
        let idle_timeout_ns = d.u64()?;
        let translated = d.u64()?;
        let dropped_no_ports = d.u64()?;
        let n = d.u32()? as usize;
        if n > port_count as usize {
            return Err(SnapshotError::Invalid("NAT has more bindings than ports"));
        }
        // Stage into fresh maps; commit only after the whole payload
        // validates so a corrupt snapshot can never be half-applied.
        let mut forward = BTreeMap::new();
        let mut reverse = BTreeMap::new();
        for _ in 0..n {
            let ip = ipv4::Address::from_u32(d.u32()?);
            let int_port = d.u16()?;
            let ext_port = d.u16()?;
            let last_used_ns = d.u64()?;
            let in_pool =
                ext_port >= port_base && (ext_port as u32) < port_base as u32 + port_count as u32;
            if !in_pool {
                return Err(SnapshotError::Invalid("NAT binding outside port pool"));
            }
            if reverse.insert(ext_port, (ip, int_port)).is_some() {
                return Err(SnapshotError::Invalid("duplicate NAT external port"));
            }
            let binding = Binding {
                external_port: ext_port,
                last_used_ns,
            };
            if forward.insert((ip, int_port), binding).is_some() {
                return Err(SnapshotError::Invalid("duplicate NAT internal endpoint"));
            }
        }
        d.done()?;
        self.external_ip = external_ip;
        self.port_base = port_base;
        self.port_count = port_count;
        self.next_port_hint = next_port_hint;
        self.idle_timeout_ns = idle_timeout_ns;
        self.translated = translated;
        self.dropped_no_ports = dropped_no_ports;
        self.forward = forward;
        self.reverse = reverse;
        Ok(())
    }
}

/// Rewrite src and/or dst (ip, port) and refresh checksums.
fn rewrite(
    pkt: &mut PacketBuf,
    l3: usize,
    l4: usize,
    protocol: Protocol,
    new_src: Option<(ipv4::Address, u16)>,
    new_dst: Option<(ipv4::Address, u16)>,
) {
    let data = pkt.as_mut_slice();
    {
        let mut ip = ipv4::Packet::new_unchecked(&mut data[l3..]);
        if let Some((a, _)) = new_src {
            ip.set_src(a);
        }
        if let Some((a, _)) = new_dst {
            ip.set_dst(a);
        }
        ip.fill_checksum();
    }
    let (src, dst) = {
        let ip = ipv4::Packet::new_unchecked(&data[l3..]);
        (ip.src(), ip.dst())
    };
    match protocol {
        Protocol::Udp => {
            let mut u = udp::Packet::new_unchecked(&mut data[l4..]);
            if let Some((_, p)) = new_src {
                u.set_src_port(p);
            }
            if let Some((_, p)) = new_dst {
                u.set_dst_port(p);
            }
            u.fill_checksum(src, dst);
        }
        Protocol::Tcp => {
            let mut t = tcp::Packet::new_unchecked(&mut data[l4..]);
            if let Some((_, p)) = new_src {
                t.set_src_port(p);
            }
            if let Some((_, p)) = new_dst {
                t.set_dst_port(p);
            }
            t.fill_checksum(src, dst);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_packet::builder::udp_packet;
    use lemur_packet::flow::FiveTuple;

    const EXT: ipv4::Address = ipv4::Address::new(198, 18, 0, 1);

    fn outbound(src_port: u16) -> PacketBuf {
        udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(192, 168, 1, 10),
            ipv4::Address::new(8, 8, 8, 8),
            src_port,
            53,
            b"query",
        )
    }

    #[test]
    fn outbound_translation_and_return() {
        let mut nat = Nat::new(EXT, 5000, 100);
        let ctx = NfCtx::default();
        let mut out = outbound(3333);
        assert_eq!(nat.process(&ctx, &mut out), Verdict::Forward);
        let t = FiveTuple::parse(out.as_slice()).unwrap();
        assert_eq!(t.src_ip, EXT);
        assert!(t.src_port >= 5000 && t.src_port < 5100);
        assert_eq!(t.dst_ip, ipv4::Address::new(8, 8, 8, 8));

        // Craft the return packet to the external binding.
        let mut back = udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ipv4::Address::new(8, 8, 8, 8),
            EXT,
            53,
            t.src_port,
            b"reply",
        );
        assert_eq!(nat.process(&ctx, &mut back), Verdict::Forward);
        let rt = FiveTuple::parse(back.as_slice()).unwrap();
        assert_eq!(rt.dst_ip, ipv4::Address::new(192, 168, 1, 10));
        assert_eq!(rt.dst_port, 3333);
        assert_eq!(nat.translated(), 2);
    }

    #[test]
    fn bindings_are_stable_per_flow() {
        let mut nat = Nat::new(EXT, 5000, 100);
        let ctx = NfCtx::default();
        let mut a = outbound(1000);
        let mut b = outbound(1000);
        nat.process(&ctx, &mut a);
        nat.process(&ctx, &mut b);
        let pa = FiveTuple::parse(a.as_slice()).unwrap().src_port;
        let pb = FiveTuple::parse(b.as_slice()).unwrap().src_port;
        assert_eq!(pa, pb);
        assert_eq!(nat.active_bindings(), 1);
    }

    #[test]
    fn distinct_flows_get_distinct_ports() {
        let mut nat = Nat::new(EXT, 5000, 100);
        let ctx = NfCtx::default();
        let mut seen = std::collections::HashSet::new();
        for port in 1000..1020 {
            let mut p = outbound(port);
            nat.process(&ctx, &mut p);
            seen.insert(FiveTuple::parse(p.as_slice()).unwrap().src_port);
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn pool_exhaustion_drops() {
        let mut nat = Nat::new(EXT, 5000, 4);
        let ctx = NfCtx::default();
        for port in 1..=4 {
            assert_eq!(nat.process(&ctx, &mut outbound(port)), Verdict::Forward);
        }
        assert_eq!(nat.process(&ctx, &mut outbound(99)), Verdict::Drop);
        assert_eq!(nat.dropped_no_ports(), 1);
    }

    #[test]
    fn idle_binding_reclaimed() {
        let mut nat = Nat::new(EXT, 5000, 2);
        nat.process(&NfCtx { now_ns: 0 }, &mut outbound(1));
        nat.process(&NfCtx { now_ns: 0 }, &mut outbound(2));
        // 120 s later both are idle; a new flow evicts the oldest.
        let late = NfCtx {
            now_ns: 120_000_000_000,
        };
        assert_eq!(nat.process(&late, &mut outbound(3)), Verdict::Forward);
        assert_eq!(nat.active_bindings(), 2);
    }

    #[test]
    fn return_without_binding_dropped() {
        let mut nat = Nat::new(EXT, 5000, 10);
        let ctx = NfCtx::default();
        let mut stray = udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ipv4::Address::new(8, 8, 8, 8),
            EXT,
            53,
            5001,
            b"stray",
        );
        assert_eq!(nat.process(&ctx, &mut stray), Verdict::Drop);
    }

    #[test]
    fn checksums_valid_after_translation() {
        let mut nat = Nat::new(EXT, 5000, 10);
        let ctx = NfCtx::default();
        let mut p = outbound(1234);
        nat.process(&ctx, &mut p);
        let eth = ethernet::Frame::new_checked(p.as_slice()).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let u = udp::Packet::new_checked(ip.payload()).unwrap();
        assert!(u.verify_checksum(ip.src(), ip.dst()));
    }

    #[test]
    fn aggregate_flows_respect_port_pool() {
        let mut nat = Nat::new(EXT, 5000, 10);
        // Two exact bindings occupy part of the pool.
        let ctx = NfCtx::default();
        nat.process(&ctx, &mut outbound(1));
        nat.process(&ctx, &mut outbound(2));
        // 12 tail flows want ports but only 8 remain: 4 flows (and their
        // third of the packets) are refused.
        let out = nat.apply_aggregate(&AggregateUpdate {
            packets: 120,
            bytes: 12_000,
            new_flows: 12,
            window_start_ns: 0,
            window_end_ns: 1_000_000,
        });
        assert_eq!(out.packets, 80);
        assert_eq!(nat.dropped_no_ports(), 40);
        assert_eq!(nat.observables().flows, 10);
        // The pool is saturated: a later pure-packet window binds nothing.
        let out = nat.apply_aggregate(&AggregateUpdate {
            packets: 10,
            bytes: 1_000,
            new_flows: 5,
            window_start_ns: 1_000_000,
            window_end_ns: 2_000_000,
        });
        assert_eq!(out.packets, 0);
    }

    #[test]
    fn table4_default_pool_size() {
        let nat = Nat::from_params(&NfParams::new());
        assert_eq!(nat.port_count, 12_000);
        assert!(nat.is_stateful());
    }
}
