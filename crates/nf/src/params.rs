//! NF parameter values carried from chain specifications to NF constructors.
//!
//! The spec language attaches parameters to NFs, e.g.
//! `ACL(rules=[{'dst_ip':'10.0.0.0/8','drop': False}])` (§2). The parser in
//! `lemur-core` lowers those literals into this crate-neutral representation.

use std::collections::BTreeMap;
use std::fmt;

/// A parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    List(Vec<ParamValue>),
    /// A `{'key': value}` dictionary literal.
    Dict(BTreeMap<String, ParamValue>),
}

impl ParamValue {
    /// Integer value, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float value (accepts `Int` too).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ParamValue::Float(v) => Some(*v),
            ParamValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// String value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// List items, if this is a `List`.
    pub fn as_list(&self) -> Option<&[ParamValue]> {
        match self {
            ParamValue::List(v) => Some(v),
            _ => None,
        }
    }

    /// Dictionary entries, if this is a `Dict`.
    pub fn as_dict(&self) -> Option<&BTreeMap<String, ParamValue>> {
        match self {
            ParamValue::Dict(d) => Some(d),
            _ => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Float(v) => write!(f, "{v}"),
            ParamValue::Str(s) => write!(f, "'{s}'"),
            ParamValue::Bool(b) => write!(f, "{}", if *b { "True" } else { "False" }),
            ParamValue::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            ParamValue::Dict(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "'{k}': {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Named parameters for one NF instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NfParams {
    entries: BTreeMap<String, ParamValue>,
}

impl NfParams {
    /// Empty parameter set.
    pub fn new() -> NfParams {
        NfParams::default()
    }

    /// Insert (replacing) a parameter.
    pub fn set(&mut self, key: &str, value: ParamValue) -> &mut Self {
        self.entries.insert(key.to_string(), value);
        self
    }

    /// Look up a parameter.
    pub fn get(&self, key: &str) -> Option<&ParamValue> {
        self.entries.get(key)
    }

    /// Convenience: integer parameter with default.
    pub fn int_or(&self, key: &str, default: i64) -> i64 {
        self.get(key)
            .and_then(ParamValue::as_int)
            .unwrap_or(default)
    }

    /// Convenience: float parameter with default.
    pub fn float_or(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .and_then(ParamValue::as_float)
            .unwrap_or(default)
    }

    /// Convenience: string parameter with default.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key)
            .and_then(ParamValue::as_str)
            .unwrap_or(default)
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True if no parameters were supplied.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for NfParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors() {
        let mut p = NfParams::new();
        p.set("rate", ParamValue::Int(42));
        p.set("frac", ParamValue::Float(0.5));
        p.set("name", ParamValue::Str("x".into()));
        p.set("flag", ParamValue::Bool(true));
        assert_eq!(p.int_or("rate", 0), 42);
        assert_eq!(p.float_or("rate", 0.0), 42.0); // int coerces to float
        assert_eq!(p.float_or("frac", 0.0), 0.5);
        assert_eq!(p.str_or("name", ""), "x");
        assert_eq!(p.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(p.int_or("missing", 7), 7);
    }

    #[test]
    fn display_is_spec_like() {
        let mut p = NfParams::new();
        let mut d = BTreeMap::new();
        d.insert("dst_ip".to_string(), ParamValue::Str("10.0.0.0/8".into()));
        d.insert("drop".to_string(), ParamValue::Bool(false));
        p.set("rules", ParamValue::List(vec![ParamValue::Dict(d)]));
        assert_eq!(
            p.to_string(),
            "rules=[{'drop': False, 'dst_ip': '10.0.0.0/8'}]"
        );
    }

    #[test]
    fn wrong_type_is_none() {
        let mut p = NfParams::new();
        p.set("x", ParamValue::Str("notanint".into()));
        assert_eq!(p.get("x").unwrap().as_int(), None);
        assert_eq!(p.int_or("x", 9), 9);
    }
}
