//! L4 load balancer NF.
//!
//! Selects a backend by consistent flow hashing and rewrites the destination
//! IP (and MAC), keeping connections sticky without per-flow state in the
//! common case; a small flow cache preserves stickiness if the backend set
//! changes (the SilkRoad-style behaviour the paper's P4 LB emulates).

use crate::snapshot::{Decoder, Encoder};
use crate::{
    AggregateObservables, AggregateOutcome, AggregateUpdate, NetworkFunction, NfCtx, NfKind,
    NfParams, NfSnapshot, ParamValue, SnapshotError, Verdict,
};
use lemur_packet::ethernet::{self, EtherType};
use lemur_packet::flow::FiveTuple;
use lemur_packet::ipv4::{self, Protocol};
use lemur_packet::{tcp, udp, vlan, PacketBuf};
use std::collections::BTreeMap;

/// A backend server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backend {
    pub ip: ipv4::Address,
    pub mac: ethernet::Address,
}

/// The load balancer NF.
pub struct LoadBalancer {
    backends: Vec<Backend>,
    /// Flow → backend index cache (bounded), in key order so snapshots
    /// are canonical.
    flow_cache: BTreeMap<FiveTuple, usize>,
    max_cache: usize,
    /// Affinity-cache mass pinned by analytic-tail flows
    /// ([`NetworkFunction::apply_aggregate`]): competes with exact flows
    /// for `max_cache` slots but is not snapshotted (tail flows are
    /// steered statelessly by hash, so losing the pins costs nothing).
    tail_flows: u64,
}

impl LoadBalancer {
    /// Create with explicit backends (at least one).
    pub fn new(backends: Vec<Backend>) -> LoadBalancer {
        assert!(!backends.is_empty(), "LB needs at least one backend");
        LoadBalancer {
            backends,
            flow_cache: BTreeMap::new(),
            max_cache: 65_536,
            tail_flows: 0,
        }
    }

    /// Build from spec parameters: `backends=N` synthesizes N backends in
    /// 192.168.100.0/24 (default 4).
    pub fn from_params(params: &NfParams) -> LoadBalancer {
        let n = params
            .get("backends")
            .and_then(ParamValue::as_int)
            .unwrap_or(4)
            .max(1) as usize;
        let backends = (0..n)
            .map(|i| Backend {
                ip: ipv4::Address::new(192, 168, 100, (i + 1) as u8),
                mac: ethernet::Address([2, 0, 0, 100, 0, (i + 1) as u8]),
            })
            .collect();
        LoadBalancer::new(backends)
    }

    /// Number of configured backends.
    pub fn num_backends(&self) -> usize {
        self.backends.len()
    }

    /// Number of flows currently pinned in the affinity cache.
    pub fn cached_flows(&self) -> usize {
        self.flow_cache.len()
    }

    /// The cached backend for a flow, if pinned.
    pub fn cached_backend(&self, tuple: &FiveTuple) -> Option<Backend> {
        self.flow_cache.get(tuple).map(|&i| self.backends[i])
    }

    fn encode_state(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u32(self.backends.len() as u32);
        for b in &self.backends {
            e.u32(b.ip.to_u32());
            for byte in b.mac.0 {
                e.u8(byte);
            }
        }
        e.u64(self.max_cache as u64);
        e.u32(self.flow_cache.len() as u32);
        for (t, idx) in &self.flow_cache {
            e.u32(t.src_ip.to_u32());
            e.u32(t.dst_ip.to_u32());
            e.u16(t.src_port);
            e.u16(t.dst_port);
            e.u8(t.protocol);
            e.u32(*idx as u32);
        }
        e.finish()
    }

    fn pick(&mut self, tuple: &FiveTuple) -> usize {
        if let Some(&idx) = self.flow_cache.get(tuple) {
            return idx;
        }
        let idx = (tuple.symmetric_hash() % self.backends.len() as u64) as usize;
        if self.flow_cache.len() as u64 + self.tail_flows < self.max_cache as u64 {
            self.flow_cache.insert(*tuple, idx);
        }
        idx
    }

    /// Steer a packet whose 5-tuple was already parsed (`None` =
    /// unclassifiable, dropped). Shared by [`NetworkFunction::process`] and
    /// the fused parse-once path. Rewrites the destination IP/MAC and
    /// checksums, so it invalidates any cached parse of `pkt`.
    pub(crate) fn steer(&mut self, pkt: &mut PacketBuf, tuple: Option<&FiveTuple>) -> Verdict {
        let Some(tuple) = tuple else {
            return Verdict::Drop;
        };
        let idx = self.pick(tuple);
        let backend = self.backends[idx];
        // Locate the IP header (possibly behind a VLAN tag).
        let l3 = {
            let eth = ethernet::Frame::new_unchecked(pkt.as_slice());
            match eth.ethertype() {
                EtherType::Vlan => ethernet::HEADER_LEN + vlan::TAG_LEN,
                _ => ethernet::HEADER_LEN,
            }
        };
        let data = pkt.as_mut_slice();
        {
            let mut eth = ethernet::Frame::new_unchecked(&mut data[..]);
            eth.set_dst(backend.mac);
        }
        let (src, l4_off, protocol) = {
            let mut ip = ipv4::Packet::new_unchecked(&mut data[l3..]);
            ip.set_dst(backend.ip);
            ip.fill_checksum();
            (ip.src(), l3 + ip.header_len() as usize, ip.protocol())
        };
        match protocol {
            Protocol::Udp => {
                let mut u = udp::Packet::new_unchecked(&mut data[l4_off..]);
                u.fill_checksum(src, backend.ip);
            }
            Protocol::Tcp => {
                let mut t = tcp::Packet::new_unchecked(&mut data[l4_off..]);
                t.fill_checksum(src, backend.ip);
            }
            _ => {}
        }
        Verdict::Forward
    }
}

impl NetworkFunction for LoadBalancer {
    fn kind(&self) -> NfKind {
        NfKind::Lb
    }

    fn process(&mut self, _ctx: &NfCtx, pkt: &mut PacketBuf) -> Verdict {
        let tuple = FiveTuple::parse(pkt.as_slice()).ok();
        self.steer(pkt, tuple.as_ref())
    }

    /// The LB's flow cache shards cleanly by flow (the demux hashes flows to
    /// cores), so it is replicable despite holding state.
    fn is_stateful(&self) -> bool {
        false
    }

    fn clone_fresh(&self) -> Box<dyn NetworkFunction> {
        Box::new(LoadBalancer::new(self.backends.clone()))
    }

    fn snapshot_state(&self) -> Option<NfSnapshot> {
        Some(NfSnapshot::new(NfKind::Lb, self.encode_state()))
    }

    /// Restore the affinity cache. Entries are carried over for backends
    /// that still exist in this instance's configuration (matched by
    /// ip + mac and remapped to their new index); flows whose backend is
    /// gone are dropped, which is exactly the "affinity preserved for
    /// surviving backends" contract. With an identical backend set the
    /// restore is bit-exact.
    fn restore_state(&mut self, snapshot: &NfSnapshot) -> Result<(), SnapshotError> {
        snapshot.expect_kind(NfKind::Lb)?;
        let mut d = Decoder::new(&snapshot.payload);
        let n_backends = d.u32()? as usize;
        if n_backends == 0 {
            return Err(SnapshotError::Invalid("LB snapshot has no backends"));
        }
        let mut old_backends = Vec::with_capacity(n_backends);
        for _ in 0..n_backends {
            let ip = ipv4::Address::from_u32(d.u32()?);
            let mut mac = [0u8; 6];
            for byte in &mut mac {
                *byte = d.u8()?;
            }
            old_backends.push(Backend {
                ip,
                mac: ethernet::Address(mac),
            });
        }
        let max_cache = d.u64()? as usize;
        let n_flows = d.u32()? as usize;
        let mut staged = BTreeMap::new();
        for _ in 0..n_flows {
            let t = FiveTuple {
                src_ip: ipv4::Address::from_u32(d.u32()?),
                dst_ip: ipv4::Address::from_u32(d.u32()?),
                src_port: d.u16()?,
                dst_port: d.u16()?,
                protocol: d.u8()?,
            };
            let idx = d.u32()? as usize;
            let Some(old) = old_backends.get(idx) else {
                return Err(SnapshotError::Invalid("LB cache index out of range"));
            };
            if let Some(new_idx) = self.backends.iter().position(|b| b == old) {
                if staged.insert(t, new_idx).is_some() {
                    return Err(SnapshotError::Invalid("duplicate LB cache flow"));
                }
            }
        }
        d.done()?;
        self.max_cache = max_cache;
        self.flow_cache = staged;
        Ok(())
    }

    /// Pin tail flows into the remaining affinity slots; overflowing flows
    /// are still steered (hash without a pin), so everything passes.
    fn apply_aggregate(&mut self, update: &AggregateUpdate) -> AggregateOutcome {
        let free = (self.max_cache as u64)
            .saturating_sub(self.flow_cache.len() as u64)
            .saturating_sub(self.tail_flows);
        self.tail_flows += update.new_flows.min(free);
        AggregateOutcome::pass(update)
    }

    fn observables(&self) -> AggregateObservables {
        AggregateObservables {
            packets: 0,
            bytes: 0,
            flows: self.flow_cache.len() as u64 + self.tail_flows,
            scalar: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_packet::builder::udp_packet;

    fn pkt(src_port: u16) -> PacketBuf {
        udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(203, 0, 113, 5),
            ipv4::Address::new(10, 0, 0, 100), // virtual IP
            src_port,
            80,
            b"GET /",
        )
    }

    fn dst_of(p: &PacketBuf) -> ipv4::Address {
        let eth = ethernet::Frame::new_checked(p.as_slice()).unwrap();
        ipv4::Packet::new_checked(eth.payload()).unwrap().dst()
    }

    #[test]
    fn rewrites_to_backend_and_stays_valid() {
        let mut lb = LoadBalancer::from_params(&NfParams::new());
        let ctx = NfCtx::default();
        let mut p = pkt(1000);
        assert_eq!(lb.process(&ctx, &mut p), Verdict::Forward);
        let dst = dst_of(&p);
        assert_eq!(dst.0[..3], [192, 168, 100]);
        // Checksums must be valid after the rewrite.
        let eth = ethernet::Frame::new_checked(p.as_slice()).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let u = udp::Packet::new_checked(ip.payload()).unwrap();
        assert!(u.verify_checksum(ip.src(), ip.dst()));
    }

    #[test]
    fn flows_are_sticky() {
        let mut lb = LoadBalancer::from_params(&NfParams::new());
        let ctx = NfCtx::default();
        for port in [1000u16, 2000, 3000] {
            let mut a = pkt(port);
            let mut b = pkt(port);
            lb.process(&ctx, &mut a);
            lb.process(&ctx, &mut b);
            assert_eq!(dst_of(&a), dst_of(&b));
        }
    }

    #[test]
    fn spreads_across_backends() {
        let mut lb = LoadBalancer::from_params(&NfParams::new());
        let ctx = NfCtx::default();
        let mut seen = std::collections::HashSet::new();
        for port in 1000..1100 {
            let mut p = pkt(port);
            lb.process(&ctx, &mut p);
            seen.insert(dst_of(&p));
        }
        assert!(seen.len() >= 3, "only {} backends used", seen.len());
    }

    #[test]
    fn backend_count_param() {
        let mut params = NfParams::new();
        params.set("backends", ParamValue::Int(7));
        assert_eq!(LoadBalancer::from_params(&params).num_backends(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn empty_backends_panics() {
        LoadBalancer::new(vec![]);
    }

    #[test]
    fn aggregate_pins_until_cache_full() {
        let mut lb = LoadBalancer::from_params(&NfParams::new());
        let u = AggregateUpdate {
            packets: 100,
            bytes: 10_000,
            new_flows: 60_000,
            window_start_ns: 0,
            window_end_ns: 1_000_000,
        };
        assert_eq!(lb.apply_aggregate(&u).packets, 100);
        assert_eq!(lb.observables().flows, 60_000);
        // A second wave hits the 65_536-slot ceiling; everything still
        // passes (steering is stateless beyond the pin).
        assert_eq!(lb.apply_aggregate(&u).packets, 100);
        assert_eq!(lb.observables().flows, 65_536);
    }

    #[test]
    fn non_ip_dropped() {
        let mut lb = LoadBalancer::from_params(&NfParams::new());
        let ctx = NfCtx::default();
        let mut garbage = PacketBuf::from_bytes(&[0u8; 20]);
        assert_eq!(lb.process(&ctx, &mut garbage), Verdict::Drop);
    }
}
