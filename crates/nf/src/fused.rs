//! Static-dispatch NF enumeration for the fused dataplane.
//!
//! The reference runtime walks packets through `Box<dyn NetworkFunction>`
//! hops: one indirect call per NF per packet, plus each classifying NF
//! re-parsing the frame headers from scratch. [`FusedNf`] closes both
//! costs: every Table 3 kind is enumerated into one enum so the hot path
//! is a direct, inlinable `match` (no vtable), and [`FlowCache`] carries
//! the parsed 5-tuple from NF to NF so a chain segment parses each packet
//! at most once.
//!
//! ## Equivalence discipline
//!
//! The cached path must be bit-identical to `NetworkFunction::process`.
//! Two rules keep that true by construction:
//!
//! * NFs that consume the cached tuple (ACL, Monitor, BPF/Match, LB) share
//!   one post-parse implementation with their trait `process` — the fused
//!   path differs only in who performed the parse.
//! * After any NF that may rewrite bytes the parse depends on, the cache
//!   is invalidated ([`FusedNf::invalidates_flow`]). The table is
//!   conservative: only NFs proven to leave the 5-tuple fields untouched
//!   (IPv4Fwd rewrites the destination MAC only; Limiter never touches
//!   the frame) keep the cache warm.

use crate::flowmap::tuple_hash;
use crate::{
    acl, dedup, encrypt, fwd, lb, limiter, matchnf, monitor, nat, tunnel, urlfilter,
    NetworkFunction, NfCtx, NfKind, NfParams, Verdict,
};
use lemur_packet::flow::FiveTuple;
use lemur_packet::PacketBuf;

/// Cached result of parsing one packet's 5-tuple, carried across the NFs
/// of a fused segment. The tuple's [`tuple_hash`] is cached alongside it,
/// so every flow table the packet touches (classifier memo, Monitor)
/// probes with the same hash — parse once, hash once.
#[derive(Debug, Clone, Copy, Default)]
pub enum FlowCache {
    /// Not parsed yet (or invalidated by a mutating NF).
    #[default]
    Unknown,
    /// Parsed successfully; `(tuple, tuple_hash(tuple))`.
    Parsed(FiveTuple, u64),
    /// Parse failed; the frame is not classifiable IPv4 TCP/UDP.
    Unparseable,
}

impl FlowCache {
    /// Forget everything (new packet, or bytes changed).
    pub fn reset(&mut self) {
        *self = FlowCache::Unknown;
    }

    /// The packet's 5-tuple, parsing on first use.
    pub fn tuple(&mut self, pkt: &PacketBuf) -> Option<FiveTuple> {
        self.tuple_hashed(pkt).map(|(t, _)| t)
    }

    /// The packet's 5-tuple plus its [`tuple_hash`], parsing and hashing
    /// on first use.
    #[inline]
    pub fn tuple_hashed(&mut self, pkt: &PacketBuf) -> Option<(FiveTuple, u64)> {
        match self {
            FlowCache::Parsed(t, h) => Some((*t, *h)),
            FlowCache::Unparseable => None,
            FlowCache::Unknown => match FiveTuple::parse(pkt.as_slice()) {
                Ok(t) => {
                    let h = tuple_hash(&t);
                    *self = FlowCache::Parsed(t, h);
                    Some((t, h))
                }
                Err(_) => {
                    *self = FlowCache::Unparseable;
                    None
                }
            },
        }
    }
}

/// One concrete NF, statically dispatched. See the module docs.
pub enum FusedNf {
    Encrypt(encrypt::Encrypt),
    Decrypt(encrypt::Decrypt),
    FastEncrypt(encrypt::FastEncrypt),
    Dedup(dedup::Dedup),
    Tunnel(tunnel::Tunnel),
    Detunnel(tunnel::Detunnel),
    Ipv4Fwd(fwd::Ipv4Fwd),
    Limiter(limiter::Limiter),
    UrlFilter(urlfilter::UrlFilter),
    Monitor(monitor::Monitor),
    Nat(nat::Nat),
    Lb(lb::LoadBalancer),
    Match(matchnf::Match),
    Acl(acl::Acl),
}

impl FusedNf {
    /// Instantiate from a chain-spec kind + parameters (the static-dispatch
    /// counterpart of [`crate::build_nf`]).
    pub fn build(kind: NfKind, params: &NfParams) -> FusedNf {
        match kind {
            NfKind::Encrypt => FusedNf::Encrypt(encrypt::Encrypt::from_params(params)),
            NfKind::Decrypt => FusedNf::Decrypt(encrypt::Decrypt::from_params(params)),
            NfKind::FastEncrypt => FusedNf::FastEncrypt(encrypt::FastEncrypt::from_params(params)),
            NfKind::Dedup => FusedNf::Dedup(dedup::Dedup::from_params(params)),
            NfKind::Tunnel => FusedNf::Tunnel(tunnel::Tunnel::from_params(params)),
            NfKind::Detunnel => FusedNf::Detunnel(tunnel::Detunnel::new()),
            NfKind::Ipv4Fwd => FusedNf::Ipv4Fwd(fwd::Ipv4Fwd::from_params(params)),
            NfKind::Limiter => FusedNf::Limiter(limiter::Limiter::from_params(params)),
            NfKind::UrlFilter => FusedNf::UrlFilter(urlfilter::UrlFilter::from_params(params)),
            NfKind::Monitor => FusedNf::Monitor(monitor::Monitor::new()),
            NfKind::Nat => FusedNf::Nat(nat::Nat::from_params(params)),
            NfKind::Lb => FusedNf::Lb(lb::LoadBalancer::from_params(params)),
            NfKind::Match => FusedNf::Match(matchnf::Match::from_params(params)),
            NfKind::Acl => FusedNf::Acl(acl::Acl::from_params(params)),
        }
    }

    /// The NF kind.
    pub fn kind(&self) -> NfKind {
        match self {
            FusedNf::Encrypt(_) => NfKind::Encrypt,
            FusedNf::Decrypt(_) => NfKind::Decrypt,
            FusedNf::FastEncrypt(_) => NfKind::FastEncrypt,
            FusedNf::Dedup(_) => NfKind::Dedup,
            FusedNf::Tunnel(_) => NfKind::Tunnel,
            FusedNf::Detunnel(_) => NfKind::Detunnel,
            FusedNf::Ipv4Fwd(_) => NfKind::Ipv4Fwd,
            FusedNf::Limiter(_) => NfKind::Limiter,
            FusedNf::UrlFilter(_) => NfKind::UrlFilter,
            FusedNf::Monitor(_) => NfKind::Monitor,
            FusedNf::Nat(_) => NfKind::Nat,
            FusedNf::Lb(_) => NfKind::Lb,
            FusedNf::Match(_) => NfKind::Match,
            FusedNf::Acl(_) => NfKind::Acl,
        }
    }

    /// True if processing may rewrite bytes the 5-tuple parse depends on,
    /// so any cached parse of the packet must be discarded afterwards.
    /// Conservative: only kinds proven tuple-preserving return false.
    pub fn invalidates_flow(&self) -> bool {
        match self {
            // Rewrites the destination MAC only; addresses/ports/protocol
            // and all header offsets are untouched.
            FusedNf::Ipv4Fwd(_) => false,
            // Never touches the frame.
            FusedNf::Limiter(_) => false,
            // Pure classifiers.
            FusedNf::Acl(_) | FusedNf::Monitor(_) | FusedNf::Match(_) => false,
            // Everything else may encapsulate, rewrite, or transform.
            _ => true,
        }
    }

    /// True if this NF's verdict is a pure function of the packet's
    /// 5-tuple: stateless, no frame mutation, and no inspection of bytes
    /// beyond what [`FiveTuple::parse`] reads. The fused segment memoizes
    /// contiguous runs of such NFs per flow (the megaflow-cache fast
    /// path) — skipping them cannot change state fingerprints (they hold
    /// no state) or bytes (they never write).
    pub fn tuple_pure(&self) -> bool {
        match self {
            // ACL rules are fixed at build time and match on the tuple.
            FusedNf::Acl(_) => true,
            // Match entries may filter on the VLAN tag (frame bytes the
            // tuple does not capture); only VLAN-free entry sets are pure.
            FusedNf::Match(x) => x.is_tuple_pure(),
            _ => false,
        }
    }

    /// Process one packet, statically dispatched (no vtable).
    #[inline]
    pub fn process(&mut self, ctx: &NfCtx, pkt: &mut PacketBuf) -> Verdict {
        match self {
            FusedNf::Encrypt(x) => x.process(ctx, pkt),
            FusedNf::Decrypt(x) => x.process(ctx, pkt),
            FusedNf::FastEncrypt(x) => x.process(ctx, pkt),
            FusedNf::Dedup(x) => x.process(ctx, pkt),
            FusedNf::Tunnel(x) => x.process(ctx, pkt),
            FusedNf::Detunnel(x) => x.process(ctx, pkt),
            FusedNf::Ipv4Fwd(x) => x.process(ctx, pkt),
            FusedNf::Limiter(x) => x.process(ctx, pkt),
            FusedNf::UrlFilter(x) => x.process(ctx, pkt),
            FusedNf::Monitor(x) => x.process(ctx, pkt),
            FusedNf::Nat(x) => x.process(ctx, pkt),
            FusedNf::Lb(x) => x.process(ctx, pkt),
            FusedNf::Match(x) => x.process(ctx, pkt),
            FusedNf::Acl(x) => x.process(ctx, pkt),
        }
    }

    /// Process one packet with a shared parse cache: classifiers consume
    /// the cached tuple instead of re-parsing; mutating NFs run their own
    /// parse (they inspect more than the 5-tuple) and then invalidate.
    #[inline]
    pub fn process_cached(
        &mut self,
        ctx: &NfCtx,
        pkt: &mut PacketBuf,
        cache: &mut FlowCache,
    ) -> Verdict {
        match self {
            FusedNf::Acl(x) => x.verdict_for(cache.tuple(pkt).as_ref()),
            FusedNf::Monitor(x) => {
                let len = pkt.len() as u64;
                match cache.tuple_hashed(pkt) {
                    Some((t, h)) => x.record_hashed(ctx.now_ns, len, &t, h),
                    None => x.record(ctx.now_ns, len, None),
                }
                Verdict::Forward
            }
            FusedNf::Match(x) => {
                let tuple = cache.tuple(pkt);
                x.classify(pkt, tuple.as_ref())
            }
            FusedNf::Lb(x) => {
                let tuple = cache.tuple(pkt);
                let v = x.steer(pkt, tuple.as_ref());
                cache.reset();
                v
            }
            other => {
                let v = other.process(ctx, pkt);
                if other.invalidates_flow() {
                    cache.reset();
                }
                v
            }
        }
    }

    /// The NF as a trait object, for cold paths (snapshots, fingerprints).
    pub fn as_nf(&self) -> &dyn NetworkFunction {
        match self {
            FusedNf::Encrypt(x) => x,
            FusedNf::Decrypt(x) => x,
            FusedNf::FastEncrypt(x) => x,
            FusedNf::Dedup(x) => x,
            FusedNf::Tunnel(x) => x,
            FusedNf::Detunnel(x) => x,
            FusedNf::Ipv4Fwd(x) => x,
            FusedNf::Limiter(x) => x,
            FusedNf::UrlFilter(x) => x,
            FusedNf::Monitor(x) => x,
            FusedNf::Nat(x) => x,
            FusedNf::Lb(x) => x,
            FusedNf::Match(x) => x,
            FusedNf::Acl(x) => x,
        }
    }

    /// Mutable trait-object view, for cold paths (restore).
    pub fn as_nf_mut(&mut self) -> &mut dyn NetworkFunction {
        match self {
            FusedNf::Encrypt(x) => x,
            FusedNf::Decrypt(x) => x,
            FusedNf::FastEncrypt(x) => x,
            FusedNf::Dedup(x) => x,
            FusedNf::Tunnel(x) => x,
            FusedNf::Detunnel(x) => x,
            FusedNf::Ipv4Fwd(x) => x,
            FusedNf::Limiter(x) => x,
            FusedNf::UrlFilter(x) => x,
            FusedNf::Monitor(x) => x,
            FusedNf::Nat(x) => x,
            FusedNf::Lb(x) => x,
            FusedNf::Match(x) => x,
            FusedNf::Acl(x) => x,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_nf;
    use lemur_packet::builder::udp_packet;
    use lemur_packet::{ethernet, ipv4};

    fn pkt(dst: ipv4::Address, src_port: u16) -> PacketBuf {
        udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(10, 0, 0, 1),
            dst,
            src_port,
            80,
            b"fused payload",
        )
    }

    #[test]
    fn build_covers_all_kinds() {
        let params = NfParams::new();
        for kind in NfKind::ALL {
            let f = FusedNf::build(kind, &params);
            assert_eq!(f.kind(), kind);
            assert_eq!(f.as_nf().kind(), kind);
        }
    }

    #[test]
    fn cached_process_matches_boxed_for_every_kind() {
        // Same packet stream through FusedNf::process_cached (fresh cache
        // per packet) and through the boxed trait object: identical
        // verdicts, bytes, and state fingerprints.
        let params = NfParams::new();
        let ctx = NfCtx { now_ns: 1_000 };
        for kind in NfKind::ALL {
            let mut fused = FusedNf::build(kind, &params);
            let mut boxed = build_nf(kind, &params);
            for i in 0..32u16 {
                let mut a = pkt(ipv4::Address::new(10, 0, (i % 4) as u8, 9), 4000 + i);
                let mut b = a.clone();
                let mut cache = FlowCache::default();
                let va = fused.process_cached(&ctx, &mut a, &mut cache);
                let vb = boxed.process(&ctx, &mut b);
                assert_eq!(va, vb, "{kind} verdict diverged");
                assert_eq!(a, b, "{kind} bytes diverged");
            }
            assert_eq!(
                fused.as_nf().state_fingerprint(),
                boxed.state_fingerprint(),
                "{kind} state diverged"
            );
        }
    }

    #[test]
    fn cache_survives_pure_classifiers_and_resets_after_mutators() {
        let params = NfParams::new();
        let ctx = NfCtx::default();
        let mut p = pkt(ipv4::Address::new(10, 0, 0, 2), 1234);
        let mut cache = FlowCache::default();
        let mut acl = FusedNf::build(NfKind::Acl, &params);
        acl.process_cached(&ctx, &mut p, &mut cache);
        assert!(matches!(cache, FlowCache::Parsed(..)));
        let mut nat = FusedNf::build(NfKind::Nat, &params);
        nat.process_cached(&ctx, &mut p, &mut cache);
        assert!(matches!(cache, FlowCache::Unknown));
        // After invalidation the next classifier re-parses the (rewritten)
        // frame and still agrees with a from-scratch parse.
        let mut mon = FusedNf::build(NfKind::Monitor, &params);
        mon.process_cached(&ctx, &mut p, &mut cache);
        if let FlowCache::Parsed(t, _) = cache {
            assert_eq!(t, FiveTuple::parse(p.as_slice()).unwrap());
        }
    }
}
