//! Versioned, checksummed NF state snapshots.
//!
//! Stateful NFs export their cross-packet state as a canonical byte
//! encoding — little-endian scalars, length-prefixed sequences, map
//! entries emitted in key order — so two instances holding identical
//! state always produce identical bytes. An FNV-1a/128 digest over the
//! header and payload (the same fingerprint idiom `lemur-p4sim` uses for
//! program identity) rides along in the wire framing; any corruption or
//! truncation of a snapshot in transit is detected before a single field
//! is applied, and restore is all-or-nothing: a snapshot that fails
//! validation leaves the target NF untouched.
//!
//! Wire framing of an encoded snapshot:
//!
//! ```text
//! magic   u32  "LMSN"
//! version u16  SNAPSHOT_VERSION
//! kind    u8   index into NfKind::ALL
//! len     u32  payload byte count
//! payload [u8; len]   NF-specific canonical encoding
//! digest  u128 FNV-1a/128 over everything above
//! ```

use crate::NfKind;
use std::fmt;

/// Current snapshot wire-format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// `b"LMSN"` as a little-endian u32.
const MAGIC: u32 = u32::from_le_bytes(*b"LMSN");

/// Incremental FNV-1a/128 hasher (the PR 3 fingerprint idiom from
/// `lemur-p4sim`): length-prefixed byte strings keep the stream
/// prefix-free, so distinct states cannot collide by concatenation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateDigest(u128);

impl StateDigest {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    /// Start a fresh digest.
    pub fn new() -> StateDigest {
        StateDigest(Self::OFFSET)
    }

    /// Mix in one byte.
    pub fn byte(&mut self, b: u8) {
        self.0 ^= b as u128;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    /// Mix in a length-prefixed byte string.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.word(bytes.len() as u64);
        for &b in bytes {
            self.byte(b);
        }
    }

    /// Mix in a 64-bit word (little-endian).
    pub fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.byte(b);
        }
    }

    /// The accumulated digest value.
    pub fn finish(&self) -> u128 {
        self.0
    }
}

impl Default for StateDigest {
    fn default() -> Self {
        StateDigest::new()
    }
}

/// Why a snapshot could not be decoded or applied. Decoding validates the
/// full framing *and* payload before any state is mutated, so every error
/// here implies the restore target is unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Fewer bytes than the framing or payload promised.
    Truncated { need: usize, have: usize },
    /// The leading magic word is not `LMSN`.
    BadMagic(u32),
    /// The wire-format version is not one we can decode.
    UnsupportedVersion(u16),
    /// The FNV-1a/128 digest does not match the framed bytes.
    ChecksumMismatch { expected: u128, found: u128 },
    /// The snapshot is for a different NF kind than the restore target.
    KindMismatch { expected: NfKind, found: NfKind },
    /// The payload violates an NF-specific invariant (duplicate keys,
    /// out-of-range indices, trailing bytes, ...).
    Invalid(&'static str),
    /// The NF kind keeps no migratable state.
    NoState(NfKind),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { need, have } => {
                write!(f, "snapshot truncated: need {need} bytes, have {have}")
            }
            SnapshotError::BadMagic(m) => write!(f, "bad snapshot magic {m:#010x}"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: expected {expected:#034x}, found {found:#034x}"
            ),
            SnapshotError::KindMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot kind mismatch: expected {expected}, found {found}"
                )
            }
            SnapshotError::Invalid(why) => write!(f, "invalid snapshot payload: {why}"),
            SnapshotError::NoState(kind) => write!(f, "{kind} has no migratable state"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Canonical little-endian payload writer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Encoder {
        Encoder { buf: Vec::new() }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// IEEE-754 bit pattern, so the encoding is exact.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length-prefixed byte string (u32 length, then the bytes verbatim).
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Consume the encoder, yielding the payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Checked payload reader; every accessor fails cleanly on underrun.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wrap a payload slice.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.buf.len() {
            return Err(SnapshotError::Truncated {
                need: self.pos + n,
                have: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length-prefixed byte string written by [`Encoder::bytes`].
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Length-prefixed UTF-8 string written by [`Encoder::str`].
    pub fn str(&mut self) -> Result<&'a str, SnapshotError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| SnapshotError::Invalid("string field is not UTF-8"))
    }

    /// Assert the payload was fully consumed (trailing garbage is a
    /// corruption signal, not slack).
    pub fn done(&self) -> Result<(), SnapshotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapshotError::Invalid("trailing bytes after payload"))
        }
    }
}

/// One NF's exported state: kind, format version, and the canonical
/// payload. The digest is recomputed on demand rather than stored, so a
/// snapshot can never disagree with its own checksum in memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NfSnapshot {
    pub kind: NfKind,
    pub version: u16,
    pub payload: Vec<u8>,
}

impl NfSnapshot {
    /// Wrap a payload at the current wire version.
    pub fn new(kind: NfKind, payload: Vec<u8>) -> NfSnapshot {
        NfSnapshot {
            kind,
            version: SNAPSHOT_VERSION,
            payload,
        }
    }

    /// FNV-1a/128 fingerprint over the framed header + payload. Equal
    /// fingerprints ⇔ byte-identical snapshots (modulo hash collisions),
    /// which — because the payload encoding is canonical — means equal
    /// migratable state.
    pub fn fingerprint(&self) -> u128 {
        let mut d = StateDigest::new();
        d.word(MAGIC as u64);
        d.word(self.version as u64);
        d.word(kind_index(self.kind) as u64);
        d.bytes(&self.payload);
        d.finish()
    }

    /// Serialize to the wire framing (header, payload, trailing digest).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 27);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.push(kind_index(self.kind));
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&self.fingerprint().to_le_bytes());
        out
    }

    /// Parse and fully validate wire framing. Rejects bad magic, unknown
    /// versions, length/byte-count disagreement, and checksum mismatch.
    pub fn decode(bytes: &[u8]) -> Result<NfSnapshot, SnapshotError> {
        const HEADER: usize = 4 + 2 + 1 + 4;
        if bytes.len() < HEADER + 16 {
            return Err(SnapshotError::Truncated {
                need: HEADER + 16,
                have: bytes.len(),
            });
        }
        let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic(magic));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let kind = kind_from_index(bytes[6])?;
        let len = u32::from_le_bytes([bytes[7], bytes[8], bytes[9], bytes[10]]) as usize;
        let need = HEADER + len + 16;
        if bytes.len() < need {
            return Err(SnapshotError::Truncated {
                need,
                have: bytes.len(),
            });
        }
        if bytes.len() > need {
            return Err(SnapshotError::Invalid("trailing bytes after digest"));
        }
        let snap = NfSnapshot {
            kind,
            version,
            payload: bytes[HEADER..HEADER + len].to_vec(),
        };
        let mut found = [0u8; 16];
        found.copy_from_slice(&bytes[need - 16..]);
        let found = u128::from_le_bytes(found);
        let expected = snap.fingerprint();
        if expected != found {
            return Err(SnapshotError::ChecksumMismatch { expected, found });
        }
        Ok(snap)
    }

    /// Guard a restore target: the snapshot must be for `kind`.
    pub fn expect_kind(&self, kind: NfKind) -> Result<(), SnapshotError> {
        if self.kind == kind {
            Ok(())
        } else {
            Err(SnapshotError::KindMismatch {
                expected: kind,
                found: self.kind,
            })
        }
    }
}

fn kind_index(kind: NfKind) -> u8 {
    NfKind::ALL
        .iter()
        .position(|k| *k == kind)
        .unwrap_or(NfKind::ALL.len()) as u8
}

fn kind_from_index(idx: u8) -> Result<NfKind, SnapshotError> {
    NfKind::ALL
        .get(idx as usize)
        .copied()
        .ok_or(SnapshotError::Invalid("unknown NF kind index"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NfSnapshot {
        let mut e = Encoder::new();
        e.u32(0xdead_beef);
        e.u64(42);
        e.f64(1.5);
        NfSnapshot::new(NfKind::Nat, e.finish())
    }

    #[test]
    fn roundtrip() {
        let snap = sample();
        let wire = snap.encode();
        let back = NfSnapshot::decode(&wire).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.fingerprint(), snap.fingerprint());
    }

    #[test]
    fn every_single_byte_flip_detected() {
        let wire = sample().encode();
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            assert!(
                NfSnapshot::decode(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_detected() {
        let wire = sample().encode();
        for n in 0..wire.len() {
            assert!(
                NfSnapshot::decode(&wire[..n]).is_err(),
                "truncation to {n} bytes went undetected"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut wire = sample().encode();
        wire.push(0);
        assert!(matches!(
            NfSnapshot::decode(&wire),
            Err(SnapshotError::Invalid(_))
        ));
    }

    #[test]
    fn kinds_are_distinguished() {
        let a = NfSnapshot::new(NfKind::Nat, vec![1, 2, 3]);
        let b = NfSnapshot::new(NfKind::Lb, vec![1, 2, 3]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert!(a.expect_kind(NfKind::Nat).is_ok());
        assert!(matches!(
            a.expect_kind(NfKind::Lb),
            Err(SnapshotError::KindMismatch { .. })
        ));
    }

    #[test]
    fn decoder_underrun_and_trailing() {
        let mut e = Encoder::new();
        e.u16(7);
        let payload = e.finish();
        let mut d = Decoder::new(&payload);
        assert_eq!(d.u16().unwrap(), 7);
        assert!(matches!(d.u32(), Err(SnapshotError::Truncated { .. })));
        let mut d = Decoder::new(&payload);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.done().is_err());
    }
}
