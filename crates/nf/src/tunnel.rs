//! Tunnel / Detunnel NFs: push and pop an 802.1Q VLAN tag (Table 3).

use crate::{NetworkFunction, NfCtx, NfKind, NfParams, Verdict};
use lemur_packet::builder::{vlan_pop, vlan_push};
use lemur_packet::PacketBuf;

/// Pushes a VLAN tag with a configured VID.
pub struct Tunnel {
    vid: u16,
}

impl Tunnel {
    /// Create with an explicit VID.
    pub fn new(vid: u16) -> Tunnel {
        assert!(vid < 4096);
        Tunnel { vid }
    }

    /// Build from spec parameters: `vid` (default 1).
    pub fn from_params(params: &NfParams) -> Tunnel {
        Tunnel::new((params.int_or("vid", 1) as u16) & 0x0fff)
    }
}

impl NetworkFunction for Tunnel {
    fn kind(&self) -> NfKind {
        NfKind::Tunnel
    }

    fn process(&mut self, _ctx: &NfCtx, pkt: &mut PacketBuf) -> Verdict {
        vlan_push(pkt, self.vid);
        Verdict::Forward
    }

    fn clone_fresh(&self) -> Box<dyn NetworkFunction> {
        Box::new(Tunnel { vid: self.vid })
    }
}

/// Pops the outer VLAN tag; untagged packets pass through unchanged.
pub struct Detunnel;

impl Detunnel {
    /// Create a detunneler.
    pub fn new() -> Detunnel {
        Detunnel
    }
}

impl Default for Detunnel {
    fn default() -> Self {
        Detunnel::new()
    }
}

impl NetworkFunction for Detunnel {
    fn kind(&self) -> NfKind {
        NfKind::Detunnel
    }

    fn process(&mut self, _ctx: &NfCtx, pkt: &mut PacketBuf) -> Verdict {
        let _ = vlan_pop(pkt);
        Verdict::Forward
    }

    fn clone_fresh(&self) -> Box<dyn NetworkFunction> {
        Box::new(Detunnel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_packet::builder::{udp_packet, vlan_peek};
    use lemur_packet::{ethernet, ipv4};

    fn pkt() -> PacketBuf {
        udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(10, 0, 0, 1),
            ipv4::Address::new(10, 0, 0, 2),
            10,
            20,
            b"abc",
        )
    }

    #[test]
    fn tunnel_then_detunnel_restores_frame() {
        let ctx = NfCtx::default();
        let mut p = pkt();
        let original = p.as_slice().to_vec();
        let mut tun = Tunnel::new(0x123);
        assert_eq!(tun.process(&ctx, &mut p), Verdict::Forward);
        assert_eq!(vlan_peek(p.as_slice()), Some(0x123));
        let mut det = Detunnel::new();
        assert_eq!(det.process(&ctx, &mut p), Verdict::Forward);
        assert_eq!(p.as_slice(), &original[..]);
    }

    #[test]
    fn detunnel_untagged_is_noop() {
        let ctx = NfCtx::default();
        let mut p = pkt();
        let original = p.as_slice().to_vec();
        let mut det = Detunnel::new();
        assert_eq!(det.process(&ctx, &mut p), Verdict::Forward);
        assert_eq!(p.as_slice(), &original[..]);
    }

    #[test]
    fn from_params_vid() {
        let mut params = NfParams::new();
        params.set("vid", crate::ParamValue::Int(77));
        let ctx = NfCtx::default();
        let mut tun = Tunnel::from_params(&params);
        let mut p = pkt();
        tun.process(&ctx, &mut p);
        assert_eq!(vlan_peek(p.as_slice()), Some(77));
    }

    #[test]
    fn stateless() {
        assert!(!Tunnel::new(1).is_stateful());
        assert!(!Detunnel::new().is_stateful());
    }
}
