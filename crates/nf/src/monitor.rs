//! Monitor NF: per-flow statistics (Table 3).

use crate::flowmap::{tuple_hash, FlowMap};
use crate::snapshot::{Decoder, Encoder};
use crate::{
    AggregateObservables, AggregateOutcome, AggregateUpdate, NetworkFunction, NfCtx, NfKind,
    NfSnapshot, SnapshotError, Verdict,
};
use lemur_packet::flow::FiveTuple;
use lemur_packet::{ipv4, PacketBuf};

/// Statistics kept per flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    pub packets: u64,
    pub bytes: u64,
    pub first_seen_ns: u64,
    pub last_seen_ns: u64,
}

/// Per-flow statistics collector. Unclassifiable packets are counted in an
/// "other" bucket and forwarded — monitoring must never drop traffic.
pub struct Monitor {
    /// Flow → stats. Hash-table iteration order is arbitrary; snapshots
    /// and fingerprints sort entries so they stay canonical.
    flows: FlowMap<FlowStats>,
    other_packets: u64,
    other_bytes: u64,
    /// Analytic-tail mass from [`NetworkFunction::apply_aggregate`]:
    /// per-epoch observability, deliberately outside the snapshot wire
    /// format (migration carries exact state only).
    tail_packets: u64,
    tail_bytes: u64,
    tail_flows: u64,
}

impl Monitor {
    /// An empty monitor.
    pub fn new() -> Monitor {
        Monitor {
            flows: FlowMap::new(),
            other_packets: 0,
            other_bytes: 0,
            tail_packets: 0,
            tail_bytes: 0,
            tail_flows: 0,
        }
    }

    /// Number of distinct flows observed.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Stats for one flow.
    pub fn stats(&self, flow: &FiveTuple) -> Option<&FlowStats> {
        self.flows.get(flow)
    }

    /// Total packets seen (classified + other).
    pub fn total_packets(&self) -> u64 {
        self.flows.iter().map(|(_, s)| s.packets).sum::<u64>() + self.other_packets
    }

    /// Total bytes seen (classified + other).
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|(_, s)| s.bytes).sum::<u64>() + self.other_bytes
    }

    /// Drop flow records idle since before `cutoff_ns` (periodic GC).
    pub fn expire_idle(&mut self, cutoff_ns: u64) -> usize {
        let before = self.flows.len();
        self.flows.retain(|_, s| s.last_seen_ns >= cutoff_ns);
        before - self.flows.len()
    }

    /// Account one packet against an already-parsed 5-tuple (`None` goes to
    /// the "other" bucket). Shared by [`NetworkFunction::process`] and the
    /// fused parse-once path.
    pub(crate) fn record(&mut self, now_ns: u64, len: u64, tuple: Option<&FiveTuple>) {
        match tuple {
            Some(tuple) => self.record_hashed(now_ns, len, tuple, tuple_hash(tuple)),
            None => {
                self.other_packets += 1;
                self.other_bytes += len;
            }
        }
    }

    /// [`Monitor::record`] with a precomputed [`tuple_hash`] — the fused
    /// dataplane hashes each packet's tuple once and reuses it here.
    pub(crate) fn record_hashed(&mut self, now_ns: u64, len: u64, tuple: &FiveTuple, hash: u64) {
        let s = self
            .flows
            .get_mut_or_insert_with_hashed(hash, tuple, || FlowStats {
                first_seen_ns: now_ns,
                ..FlowStats::default()
            });
        s.packets += 1;
        s.bytes += len;
        s.last_seen_ns = now_ns;
    }
}

impl Default for Monitor {
    fn default() -> Self {
        Monitor::new()
    }
}

impl NetworkFunction for Monitor {
    fn kind(&self) -> NfKind {
        NfKind::Monitor
    }

    fn process(&mut self, ctx: &NfCtx, pkt: &mut PacketBuf) -> Verdict {
        let len = pkt.len() as u64;
        self.record(
            ctx.now_ns,
            len,
            FiveTuple::parse(pkt.as_slice()).ok().as_ref(),
        );
        Verdict::Forward
    }

    /// Monitoring state shards per flow, so the NF is replicable; merged
    /// counters are an aggregation concern, not a correctness one.
    fn is_stateful(&self) -> bool {
        false
    }

    fn clone_fresh(&self) -> Box<dyn NetworkFunction> {
        Box::new(Monitor::new())
    }

    fn snapshot_state(&self) -> Option<NfSnapshot> {
        let mut e = Encoder::new();
        e.u64(self.other_packets);
        e.u64(self.other_bytes);
        e.u32(self.flows.len() as u32);
        for (t, s) in self.flows.sorted_entries() {
            e.u32(t.src_ip.to_u32());
            e.u32(t.dst_ip.to_u32());
            e.u16(t.src_port);
            e.u16(t.dst_port);
            e.u8(t.protocol);
            e.u64(s.packets);
            e.u64(s.bytes);
            e.u64(s.first_seen_ns);
            e.u64(s.last_seen_ns);
        }
        Some(NfSnapshot::new(NfKind::Monitor, e.finish()))
    }

    fn restore_state(&mut self, snapshot: &NfSnapshot) -> Result<(), SnapshotError> {
        snapshot.expect_kind(NfKind::Monitor)?;
        let mut d = Decoder::new(&snapshot.payload);
        let other_packets = d.u64()?;
        let other_bytes = d.u64()?;
        let n = d.u32()? as usize;
        let mut staged: FlowMap<FlowStats> = FlowMap::new();
        for _ in 0..n {
            let t = FiveTuple {
                src_ip: ipv4::Address::from_u32(d.u32()?),
                dst_ip: ipv4::Address::from_u32(d.u32()?),
                src_port: d.u16()?,
                dst_port: d.u16()?,
                protocol: d.u8()?,
            };
            let s = FlowStats {
                packets: d.u64()?,
                bytes: d.u64()?,
                first_seen_ns: d.u64()?,
                last_seen_ns: d.u64()?,
            };
            if s.last_seen_ns < s.first_seen_ns {
                return Err(SnapshotError::Invalid("Monitor flow seen before it began"));
            }
            if staged.get(&t).is_some() {
                return Err(SnapshotError::Invalid("duplicate Monitor flow"));
            }
            *staged.get_mut_or_insert_with(&t, FlowStats::default) = s;
        }
        d.done()?;
        self.other_packets = other_packets;
        self.other_bytes = other_bytes;
        self.flows = staged;
        Ok(())
    }

    /// The tail crossed this monitor: count it — monitoring never drops,
    /// so the whole update passes through.
    fn apply_aggregate(&mut self, update: &AggregateUpdate) -> AggregateOutcome {
        self.tail_packets += update.packets;
        self.tail_bytes += update.bytes;
        self.tail_flows += update.new_flows;
        AggregateOutcome::pass(update)
    }

    fn observables(&self) -> AggregateObservables {
        AggregateObservables {
            packets: self.total_packets() + self.tail_packets,
            bytes: self.total_bytes() + self.tail_bytes,
            flows: self.num_flows() as u64 + self.tail_flows,
            scalar: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_packet::builder::udp_packet;
    use lemur_packet::{ethernet, ipv4};

    fn pkt(port: u16, len: usize) -> PacketBuf {
        udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(10, 0, 0, 1),
            ipv4::Address::new(10, 0, 0, 2),
            port,
            80,
            &vec![0u8; len],
        )
    }

    #[test]
    fn counts_per_flow() {
        let mut m = Monitor::new();
        for i in 0..5u64 {
            let ctx = NfCtx { now_ns: i * 1000 };
            assert_eq!(m.process(&ctx, &mut pkt(100, 10)), Verdict::Forward);
        }
        let ctx = NfCtx { now_ns: 99_999 };
        m.process(&ctx, &mut pkt(200, 10));
        assert_eq!(m.num_flows(), 2);
        let t = FiveTuple::parse(pkt(100, 10).as_slice()).unwrap();
        let s = m.stats(&t).unwrap();
        assert_eq!(s.packets, 5);
        assert_eq!(s.first_seen_ns, 0);
        assert_eq!(s.last_seen_ns, 4000);
        assert_eq!(m.total_packets(), 6);
    }

    #[test]
    fn byte_accounting() {
        let mut m = Monitor::new();
        let ctx = NfCtx::default();
        let mut p = pkt(1, 100);
        let expect = p.len() as u64;
        m.process(&ctx, &mut p);
        assert_eq!(m.total_bytes(), expect);
    }

    #[test]
    fn unparseable_counted_and_forwarded() {
        let mut m = Monitor::new();
        let ctx = NfCtx::default();
        let mut garbage = PacketBuf::from_bytes(&[1u8; 30]);
        assert_eq!(m.process(&ctx, &mut garbage), Verdict::Forward);
        assert_eq!(m.num_flows(), 0);
        assert_eq!(m.total_packets(), 1);
    }

    #[test]
    fn aggregate_adds_tail_mass_outside_snapshot() {
        let mut m = Monitor::new();
        m.process(&NfCtx::default(), &mut pkt(1, 10));
        let before = m.snapshot_state().unwrap();
        let out = m.apply_aggregate(&AggregateUpdate {
            packets: 1000,
            bytes: 64_000,
            new_flows: 50,
            window_start_ns: 0,
            window_end_ns: 1_000_000,
        });
        assert_eq!(out.packets, 1000);
        let obs = m.observables();
        assert_eq!(obs.packets, 1001);
        assert_eq!(obs.flows, 51);
        // Tail mass never leaks into the migration wire format.
        assert_eq!(m.snapshot_state().unwrap().payload, before.payload);
    }

    #[test]
    fn idle_expiry() {
        let mut m = Monitor::new();
        m.process(&NfCtx { now_ns: 0 }, &mut pkt(1, 1));
        m.process(&NfCtx { now_ns: 5_000 }, &mut pkt(2, 1));
        assert_eq!(m.expire_idle(1_000), 1);
        assert_eq!(m.num_flows(), 1);
    }
}
