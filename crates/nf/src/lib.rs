//! # lemur-nf
//!
//! The software network-function library: Rust implementations of every NF
//! in the paper's Table 3, processing real packet bytes.
//!
//! Each NF implements [`NetworkFunction`]: a stateful object that processes
//! one packet at a time and returns a [`Verdict`]. Branching NFs (the BPF
//! `Match`) return `Verdict::Gate(n)` to select an output edge, mirroring
//! BESS output gates.
//!
//! | NF | Spec (Table 3) | Module |
//! |----|----------------|--------|
//! | Encrypt / Decrypt | 128-bit AES-CBC | [`encrypt`] |
//! | Fast Encrypt | ChaCha | [`encrypt`] |
//! | Dedup | Network redundancy elimination | [`dedup`] |
//! | Tunnel / Detunnel | push/pop VLAN tag | [`tunnel`] |
//! | IPv4Fwd | LPM forwarding | [`fwd`] |
//! | Limiter | token bucket | [`limiter`] |
//! | UrlFilter | HTML/URL keyword filter | [`urlfilter`] |
//! | Monitor | per-flow statistics | [`monitor`] |
//! | NAT | carrier-grade NAT | [`nat`] |
//! | LB | L4 load balancer | [`lb`] |
//! | Match | flexible BPF-style match | [`matchnf`] |
//! | ACL | src/dst field ACL | [`acl`] |

pub mod acl;
pub mod aggregate;
pub mod crypto;
pub mod dedup;
pub mod encrypt;
pub mod flowmap;
pub mod fused;
pub mod fwd;
pub mod lb;
pub mod limiter;
pub mod matchnf;
pub mod monitor;
pub mod nat;
pub mod params;
pub mod snapshot;
pub mod tunnel;
pub mod urlfilter;

pub use aggregate::{AggregateObservables, AggregateOutcome, AggregateUpdate};
pub use params::{NfParams, ParamValue};
pub use snapshot::{NfSnapshot, SnapshotError, StateDigest, SNAPSHOT_VERSION};

use lemur_packet::PacketBuf;
use std::fmt;
use std::str::FromStr;

/// The outcome of processing one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Pass the packet to the next NF (output gate 0).
    Forward,
    /// Drop the packet.
    Drop,
    /// Emit the packet on a specific output gate (branching NFs only).
    Gate(usize),
}

/// Per-packet processing context supplied by the execution engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct NfCtx {
    /// Virtual time in nanoseconds (drives the Limiter's token refill and
    /// the Monitor/NAT idle timeouts).
    pub now_ns: u64,
}

/// A software network function.
///
/// NFs are deliberately synchronous and single-threaded: BESS replicates an
/// NF by instantiating it once per core, which is exactly what the
/// [`NetworkFunction::clone_fresh`] constructor supports.
pub trait NetworkFunction: Send {
    /// The NF kind (links the instance back to profiles and capabilities).
    fn kind(&self) -> NfKind;

    /// Process one packet, possibly mutating it.
    fn process(&mut self, ctx: &NfCtx, pkt: &mut PacketBuf) -> Verdict;

    /// True if the NF keeps cross-packet state that prevents naive
    /// replication (paper §3.2 "we do not replicate stateful NFs").
    fn is_stateful(&self) -> bool {
        false
    }

    /// Create a fresh instance with the same configuration but empty state
    /// (used when a subgroup is replicated across cores).
    fn clone_fresh(&self) -> Box<dyn NetworkFunction>;

    /// Export the NF's migratable cross-packet state as a versioned,
    /// checksummed snapshot. `None` (the default) means the kind keeps no
    /// state worth carrying across an epoch swap.
    fn snapshot_state(&self) -> Option<NfSnapshot> {
        None
    }

    /// Atomically replace this instance's state with a snapshot taken from
    /// another instance of the same kind. The snapshot is fully validated
    /// before any field is applied: on `Err` the instance is unchanged.
    fn restore_state(&mut self, snapshot: &NfSnapshot) -> Result<(), SnapshotError> {
        Err(SnapshotError::NoState(snapshot.kind))
    }

    /// FNV-1a/128 fingerprint of the current migratable state (0 when the
    /// NF exports none). Two instances with equal fingerprints are
    /// observationally identical on any future packet trace.
    fn state_fingerprint(&self) -> u128 {
        self.snapshot_state().map(|s| s.fingerprint()).unwrap_or(0)
    }

    /// Apply one SLO window's analytic tail traffic as a batched state
    /// update (hybrid flow/packet engine). The default passes the whole
    /// update through untouched — correct for every NF whose verdict
    /// never depends on cross-packet state. Stateful NFs override this to
    /// evolve their state (token drain, binding mass, affinity pins) and
    /// may admit fewer packets; the engine charges the difference to its
    /// drop ledger. Aggregate mass lives *outside* the snapshot wire
    /// format, so migration fidelity is unaffected.
    fn apply_aggregate(&mut self, update: &AggregateUpdate) -> AggregateOutcome {
        AggregateOutcome::pass(update)
    }

    /// Combined exact + aggregate state summary for cross-mode
    /// equivalence checks. The default (all zeros) means the NF tracks
    /// nothing the hybrid engine needs to compare.
    fn observables(&self) -> AggregateObservables {
        AggregateObservables::default()
    }
}

/// The 14 NF kinds of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NfKind {
    Encrypt,
    Decrypt,
    FastEncrypt,
    Dedup,
    Tunnel,
    Detunnel,
    Ipv4Fwd,
    Limiter,
    UrlFilter,
    Monitor,
    Nat,
    Lb,
    Match,
    Acl,
}

impl NfKind {
    /// Every kind, in Table 3 order.
    pub const ALL: [NfKind; 14] = [
        NfKind::Encrypt,
        NfKind::Decrypt,
        NfKind::FastEncrypt,
        NfKind::Dedup,
        NfKind::Tunnel,
        NfKind::Detunnel,
        NfKind::Ipv4Fwd,
        NfKind::Limiter,
        NfKind::UrlFilter,
        NfKind::Monitor,
        NfKind::Nat,
        NfKind::Lb,
        NfKind::Match,
        NfKind::Acl,
    ];

    /// The canonical spec-language name.
    pub fn name(&self) -> &'static str {
        match self {
            NfKind::Encrypt => "Encrypt",
            NfKind::Decrypt => "Decrypt",
            NfKind::FastEncrypt => "FastEncrypt",
            NfKind::Dedup => "Dedup",
            NfKind::Tunnel => "Tunnel",
            NfKind::Detunnel => "Detunnel",
            NfKind::Ipv4Fwd => "IPv4Fwd",
            NfKind::Limiter => "Limiter",
            NfKind::UrlFilter => "UrlFilter",
            NfKind::Monitor => "Monitor",
            NfKind::Nat => "NAT",
            NfKind::Lb => "LB",
            NfKind::Match => "BPF",
            NfKind::Acl => "ACL",
        }
    }
}

impl fmt::Display for NfKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for unknown NF names in chain specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownNf(pub String);

impl fmt::Display for UnknownNf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown NF name: {}", self.0)
    }
}

impl std::error::Error for UnknownNf {}

impl FromStr for NfKind {
    type Err = UnknownNf;

    fn from_str(s: &str) -> Result<NfKind, UnknownNf> {
        // Accept the spec names plus common aliases used in the paper text.
        Ok(match s {
            "Encrypt" | "Encryption" => NfKind::Encrypt,
            "Decrypt" | "Decryption" => NfKind::Decrypt,
            "FastEncrypt" | "FastEnc" | "ChaCha" => NfKind::FastEncrypt,
            "Dedup" => NfKind::Dedup,
            "Tunnel" => NfKind::Tunnel,
            "Detunnel" => NfKind::Detunnel,
            "IPv4Fwd" | "Ipv4Fwd" | "Forward" => NfKind::Ipv4Fwd,
            "Limiter" => NfKind::Limiter,
            "UrlFilter" | "URLFilter" => NfKind::UrlFilter,
            "Monitor" => NfKind::Monitor,
            "NAT" | "Nat" => NfKind::Nat,
            "LB" | "Lb" | "LoadBalancer" => NfKind::Lb,
            "BPF" | "Match" => NfKind::Match,
            "ACL" | "Acl" => NfKind::Acl,
            other => return Err(UnknownNf(other.to_string())),
        })
    }
}

/// Instantiate a software NF of the given kind with parameters from a chain
/// specification. Unknown parameters are ignored (forward compatibility);
/// malformed values fall back to defaults.
pub fn build_nf(kind: NfKind, params: &NfParams) -> Box<dyn NetworkFunction> {
    match kind {
        NfKind::Encrypt => Box::new(encrypt::Encrypt::from_params(params)),
        NfKind::Decrypt => Box::new(encrypt::Decrypt::from_params(params)),
        NfKind::FastEncrypt => Box::new(encrypt::FastEncrypt::from_params(params)),
        NfKind::Dedup => Box::new(dedup::Dedup::from_params(params)),
        NfKind::Tunnel => Box::new(tunnel::Tunnel::from_params(params)),
        NfKind::Detunnel => Box::new(tunnel::Detunnel::new()),
        NfKind::Ipv4Fwd => Box::new(fwd::Ipv4Fwd::from_params(params)),
        NfKind::Limiter => Box::new(limiter::Limiter::from_params(params)),
        NfKind::UrlFilter => Box::new(urlfilter::UrlFilter::from_params(params)),
        NfKind::Monitor => Box::new(monitor::Monitor::new()),
        NfKind::Nat => Box::new(nat::Nat::from_params(params)),
        NfKind::Lb => Box::new(lb::LoadBalancer::from_params(params)),
        NfKind::Match => Box::new(matchnf::Match::from_params(params)),
        NfKind::Acl => Box::new(acl::Acl::from_params(params)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for kind in NfKind::ALL {
            let parsed: NfKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
    }

    #[test]
    fn aliases_accepted() {
        assert_eq!("Encryption".parse::<NfKind>().unwrap(), NfKind::Encrypt);
        assert_eq!("ChaCha".parse::<NfKind>().unwrap(), NfKind::FastEncrypt);
        assert_eq!("Match".parse::<NfKind>().unwrap(), NfKind::Match);
    }

    #[test]
    fn unknown_rejected() {
        assert!("Quic".parse::<NfKind>().is_err());
    }

    #[test]
    fn factory_builds_all_kinds() {
        let params = NfParams::new();
        for kind in NfKind::ALL {
            let nf = build_nf(kind, &params);
            assert_eq!(nf.kind(), kind);
        }
    }

    #[test]
    fn stateful_flags_match_paper() {
        // Table 3 bolds Limiter and NAT as non-replicable; those are the
        // stateful NFs whose state cannot be partitioned by our runtime.
        let params = NfParams::new();
        assert!(build_nf(NfKind::Limiter, &params).is_stateful());
        assert!(build_nf(NfKind::Nat, &params).is_stateful());
        assert!(!build_nf(NfKind::Acl, &params).is_stateful());
        assert!(!build_nf(NfKind::Encrypt, &params).is_stateful());
        // Dedup and Monitor keep state but are replicable (per-flow sharded
        // by the demux); §5.3 replicates Dedup on two cores.
        assert!(!build_nf(NfKind::Dedup, &params).is_stateful());
    }
}
