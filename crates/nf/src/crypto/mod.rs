//! From-scratch cryptographic primitives for the crypto NFs.
//!
//! Reproduction-quality implementations validated against FIPS-197 /
//! SP 800-38A (AES-128, CBC) and RFC 8439 (ChaCha20) test vectors. Not
//! constant-time; not for production use.

pub mod aes;
pub mod chacha;

pub use aes::{cbc_decrypt, cbc_encrypt, Aes128};
pub use chacha::ChaCha20;
