//! ChaCha20 stream cipher (RFC 8439), from scratch.
//!
//! Lemur's `Fast Encrypt` NF is 128-bit ChaCha in the paper's Table 3; we
//! implement the standard ChaCha20 (256-bit key) from RFC 8439 — the NF
//! derives its 32-byte key from the configured 16-byte key by repetition,
//! which preserves the cost profile the experiments care about.
//!
//! Like the AES module, this is a reproduction artifact, not audited crypto.

/// ChaCha20 keystream generator state.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Create a cipher from a 32-byte key and a 12-byte nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> ChaCha20 {
        let mut k = [0u32; 8];
        for (w, c) in k.iter_mut().zip(key.chunks_exact(4)) {
            *w = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        }
        let mut n = [0u32; 3];
        for (w, c) in n.iter_mut().zip(nonce.chunks_exact(4)) {
            *w = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        }
        ChaCha20 { key: k, nonce: n }
    }

    /// Produce the 64-byte keystream block for a given counter.
    pub fn block(&self, counter: u32) -> [u8; 64] {
        // "expand 32-byte k" constants.
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter,
            self.nonce[0],
            self.nonce[1],
            self.nonce[2],
        ];
        let initial = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = state[i].wrapping_add(initial[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XOR `data` with the keystream starting at block `counter`
    /// (encryption and decryption are the same operation).
    pub fn apply(&self, counter: u32, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(64).enumerate() {
            let ks = self.block(counter.wrapping_add(i as u32));
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.split_whitespace().collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn rfc_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_block_test_vector() {
        // RFC 8439 §2.3.2.
        let key = rfc_key();
        let nonce: [u8; 12] = hex("000000090000004a00000000").try_into().unwrap();
        let cipher = ChaCha20::new(&key, &nonce);
        let ks = cipher.block(1);
        let expected = hex("10 f1 e7 e4 d1 3b 59 15 50 0f dd 1f a3 20 71 c4 \
             c7 d1 f4 c7 33 c0 68 03 04 22 aa 9a c3 d4 6c 4e \
             d2 82 64 46 07 9f aa 09 14 c2 d7 05 d9 8b 02 a2 \
             b5 12 9c d1 de 16 4e b9 cb d0 83 e8 a2 50 3c 4e");
        assert_eq!(ks.to_vec(), expected);
    }

    #[test]
    fn rfc8439_encryption_test_vector() {
        // RFC 8439 §2.4.2 (first 32 bytes of ciphertext asserted).
        let key = rfc_key();
        let nonce: [u8; 12] = hex("000000000000004a00000000").try_into().unwrap();
        let cipher = ChaCha20::new(&key, &nonce);
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it."
            .to_vec();
        cipher.apply(1, &mut data);
        let expected_prefix = hex("6e 2e 35 9a 25 68 f9 80 41 ba 07 28 dd 0d 69 81 \
             e9 7e 7a ec 1d 43 60 c2 0a 27 af cc fd 9f ae 0b");
        assert_eq!(&data[..32], &expected_prefix[..]);
    }

    #[test]
    fn apply_is_involutive() {
        let key = [0x42u8; 32];
        let nonce = [7u8; 12];
        let cipher = ChaCha20::new(&key, &nonce);
        let original: Vec<u8> = (0..200).map(|i| (i * 3) as u8).collect();
        let mut data = original.clone();
        cipher.apply(5, &mut data);
        assert_ne!(data, original);
        cipher.apply(5, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_counters_differ() {
        let cipher = ChaCha20::new(&[1u8; 32], &[2u8; 12]);
        assert_ne!(cipher.block(0).to_vec(), cipher.block(1).to_vec());
    }

    #[test]
    fn multiblock_matches_per_block() {
        let cipher = ChaCha20::new(&[9u8; 32], &[3u8; 12]);
        let mut big = vec![0u8; 130];
        cipher.apply(0, &mut big);
        // First 64 bytes should equal block(0), next 64 block(1), etc.
        assert_eq!(&big[..64], &cipher.block(0)[..]);
        assert_eq!(&big[64..128], &cipher.block(1)[..]);
        assert_eq!(&big[128..130], &cipher.block(2)[..2]);
    }
}
