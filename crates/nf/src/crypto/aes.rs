//! AES-128 block cipher and CBC mode, implemented from the FIPS-197 spec.
//!
//! Lemur's `Encrypt`/`Decrypt` NFs are specified as 128-bit AES-CBC
//! (Table 3). We implement the cipher from scratch rather than pulling a
//! crypto crate; the S-box and round constants are derived at first use from
//! the GF(2⁸) arithmetic definition, which keeps the tables typo-proof.
//!
//! This is a reproduction artifact, not a hardened implementation: it is not
//! constant-time and must not be used to protect real traffic.

use std::sync::OnceLock;

/// GF(2⁸) multiplication with the AES reduction polynomial x⁸+x⁴+x³+x+1.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2⁸) (0 maps to 0), by exhaustive search —
/// run once when building the S-box.
fn ginv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    for b in 1..=255u8 {
        if gmul(a, b) == 1 {
            return b;
        }
    }
    unreachable!("every nonzero element of GF(2^8) has an inverse")
}

struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
    /// GF multiplication tables for the MixColumns constants.
    mul: [[u8; 256]; 16],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Box<Tables>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        for (i, slot) in sbox.iter_mut().enumerate() {
            let x = ginv(i as u8);
            // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63.
            let s = x
                ^ x.rotate_left(1)
                ^ x.rotate_left(2)
                ^ x.rotate_left(3)
                ^ x.rotate_left(4)
                ^ 0x63;
            *slot = s;
            inv_sbox[s as usize] = i as u8;
        }
        let mut mul = [[0u8; 256]; 16];
        for c in [2usize, 3, 9, 11, 13, 14] {
            for (b, slot) in mul[c].iter_mut().enumerate() {
                *slot = gmul(c as u8, b as u8);
            }
        }
        Box::new(Tables {
            sbox,
            inv_sbox,
            mul,
        })
    })
}

#[inline]
fn m(t: &Tables, c: usize, b: u8) -> u8 {
    t.mul[c][b as usize]
}

/// Number of 32-bit words in the key (AES-128).
const NK: usize = 4;
/// Number of rounds (AES-128).
const NR: usize = 10;

/// An expanded AES-128 key.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; NR + 1],
}

impl Aes128 {
    /// Expand a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Aes128 {
        let t = tables();
        let mut w = [[0u8; 4]; 4 * (NR + 1)];
        for i in 0..NK {
            w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        let mut rcon = 1u8;
        for i in NK..4 * (NR + 1) {
            let mut temp = w[i - 1];
            if i % NK == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = t.sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gmul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - NK][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; NR + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        let t = tables();
        for b in state.iter_mut() {
            *b = t.sbox[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        let t = tables();
        for b in state.iter_mut() {
            *b = t.inv_sbox[*b as usize];
        }
    }

    /// State layout: byte `state[r + 4c]` is row r, column c (FIPS-197 §3.4).
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        let t = tables();
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = m(t, 2, col[0]) ^ m(t, 3, col[1]) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ m(t, 2, col[1]) ^ m(t, 3, col[2]) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ m(t, 2, col[2]) ^ m(t, 3, col[3]);
            state[4 * c + 3] = m(t, 3, col[0]) ^ col[1] ^ col[2] ^ m(t, 2, col[3]);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        let t = tables();
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = m(t, 14, col[0]) ^ m(t, 11, col[1]) ^ m(t, 13, col[2]) ^ m(t, 9, col[3]);
            state[4 * c + 1] =
                m(t, 9, col[0]) ^ m(t, 14, col[1]) ^ m(t, 11, col[2]) ^ m(t, 13, col[3]);
            state[4 * c + 2] =
                m(t, 13, col[0]) ^ m(t, 9, col[1]) ^ m(t, 14, col[2]) ^ m(t, 11, col[3]);
            state[4 * c + 3] =
                m(t, 11, col[0]) ^ m(t, 13, col[1]) ^ m(t, 9, col[2]) ^ m(t, 14, col[3]);
        }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for r in 1..NR {
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[r]);
        }
        Self::sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[NR]);
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[NR]);
        for r in (1..NR).rev() {
            Self::inv_shift_rows(block);
            Self::inv_sub_bytes(block);
            Self::add_round_key(block, &self.round_keys[r]);
            Self::inv_mix_columns(block);
        }
        Self::inv_shift_rows(block);
        Self::inv_sub_bytes(block);
        Self::add_round_key(block, &self.round_keys[0]);
    }
}

/// Encrypt `data` with AES-128-CBC and PKCS#7 padding, returning the
/// ciphertext (always a multiple of 16 bytes, ≥ data.len()+1).
pub fn cbc_encrypt(key: &Aes128, iv: &[u8; 16], data: &[u8]) -> Vec<u8> {
    let pad = 16 - data.len() % 16;
    let mut out = Vec::with_capacity(data.len() + pad);
    out.extend_from_slice(data);
    out.extend(std::iter::repeat_n(pad as u8, pad));
    let mut prev = *iv;
    for chunk in out.chunks_exact_mut(16) {
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        for (b, p) in block.iter_mut().zip(&prev) {
            *b ^= p;
        }
        key.encrypt_block(&mut block);
        chunk.copy_from_slice(&block);
        prev = block;
    }
    out
}

/// Decrypt AES-128-CBC ciphertext with PKCS#7 padding. Returns `None` on a
/// malformed length or padding.
pub fn cbc_decrypt(key: &Aes128, iv: &[u8; 16], data: &[u8]) -> Option<Vec<u8>> {
    if data.is_empty() || !data.len().is_multiple_of(16) {
        return None;
    }
    let mut out = data.to_vec();
    let mut prev = *iv;
    for chunk in out.chunks_exact_mut(16) {
        let Ok(cipher) = <[u8; 16]>::try_from(&*chunk) else {
            return None;
        };
        let mut block = cipher;
        key.decrypt_block(&mut block);
        for (b, p) in block.iter_mut().zip(&prev) {
            *b ^= p;
        }
        chunk.copy_from_slice(&block);
        prev = cipher;
    }
    let pad = *out.last()? as usize;
    if pad == 0 || pad > 16 || pad > out.len() {
        return None;
    }
    if !out[out.len() - pad..].iter().all(|&b| b == pad as u8) {
        return None;
    }
    out.truncate(out.len() - pad);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_known_entries() {
        let t = tables();
        // Spot checks from FIPS-197 Figure 7.
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7c);
        assert_eq!(t.sbox[0x53], 0xed);
        assert_eq!(t.sbox[0xff], 0x16);
        // Inverse is a true inverse.
        for i in 0..256 {
            assert_eq!(t.inv_sbox[t.sbox[i] as usize] as usize, i);
        }
    }

    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let mut block: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn nist_sp800_38a_cbc_first_block() {
        // SP 800-38A F.2.1 CBC-AES128.Encrypt, first block.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let iv: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let pt = hex("6bc1bee22e409f96e93d7e117393172a");
        let aes = Aes128::new(&key);
        let ct = cbc_encrypt(&aes, &iv, &pt);
        assert_eq!(&ct[..16], &hex("7649abac8119b246cee98e9b12e9197d")[..]);
        // One block of plaintext + full-block PKCS#7 pad = 2 blocks total.
        assert_eq!(ct.len(), 32);
    }

    #[test]
    fn cbc_roundtrip_various_lengths() {
        let key = Aes128::new(b"0123456789abcdef");
        let iv = [7u8; 16];
        for len in [0usize, 1, 15, 16, 17, 100, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let ct = cbc_encrypt(&key, &iv, &data);
            assert_eq!(ct.len() % 16, 0);
            assert!(ct.len() > data.len());
            let pt = cbc_decrypt(&key, &iv, &ct).unwrap();
            assert_eq!(pt, data);
        }
    }

    #[test]
    fn cbc_decrypt_rejects_garbage() {
        let key = Aes128::new(b"0123456789abcdef");
        let iv = [0u8; 16];
        assert!(cbc_decrypt(&key, &iv, &[]).is_none());
        assert!(cbc_decrypt(&key, &iv, &[0u8; 15]).is_none());
        // Random block: overwhelmingly likely to fail padding check.
        let bogus = [0x5au8; 16];
        assert!(cbc_decrypt(&key, &iv, &bogus).is_none());
    }

    #[test]
    fn gf_arithmetic() {
        // FIPS-197 §4.2: {57} · {83} = {c1}.
        assert_eq!(gmul(0x57, 0x83), 0xc1);
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(ginv(0x01), 0x01);
        assert_eq!(gmul(0x53, ginv(0x53)), 0x01);
    }
}
