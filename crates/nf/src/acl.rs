//! ACL NF: allow/deny on source/destination fields (Table 3).

use crate::{NetworkFunction, NfCtx, NfKind, NfParams, ParamValue, Verdict};
use lemur_packet::flow::{FiveTuple, PortRange};
use lemur_packet::ipv4::Cidr;
use lemur_packet::PacketBuf;

/// One ACL rule: a 5-tuple pattern plus an action.
#[derive(Debug, Clone)]
pub struct AclRule {
    pub src: Option<Cidr>,
    pub dst: Option<Cidr>,
    pub src_ports: PortRange,
    pub dst_ports: PortRange,
    pub protocol: Option<u8>,
    /// True = drop matching packets; false = allow.
    pub drop: bool,
}

impl AclRule {
    /// A rule matching everything.
    pub fn any(drop: bool) -> AclRule {
        AclRule {
            src: None,
            dst: None,
            src_ports: PortRange::ANY,
            dst_ports: PortRange::ANY,
            protocol: None,
            drop,
        }
    }

    fn matches(&self, t: &FiveTuple) -> bool {
        if let Some(c) = &self.src {
            if !c.contains(t.src_ip) {
                return false;
            }
        }
        if let Some(c) = &self.dst {
            if !c.contains(t.dst_ip) {
                return false;
            }
        }
        if !self.src_ports.contains(t.src_port) || !self.dst_ports.contains(t.dst_port) {
            return false;
        }
        if let Some(p) = self.protocol {
            if p != t.protocol {
                return false;
            }
        }
        true
    }
}

/// Access control list NF. First matching rule wins; packets matching no
/// rule are dropped (default-deny), matching the paper's example where an
/// `ACL(rules=[{'dst_ip':'10.0.0.0/8','drop': False}])` passes only
/// 10.0.0.0/8 traffic.
pub struct Acl {
    rules: Vec<AclRule>,
    /// Verdict when no rule matches.
    default_drop: bool,
}

impl Acl {
    /// Build from explicit rules.
    pub fn new(rules: Vec<AclRule>, default_drop: bool) -> Acl {
        Acl {
            rules,
            default_drop,
        }
    }

    /// Number of installed rules (drives the linear cycle-cost model).
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// The verdict for an already-parsed 5-tuple (`None` = unclassifiable
    /// traffic, which the ACL drops). Shared by [`NetworkFunction::process`]
    /// and the fused dataplane's parse-once path, so the two agree by
    /// construction.
    pub(crate) fn verdict_for(&self, tuple: Option<&FiveTuple>) -> Verdict {
        let Some(tuple) = tuple else {
            return Verdict::Drop;
        };
        for rule in &self.rules {
            if rule.matches(tuple) {
                return if rule.drop {
                    Verdict::Drop
                } else {
                    Verdict::Forward
                };
            }
        }
        if self.default_drop {
            Verdict::Drop
        } else {
            Verdict::Forward
        }
    }

    /// Build from spec parameters. Recognized forms:
    /// `rules=[{'src_ip': CIDR, 'dst_ip': CIDR, 'proto': int, 'drop': bool}]`,
    /// plus `num_rules=N` to synthesize a table of N distinct allow rules
    /// (used by profiling experiments, e.g. "ACL (1024 rules)" in Table 4).
    pub fn from_params(params: &NfParams) -> Acl {
        let mut rules = Vec::new();
        if let Some(list) = params.get("rules").and_then(ParamValue::as_list) {
            for item in list {
                let Some(d) = item.as_dict() else { continue };
                let parse_cidr = |key: &str| {
                    d.get(key)
                        .and_then(ParamValue::as_str)
                        .and_then(|s| s.parse::<Cidr>().ok())
                };
                rules.push(AclRule {
                    src: parse_cidr("src_ip"),
                    dst: parse_cidr("dst_ip"),
                    src_ports: PortRange::ANY,
                    dst_ports: d
                        .get("dst_port")
                        .and_then(ParamValue::as_int)
                        .map(|p| PortRange::single(p as u16))
                        .unwrap_or(PortRange::ANY),
                    protocol: d.get("proto").and_then(ParamValue::as_int).map(|p| p as u8),
                    drop: d.get("drop").and_then(ParamValue::as_bool).unwrap_or(false),
                });
            }
        }
        if let Some(n) = params.get("num_rules").and_then(ParamValue::as_int) {
            rules.extend(synthetic_rules(n as usize));
        }
        if rules.is_empty() {
            // A bare `ACL` allows everything, so chains remain functional
            // when the operator provides rules out of band.
            rules.push(AclRule::any(false));
        }
        Acl {
            rules,
            default_drop: true,
        }
    }
}

/// Synthesize `n` distinct allow rules over 10.0.0.0/8 sub-prefixes, for
/// profiling tables of a controlled size.
pub fn synthetic_rules(n: usize) -> Vec<AclRule> {
    (0..n)
        .map(|i| {
            let b = ((i >> 8) & 0xff) as u8;
            let c = (i & 0xff) as u8;
            AclRule {
                src: None,
                dst: Some(Cidr::new(lemur_packet::ipv4::Address::new(10, b, c, 0), 24).unwrap()),
                src_ports: PortRange::ANY,
                dst_ports: PortRange::ANY,
                protocol: None,
                drop: false,
            }
        })
        .collect()
}

impl NetworkFunction for Acl {
    fn kind(&self) -> NfKind {
        NfKind::Acl
    }

    fn process(&mut self, _ctx: &NfCtx, pkt: &mut PacketBuf) -> Verdict {
        self.verdict_for(FiveTuple::parse(pkt.as_slice()).ok().as_ref())
    }

    fn clone_fresh(&self) -> Box<dyn NetworkFunction> {
        Box::new(Acl {
            rules: self.rules.clone(),
            default_drop: self.default_drop,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_packet::builder::udp_packet;
    use lemur_packet::{ethernet, ipv4};

    fn pkt(dst: ipv4::Address) -> PacketBuf {
        udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(198, 51, 100, 1),
            dst,
            1000,
            80,
            b"x",
        )
    }

    #[test]
    fn paper_example_rule() {
        // ACL(rules=[{'dst_ip':'10.0.0.0/8','drop': False}]) drops packets
        // other than those destined to 10.0.0.0/8.
        let mut params = NfParams::new();
        let mut d = std::collections::BTreeMap::new();
        d.insert("dst_ip".to_string(), ParamValue::Str("10.0.0.0/8".into()));
        d.insert("drop".to_string(), ParamValue::Bool(false));
        params.set("rules", ParamValue::List(vec![ParamValue::Dict(d)]));
        let mut acl = Acl::from_params(&params);
        let ctx = NfCtx::default();
        let mut inside = pkt(ipv4::Address::new(10, 1, 2, 3));
        let mut outside = pkt(ipv4::Address::new(192, 0, 2, 1));
        assert_eq!(acl.process(&ctx, &mut inside), Verdict::Forward);
        assert_eq!(acl.process(&ctx, &mut outside), Verdict::Drop);
    }

    #[test]
    fn first_match_wins() {
        let rules = vec![
            AclRule {
                dst: Some("10.0.0.0/8".parse().unwrap()),
                ..AclRule::any(true)
            },
            AclRule::any(false),
        ];
        let mut acl = Acl::new(rules, true);
        let ctx = NfCtx::default();
        assert_eq!(
            acl.process(&ctx, &mut pkt(ipv4::Address::new(10, 0, 0, 1))),
            Verdict::Drop
        );
        assert_eq!(
            acl.process(&ctx, &mut pkt(ipv4::Address::new(11, 0, 0, 1))),
            Verdict::Forward
        );
    }

    #[test]
    fn default_deny() {
        let mut acl = Acl::new(vec![], true);
        let ctx = NfCtx::default();
        assert_eq!(
            acl.process(&ctx, &mut pkt(ipv4::Address::new(1, 1, 1, 1))),
            Verdict::Drop
        );
    }

    #[test]
    fn bare_acl_allows() {
        let mut acl = Acl::from_params(&NfParams::new());
        let ctx = NfCtx::default();
        assert_eq!(
            acl.process(&ctx, &mut pkt(ipv4::Address::new(1, 1, 1, 1))),
            Verdict::Forward
        );
    }

    #[test]
    fn synthetic_table_size() {
        let mut params = NfParams::new();
        params.set("num_rules", ParamValue::Int(1024));
        let acl = Acl::from_params(&params);
        assert_eq!(acl.num_rules(), 1024);
    }

    #[test]
    fn garbage_packet_dropped() {
        let mut acl = Acl::new(vec![AclRule::any(false)], false);
        let ctx = NfCtx::default();
        let mut garbage = PacketBuf::from_bytes(&[0u8; 10]);
        assert_eq!(acl.process(&ctx, &mut garbage), Verdict::Drop);
    }

    #[test]
    fn clone_fresh_preserves_config() {
        let acl = Acl::new(synthetic_rules(5), true);
        let clone = acl.clone_fresh();
        assert_eq!(clone.kind(), NfKind::Acl);
    }
}
