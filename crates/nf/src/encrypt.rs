//! Crypto NFs: `Encrypt`/`Decrypt` (AES-128-CBC) and `FastEncrypt` (ChaCha).
//!
//! All three operate on the L4 payload, leaving Ethernet/IP/L4 headers
//! parseable so downstream NFs can still classify the traffic. Length
//! changes (CBC padding, the prepended IV) are propagated into the IP
//! total-length and UDP length fields, and checksums are recomputed.

use crate::crypto::{cbc_decrypt, cbc_encrypt, Aes128, ChaCha20};
use crate::{NetworkFunction, NfCtx, NfKind, NfParams, Verdict};
use lemur_packet::ethernet::{self, EtherType};
use lemur_packet::ipv4::Protocol;
use lemur_packet::{ipv4, tcp, udp, vlan, PacketBuf};

/// Byte offsets describing where the L3/L4 layers sit in a frame.
struct Layout {
    /// Offset of the IPv4 header within the frame.
    l3: usize,
    /// Offset of the L4 header.
    l4: usize,
    /// Offset of the L4 payload.
    payload: usize,
    protocol: Protocol,
}

fn layout(frame: &[u8]) -> Option<Layout> {
    let eth = ethernet::Frame::new_checked(frame).ok()?;
    let l3 = match eth.ethertype() {
        EtherType::Ipv4 => ethernet::HEADER_LEN,
        EtherType::Vlan => {
            let tag = vlan::Tag::new_checked(eth.payload()).ok()?;
            if tag.inner_ethertype() != EtherType::Ipv4 {
                return None;
            }
            ethernet::HEADER_LEN + vlan::TAG_LEN
        }
        _ => return None,
    };
    let ip = ipv4::Packet::new_checked(&frame[l3..]).ok()?;
    let l4 = l3 + ip.header_len() as usize;
    let payload = match ip.protocol() {
        Protocol::Udp => l4 + udp::HEADER_LEN,
        Protocol::Tcp => {
            let t = tcp::Packet::new_checked(&frame[l4..]).ok()?;
            l4 + t.header_len() as usize
        }
        _ => return None,
    };
    if payload > frame.len() {
        return None;
    }
    Some(Layout {
        l3,
        l4,
        payload,
        protocol: ip.protocol(),
    })
}

/// Replace the L4 payload with `new_payload`, fixing lengths and checksums.
fn replace_payload(pkt: &mut PacketBuf, lay: &Layout, new_payload: &[u8]) {
    pkt.truncate(lay.payload);
    pkt.extend_tail(new_payload);
    fix_lengths_and_checksums(pkt, lay);
}

/// Recompute IP total length, UDP length, and L3/L4 checksums after the
/// payload was modified in place or replaced.
fn fix_lengths_and_checksums(pkt: &mut PacketBuf, lay: &Layout) {
    let frame_len = pkt.len();
    let ip_total = (frame_len - lay.l3) as u16;
    let l4_len = (frame_len - lay.l4) as u16;
    let (l3, l4, protocol) = (lay.l3, lay.l4, lay.protocol);
    let data = pkt.as_mut_slice();
    let (src, dst) = {
        let ip = ipv4::Packet::new_unchecked(&data[l3..]);
        (ip.src(), ip.dst())
    };
    {
        let mut ip = ipv4::Packet::new_unchecked(&mut data[l3..]);
        ip.set_total_len(ip_total);
        ip.fill_checksum();
    }
    match protocol {
        Protocol::Udp => {
            let mut u = udp::Packet::new_unchecked(&mut data[l4..]);
            u.set_length(l4_len);
            u.fill_checksum(src, dst);
        }
        Protocol::Tcp => {
            let mut t = tcp::Packet::new_unchecked(&mut data[l4..]);
            t.fill_checksum(src, dst);
        }
        _ => {}
    }
}

/// Derive a deterministic per-packet IV from header bytes and a counter.
/// Real deployments would use random IVs; determinism keeps experiments
/// reproducible.
fn derive_iv(frame: &[u8], counter: u64) -> [u8; 16] {
    let mut iv = [0u8; 16];
    for (i, b) in frame.iter().take(8).enumerate() {
        iv[i] = *b;
    }
    iv[8..16].copy_from_slice(&counter.to_be_bytes());
    iv
}

/// AES-128-CBC payload encryption. The output payload is
/// `IV (16 B) || ciphertext`, so the matching [`Decrypt`] NF is self-
/// contained.
pub struct Encrypt {
    key: Aes128,
    key_bytes: [u8; 16],
    counter: u64,
}

impl Encrypt {
    /// Create with an explicit 16-byte key.
    pub fn new(key: [u8; 16]) -> Encrypt {
        Encrypt {
            key: Aes128::new(&key),
            key_bytes: key,
            counter: 0,
        }
    }

    /// Build from spec parameters: `key` as a 32-hex-digit string.
    pub fn from_params(params: &NfParams) -> Encrypt {
        Encrypt::new(key_from_params(params))
    }
}

fn key_from_params(params: &NfParams) -> [u8; 16] {
    let hex = params.str_or("key", "000102030405060708090a0b0c0d0e0f");
    let mut key = [0u8; 16];
    if hex.len() == 32 {
        for (i, b) in key.iter_mut().enumerate() {
            if let Ok(v) = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16) {
                *b = v;
            }
        }
    }
    key
}

impl NetworkFunction for Encrypt {
    fn kind(&self) -> NfKind {
        NfKind::Encrypt
    }

    fn process(&mut self, _ctx: &NfCtx, pkt: &mut PacketBuf) -> Verdict {
        let Some(lay) = layout(pkt.as_slice()) else {
            return Verdict::Drop;
        };
        let iv = derive_iv(pkt.as_slice(), self.counter);
        self.counter = self.counter.wrapping_add(1);
        let plain = pkt.as_slice()[lay.payload..].to_vec();
        let cipher = cbc_encrypt(&self.key, &iv, &plain);
        let mut new_payload = Vec::with_capacity(16 + cipher.len());
        new_payload.extend_from_slice(&iv);
        new_payload.extend_from_slice(&cipher);
        replace_payload(pkt, &lay, &new_payload);
        Verdict::Forward
    }

    fn clone_fresh(&self) -> Box<dyn NetworkFunction> {
        Box::new(Encrypt::new(self.key_bytes))
    }
}

/// AES-128-CBC payload decryption, inverse of [`Encrypt`]. Packets whose
/// payload does not decrypt (bad length or padding) are dropped.
pub struct Decrypt {
    key: Aes128,
    key_bytes: [u8; 16],
}

impl Decrypt {
    /// Create with an explicit 16-byte key.
    pub fn new(key: [u8; 16]) -> Decrypt {
        Decrypt {
            key: Aes128::new(&key),
            key_bytes: key,
        }
    }

    /// Build from spec parameters (same `key` format as [`Encrypt`]).
    pub fn from_params(params: &NfParams) -> Decrypt {
        Decrypt::new(key_from_params(params))
    }
}

impl NetworkFunction for Decrypt {
    fn kind(&self) -> NfKind {
        NfKind::Decrypt
    }

    fn process(&mut self, _ctx: &NfCtx, pkt: &mut PacketBuf) -> Verdict {
        let Some(lay) = layout(pkt.as_slice()) else {
            return Verdict::Drop;
        };
        let payload = &pkt.as_slice()[lay.payload..];
        if payload.len() < 16 {
            return Verdict::Drop;
        }
        let Ok(iv) = <[u8; 16]>::try_from(&payload[..16]) else {
            return Verdict::Drop;
        };
        let Some(plain) = cbc_decrypt(&self.key, &iv, &payload[16..]) else {
            return Verdict::Drop;
        };
        replace_payload(pkt, &lay, &plain);
        Verdict::Forward
    }

    fn clone_fresh(&self) -> Box<dyn NetworkFunction> {
        Box::new(Decrypt::new(self.key_bytes))
    }
}

/// ChaCha payload encryption (Table 3 "Fast Enc."): a length-preserving
/// keystream XOR. Applying the NF twice restores the plaintext.
pub struct FastEncrypt {
    key: [u8; 32],
}

impl FastEncrypt {
    /// Create from a 16-byte key (expanded by repetition, see module docs).
    pub fn new(key16: [u8; 16]) -> FastEncrypt {
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&key16);
        key[16..].copy_from_slice(&key16);
        FastEncrypt { key }
    }

    /// Build from spec parameters (same `key` format as [`Encrypt`]).
    pub fn from_params(params: &NfParams) -> FastEncrypt {
        FastEncrypt::new(key_from_params(params))
    }

    /// Derive the per-packet nonce from IP identification + addresses so
    /// both directions of the NF agree without shared state.
    fn nonce_for(frame: &[u8], lay: &Layout) -> [u8; 12] {
        let ip = ipv4::Packet::new_unchecked(&frame[lay.l3..]);
        let mut nonce = [0u8; 12];
        nonce[..4].copy_from_slice(&ip.src().0);
        nonce[4..8].copy_from_slice(&ip.dst().0);
        nonce[8..10].copy_from_slice(&ip.ident().to_be_bytes());
        nonce
    }
}

impl NetworkFunction for FastEncrypt {
    fn kind(&self) -> NfKind {
        NfKind::FastEncrypt
    }

    fn process(&mut self, _ctx: &NfCtx, pkt: &mut PacketBuf) -> Verdict {
        let Some(lay) = layout(pkt.as_slice()) else {
            return Verdict::Drop;
        };
        let nonce = Self::nonce_for(pkt.as_slice(), &lay);
        let cipher = ChaCha20::new(&self.key, &nonce);
        let start = lay.payload;
        cipher.apply(1, &mut pkt.as_mut_slice()[start..]);
        fix_lengths_and_checksums(pkt, &lay);
        Verdict::Forward
    }

    fn clone_fresh(&self) -> Box<dyn NetworkFunction> {
        Box::new(FastEncrypt { key: self.key })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_packet::builder::udp_packet;
    use lemur_packet::flow::FiveTuple;

    fn pkt(payload: &[u8]) -> PacketBuf {
        udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(10, 0, 0, 1),
            ipv4::Address::new(10, 0, 0, 2),
            5555,
            8080,
            payload,
        )
    }

    fn payload_of(p: &PacketBuf) -> Vec<u8> {
        let lay = layout(p.as_slice()).unwrap();
        p.as_slice()[lay.payload..].to_vec()
    }

    fn valid_at_all_layers(p: &PacketBuf) -> bool {
        let eth = ethernet::Frame::new_checked(p.as_slice()).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        if !ip.verify_checksum() {
            return false;
        }
        let u = udp::Packet::new_checked(ip.payload()).unwrap();
        u.verify_checksum(ip.src(), ip.dst())
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = *b"lemur-secret-key";
        let mut enc = Encrypt::new(key);
        let mut dec = Decrypt::new(key);
        let ctx = NfCtx::default();
        let mut p = pkt(b"confidential payload bytes");
        assert_eq!(enc.process(&ctx, &mut p), Verdict::Forward);
        assert_ne!(payload_of(&p), b"confidential payload bytes".to_vec());
        assert!(
            valid_at_all_layers(&p),
            "encrypted packet must stay well-formed"
        );
        assert_eq!(dec.process(&ctx, &mut p), Verdict::Forward);
        assert_eq!(payload_of(&p), b"confidential payload bytes".to_vec());
        assert!(valid_at_all_layers(&p));
    }

    #[test]
    fn encrypt_grows_packet_by_iv_and_padding() {
        let mut enc = Encrypt::new([0u8; 16]);
        let ctx = NfCtx::default();
        let mut p = pkt(b"0123456789"); // 10 bytes → 16-byte block + 16 IV
        let before = p.len();
        enc.process(&ctx, &mut p);
        assert_eq!(p.len(), before - 10 + 16 + 16);
    }

    #[test]
    fn decrypt_wrong_key_drops() {
        let mut enc = Encrypt::new([1u8; 16]);
        let mut dec = Decrypt::new([2u8; 16]);
        let ctx = NfCtx::default();
        let mut p = pkt(b"some payload that is long enough to matter!");
        enc.process(&ctx, &mut p);
        // Overwhelmingly likely to fail the padding check.
        assert_eq!(dec.process(&ctx, &mut p), Verdict::Drop);
    }

    #[test]
    fn decrypt_short_payload_drops() {
        let mut dec = Decrypt::new([0u8; 16]);
        let ctx = NfCtx::default();
        let mut p = pkt(b"short");
        assert_eq!(dec.process(&ctx, &mut p), Verdict::Drop);
    }

    #[test]
    fn fast_encrypt_is_involutive_and_length_preserving() {
        let mut fe = FastEncrypt::new(*b"fast-lemur-key!!");
        let ctx = NfCtx::default();
        let mut p = pkt(b"stream cipher payload");
        let before_len = p.len();
        let before_payload = payload_of(&p);
        fe.process(&ctx, &mut p);
        assert_eq!(p.len(), before_len);
        assert_ne!(payload_of(&p), before_payload);
        assert!(valid_at_all_layers(&p));
        fe.process(&ctx, &mut p);
        assert_eq!(payload_of(&p), before_payload);
    }

    #[test]
    fn headers_survive_encryption() {
        let mut enc = Encrypt::new([3u8; 16]);
        let ctx = NfCtx::default();
        let mut p = pkt(b"payload");
        let before = FiveTuple::parse(p.as_slice()).unwrap();
        enc.process(&ctx, &mut p);
        let after = FiveTuple::parse(p.as_slice()).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn non_ip_dropped() {
        let mut enc = Encrypt::new([0u8; 16]);
        let ctx = NfCtx::default();
        let mut garbage = PacketBuf::from_bytes(&[0u8; 40]);
        assert_eq!(enc.process(&ctx, &mut garbage), Verdict::Drop);
    }

    #[test]
    fn encrypt_through_vlan() {
        let key = [9u8; 16];
        let mut enc = Encrypt::new(key);
        let mut dec = Decrypt::new(key);
        let ctx = NfCtx::default();
        let mut p = pkt(b"tagged payload");
        lemur_packet::builder::vlan_push(&mut p, 42);
        assert_eq!(enc.process(&ctx, &mut p), Verdict::Forward);
        assert_eq!(dec.process(&ctx, &mut p), Verdict::Forward);
        assert_eq!(payload_of(&p), b"tagged payload".to_vec());
        assert_eq!(lemur_packet::builder::vlan_peek(p.as_slice()), Some(42));
    }
}
