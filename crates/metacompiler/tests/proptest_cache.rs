//! Cache-equivalence property: the memoized stage oracle must be
//! observationally identical to a fresh compile.
//!
//! For random chain sets and random (possibly nonsensical) placements,
//! [`CachedCompilerOracle`] must return exactly the verdict a fresh
//! [`CompilerOracle`] computes — on the first probe (miss populates the
//! cache) and on the second (served from the cache). This is the
//! correctness contract that lets the placer's search, the δ-sweeps, and
//! the repair pass share one cache without ever changing a placement
//! decision.

use lemur_core::chains::{canonical_chain, CanonicalChain};
use lemur_core::graph::ChainSpec;
use lemur_core::Slo;
use lemur_metacompiler::{CachedCompilerOracle, CompilerOracle};
use lemur_placer::oracle::StageOracle;
use lemur_placer::placement::{Assignment, PlacementProblem};
use lemur_placer::profiles::{NfProfiles, Platform};
use lemur_placer::topology::Topology;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Build a problem over the selected canonical chains (indices into
/// [`CanonicalChain::ALL`]) on the standard testbed rack.
fn build_problem(chain_picks: &[usize]) -> PlacementProblem {
    let chains: Vec<ChainSpec> = chain_picks
        .iter()
        .enumerate()
        .map(|(i, &pick)| ChainSpec {
            name: format!("chain{i}"),
            graph: canonical_chain(CanonicalChain::ALL[pick % CanonicalChain::ALL.len()]),
            slo: None,
            aggregate: None,
        })
        .collect();
    let mut p = PlacementProblem::new(chains, Topology::testbed(), NfProfiles::table4());
    for i in 0..p.chains.len() {
        let base = p.base_rate_bps(i);
        p.chains[i].slo = Some(Slo::elastic_pipe(0.5 * base, 100e9));
    }
    p
}

/// Derive a platform per node from the seed stream: switch or server.
/// Deliberately capability-blind — an assignment the oracle rejects must
/// be rejected identically by the cached and fresh paths.
fn build_assignment(p: &PlacementProblem, seeds: &[u8]) -> Assignment {
    let n_servers = p.topology.servers.len();
    let mut next = 0usize;
    p.chains
        .iter()
        .map(|c| {
            c.graph
                .nodes()
                .map(|(id, _)| {
                    let s = seeds[next % seeds.len()] as usize;
                    next += 1;
                    let plat = if s.is_multiple_of(3) {
                        Platform::Pisa
                    } else {
                        Platform::Server(s % n_servers)
                    };
                    (id, plat)
                })
                .collect::<BTreeMap<_, _>>()
        })
        .collect()
}

proptest! {
    #![cases = 24]

    #[test]
    fn cached_verdicts_equal_fresh_compile(
        chain_picks in prop::collection::vec(0usize..5, 1..3),
        seeds in prop::collection::vec(0u8..=255, 8..64),
    ) {
        let p = build_problem(&chain_picks);
        let a = build_assignment(&p, &seeds);

        let fresh = CompilerOracle::new();
        let cached = CachedCompilerOracle::new();
        let want = fresh.check(&p, &a);
        let miss = cached.check(&p, &a);
        let hit = cached.check(&p, &a);
        prop_assert_eq!(&miss, &want, "first (miss) probe diverged from fresh compile");
        prop_assert_eq!(&hit, &want, "second (hit) probe diverged from fresh compile");
        // Two probes of one assignment: either synthesis failed (cache
        // never touched) or the first missed and the second hit.
        let s = cached.cache().stats();
        prop_assert_eq!(s.hits, s.misses);
        prop_assert!(s.entries <= 1);

        // Same equivalence for naive (unoptimized) code generation.
        let want_naive = CompilerOracle::naive().check(&p, &a);
        let cached_naive = CachedCompilerOracle::naive();
        prop_assert_eq!(cached_naive.check(&p, &a), want_naive.clone());
        prop_assert_eq!(cached_naive.check(&p, &a), want_naive);
    }
}
