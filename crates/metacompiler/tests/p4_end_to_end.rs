//! End-to-end tests of the P4 synthesis pipeline: generate, compile for
//! the PISA model, install entries, and push packets through the switch
//! runtime, checking the NSH coordination at every hop.

use lemur_core::chains::{canonical_chain, extreme_nat_chain, CanonicalChain};
use lemur_core::graph::ChainSpec;
use lemur_core::Slo;
use lemur_metacompiler::p4gen::{self, server_port, P4GenOptions, OUT_PORT};
use lemur_metacompiler::routing;
use lemur_metacompiler::CompilerOracle;
use lemur_p4sim::{PisaModel, Switch};
use lemur_packet::builder::{nsh_encap, nsh_peek, udp_packet};
use lemur_packet::{ethernet, ipv4, PacketBuf};
use lemur_placer::corealloc::CoreStrategy;
use lemur_placer::oracle::{StageOracle, StageVerdict};
use lemur_placer::placement::PlacementProblem;
use lemur_placer::profiles::NfProfiles;
use lemur_placer::topology::Topology;

fn problem(which: &[CanonicalChain], delta: f64) -> PlacementProblem {
    let chains = which
        .iter()
        .map(|w| ChainSpec {
            name: format!("chain{}", w.index()),
            graph: canonical_chain(*w),
            slo: None,
            aggregate: None,
        })
        .collect::<Vec<_>>();
    let mut p = PlacementProblem::new(chains, Topology::testbed(), NfProfiles::table4());
    for i in 0..p.chains.len() {
        let base = p.base_rate_bps(i);
        p.chains[i].slo = Some(Slo::elastic_pipe(delta * base, 100e9));
    }
    p
}

fn fresh_packet() -> PacketBuf {
    udp_packet(
        ethernet::Address([2, 0, 0, 0, 0, 1]),
        ethernet::Address([2, 0, 0, 0, 0, 2]),
        ipv4::Address::new(203, 0, 113, 7),
        ipv4::Address::new(10, 1, 2, 3),
        40_000,
        80,
        b"end-to-end payload",
    )
}

/// Synthesize for an HW-preferred placement and return a loaded switch.
fn loaded_switch(p: &PlacementProblem) -> (Switch, routing::RoutingPlan) {
    let a = lemur_placer::baselines::hw_preferred_assignment(p);
    let _e = p.evaluate(&a, CoreStrategy::WaterFill).unwrap();
    let plan = routing::plan(p, &a);
    let synth = p4gen::synthesize(p, &a, &plan, P4GenOptions::default()).unwrap();
    let mut sw = Switch::new(synth.program.clone(), PisaModel::default()).unwrap();
    synth.install(&mut sw);
    (sw, plan)
}

#[test]
fn chain3_walks_all_hops() {
    let p = problem(&[CanonicalChain::Chain3], 0.5);
    let (mut sw, plan) = loaded_switch(&p);
    assert_eq!(plan.paths.len(), 1);
    // Chain 3 HW-preferred: Dedup(S) ACL(P4) Limiter(S) LB(P4) Fwd(P4).
    // Segments: Tor(empty) / Server / Tor[acl] / Server / Tor[lb,fwd].
    let mut pkt = fresh_packet();

    // Hop 1: fresh ingress → NSH pushed, sent to server for Dedup.
    let v = sw.process(&mut pkt);
    assert_eq!(v.egress_port, Some(server_port(0)), "fresh → server");
    assert!(!v.dropped);
    let (spi, si) = nsh_peek(pkt.as_slice()).expect("NSH pushed at ingress");
    assert_eq!(spi, 1);
    assert_eq!(si, routing::INITIAL_SI - 1, "SI decremented for segment 1");

    // Server (Dedup) would decrement SI on the way back; emulate the mux.
    lemur_packet::builder::nsh_set_si(&mut pkt, routing::INITIAL_SI - 2);

    // Hop 2: switch runs ACL, forwards to server for Limiter.
    let v = sw.process(&mut pkt);
    assert_eq!(v.egress_port, Some(server_port(0)), "ACL visit → server");
    let (_, si) = nsh_peek(pkt.as_slice()).unwrap();
    assert_eq!(si, routing::INITIAL_SI - 3);

    // Server (Limiter) mux.
    lemur_packet::builder::nsh_set_si(&mut pkt, routing::INITIAL_SI - 4);

    // Hop 3: LB + Fwd on switch, then egress with NSH stripped.
    let v = sw.process(&mut pkt);
    assert_eq!(v.egress_port, Some(OUT_PORT), "final visit → egress");
    assert_eq!(nsh_peek(pkt.as_slice()), None, "NSH popped at egress");
    // LB rewrote the destination to a backend.
    let t = lemur_packet::flow::FiveTuple::parse(pkt.as_slice()).unwrap();
    assert_eq!(t.dst_ip.0[..3], [192, 168, 100]);
}

#[test]
fn chain2_branches_on_switch() {
    // HW-preferred chain 2: Encrypt on server; LB, split, NATs, Fwd on the
    // switch — one switch visit containing a 3-way branch and a merge.
    let p = problem(&[CanonicalChain::Chain2], 0.5);
    let (mut sw, plan) = loaded_switch(&p);
    assert_eq!(plan.paths.len(), 3);

    let mut pkt = fresh_packet();
    // Fresh ingress: straight to the server for Encrypt (empty ToR seg).
    let v = sw.process(&mut pkt);
    assert_eq!(v.egress_port, Some(server_port(0)));
    let (spi, si) = nsh_peek(pkt.as_slice()).unwrap();
    assert_eq!(spi, 1, "canonical SPI before any decision");

    // Emulate the server mux after Encrypt.
    lemur_packet::builder::nsh_set_si(&mut pkt, si - 1);

    // Switch visit: LB → split → NAT_i → Fwd → egress.
    let v = sw.process(&mut pkt);
    assert_eq!(v.egress_port, Some(OUT_PORT));
    assert!(!v.dropped);
    assert_eq!(nsh_peek(pkt.as_slice()), None);
    // NAT rewrote the source to the carrier address.
    let t = lemur_packet::flow::FiveTuple::parse(pkt.as_slice()).unwrap();
    assert_eq!(t.src_ip, ipv4::Address::new(198, 18, 0, 1));
}

#[test]
fn chain2_split_covers_all_gates() {
    let p = problem(&[CanonicalChain::Chain2], 0.5);
    let (mut sw, _) = loaded_switch(&p);
    // Many flows; every one must egress (no gate may dead-end).
    for port in 1000..1100u16 {
        let mut pkt = udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(203, 0, 113, 7),
            ipv4::Address::new(10, 1, 2, 3),
            port,
            80,
            b"x",
        );
        let v1 = sw.process(&mut pkt);
        assert_eq!(v1.egress_port, Some(server_port(0)));
        let (_, si) = nsh_peek(pkt.as_slice()).unwrap();
        lemur_packet::builder::nsh_set_si(&mut pkt, si - 1);
        let v2 = sw.process(&mut pkt);
        assert_eq!(v2.egress_port, Some(OUT_PORT), "flow {port} dead-ended");
    }
}

#[test]
fn multi_chain_program_fits_and_separates_traffic() {
    let mut p = problem(
        &[
            CanonicalChain::Chain2,
            CanonicalChain::Chain3,
            CanonicalChain::Chain5,
        ],
        0.5,
    );
    // Distinct aggregates so classification separates the chains.
    let prefixes = ["10.0.0.0/8", "20.0.0.0/8", "30.0.0.0/8"];
    for (i, pre) in prefixes.iter().enumerate() {
        p.chains[i].aggregate = Some(lemur_packet::TrafficAggregate {
            src: Some(pre.parse().unwrap()),
            ..lemur_packet::TrafficAggregate::any()
        });
    }
    let a = lemur_placer::baselines::hw_preferred_assignment(&p);
    let plan = routing::plan(&p, &a);
    let synth = p4gen::synthesize(&p, &a, &plan, P4GenOptions::default()).unwrap();
    let mut sw = Switch::new(synth.program.clone(), PisaModel::default()).unwrap();
    synth.install(&mut sw);
    assert!(sw.assignment().num_stages_used <= 12);

    // A chain-2 customer packet enters chain 2's path (SPI 1..=3).
    let mut pkt = udp_packet(
        ethernet::Address([2, 0, 0, 0, 0, 1]),
        ethernet::Address([2, 0, 0, 0, 0, 2]),
        ipv4::Address::new(10, 5, 5, 5),
        ipv4::Address::new(99, 1, 2, 3),
        1234,
        80,
        b"x",
    );
    sw.process(&mut pkt);
    let (spi, _) = nsh_peek(pkt.as_slice()).unwrap();
    assert!((1..=3).contains(&spi), "chain 2 SPI range, got {spi}");

    // A chain-3 customer packet gets chain 3's entry SPI (4).
    let mut pkt3 = udp_packet(
        ethernet::Address([2, 0, 0, 0, 0, 1]),
        ethernet::Address([2, 0, 0, 0, 0, 2]),
        ipv4::Address::new(20, 5, 5, 5),
        ipv4::Address::new(99, 1, 2, 3),
        1234,
        80,
        b"x",
    );
    sw.process(&mut pkt3);
    let (spi3, _) = nsh_peek(pkt3.as_slice()).unwrap();
    assert_eq!(spi3, 4, "chain 3 entry SPI");
}

#[test]
fn extreme_nat_ten_fits_eleven_does_not() {
    // §5.2: BPF → N×NAT (branched) → IPv4Fwd. With the optimized
    // generator, 10 NATs fit the 12-stage pipeline; 11 exceed it.
    let build = |n: usize| -> StageVerdict {
        let mut p = PlacementProblem::new(
            vec![ChainSpec {
                name: "extreme".into(),
                graph: extreme_nat_chain(n),
                slo: Some(Slo::bulk()),
                aggregate: None,
            }],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        p.chains[0].slo = Some(Slo::elastic_pipe(0.0, 100e9));
        let a = lemur_placer::baselines::hw_preferred_assignment(&p);
        CompilerOracle::new().check(&p, &a)
    };
    match build(10) {
        StageVerdict::Fits { stages } => {
            assert!(stages <= 12, "10 NATs must fit, used {stages}");
            assert!(
                stages >= 8,
                "10 NATs should nearly fill the pipeline: {stages}"
            );
        }
        other => panic!("10 NATs must fit: {other:?}"),
    }
    match build(11) {
        StageVerdict::OutOfStages {
            required,
            available,
        } => {
            assert_eq!(available, 12);
            assert!(required > 12);
        }
        other => panic!("11 NATs must overflow: {other:?}"),
    }
}

#[test]
fn naive_codegen_needs_many_more_stages() {
    // Without the dependency-elimination optimizations the 10-NAT
    // placement blows up ("would have required 27 stages").
    let mut p = PlacementProblem::new(
        vec![ChainSpec {
            name: "extreme".into(),
            graph: extreme_nat_chain(10),
            slo: Some(Slo::elastic_pipe(0.0, 100e9)),
            aggregate: None,
        }],
        Topology::testbed(),
        NfProfiles::table4(),
    );
    p.chains[0].slo = Some(Slo::elastic_pipe(0.0, 100e9));
    let a = lemur_placer::baselines::hw_preferred_assignment(&p);
    let optimized = match CompilerOracle::new().check(&p, &a) {
        StageVerdict::Fits { stages } => stages,
        other => panic!("optimized must fit: {other:?}"),
    };
    let naive = match CompilerOracle::naive().check(&p, &a) {
        StageVerdict::Fits { stages } => stages,
        StageVerdict::OutOfStages { required, .. } => required,
    };
    // Paper: 27 naive vs 12 optimized; our generator lands at 23 vs 12 —
    // the same "roughly double and far past the pipeline" shape.
    assert!(
        naive >= optimized + 8,
        "naive {naive} stages should dwarf optimized {optimized}"
    );
    assert!(naive > 12, "naive generation must overflow the pipeline");
}

#[test]
fn acl_rules_enforced_on_switch() {
    // Chain with a drop-rule ACL placed on the switch.
    let spec = lemur_core::spec::parse_spec(
        "c = ACL(rules=[{'dst_ip': '10.0.0.0/8', 'drop': False}]) -> NAT -> IPv4Fwd\n\
         slo(c, t_min='0')\n",
    )
    .unwrap();
    let p = PlacementProblem::new(spec.chains, Topology::testbed(), NfProfiles::table4());
    let a = lemur_placer::baselines::hw_preferred_assignment(&p);
    let plan = routing::plan(&p, &a);
    let synth = p4gen::synthesize(&p, &a, &plan, P4GenOptions::default()).unwrap();
    let mut sw = Switch::new(synth.program.clone(), PisaModel::default()).unwrap();
    synth.install(&mut sw);
    // Allowed destination passes and egresses.
    let mut ok = udp_packet(
        ethernet::Address([2, 0, 0, 0, 0, 1]),
        ethernet::Address([2, 0, 0, 0, 0, 2]),
        ipv4::Address::new(203, 0, 113, 1),
        ipv4::Address::new(10, 9, 9, 9),
        1,
        2,
        b"x",
    );
    let v = sw.process(&mut ok);
    assert!(!v.dropped);
    assert_eq!(v.egress_port, Some(OUT_PORT));
    // Disallowed destination is dropped by the generated ACL.
    let mut bad = udp_packet(
        ethernet::Address([2, 0, 0, 0, 0, 1]),
        ethernet::Address([2, 0, 0, 0, 0, 2]),
        ipv4::Address::new(203, 0, 113, 1),
        ipv4::Address::new(99, 9, 9, 9),
        1,
        2,
        b"x",
    );
    assert!(sw.process(&mut bad).dropped);
}

#[test]
fn loc_accounting_reports_steering_majority() {
    let p = problem(
        &[
            CanonicalChain::Chain1,
            CanonicalChain::Chain2,
            CanonicalChain::Chain3,
            CanonicalChain::Chain4,
        ],
        0.5,
    );
    let a = lemur_placer::baselines::hw_preferred_assignment(&p);
    let e = p.evaluate(&a, CoreStrategy::WaterFill).unwrap();
    let dep = lemur_metacompiler::compile(&p, &e).unwrap();
    let stats = dep.stats;
    assert!(
        stats.p4_generated > 300,
        "substantial P4: {}",
        stats.p4_generated
    );
    assert!(stats.p4_steering > 0 && stats.p4_steering < stats.p4_generated);
    // The paper: ~1/3 of total code auto-generated, most of it steering.
    let frac = stats.generated_fraction();
    assert!(
        (0.2..0.9).contains(&frac),
        "auto-generated fraction {frac} out of expected band"
    );
}

#[test]
fn returning_packet_with_unknown_spi_has_no_entry() {
    let p = problem(&[CanonicalChain::Chain3], 0.5);
    let (mut sw, _) = loaded_switch(&p);
    let mut pkt = fresh_packet();
    nsh_encap(&mut pkt, 77, 200); // bogus path
    let v = sw.process(&mut pkt);
    // No steer entry → no reached flag → falls through with no egress.
    assert_eq!(v.egress_port, None);
}
