//! OpenFlow rule generation (§5.3 "Placement on an OpenFlow switch").
//!
//! OpenFlow switches do not support NSH, so the 12-bit VLAN VID carries the
//! service position instead (6-bit SPI, 6-bit SI via
//! [`lemur_packet::vlan::VidServiceEncoding`]) — "this somewhat limits how
//! many chains and how many NFs can be configured".

use crate::routing::{Location, RoutingPlan};
use lemur_nf::{NfKind, ParamValue};
use lemur_openflow::{OfAction, OfMatch, OfRule, OfSwitch, OfTableType};
use lemur_packet::vlan::VidServiceEncoding;
use lemur_placer::placement::{Assignment, PlacementProblem};
use lemur_placer::profiles::Platform;

/// Error for service positions that overflow the VID encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VidOverflow {
    pub spi: u32,
    pub si: u8,
}

impl std::fmt::Display for VidOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "service position (spi={}, si={}) does not fit the 12-bit VID",
            self.spi, self.si
        )
    }
}

impl std::error::Error for VidOverflow {}

/// Map a wire (SPI, SI) onto the VID encoding: SIs count down from
/// `INITIAL_SI`, so they are re-based into 6 bits.
pub fn vid_for(spi: u32, si: u8) -> Result<u16, VidOverflow> {
    let rebased = crate::routing::INITIAL_SI.saturating_sub(si);
    if spi >= 64 || rebased >= 64 {
        return Err(VidOverflow { spi, si });
    }
    VidServiceEncoding {
        spi: spi as u8,
        si: rebased,
    }
    .encode()
    .map_err(|_| VidOverflow { spi, si })
}

/// Generated OpenFlow configuration.
pub struct OfConfig {
    pub rules: Vec<(OfTableType, OfRule)>,
    /// Human-readable rule dump (for LoC accounting).
    pub text: String,
}

impl OfConfig {
    /// Install all rules into a switch.
    pub fn install(&self, sw: &mut OfSwitch) {
        for (table, rule) in &self.rules {
            sw.add_rule(*table, rule.clone());
        }
    }
}

/// Generate OpenFlow rules for the OF-resident NFs of a placement.
pub fn generate(
    problem: &PlacementProblem,
    assignment: &Assignment,
    routing: &RoutingPlan,
) -> Result<OfConfig, VidOverflow> {
    let mut rules: Vec<(OfTableType, OfRule)> = Vec::new();

    for (ci, chain) in problem.chains.iter().enumerate() {
        for (id, node) in chain.graph.nodes() {
            if assignment[ci].get(&id) != Some(&Platform::OpenFlow) {
                continue;
            }
            // Which (spi, si) positions reach this node on the ToR.
            let mut positions = Vec::new();
            for path in routing.chain_paths(ci) {
                for (k, seg) in path.segments.iter().enumerate() {
                    if seg.location == Location::Tor && seg.nodes.contains(&id) {
                        let spi = routing.canonical_spi(problem, path, k);
                        if !positions.contains(&(spi, seg.si)) {
                            positions.push((spi, seg.si));
                        }
                    }
                }
            }
            for (spi, si) in positions {
                let vid = vid_for(spi, si)?;
                let m = OfMatch {
                    vlan_vid: Some(vid),
                    ..OfMatch::any()
                };
                match node.kind {
                    NfKind::Acl => {
                        // Deny rules from params; matching traffic drops.
                        if let Some(list) = node.params.get("rules").and_then(ParamValue::as_list) {
                            for item in list {
                                let Some(d) = item.as_dict() else { continue };
                                if d.get("drop").and_then(ParamValue::as_bool) == Some(true) {
                                    let dst = d
                                        .get("dst_ip")
                                        .and_then(ParamValue::as_str)
                                        .and_then(|s| s.parse().ok());
                                    rules.push((
                                        OfTableType::Acl,
                                        OfRule::with_priority(
                                            OfMatch {
                                                vlan_vid: Some(vid),
                                                ipv4_dst: dst,
                                                ..OfMatch::any()
                                            },
                                            20,
                                            vec![OfAction::Drop],
                                        ),
                                    ));
                                }
                            }
                        }
                        // Permit-by-default for this position (continue).
                    }
                    NfKind::Detunnel => {
                        rules.push((
                            OfTableType::VlanPop,
                            OfRule::with_priority(m.clone(), 10, vec![OfAction::PopVlan]),
                        ));
                    }
                    NfKind::Tunnel => {
                        let inner_vid = (node.params.int_or("vid", 1) as u16) & 0xfff;
                        rules.push((
                            OfTableType::VlanPush,
                            OfRule::with_priority(
                                m.clone(),
                                10,
                                vec![OfAction::PushVlan(inner_vid)],
                            ),
                        ));
                    }
                    NfKind::Monitor => {
                        // Statistics come from table counters; install a
                        // counting match that continues the pipeline.
                        rules.push((
                            OfTableType::Monitor,
                            OfRule::with_priority(m.clone(), 10, vec![]),
                        ));
                    }
                    NfKind::Ipv4Fwd => {
                        rules.push((
                            OfTableType::Forward,
                            OfRule::with_priority(
                                m.clone(),
                                10,
                                vec![OfAction::Output(crate::p4gen::OUT_PORT)],
                            ),
                        ));
                    }
                    _ => {}
                }
            }
        }

        // Steering: for every ToR segment followed by a server segment,
        // rewrite the VID to the next SI and output toward the server.
        for path in routing.chain_paths(ci) {
            for (k, seg) in path.segments.iter().enumerate() {
                if seg.location != Location::Tor {
                    continue;
                }
                let Some(next) = path.segments.get(k + 1) else {
                    continue;
                };
                let Location::Server(s) = next.location else {
                    continue;
                };
                let spi = routing.canonical_spi(problem, path, k);
                let vid_now = vid_for(spi, seg.si)?;
                let vid_next = vid_for(spi, next.si)?;
                rules.push((
                    OfTableType::VlanPush,
                    OfRule::with_priority(
                        OfMatch {
                            vlan_vid: Some(vid_now),
                            ..OfMatch::any()
                        },
                        5,
                        vec![OfAction::SetVlanVid(vid_next)],
                    ),
                ));
                rules.push((
                    OfTableType::Forward,
                    OfRule::with_priority(
                        OfMatch {
                            vlan_vid: Some(vid_next),
                            ..OfMatch::any()
                        },
                        5,
                        vec![OfAction::Output(crate::p4gen::server_port(s))],
                    ),
                ));
            }
        }
    }

    let mut text = String::from("# Auto-generated OpenFlow rules (Lemur meta-compiler)\n");
    for (table, rule) in &rules {
        text.push_str(&format!(
            "{table:?}: priority={} {:?} -> {:?}\n",
            rule.priority, rule.m, rule.actions
        ));
    }
    Ok(OfConfig { rules, text })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vid_mapping_rebases_si() {
        let v = vid_for(3, crate::routing::INITIAL_SI).unwrap();
        let dec = VidServiceEncoding::decode(v);
        assert_eq!(dec.spi, 3);
        assert_eq!(dec.si, 0);
        let v2 = vid_for(3, crate::routing::INITIAL_SI - 5).unwrap();
        assert_eq!(VidServiceEncoding::decode(v2).si, 5);
    }

    #[test]
    fn vid_overflow_detected() {
        assert!(vid_for(64, crate::routing::INITIAL_SI).is_err());
        assert!(vid_for(1, crate::routing::INITIAL_SI - 64).is_err());
    }
}
