//! Chain fusion: compile a placed server-side segment into one sweep.
//!
//! The reference runtime ([`lemur_bess::subgroup::Subgroup`]) walks each
//! packet through `Box<dyn NetworkFunction>` hops — an indirect call per
//! NF per packet, a fresh header parse inside every classifying NF, and
//! per-packet counter updates. [`FusedSegment`] is what the meta-compiler
//! emits instead when fusion is enabled: the same NF list enumerated into
//! the static-dispatch [`FusedNf`] enum, processed NF-major over a whole
//! [`Batch`] with scratch-backed state (per-slot [`FlowCache`], gate/drop
//! marks) that is reused across batches, so the steady state performs no
//! allocation, no vtable dispatch, at most one header parse per packet,
//! and two counter updates per *batch* rather than two per packet.
//!
//! ## Semantic equivalence with the reference path
//!
//! The NF-major sweep is observationally identical to the packet-major
//! reference loop: every NF sees exactly the packets that survived the
//! NFs before it, in the same relative order, under the same `NfCtx`, so
//! each NF's state trajectory and every per-packet verdict match
//! bit-for-bit. (Packets in one batch share a context; the engine's
//! per-packet timing path uses [`FusedSegment::process_packet`], which is
//! the same code at batch size 1.) Mid-segment `Gate(g != 0)` verdicts
//! drop the packet exactly as the reference runtime does; a terminal
//! `Gate` selects the exit gate. `crates/dataplane/tests/fused_equivalence.rs`
//! enforces all of this differentially.
//!
//! Fusion boundaries fall exactly where subgroup boundaries fall: at
//! platform crossings (ToR P4, SmartNIC eBPF, OpenFlow) and at branch
//! points, both of which bounce through NSH re-encapsulation. A fused
//! segment therefore never spans a platform crossing — it *is* the
//! maximal server-side run between crossings, which is also why the
//! engine can swap either runtime per subgroup without touching routing.

use lemur_bess::subgroup::{Subgroup, SubgroupOutput};
use lemur_nf::flowmap::FlowMap;
use lemur_nf::fused::{FlowCache, FusedNf};
use lemur_nf::{
    AggregateObservables, AggregateOutcome, AggregateUpdate, NfCtx, NfKind, NfSnapshot,
    SnapshotError, Verdict,
};
use lemur_packet::Batch;

/// Which runtime the meta-compiler emits for server subgroups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeMode {
    /// Per-NF trait objects (`Subgroup`) — the reference semantics.
    #[default]
    Reference,
    /// Fused static-dispatch segments (`FusedSegment`).
    Fused,
}

/// Sentinel gate meaning "dropped" during a sweep.
const DROPPED: usize = usize::MAX;

/// Classifier-memo capacity bound: when the per-flow table reaches this
/// many entries it is cleared wholesale (the next packets repopulate it).
/// A blunt policy, but correct for pure functions — re-running the
/// classifiers reproduces the evicted outcomes exactly.
const MEMO_CAP: usize = 65_536;

/// The folded verdict of a run of tuple-pure classifiers for one flow —
/// the fused dataplane's megaflow-style cache line. Because every NF in
/// the memoized run is a pure function of the 5-tuple (stateless, never
/// writes the frame), replaying the outcome for later packets of the same
/// flow is observationally identical to re-running the NFs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemoOutcome {
    /// Every NF forwarded (mid-run `Gate(0)` counts as forward).
    Proceed,
    /// Some NF dropped, or gated mid-run onto a non-zero gate.
    Drop,
    /// The run ends the segment and its final NF chose this exit gate.
    Exit(usize),
}

/// The longest contiguous run of tuple-pure NFs, as `(start, end)`.
/// Runs shorter than 2 are not worth the memo probe.
fn longest_pure_run(nfs: &[FusedNf]) -> Option<(usize, usize)> {
    let (mut best_s, mut best_e) = (0usize, 0usize);
    let mut run_start = None;
    for i in 0..=nfs.len() {
        let pure = i < nfs.len() && nfs[i].tuple_pure();
        match (pure, run_start) {
            (true, None) => run_start = Some(i),
            (false, Some(s)) => {
                if i - s > best_e - best_s {
                    best_s = s;
                    best_e = i;
                }
                run_start = None;
            }
            _ => {}
        }
    }
    (best_e - best_s >= 2).then_some((best_s, best_e))
}

/// A contiguous server-side chain segment compiled into a single
/// batch-sweep unit. See the module docs.
pub struct FusedSegment {
    name: String,
    nfs: Vec<FusedNf>,
    packets_in: u64,
    packets_dropped: u64,
    /// Per-slot parse caches, reused across batches (allocation-free
    /// steady state).
    caches: Vec<FlowCache>,
    /// `(start, end)` of the longest contiguous run of tuple-pure
    /// classifiers, when ≥ 2 NFs long — the memoized span.
    memo_run: Option<(usize, usize)>,
    /// Per-flow folded outcome of the memoized span (megaflow cache).
    memo: FlowMap<MemoOutcome>,
}

impl FusedSegment {
    /// Build from fused NF instances (must be non-empty).
    pub fn new(name: &str, nfs: Vec<FusedNf>) -> FusedSegment {
        assert!(!nfs.is_empty(), "fused segment needs at least one NF");
        let memo_run = longest_pure_run(&nfs);
        FusedSegment {
            name: name.to_string(),
            nfs,
            packets_in: 0,
            packets_dropped: 0,
            caches: Vec::with_capacity(lemur_packet::batch::BATCH_SIZE),
            memo_run,
            memo: FlowMap::new(),
        }
    }

    /// Run the memoized classifier span for one packet: probe the per-flow
    /// memo, on miss execute the span's NFs and memoize the folded
    /// outcome. Unparseable frames bypass the memo entirely (their
    /// verdicts may depend on bytes the tuple key cannot represent).
    ///
    /// An associated function over disjoint fields so the batch sweep can
    /// hold `caches[slot]` mutably at the same time.
    #[inline]
    fn memo_span(
        nfs: &mut [FusedNf],
        memo: &mut FlowMap<MemoOutcome>,
        (start, end): (usize, usize),
        last: usize,
        ctx: &NfCtx,
        pkt: &mut lemur_packet::PacketBuf,
        cache: &mut FlowCache,
    ) -> MemoOutcome {
        let key = cache.tuple_hashed(pkt);
        if let Some((t, h)) = key {
            if let Some(o) = memo.get_hashed(h, &t) {
                return *o;
            }
        }
        let mut outcome = MemoOutcome::Proceed;
        for (off, nf) in nfs[start..end].iter_mut().enumerate() {
            match nf.process_cached(ctx, pkt, cache) {
                Verdict::Forward => {}
                Verdict::Drop => {
                    outcome = MemoOutcome::Drop;
                    break;
                }
                Verdict::Gate(g) => {
                    if start + off == last {
                        outcome = MemoOutcome::Exit(g);
                    } else if g != 0 {
                        outcome = MemoOutcome::Drop;
                        break;
                    }
                }
            }
        }
        if let Some((t, h)) = key {
            if memo.len() >= MEMO_CAP {
                memo.clear();
            }
            *memo.get_mut_or_insert_with_hashed(h, &t, || outcome) = outcome;
        }
        outcome
    }

    /// The segment's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of NFs fused into this segment.
    pub fn len(&self) -> usize {
        self.nfs.len()
    }

    /// True if the segment has no NFs (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nfs.is_empty()
    }

    /// True if any member NF is stateful (non-replicable, §3.2).
    pub fn is_stateful(&self) -> bool {
        self.nfs.iter().any(|nf| nf.as_nf().is_stateful())
    }

    /// Process one packet through the whole segment. Returns the exit gate
    /// or `None` if dropped. Identical semantics to
    /// [`Subgroup::process_packet`], minus the vtable and re-parses.
    #[inline]
    pub fn process_packet(
        &mut self,
        ctx: &NfCtx,
        pkt: &mut lemur_packet::PacketBuf,
    ) -> Option<usize> {
        self.packets_in += 1;
        let mut cache = FlowCache::default();
        let last = self.nfs.len() - 1;
        let mut i = 0;
        while i <= last {
            if self.memo_run.is_some_and(|(start, _)| i == start) {
                let span = self.memo_run.unwrap();
                match Self::memo_span(
                    &mut self.nfs,
                    &mut self.memo,
                    span,
                    last,
                    ctx,
                    pkt,
                    &mut cache,
                ) {
                    MemoOutcome::Proceed => {
                        i = span.1;
                        continue;
                    }
                    MemoOutcome::Drop => {
                        self.packets_dropped += 1;
                        return None;
                    }
                    MemoOutcome::Exit(g) => return Some(g),
                }
            }
            match self.nfs[i].process_cached(ctx, pkt, &mut cache) {
                Verdict::Forward => {}
                Verdict::Drop => {
                    self.packets_dropped += 1;
                    return None;
                }
                Verdict::Gate(g) => {
                    if i == last {
                        return Some(g);
                    }
                    if g != 0 {
                        self.packets_dropped += 1;
                        return None;
                    }
                }
            }
            i += 1;
        }
        Some(0)
    }

    /// The fused hot path: sweep a whole batch NF-major, in place.
    ///
    /// On return the batch holds the surviving packets in their original
    /// order and `gates_out[i]` is the exit gate of the i-th survivor;
    /// the number of dropped packets is returned. Ledger updates are per
    /// batch, and all working state (parse caches, gate marks) lives in
    /// reused scratch buffers — the steady state allocates nothing.
    pub fn process_batch_inplace(
        &mut self,
        ctx: &NfCtx,
        batch: &mut Batch,
        gates_out: &mut Vec<usize>,
    ) -> usize {
        let n = batch.len();
        self.packets_in += n as u64;
        self.caches.clear();
        self.caches.resize(n, FlowCache::default());
        gates_out.clear();
        gates_out.resize(n, 0);
        let mut dropped = 0usize;
        let last = self.nfs.len() - 1;
        let mut i = 0;
        while i < self.nfs.len() {
            // At the memoized span, switch to a per-packet probe: a flow
            // already in the memo replays its folded outcome and skips the
            // span's NFs entirely (the megaflow fast path).
            if self.memo_run.is_some_and(|(start, _)| i == start) {
                let span = self.memo_run.unwrap();
                let pkts = batch.as_mut_slice();
                for slot in 0..n {
                    if gates_out[slot] == DROPPED {
                        continue;
                    }
                    match Self::memo_span(
                        &mut self.nfs,
                        &mut self.memo,
                        span,
                        last,
                        ctx,
                        &mut pkts[slot],
                        &mut self.caches[slot],
                    ) {
                        MemoOutcome::Proceed => {}
                        MemoOutcome::Drop => {
                            gates_out[slot] = DROPPED;
                            dropped += 1;
                        }
                        MemoOutcome::Exit(g) => {
                            gates_out[slot] = g;
                        }
                    }
                }
                i = span.1;
                continue;
            }
            let pkts = batch.as_mut_slice();
            let nf = &mut self.nfs[i];
            for slot in 0..n {
                if gates_out[slot] == DROPPED {
                    continue;
                }
                match nf.process_cached(ctx, &mut pkts[slot], &mut self.caches[slot]) {
                    Verdict::Forward => {}
                    Verdict::Drop => {
                        gates_out[slot] = DROPPED;
                        dropped += 1;
                    }
                    Verdict::Gate(g) => {
                        if i == last {
                            gates_out[slot] = g;
                        } else if g != 0 {
                            gates_out[slot] = DROPPED;
                            dropped += 1;
                        }
                    }
                }
            }
            i += 1;
        }
        self.packets_dropped += dropped as u64;
        // Compact survivors in order (gate marks drive the packet retain);
        // a clean batch — the steady state — skips the pass entirely.
        if dropped > 0 {
            let mut slot = 0;
            batch.retain(|_| {
                let keep = gates_out[slot] != DROPPED;
                slot += 1;
                keep
            });
            gates_out.retain(|g| *g != DROPPED);
        }
        debug_assert_eq!(batch.len(), gates_out.len());
        dropped
    }

    /// Batch processing with the reference output shape (used by the
    /// differential tests to diff against [`Subgroup::process_batch`]).
    pub fn process_batch(&mut self, ctx: &NfCtx, mut batch: Batch) -> SubgroupOutput {
        let mut gates = Vec::with_capacity(batch.len());
        let dropped = self.process_batch_inplace(ctx, &mut batch, &mut gates);
        SubgroupOutput {
            packets: batch.into_iter().zip(gates).collect(),
            dropped,
        }
    }

    /// Packets seen so far.
    pub fn packets_in(&self) -> u64 {
        self.packets_in
    }

    /// Packets dropped so far.
    pub fn packets_dropped(&self) -> u64 {
        self.packets_dropped
    }

    /// The kind of the NF at `idx`, if in range.
    pub fn nf_kind(&self, idx: usize) -> Option<NfKind> {
        self.nfs.get(idx).map(|nf| nf.kind())
    }

    /// Snapshot the migratable state of the NF at `idx`.
    pub fn snapshot_nf(&self, idx: usize) -> Option<NfSnapshot> {
        self.nfs.get(idx).and_then(|nf| nf.as_nf().snapshot_state())
    }

    /// Restore a snapshot into the NF at `idx`. All-or-nothing. Drops the
    /// classifier memo — the memoized NFs are stateless, so this is purely
    /// defensive, but it keeps "memo matches current NF config" trivially
    /// invariant.
    pub fn restore_nf(&mut self, idx: usize, snapshot: &NfSnapshot) -> Result<(), SnapshotError> {
        match self.nfs.get_mut(idx) {
            Some(nf) => {
                let r = nf.as_nf_mut().restore_state(snapshot);
                if r.is_ok() {
                    self.memo.clear();
                }
                r
            }
            None => Err(SnapshotError::Invalid("NF index out of range in segment")),
        }
    }

    /// FNV-1a/128 state fingerprint of the NF at `idx` (0 when stateless
    /// or out of range).
    pub fn nf_state_fingerprint(&self, idx: usize) -> u128 {
        self.nfs
            .get(idx)
            .map(|nf| nf.as_nf().state_fingerprint())
            .unwrap_or(0)
    }

    /// Apply one SLO window's analytic-tail mass to the NF at `idx`
    /// (hybrid engine). The memo is untouched: memoized spans cover only
    /// tuple-pure NFs, which ignore aggregates by construction.
    pub fn apply_aggregate_nf(
        &mut self,
        idx: usize,
        update: &AggregateUpdate,
    ) -> Option<AggregateOutcome> {
        self.nfs
            .get_mut(idx)
            .map(|nf| nf.as_nf_mut().apply_aggregate(update))
    }

    /// Combined exact + tail observables of the NF at `idx`.
    pub fn nf_observables(&self, idx: usize) -> Option<AggregateObservables> {
        self.nfs.get(idx).map(|nf| nf.as_nf().observables())
    }
}

/// The runtime emitted for one subgroup replica: either the per-NF
/// reference path or the fused sweep. The engine calls through this enum,
/// so both runtimes are interchangeable mid-deployment (an epoch swap may
/// stage one mode while the live epoch runs the other).
pub enum NfRuntime {
    Boxed(Subgroup),
    Fused(FusedSegment),
}

impl NfRuntime {
    /// True when this replica runs the fused sweep.
    pub fn is_fused(&self) -> bool {
        matches!(self, NfRuntime::Fused(_))
    }

    /// The subgroup's display name.
    pub fn name(&self) -> &str {
        match self {
            NfRuntime::Boxed(s) => s.name(),
            NfRuntime::Fused(s) => s.name(),
        }
    }

    /// Number of NFs in the subgroup.
    pub fn len(&self) -> usize {
        match self {
            NfRuntime::Boxed(s) => s.len(),
            NfRuntime::Fused(s) => s.len(),
        }
    }

    /// True if the subgroup has no NFs (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if any member NF is stateful.
    pub fn is_stateful(&self) -> bool {
        match self {
            NfRuntime::Boxed(s) => s.is_stateful(),
            NfRuntime::Fused(s) => s.is_stateful(),
        }
    }

    /// Process one packet; returns the exit gate or `None` if dropped.
    #[inline]
    pub fn process_packet(
        &mut self,
        ctx: &NfCtx,
        pkt: &mut lemur_packet::PacketBuf,
    ) -> Option<usize> {
        match self {
            NfRuntime::Boxed(s) => s.process_packet(ctx, pkt),
            NfRuntime::Fused(s) => s.process_packet(ctx, pkt),
        }
    }

    /// Run a batch to completion, collecting survivors per exit gate.
    pub fn process_batch(&mut self, ctx: &NfCtx, batch: Batch) -> SubgroupOutput {
        match self {
            NfRuntime::Boxed(s) => s.process_batch(ctx, batch),
            NfRuntime::Fused(s) => s.process_batch(ctx, batch),
        }
    }

    /// Packets seen so far.
    pub fn packets_in(&self) -> u64 {
        match self {
            NfRuntime::Boxed(s) => s.packets_in(),
            NfRuntime::Fused(s) => s.packets_in(),
        }
    }

    /// Packets dropped so far.
    pub fn packets_dropped(&self) -> u64 {
        match self {
            NfRuntime::Boxed(s) => s.packets_dropped(),
            NfRuntime::Fused(s) => s.packets_dropped(),
        }
    }

    /// The kind of the NF at `idx`, if in range.
    pub fn nf_kind(&self, idx: usize) -> Option<NfKind> {
        match self {
            NfRuntime::Boxed(s) => s.nf_kind(idx),
            NfRuntime::Fused(s) => s.nf_kind(idx),
        }
    }

    /// Snapshot the migratable state of the NF at `idx`.
    pub fn snapshot_nf(&self, idx: usize) -> Option<NfSnapshot> {
        match self {
            NfRuntime::Boxed(s) => s.snapshot_nf(idx),
            NfRuntime::Fused(s) => s.snapshot_nf(idx),
        }
    }

    /// Restore a snapshot into the NF at `idx`. All-or-nothing.
    pub fn restore_nf(&mut self, idx: usize, snapshot: &NfSnapshot) -> Result<(), SnapshotError> {
        match self {
            NfRuntime::Boxed(s) => s.restore_nf(idx, snapshot),
            NfRuntime::Fused(s) => s.restore_nf(idx, snapshot),
        }
    }

    /// FNV-1a/128 state fingerprint of the NF at `idx`.
    pub fn nf_state_fingerprint(&self, idx: usize) -> u128 {
        match self {
            NfRuntime::Boxed(s) => s.nf_state_fingerprint(idx),
            NfRuntime::Fused(s) => s.nf_state_fingerprint(idx),
        }
    }

    /// Apply one SLO window's analytic-tail mass to the NF at `idx`.
    pub fn apply_aggregate_nf(
        &mut self,
        idx: usize,
        update: &AggregateUpdate,
    ) -> Option<AggregateOutcome> {
        match self {
            NfRuntime::Boxed(s) => s.apply_aggregate_nf(idx, update),
            NfRuntime::Fused(s) => s.apply_aggregate_nf(idx, update),
        }
    }

    /// Combined exact + tail observables of the NF at `idx`.
    pub fn nf_observables(&self, idx: usize) -> Option<AggregateObservables> {
        match self {
            NfRuntime::Boxed(s) => s.nf_observables(idx),
            NfRuntime::Fused(s) => s.nf_observables(idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_nf::{build_nf, NfParams, ParamValue};
    use lemur_packet::builder::udp_packet;
    use lemur_packet::{ethernet, ipv4, PacketBuf};

    fn pkt(dst: ipv4::Address, port: u16) -> PacketBuf {
        udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(203, 0, 113, 1),
            dst,
            port,
            80,
            b"fused segment payload",
        )
    }

    fn acl_params(prefix: &str) -> NfParams {
        let mut params = NfParams::new();
        let mut d = std::collections::BTreeMap::new();
        d.insert("dst_ip".to_string(), ParamValue::Str(prefix.into()));
        d.insert("drop".to_string(), ParamValue::Bool(false));
        params.set("rules", ParamValue::List(vec![ParamValue::Dict(d)]));
        params
    }

    fn both_runtimes(specs: &[(lemur_nf::NfKind, NfParams)]) -> (Subgroup, FusedSegment) {
        let boxed = Subgroup::new("ref", specs.iter().map(|(k, p)| build_nf(*k, p)).collect());
        let fused = FusedSegment::new(
            "fused",
            specs.iter().map(|(k, p)| FusedNf::build(*k, p)).collect(),
        );
        (boxed, fused)
    }

    #[test]
    fn sweep_matches_reference_on_mixed_batch() {
        use lemur_nf::NfKind;
        let specs = vec![
            (NfKind::Acl, acl_params("10.0.0.0/8")),
            (NfKind::Match, NfParams::new()),
            (NfKind::Monitor, NfParams::new()),
            (NfKind::Limiter, NfParams::new()),
        ];
        let (mut sg, mut fs) = both_runtimes(&specs);
        let ctx = NfCtx { now_ns: 5_000 };
        let mut batch_a = Batch::new();
        let mut batch_b = Batch::new();
        for i in 0..8u16 {
            // Half in-prefix (survive the ACL), half out (dropped).
            let dst = if i % 2 == 0 {
                ipv4::Address::new(10, 0, 0, (i + 1) as u8)
            } else {
                ipv4::Address::new(99, 0, 0, (i + 1) as u8)
            };
            batch_a.push(pkt(dst, 2000 + i));
            batch_b.push(pkt(dst, 2000 + i));
        }
        let ref_out = sg.process_batch(&ctx, batch_a);
        let fused_out = fs.process_batch(&ctx, batch_b);
        assert_eq!(ref_out.dropped, fused_out.dropped);
        assert_eq!(ref_out.packets, fused_out.packets);
        assert_eq!(sg.packets_in(), fs.packets_in());
        assert_eq!(sg.packets_dropped(), fs.packets_dropped());
        for idx in 0..specs.len() {
            assert_eq!(
                sg.nf_state_fingerprint(idx),
                fs.nf_state_fingerprint(idx),
                "NF {idx} state diverged"
            );
        }
    }

    #[test]
    fn inplace_sweep_reuses_scratch_and_compacts_in_order() {
        use lemur_nf::NfKind;
        let specs = vec![(NfKind::Acl, acl_params("10.0.0.0/8"))];
        let (_, mut fs) = both_runtimes(&specs);
        let ctx = NfCtx::default();
        let mut gates = Vec::new();
        for round in 0..3 {
            let mut batch = Batch::new();
            batch.push(pkt(ipv4::Address::new(10, 0, 0, 1), 1000));
            batch.push(pkt(ipv4::Address::new(99, 0, 0, 1), 1001));
            batch.push(pkt(ipv4::Address::new(10, 0, 0, 2), 1002));
            let dropped = fs.process_batch_inplace(&ctx, &mut batch, &mut gates);
            assert_eq!(dropped, 1, "round {round}");
            assert_eq!(batch.len(), 2);
            assert_eq!(gates, vec![0, 0]);
            // Survivors keep their original relative order.
            let ports: Vec<u16> = batch
                .iter()
                .map(|p| {
                    lemur_packet::flow::FiveTuple::parse(p.as_slice())
                        .unwrap()
                        .src_port
                })
                .collect();
            assert_eq!(ports, vec![1000, 1002]);
        }
        assert_eq!(fs.packets_in(), 9);
        assert_eq!(fs.packets_dropped(), 3);
    }

    #[test]
    fn terminal_branch_gates_match_reference() {
        use lemur_nf::NfKind;
        let mut split = NfParams::new();
        split.set("split", ParamValue::Int(3));
        let specs = vec![(NfKind::Monitor, NfParams::new()), (NfKind::Match, split)];
        let (mut sg, mut fs) = both_runtimes(&specs);
        let ctx = NfCtx::default();
        for port in 3000..3050u16 {
            let mut a = pkt(ipv4::Address::new(10, 0, 0, 7), port);
            let mut b = a.clone();
            assert_eq!(
                sg.process_packet(&ctx, &mut a),
                fs.process_packet(&ctx, &mut b),
                "gate diverged for port {port}"
            );
            assert_eq!(a, b);
        }
    }
}
