//! NSH service-path synthesis (§4.1).
//!
//! Each decomposed linear chain becomes a *service path* with a unique SPI.
//! A path is cut into *segments*: maximal runs of NFs on the same location,
//! with (possibly empty) ToR segments interleaved — traffic always enters
//! and leaves through the ToR. The SI counts down by one per segment, so
//! coordination code only updates it once per platform visit ("instead of
//! updating the SI values after each P4 NF, update it once at the end of a
//! chain of sequential NFs", §4.2).
//!
//! Until a packet reaches a branch point, its final path is undecided; it
//! carries the *canonical* SPI of its current prefix group (the smallest
//! path index still reachable). Branch NFs rewrite the SPI to the chosen
//! subgroup's canonical SPI — [`RoutingPlan::branch_map`] records those
//! rewrites for every platform's generated code.

use lemur_core::graph::NodeId;
use lemur_placer::placement::{Assignment, PlacementProblem};
use lemur_placer::profiles::Platform;
use std::collections::HashMap;

/// Where a segment executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    Tor,
    Server(usize),
    Nic(usize),
}

/// One segment of a service path.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    pub location: Location,
    /// NF nodes executed in this segment (may be empty for pass-through
    /// ToR segments).
    pub nodes: Vec<NodeId>,
    /// The service index identifying this segment on the wire.
    pub si: u8,
}

/// A routed service path (one decomposed linear chain).
#[derive(Debug, Clone)]
pub struct PathRoute {
    pub chain: usize,
    /// Index of this path within the chain's decomposition.
    pub path_idx: usize,
    /// This path's own SPI.
    pub spi: u32,
    /// Traffic fraction (from the decomposition weights).
    pub weight: f64,
    pub segments: Vec<Segment>,
}

impl PathRoute {
    /// True if the whole path executes on the ToR (optimization (a): no
    /// NSH header is inserted for such paths).
    pub fn all_on_tor(&self) -> bool {
        self.segments.iter().all(|s| s.location == Location::Tor)
    }

    /// Whether the packet carries an NSH header when it *enters* segment
    /// `k`: true once any earlier segment was off-switch.
    pub fn nsh_present_at(&self, k: usize) -> bool {
        self.segments[..k]
            .iter()
            .any(|s| s.location != Location::Tor)
    }
}

/// The complete routing plan.
#[derive(Debug, Clone)]
pub struct RoutingPlan {
    pub paths: Vec<PathRoute>,
    /// `(spi_at_branch, branch node, gate) → spi_after`: the SPI rewrite a
    /// branch decision applies.
    pub branch_map: HashMap<(u32, NodeId, usize), u32>,
    /// `(chain, path set canonical spi)` of each chain's entry group.
    pub entry_spi: Vec<u32>,
}

/// First SI value (segment 0). Decrements per segment.
pub const INITIAL_SI: u8 = 250;

/// Compute the routing plan for a placement assignment. SPIs are assigned
/// sequentially: chain `i`'s paths start where chain `i-1`'s ended.
pub fn plan(problem: &PlacementProblem, assignment: &Assignment) -> RoutingPlan {
    plan_with_spi_bases(problem, assignment, None)
}

/// [`plan`] with externally fixed per-chain SPI bases. A repaired
/// sub-problem drops shed chains, which would renumber every surviving
/// chain's service paths under sequential assignment; passing each kept
/// chain's *original* base SPI instead keeps the wire format stable
/// across a live reconfiguration (SPIs are opaque u32 keys everywhere
/// downstream, so sparseness is free). `bases[i]` is the base SPI for
/// problem chain `i`; bases must be spaced at least each chain's path
/// count apart, which holds by construction when they come from a
/// previous sequential [`plan`].
pub fn plan_with_spi_bases(
    problem: &PlacementProblem,
    assignment: &Assignment,
    bases: Option<&[u32]>,
) -> RoutingPlan {
    if let Some(bases) = bases {
        assert_eq!(bases.len(), problem.chains.len(), "one SPI base per chain");
    }
    let mut paths = Vec::new();
    let mut branch_map = HashMap::new();
    let mut entry_spi = Vec::new();
    let mut next_spi = 1u32;

    for (ci, chain) in problem.chains.iter().enumerate() {
        let decomposed = chain.graph.decompose();
        let base_spi = match bases {
            Some(b) => b[ci],
            None => next_spi,
        };
        next_spi = next_spi.max(base_spi) + decomposed.len() as u32;
        entry_spi.push(base_spi);

        // Segment every path.
        for (pi, lc) in decomposed.iter().enumerate() {
            let mut segments: Vec<Segment> = Vec::new();
            // Start at the ToR.
            segments.push(Segment {
                location: Location::Tor,
                nodes: Vec::new(),
                si: 0,
            });
            for id in &lc.nodes {
                let loc = match assignment[ci].get(id) {
                    Some(Platform::Server(s)) => Location::Server(*s),
                    Some(Platform::SmartNic(n)) => Location::Nic(*n),
                    _ => Location::Tor,
                };
                let prev_loc = segments.last().map(|s| s.location);
                if prev_loc == Some(loc) {
                    if let Some(prev) = segments.last_mut() {
                        prev.nodes.push(*id);
                    }
                } else {
                    // Between two off-switch segments, traffic transits the
                    // ToR: insert an explicit (possibly empty) ToR segment.
                    if loc != Location::Tor && prev_loc != Some(Location::Tor) {
                        segments.push(Segment {
                            location: Location::Tor,
                            nodes: Vec::new(),
                            si: 0,
                        });
                    }
                    segments.push(Segment {
                        location: loc,
                        nodes: vec![*id],
                        si: 0,
                    });
                }
            }
            // Always end at the ToR (egress).
            if segments.last().map(|s| s.location) != Some(Location::Tor) {
                segments.push(Segment {
                    location: Location::Tor,
                    nodes: Vec::new(),
                    si: 0,
                });
            }
            for (k, seg) in segments.iter_mut().enumerate() {
                seg.si = INITIAL_SI - k as u8;
            }
            paths.push(PathRoute {
                chain: ci,
                path_idx: pi,
                spi: base_spi + pi as u32,
                weight: lc.weight,
                segments,
            });
        }

        // Branch map: for each branch node, group paths by their decision
        // prefix up to that node.
        let g = &chain.graph;
        for (bid, _) in g.nodes() {
            if !g.is_branch(bid) {
                continue;
            }
            // Decision sequence of a path strictly *before* reaching `bid`.
            let decisions_before =
                |lc: &lemur_core::graph::LinearChain| -> Option<Vec<(NodeId, usize)>> {
                    let mut out = Vec::new();
                    for w in lc.nodes.windows(2) {
                        if w[0] == bid {
                            return Some(out);
                        }
                        if g.is_branch(w[0]) {
                            let gate = g
                                .out_edges(w[0])
                                .iter()
                                .find(|e| e.to == w[1])
                                .map(|e| e.gate)
                                .unwrap_or(0);
                            out.push((w[0], gate));
                        }
                    }
                    None // path does not pass through bid (or bid is last)
                };
            let gate_at = |lc: &lemur_core::graph::LinearChain| -> Option<usize> {
                lc.nodes.windows(2).find(|w| w[0] == bid).map(|w| {
                    g.out_edges(bid)
                        .iter()
                        .find(|e| e.to == w[1])
                        .map(|e| e.gate)
                        .unwrap_or(0)
                })
            };
            // Group by prefix decisions.
            let mut groups: HashMap<Vec<(NodeId, usize)>, Vec<usize>> = HashMap::new();
            for (pi, lc) in decomposed.iter().enumerate() {
                if let Some(d) = decisions_before(lc) {
                    groups.entry(d).or_default().push(pi);
                }
            }
            for (_prefix, members) in groups {
                let Some(&first) = members.iter().min() else {
                    continue;
                };
                let spi_here = base_spi + first as u32;
                // Partition members by the gate they take at `bid`.
                let mut by_gate: HashMap<usize, Vec<usize>> = HashMap::new();
                for pi in members {
                    if let Some(gate) = gate_at(&decomposed[pi]) {
                        by_gate.entry(gate).or_default().push(pi);
                    }
                }
                for (gate, group) in by_gate {
                    let Some(&first) = group.iter().min() else {
                        continue;
                    };
                    branch_map.insert((spi_here, bid, gate), base_spi + first as u32);
                }
            }
        }
    }
    RoutingPlan {
        paths,
        branch_map,
        entry_spi,
    }
}

impl RoutingPlan {
    /// Paths of one chain.
    pub fn chain_paths(&self, chain: usize) -> impl Iterator<Item = &PathRoute> {
        self.paths.iter().filter(move |p| p.chain == chain)
    }

    /// Look up a path by SPI.
    pub fn path_by_spi(&self, spi: u32) -> Option<&PathRoute> {
        self.paths.iter().find(|p| p.spi == spi)
    }

    /// The canonical SPI a packet carries while *entering* segment `k` of
    /// `path`: the minimum SPI among same-chain paths that agree on every
    /// branch decision taken in segments `0..k`. (A branch decision is
    /// applied — and the SPI rewritten — the moment the branch NF runs, so
    /// between decisions the packet carries the canonical SPI of all still
    /// -possible paths.)
    pub fn canonical_spi(&self, problem: &PlacementProblem, path: &PathRoute, k: usize) -> u32 {
        let my_key = decision_key(problem, path, k);
        self.paths
            .iter()
            .filter(|p| {
                p.chain == path.chain
                    && decision_key(problem, p, k) == Some(my_key.clone().unwrap_or_default())
            })
            .map(|p| p.spi)
            .min()
            .unwrap_or(path.spi)
    }
}

/// The (branch node, gate) decisions a path has taken in segments `0..k`,
/// or `None` when the path has fewer than `k` segments.
fn decision_key(
    problem: &PlacementProblem,
    path: &PathRoute,
    k: usize,
) -> Option<Vec<(NodeId, usize)>> {
    if path.segments.len() < k {
        return None;
    }
    let g = &problem.chains[path.chain].graph;
    // Node sequence of segments 0..k, then decisions at branch nodes —
    // the successor node in the full path determines the gate.
    let prefix_nodes: Vec<NodeId> = path.segments[..k]
        .iter()
        .flat_map(|s| s.nodes.iter().copied())
        .collect();
    let all_nodes: Vec<NodeId> = path
        .segments
        .iter()
        .flat_map(|s| s.nodes.iter().copied())
        .collect();
    let mut key = Vec::new();
    for (i, id) in prefix_nodes.iter().enumerate() {
        if g.is_branch(*id) {
            // Successor of this node in the full node sequence.
            if let Some(next) = all_nodes.get(i + 1) {
                let gate = g
                    .out_edges(*id)
                    .iter()
                    .find(|e| e.to == *next)
                    .map(|e| e.gate)
                    .unwrap_or(0);
                key.push((*id, gate));
            }
        }
    }
    Some(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_core::chains::{canonical_chain, CanonicalChain};
    use lemur_core::graph::ChainSpec;
    use lemur_core::Slo;
    use lemur_nf::NfKind;
    use lemur_placer::corealloc::CoreStrategy;
    use lemur_placer::profiles::NfProfiles;
    use lemur_placer::topology::Topology;

    fn problem(which: CanonicalChain) -> PlacementProblem {
        let mut p = PlacementProblem::new(
            vec![ChainSpec {
                name: format!("chain{}", which.index()),
                graph: canonical_chain(which),
                slo: None,
                aggregate: None,
            }],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        let base = p.base_rate_bps(0);
        p.chains[0].slo = Some(Slo::elastic_pipe(0.5 * base, 100e9));
        p
    }

    fn hw_placement(p: &PlacementProblem) -> lemur_placer::placement::EvaluatedPlacement {
        let a = lemur_placer::baselines::hw_preferred_assignment(p);
        p.evaluate(&a, CoreStrategy::WaterFill).unwrap()
    }

    #[test]
    fn chain3_segments_alternate() {
        let p = problem(CanonicalChain::Chain3);
        let placement = hw_placement(&p);
        let plan = plan(&p, &placement.assignment);
        assert_eq!(plan.paths.len(), 1);
        let path = &plan.paths[0];
        // HW preferred chain 3: Dedup(S) ACL(P4) Limiter(S) LB(P4) Fwd(P4)
        // → Tor, Server, Tor, Server, Tor.
        let locs: Vec<Location> = path.segments.iter().map(|s| s.location).collect();
        assert_eq!(
            locs,
            vec![
                Location::Tor,
                Location::Server(0),
                Location::Tor,
                Location::Server(0),
                Location::Tor
            ]
        );
        // SI decrements by one per segment.
        for (k, seg) in path.segments.iter().enumerate() {
            assert_eq!(seg.si, INITIAL_SI - k as u8);
        }
        assert!(!path.all_on_tor());
        assert!(!path.nsh_present_at(0));
        assert!(!path.nsh_present_at(1));
        assert!(path.nsh_present_at(2));
    }

    #[test]
    fn chain2_paths_get_distinct_spis_and_branch_map() {
        let p = problem(CanonicalChain::Chain2);
        let placement = hw_placement(&p);
        let plan = plan(&p, &placement.assignment);
        assert_eq!(plan.paths.len(), 3);
        let spis: Vec<u32> = plan.paths.iter().map(|p| p.spi).collect();
        assert_eq!(spis, vec![1, 2, 3]);
        // The split node maps the canonical SPI (1) to each branch's SPI.
        let split = p.chains[0]
            .graph
            .nodes()
            .find(|(_, n)| n.kind == NfKind::Match)
            .unwrap()
            .0;
        assert_eq!(plan.branch_map.get(&(1, split, 0)), Some(&1));
        assert_eq!(plan.branch_map.get(&(1, split, 1)), Some(&2));
        assert_eq!(plan.branch_map.get(&(1, split, 2)), Some(&3));
    }

    #[test]
    fn canonical_spi_shared_prefix() {
        let p = problem(CanonicalChain::Chain2);
        let placement = hw_placement(&p);
        let plan = plan(&p, &placement.assignment);
        // All three paths share segments 0 and 1 (Encrypt on server) with
        // no decisions yet, so their canonical SPI there is path 1's.
        for path in &plan.paths {
            assert_eq!(plan.canonical_spi(&p, path, 0), 1);
            assert_eq!(plan.canonical_spi(&p, path, 1), 1);
        }
        // The split runs *inside* the final switch segment, so even at its
        // entry the packet still carries the shared canonical SPI; the
        // rewrite happens mid-visit via the branch table.
        for path in &plan.paths {
            let last = path.segments.len() - 1;
            assert_eq!(plan.canonical_spi(&p, path, last), 1);
        }
    }

    #[test]
    fn nested_branching_chain1() {
        let p = problem(CanonicalChain::Chain1);
        let placement = hw_placement(&p);
        let plan = plan(&p, &placement.assignment);
        assert_eq!(plan.paths.len(), 3);
        // Weights 0.25/0.25/0.5 preserved.
        let total: f64 = plan.paths.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Two branch nodes contribute branch-map entries.
        assert!(plan.branch_map.len() >= 4, "{:?}", plan.branch_map);
    }

    #[test]
    fn fixed_spi_bases_survive_chain_removal() {
        // Two chains numbered sequentially; drop chain 0 and re-plan the
        // survivor with its original base — no renumbering.
        let mut p = PlacementProblem::new(
            vec![
                ChainSpec {
                    name: "a".into(),
                    graph: canonical_chain(CanonicalChain::Chain2),
                    slo: None,
                    aggregate: None,
                },
                ChainSpec {
                    name: "b".into(),
                    graph: canonical_chain(CanonicalChain::Chain3),
                    slo: None,
                    aggregate: None,
                },
            ],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        for i in 0..2 {
            let base = p.base_rate_bps(i);
            p.chains[i].slo = Some(Slo::elastic_pipe(0.25 * base, 100e9));
        }
        let placement = hw_placement(&p);
        let full = plan(&p, &placement.assignment);
        assert_eq!(full.entry_spi, vec![1, 4]); // chain2 has 3 paths

        let sub = PlacementProblem::new(
            vec![p.chains[1].clone()],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        let sub_placement = hw_placement(&sub);
        let re = plan_with_spi_bases(&sub, &sub_placement.assignment, Some(&[full.entry_spi[1]]));
        assert_eq!(re.entry_spi, vec![4]);
        let spis: Vec<u32> = re.paths.iter().map(|p| p.spi).collect();
        let original: Vec<u32> = full.chain_paths(1).map(|p| p.spi).collect();
        assert_eq!(spis, original, "surviving chain was renumbered");
    }

    #[test]
    fn all_on_tor_detection() {
        // Chain 2 with everything on the switch except Encrypt can't be
        // all-tor; craft an artificial all-P4 single-NF chain instead.
        let mut g = lemur_core::graph::NfGraph::new();
        g.add_named("fwd", NfKind::Ipv4Fwd, lemur_nf::NfParams::new());
        let p = PlacementProblem::new(
            vec![ChainSpec {
                name: "t".into(),
                graph: g,
                slo: Some(Slo::bulk()),
                aggregate: None,
            }],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        let a = lemur_placer::baselines::hw_preferred_assignment(&p);
        let placement = p.evaluate(&a, CoreStrategy::WaterFill).unwrap();
        let plan = plan(&p, &placement.assignment);
        assert!(plan.paths[0].all_on_tor());
    }
}
