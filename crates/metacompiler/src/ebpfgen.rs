//! eBPF program generation for SmartNIC-resident NFs (§A.3).
//!
//! One program per SmartNIC. The program structure mirrors what the
//! paper's C-to-eBPF toolchain produced after loop unrolling and inlining:
//! a straight-line dispatcher that, per handled `(SPI, SI)`, runs the NF
//! body and decrements the SI before `XDP_TX`-ing the packet back to the
//! switch. Packets the NIC does not recognize pass through unmodified.
//!
//! NF bodies are compiled as fully unrolled straight-line code. The
//! `FastEncrypt` body applies an unrolled keystream XOR over a payload
//! window — a cost-faithful stand-in for the ChaCha rounds (a full ChaCha
//! unroll would exceed the 4096-instruction budget for MTU packets, which
//! is exactly the §A.3 constraint the Netronome toolchain works around
//! with NFP-specific intrinsics we do not model).

use crate::routing::{Location, RoutingPlan};
use lemur_ebpf::{AluOp, JmpCond, Program, ProgramBuilder, Reg, XdpVerdict};
use lemur_nf::NfKind;
use lemur_placer::placement::PlacementProblem;

/// Byte offsets within an NSH-encapsulated frame. Public so the
/// differential fuzz harness can build frames and predict the observable
/// effect of a generated program.
pub const NSH_SPI_OFF: u16 = 14 + 4; // outer eth (14) + nsh base (4) → spi[3]
/// Offset of the service index byte.
pub const NSH_SI_OFF: u16 = 14 + 7;
/// Start of the inner frame.
pub const INNER_OFF: u16 = 14 + 8;
/// Payload window the unrolled cipher covers.
pub const CIPHER_WINDOW: u16 = 64;
/// Offset of the inner L4 payload for the cipher (inner eth 14 + ipv4 20 +
/// udp 8).
pub const INNER_PAYLOAD_OFF: u16 = INNER_OFF + 14 + 20 + 8;

/// A generated program bound to one SmartNIC.
pub struct NicProgram {
    pub nic: usize,
    pub program: Program,
    /// `(spi, si)` pairs this program handles.
    pub handled: Vec<(u32, u8)>,
}

/// Generate programs for every SmartNIC with placed NFs.
pub fn generate(
    problem: &PlacementProblem,
    _placement: &lemur_placer::placement::EvaluatedPlacement,
    routing: &RoutingPlan,
) -> Result<Vec<NicProgram>, String> {
    let mut out = Vec::new();
    for nic in 0..problem.topology.smartnics.len() {
        // Collect (spi, si, kind) handled by this NIC.
        let mut handled: Vec<(u32, u8, NfKind)> = Vec::new();
        for path in &routing.paths {
            for (k, seg) in path.segments.iter().enumerate() {
                if seg.location != Location::Nic(nic) {
                    continue;
                }
                let spi = routing.canonical_spi(problem, path, k);
                for id in &seg.nodes {
                    let kind = problem.chains[path.chain].graph.node(*id).kind;
                    if !handled.iter().any(|(s, i, _)| *s == spi && *i == seg.si) {
                        handled.push((spi, seg.si, kind));
                    }
                }
            }
        }
        if handled.is_empty() {
            continue;
        }
        let program = synthesize_nic_program(&handled)?;
        program
            .verify()
            .map_err(|e| format!("NIC {nic} program rejected: {e}"))?;
        out.push(NicProgram {
            nic,
            program,
            handled: handled.iter().map(|(s, i, _)| (*s, *i)).collect(),
        });
    }
    Ok(out)
}

/// True if `kind` has an eBPF (SmartNIC) implementation (Table 3).
pub fn ebpf_capable(kind: NfKind) -> bool {
    matches!(
        kind,
        NfKind::FastEncrypt
            | NfKind::Acl
            | NfKind::Match
            | NfKind::Tunnel
            | NfKind::Detunnel
            | NfKind::Ipv4Fwd
            | NfKind::Lb
    )
}

/// Build the straight-line dispatcher + unrolled NF bodies for an explicit
/// `(spi, si, kind)` dispatch list. Public entry point for the differential
/// fuzz harness, which synthesizes programs without a full placement.
pub fn synthesize_nic_program(handled: &[(u32, u8, NfKind)]) -> Result<Program, String> {
    let mut b = ProgramBuilder::new("lemur_nic");
    // Default: pass unknown traffic through untouched.
    let pass = b.label();
    // Bounds guard: need at least the NSH header.
    b.jmp_imm(JmpCond::Lt, Reg::R1, INNER_OFF as i64 + 34, pass);
    // r2 = spi (3 bytes at NSH_SPI_OFF-? spi occupies bytes 4..7 of NSH).
    b.load_pkt(Reg::R2, NSH_SPI_OFF, 4);
    b.alu_imm(AluOp::Rsh, Reg::R2, 8); // top 3 bytes are the SPI
                                       // r3 = si.
    b.load_pkt(Reg::R3, NSH_SI_OFF, 1);

    let done = b.label();
    for (spi, si, kind) in handled {
        let next = b.label();
        b.jmp_imm(JmpCond::Ne, Reg::R2, *spi as i64, next);
        b.jmp_imm(JmpCond::Ne, Reg::R3, *si as i64, next);
        emit_nf_body(&mut b, *kind, pass)?;
        // Decrement the SI and send back out (XDP_TX).
        b.alu_imm(AluOp::Sub, Reg::R3, 1);
        b.store_pkt(Reg::R3, NSH_SI_OFF, 1);
        b.load_imm(Reg::R0, XdpVerdict::Tx as i64);
        b.jmp(done);
        b.bind(next);
    }
    // No match: pass through.
    b.bind(pass);
    b.load_imm(Reg::R0, XdpVerdict::Pass as i64);
    b.bind(done);
    b.exit();
    Ok(b.build())
}

/// Unrolled, inlined NF bodies.
fn emit_nf_body(
    b: &mut ProgramBuilder,
    kind: NfKind,
    too_short: lemur_ebpf::program::Label,
) -> Result<(), String> {
    match kind {
        NfKind::FastEncrypt => {
            // Keystream XOR over a fixed payload window, fully unrolled
            // (no back-edges allowed). Key schedule: r4 is a rolling key
            // byte derived from position and a fixed seed.
            b.jmp_imm(
                JmpCond::Lt,
                Reg::R1,
                (INNER_PAYLOAD_OFF + CIPHER_WINDOW) as i64,
                too_short,
            );
            b.load_imm(Reg::R4, 0x5c);
            for i in 0..CIPHER_WINDOW {
                b.load_pkt(Reg::R5, INNER_PAYLOAD_OFF + i, 1);
                b.alu(AluOp::Xor, Reg::R5, Reg::R4);
                b.store_pkt(Reg::R5, INNER_PAYLOAD_OFF + i, 1);
                // Roll the key: r4 = (r4 * 5 + 1) & 0xff.
                b.alu_imm(AluOp::Mul, Reg::R4, 5);
                b.alu_imm(AluOp::Add, Reg::R4, 1);
                b.alu_imm(AluOp::And, Reg::R4, 0xff);
            }
            Ok(())
        }
        NfKind::Acl | NfKind::Match => {
            // Inner IPv4 dst load — classification happens via the chain's
            // (spi,si), so the generated filter is a permit-all with the
            // bounds check the verifier insists on.
            b.load_pkt(Reg::R6, INNER_OFF + 14 + 16, 4);
            Ok(())
        }
        NfKind::Tunnel | NfKind::Detunnel | NfKind::Ipv4Fwd | NfKind::Lb => {
            // Header-touching NFs: read/update the inner dst MAC word.
            b.load_pkt(Reg::R6, INNER_OFF, 4);
            b.store_pkt(Reg::R6, INNER_OFF, 4);
            Ok(())
        }
        other => Err(format!("NF {other} has no eBPF implementation (Table 3)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_ebpf::Vm;
    use lemur_packet::builder::{nsh_encap, nsh_peek, udp_packet};
    use lemur_packet::{ethernet, ipv4};

    fn build_for(handled: &[(u32, u8, NfKind)]) -> Program {
        let p = synthesize_nic_program(handled).unwrap();
        p.verify().unwrap();
        p
    }

    fn encapped(spi: u32, si: u8) -> Vec<u8> {
        let mut pkt = udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(10, 0, 0, 1),
            ipv4::Address::new(10, 0, 0, 2),
            1000,
            2000,
            &[0xaa; 200],
        );
        nsh_encap(&mut pkt, spi, si);
        pkt.as_slice().to_vec()
    }

    #[test]
    fn fastencrypt_program_verifies_and_runs() {
        let p = build_for(&[(5, 248, NfKind::FastEncrypt)]);
        assert!(p.len() < lemur_ebpf::MAX_INSNS);
        let mut frame = encapped(5, 248);
        let before = frame.clone();
        let out = Vm::run(&p, &mut frame).unwrap();
        assert_eq!(out.verdict, XdpVerdict::Tx);
        // SI decremented in place.
        let pkt = lemur_packet::PacketBuf::from_bytes(&frame);
        assert_eq!(nsh_peek(pkt.as_slice()), Some((5, 247)));
        // Payload transformed.
        assert_ne!(
            frame[INNER_PAYLOAD_OFF as usize..][..64],
            before[INNER_PAYLOAD_OFF as usize..][..64]
        );
    }

    #[test]
    fn cipher_is_involutive() {
        let p = build_for(&[(5, 248, NfKind::FastEncrypt)]);
        let mut frame = encapped(5, 248);
        let original = frame.clone();
        Vm::run(&p, &mut frame).unwrap();
        // Restore SI so the dispatcher matches again, then reapply.
        frame[NSH_SI_OFF as usize] = 248;
        Vm::run(&p, &mut frame).unwrap();
        frame[NSH_SI_OFF as usize] = 248;
        assert_eq!(frame, original);
    }

    #[test]
    fn unknown_traffic_passes_untouched() {
        let p = build_for(&[(5, 248, NfKind::FastEncrypt)]);
        let mut frame = encapped(9, 200);
        let before = frame.clone();
        let out = Vm::run(&p, &mut frame).unwrap();
        assert_eq!(out.verdict, XdpVerdict::Pass);
        assert_eq!(frame, before);
    }

    #[test]
    fn short_packets_pass() {
        let p = build_for(&[(5, 248, NfKind::FastEncrypt)]);
        let mut tiny = vec![0u8; 30];
        let out = Vm::run(&p, &mut tiny).unwrap();
        assert_eq!(out.verdict, XdpVerdict::Pass);
    }

    #[test]
    fn multi_entry_dispatcher() {
        let p = build_for(&[(1, 248, NfKind::FastEncrypt), (2, 246, NfKind::Acl)]);
        let mut a = encapped(1, 248);
        assert_eq!(Vm::run(&p, &mut a).unwrap().verdict, XdpVerdict::Tx);
        let mut b = encapped(2, 246);
        assert_eq!(Vm::run(&p, &mut b).unwrap().verdict, XdpVerdict::Tx);
        let mut c = encapped(2, 245); // wrong si
        assert_eq!(Vm::run(&p, &mut c).unwrap().verdict, XdpVerdict::Pass);
    }

    #[test]
    fn dedup_has_no_ebpf_impl() {
        assert!(synthesize_nic_program(&[(1, 248, NfKind::Dedup)]).is_err());
    }
}
