//! P4 program synthesis for the PISA ToR (§4.2, §A.2).
//!
//! The generated program has this shape:
//!
//! ```text
//! steer                      # one table: NSH (spi, si) resume + fresh
//!                            # traffic classification (optimization (c))
//! Exclusive per chain:       # a packet belongs to exactly one chain
//!   per switch subgroup, topo order, branch subtrees in Exclusive blocks:
//!     If reached { NF tables…; tail coordination }
//!   merge subgroups re-attached at the chain level behind reach guards
//!   pass-through units for empty ToR segments (pure coordination)
//! ```
//!
//! Coordination uses per-subgroup "reached" metadata registers set by the
//! steer table (for entries from the wire) or by tiny mark tables (for
//! in-pipeline transitions), branch `Match` tables that select a gate and
//! rewrite the NSH SPI, `to_server` tables (DecNshSi + egress to the
//! server port) and `egress` tables (PopNsh + egress). The §4.2
//! optimizations are individually toggleable via [`P4GenOptions`] so the
//! stage-cost experiments can measure each.

use crate::routing::{Location, RoutingPlan};
use lemur_core::graph::NodeId;
use lemur_nf::{NfKind, NfParams, ParamValue};
use lemur_p4sim::parser::well_known;
use lemur_p4sim::{
    Action, CmpOp, Control, FieldRef, MatchKind, MatchValue, P4Program, ParserTree, Primitive,
    Switch, Table, TableEntry, TableId,
};
use lemur_placer::placement::{Assignment, PlacementProblem};
use lemur_placer::profiles::Platform;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Egress port used for traffic leaving the service chains.
pub const OUT_PORT: u16 = 0;

/// Switch port of a server.
pub fn server_port(server: usize) -> u16 {
    1 + server as u16
}

/// Switch port of a SmartNIC.
pub fn nic_port(nic: usize) -> u16 {
    100 + nic as u16
}

/// The §4.2 resource-aware code-generation optimizations.
#[derive(Debug, Clone, Copy)]
pub struct P4GenOptions {
    /// (a) Skip NSH entirely for chains placed wholly on the switch.
    pub skip_nsh_for_switch_only: bool,
    /// (b) inverted: when true, generate the *naive* per-NF SI-decrement
    /// tables instead of one update per platform visit.
    pub si_update_per_nf: bool,
    /// (c) Fold fresh-traffic classification into the first-stage steering
    /// table instead of a dependent second table.
    pub merge_steering: bool,
    /// (d) Express branch exclusivity so the compiler can overlay parallel
    /// branches onto the same stages.
    pub express_exclusivity: bool,
}

impl Default for P4GenOptions {
    fn default() -> Self {
        P4GenOptions {
            skip_nsh_for_switch_only: true,
            si_update_per_nf: false,
            merge_steering: true,
            express_exclusivity: true,
        }
    }
}

impl P4GenOptions {
    /// The naive generator the paper contrasts against ("without it, the
    /// 10 NAT placement would have required 27 stages").
    pub fn naive() -> P4GenOptions {
        P4GenOptions {
            skip_nsh_for_switch_only: false,
            si_update_per_nf: true,
            merge_steering: false,
            express_exclusivity: false,
        }
    }
}

/// The synthesized unified P4 artifact.
pub struct SynthesizedP4 {
    pub program: P4Program,
    pub entries: Vec<(TableId, TableEntry)>,
    pub parser: ParserTree,
    /// Generated P4-like source (for LoC accounting).
    pub source: String,
    /// Lines attributable to steering/coordination vs NF logic.
    pub steering_lines: usize,
    pub nf_lines: usize,
    /// Which generated tables implement which switch-resident NF node:
    /// `(chain, node, kind, tables)` in generation order. State migration
    /// uses this to aim restored NF state (e.g. NAT bindings) at the right
    /// tables when a node moves from a server onto the ToR.
    pub nf_tables: Vec<(usize, NodeId, NfKind, Vec<TableId>)>,
}

impl SynthesizedP4 {
    /// Install all generated entries into a running switch.
    pub fn install(&self, switch: &mut Switch) {
        for (tid, e) in &self.entries {
            switch.add_entry(*tid, e.clone());
        }
    }
}

/// Table categories for LoC accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TableRole {
    Steering,
    Nf,
}

struct Gen<'a> {
    problem: &'a PlacementProblem,
    assignment: &'a Assignment,
    routing: &'a RoutingPlan,
    opts: P4GenOptions,
    program: P4Program,
    entries: Vec<(TableId, TableEntry)>,
    roles: Vec<TableRole>,
    next_reg: u8,
    parser: ParserTree,
    nf_tables: Vec<(usize, NodeId, NfKind, Vec<TableId>)>,
}

/// One switch subgroup of a chain's switch sub-DAG.
#[derive(Debug, Clone)]
struct SwSub {
    nodes: Vec<NodeId>,
    reach_reg: u8,
    /// In-DAG predecessors count.
    in_degree: usize,
    /// Out edges: (gate, target) where target is another subgroup, an
    /// off-switch hop, or chain egress.
    outs: Vec<(usize, SwTarget)>,
    /// True if this subgroup is entered directly from the wire.
    steer_entry: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SwTarget {
    Sub(usize),
    OffSwitch(u16 /* port */),
    Egress,
}

/// Synthesize the unified P4 program for an assignment.
pub fn synthesize(
    problem: &PlacementProblem,
    assignment: &Assignment,
    routing: &RoutingPlan,
    opts: P4GenOptions,
) -> Result<SynthesizedP4, String> {
    let mut gen = Gen {
        problem,
        assignment,
        routing,
        opts,
        program: P4Program::new(),
        entries: Vec::new(),
        roles: Vec::new(),
        next_reg: 1,
        parser: well_known::base_tree(),
        nf_tables: Vec::new(),
    };
    gen.merge_parsers()?;
    gen.build()
}

impl<'a> Gen<'a> {
    fn alloc_reg(&mut self) -> u8 {
        let r = self.next_reg;
        assert!(r < 250, "metadata register space exhausted");
        self.next_reg += 1;
        r
    }

    fn add_table(&mut self, table: Table, role: TableRole) -> TableId {
        let id = self.program.add_table(table);
        self.roles.push(role);
        id
    }

    fn add_entry(&mut self, tid: TableId, entry: TableEntry) {
        self.entries.push((tid, entry));
    }

    /// §A.2.1: merge the NF-local parser trees of every switch-resident
    /// NF; a conflict rejects the placement.
    fn merge_parsers(&mut self) -> Result<(), String> {
        for (ci, chain) in self.problem.chains.iter().enumerate() {
            for (id, node) in chain.graph.nodes() {
                if self.assignment[ci].get(&id) == Some(&Platform::Pisa) {
                    let local = nf_local_parser(node.kind);
                    self.parser
                        .merge(&local)
                        .map_err(|e| format!("parser conflict for {}: {e}", node.name))?;
                }
            }
        }
        Ok(())
    }

    /// Does the chain use NSH? (Optimization (a) skips it for all-switch
    /// chains.)
    fn chain_uses_nsh(&self, chain: usize) -> bool {
        if !self.opts.skip_nsh_for_switch_only {
            return true;
        }
        self.routing.chain_paths(chain).any(|p| !p.all_on_tor())
    }

    fn build(mut self) -> Result<SynthesizedP4, String> {
        // --- switch sub-DAGs per chain.
        let mut chain_subs: Vec<Vec<SwSub>> = Vec::new();
        let mut node_to_sub: Vec<HashMap<NodeId, usize>> = Vec::new();
        for (ci, chain) in self.problem.chains.iter().enumerate() {
            let (subs, map) = self.switch_subgroups(ci, chain)?;
            chain_subs.push(subs);
            node_to_sub.push(map);
        }

        // --- virtual pass-through units for empty ToR segments.
        // Keyed (chain, canonical spi, segment idx) → (reach reg, target).
        let mut virtual_units: BTreeMap<(usize, u32, usize), (u8, SwTarget)> = BTreeMap::new();
        // --- steer entries to create: (spi, si, fresh, chain, EntryKind).
        enum EntryKind {
            Sub(usize),
            Virtual(u32, usize),
        }
        let mut steer_plan: Vec<(u32, u8, bool, usize, EntryKind)> = Vec::new();
        let mut seen_returning: HashSet<(u32, u8)> = HashSet::new();

        for path in &self.routing.paths {
            let ci = path.chain;
            for (k, seg) in path.segments.iter().enumerate() {
                if seg.location != Location::Tor {
                    continue;
                }
                let fresh = k == 0;
                let spi = self.routing.canonical_spi(self.problem, path, k);
                if !fresh && !seen_returning.insert((spi, seg.si)) {
                    continue;
                }
                if fresh && path.path_idx != 0 {
                    // Fresh entries are per chain (canonical path 0 covers
                    // the shared segment 0).
                    continue;
                }
                let kind = if seg.nodes.is_empty() {
                    // Pass-through: where next?
                    let target = match path.segments.get(k + 1) {
                        None => SwTarget::Egress,
                        Some(next) => match next.location {
                            Location::Server(s) => SwTarget::OffSwitch(server_port(s)),
                            Location::Nic(n) => SwTarget::OffSwitch(nic_port(n)),
                            Location::Tor => SwTarget::Egress,
                        },
                    };
                    let reg = match virtual_units.get(&(ci, spi, k)) {
                        Some((r, _)) => *r,
                        None => {
                            let r = self.alloc_reg();
                            virtual_units.insert((ci, spi, k), (r, target));
                            r
                        }
                    };
                    let _ = reg;
                    EntryKind::Virtual(spi, k)
                } else {
                    let sub = node_to_sub[ci][&seg.nodes[0]];
                    chain_subs[ci][sub].steer_entry = true;
                    EntryKind::Sub(sub)
                };
                steer_plan.push((spi, seg.si, fresh, ci, kind));
            }
        }

        // --- the steer table (and optional separate classify table).
        // Keys: [NshSpi exact, NshSi exact, Ipv4Src ternary, Ipv4Dst ternary].
        // One action per entry point (set reach reg, optionally push NSH).
        let steer_keys = vec![
            (FieldRef::NshSpi, MatchKind::Exact),
            (FieldRef::NshSi, MatchKind::Exact),
            (FieldRef::Ipv4Src, MatchKind::Ternary),
            (FieldRef::Ipv4Dst, MatchKind::Ternary),
        ];
        let mut steer_actions: Vec<Action> = Vec::new();
        let mut classify_actions: Vec<Action> = Vec::new();
        let mut steer_entries: Vec<TableEntry> = Vec::new();
        let mut classify_entries: Vec<TableEntry> = Vec::new();
        for (spi, si, fresh, ci, kind) in &steer_plan {
            let reach = match kind {
                EntryKind::Sub(s) => chain_subs[*ci][*s].reach_reg,
                EntryKind::Virtual(spi, k) => virtual_units[&(*ci, *spi, *k)].0,
            };
            let uses_nsh = self.chain_uses_nsh(*ci);
            let (actions, entries_list) = if *fresh && !self.opts.merge_steering {
                (&mut classify_actions, &mut classify_entries)
            } else {
                (&mut steer_actions, &mut steer_entries)
            };
            let mut prims = vec![Primitive::SetFieldConst(FieldRef::Meta(reach), 1)];
            let mut data = Vec::new();
            if *fresh && uses_nsh {
                prims.push(Primitive::PushNshFromData(0));
                data = vec![*spi as u64, *si as u64];
            }
            let ai = actions.len();
            actions.push(Action::new(&format!("enter_r{reach}"), prims));
            let keys = if *fresh {
                let agg = self.problem.chains[*ci].aggregate;
                let (src, dst) = aggregate_masks(&agg);
                vec![MatchValue::Exact(0), MatchValue::Exact(0), src, dst]
            } else {
                vec![
                    MatchValue::Exact(*spi as u64),
                    MatchValue::Exact(*si as u64),
                    MatchValue::Any,
                    MatchValue::Any,
                ]
            };
            entries_list.push(TableEntry {
                keys,
                action: ai,
                action_data: data,
                priority: if *fresh { 10 } else { 20 },
            });
        }
        let steer_tid = self.add_table(
            Table {
                name: "lemur_steer".into(),
                keys: steer_keys.clone(),
                actions: steer_actions,
                default_action: None,
                size: 256,
            },
            TableRole::Steering,
        );
        for e in steer_entries {
            self.add_entry(steer_tid, e);
        }
        let classify_tid = if !self.opts.merge_steering {
            let tid = self.add_table(
                Table {
                    name: "lemur_classify".into(),
                    keys: steer_keys,
                    actions: classify_actions,
                    default_action: None,
                    size: 256,
                },
                TableRole::Steering,
            );
            for e in classify_entries {
                self.add_entry(tid, e);
            }
            Some(tid)
        } else {
            None
        };

        // --- per-chain control, with each chain's virtual pass-through
        // units appended inside its (cross-chain exclusive) block so their
        // NSH writes don't serialize against other chains' coordination.
        let mut chain_controls = Vec::new();
        for (ci, subs) in chain_subs.iter_mut().enumerate() {
            let control = self.gen_chain(ci, subs)?;
            let mut parts = vec![control];
            for ((vci, _spi, _k), (reg, target)) in &virtual_units {
                if *vci != ci {
                    continue;
                }
                let coord = self.coordination_table(ci, *target, &format!("pass_r{reg}"));
                parts.push(Control::If {
                    field: FieldRef::Meta(*reg),
                    op: CmpOp::Eq,
                    value: 1,
                    then_: Box::new(coord),
                });
            }
            chain_controls.push(Control::Seq(parts));
        }

        let mut top = vec![Control::Apply(steer_tid)];
        if let Some(tid) = classify_tid {
            top.push(Control::Apply(tid));
        }
        top.push(Control::Exclusive(chain_controls));
        self.program.control = Some(Control::Seq(top));

        // --- source rendering and accounting.
        let (source, steering_lines, nf_lines) = self.render();
        Ok(SynthesizedP4 {
            program: self.program,
            entries: self.entries,
            parser: self.parser,
            source,
            steering_lines,
            nf_lines,
            nf_tables: self.nf_tables,
        })
    }

    /// Form switch subgroups (union over ToR–ToR linear edges) plus their
    /// inter-subgroup edges.
    fn switch_subgroups(
        &mut self,
        ci: usize,
        chain: &lemur_core::graph::ChainSpec,
    ) -> Result<(Vec<SwSub>, HashMap<NodeId, usize>), String> {
        let g = &chain.graph;
        let on_tor = |id: NodeId| {
            !matches!(
                self.assignment[ci].get(&id),
                Some(Platform::Server(_)) | Some(Platform::SmartNic(_))
            )
        };
        let n = g.num_nodes();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for e in g.edges() {
            if on_tor(e.from)
                && on_tor(e.to)
                && g.out_edges(e.from).len() == 1
                && g.in_degree(e.to) == 1
            {
                let (ra, rb) = (find(&mut parent, e.from.0), find(&mut parent, e.to.0));
                parent[ra] = rb;
            }
        }
        let order = g
            .topo_order()
            .map_err(|e| format!("chain {ci}: cannot form switch subgroups: {e}"))?;
        let mut groups: Vec<Vec<NodeId>> = Vec::new();
        let mut root_to_idx: HashMap<usize, usize> = HashMap::new();
        let mut node_map: HashMap<NodeId, usize> = HashMap::new();
        for id in &order {
            if !on_tor(*id) {
                continue;
            }
            let root = find(&mut parent, id.0);
            let idx = *root_to_idx.entry(root).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[idx].push(*id);
            node_map.insert(*id, idx);
        }
        let mut subs: Vec<SwSub> = groups
            .into_iter()
            .map(|nodes| SwSub {
                nodes,
                reach_reg: 0,
                in_degree: 0,
                outs: Vec::new(),
                steer_entry: false,
            })
            .collect();
        for sub in subs.iter_mut() {
            sub.reach_reg = self.alloc_reg();
        }
        // Inter-subgroup edges from the tail node of each subgroup.
        for i in 0..subs.len() {
            // Subgroups are created on first node insertion, so never empty.
            let Some(&last) = subs[i].nodes.last() else {
                continue;
            };
            let mut outs = Vec::new();
            for e in g.out_edges(last) {
                let target = if on_tor(e.to) {
                    let t = node_map[&e.to];
                    SwTarget::Sub(t)
                } else {
                    match self.assignment[ci].get(&e.to) {
                        Some(Platform::Server(s)) => SwTarget::OffSwitch(server_port(*s)),
                        Some(Platform::SmartNic(nn)) => SwTarget::OffSwitch(nic_port(*nn)),
                        _ => SwTarget::Egress,
                    }
                };
                outs.push((e.gate, target));
            }
            if outs.is_empty() {
                outs.push((0, SwTarget::Egress));
            }
            for (_, t) in &outs {
                if let SwTarget::Sub(t) = t {
                    subs[*t].in_degree += 1;
                }
            }
            subs[i].outs = outs;
        }
        Ok((subs, node_map))
    }

    /// Generate one chain's control tree (§A.2.2 DAG→tree conversion).
    fn gen_chain(&mut self, ci: usize, subs: &mut [SwSub]) -> Result<Control, String> {
        // A subgroup is *guarded* (emitted at chain level behind its reach
        // register) if it's a steer entry or a merge; otherwise it's
        // inlined into its unique predecessor.
        let guarded: Vec<bool> = subs
            .iter()
            .map(|s| s.steer_entry || s.in_degree != 1)
            .collect();
        // Mark tables for guarded targets are created lazily.
        let mut emitted = vec![false; subs.len()];
        let mut blocks: Vec<Control> = Vec::new();
        for i in 0..subs.len() {
            if !guarded[i] || emitted[i] {
                continue;
            }
            let body = self.gen_sub(ci, subs, i, &guarded, &mut emitted)?;
            blocks.push(Control::If {
                field: FieldRef::Meta(subs[i].reach_reg),
                op: CmpOp::Eq,
                value: 1,
                then_: Box::new(body),
            });
        }
        // Any unguarded, unemitted subgroup would be unreachable — that's
        // a generator bug.
        if let Some(idx) = emitted.iter().position(|e| !e) {
            if !guarded[idx] {
                return Err(format!("subgroup {idx} of chain {ci} unreachable"));
            }
        }
        Ok(Control::Seq(blocks))
    }

    /// Generate one subgroup's body: NF tables then tail coordination.
    fn gen_sub(
        &mut self,
        ci: usize,
        subs: &[SwSub],
        i: usize,
        guarded: &[bool],
        emitted: &mut [bool],
    ) -> Result<Control, String> {
        emitted[i] = true;
        let sub = subs[i].clone();
        let mut seq: Vec<Control> = Vec::new();
        let mut branch_reg = None;
        for (pos, id) in sub.nodes.iter().enumerate() {
            let node = self.problem.chains[ci].graph.node(*id).clone();
            let is_tail_branch = pos == sub.nodes.len() - 1 && sub.outs.len() > 1;
            let reg = if is_tail_branch {
                let r = self.alloc_reg();
                branch_reg = Some(r);
                Some(r)
            } else {
                None
            };
            let tables = self.gen_nf_tables(ci, *id, &node, reg)?;
            self.nf_tables.push((ci, *id, node.kind, tables.clone()));
            seq.extend(tables.into_iter().map(Control::Apply));
            if self.opts.si_update_per_nf && self.chain_uses_nsh(ci) {
                // Naive SI maintenance: one decrement table per NF,
                // serializing the pipeline on nsh.si.
                let tid = self.add_table(
                    Table {
                        name: format!("c{ci}_{}_si_upd", node.name),
                        keys: vec![],
                        actions: vec![Action::new("upd", vec![Primitive::DecNshSi])],
                        default_action: Some(0),
                        size: 1,
                    },
                    TableRole::Steering,
                );
                seq.push(Control::Apply(tid));
            }
        }
        // Tail coordination.
        if sub.outs.len() == 1 {
            let (_, target) = sub.outs[0];
            seq.push(self.gen_target(ci, subs, target, i, guarded, emitted, None)?);
        } else {
            let br = branch_reg
                .ok_or_else(|| format!("chain {ci}: branch subgroup must end in a Match NF"))?;
            let mut cases = Vec::new();
            for (gate, target) in sub.outs.clone() {
                let c = self.gen_target(ci, subs, target, i, guarded, emitted, Some(gate))?;
                cases.push((gate as u64, c));
            }
            let arms: Vec<Control> = cases
                .iter()
                .map(|(g, c)| Control::If {
                    field: FieldRef::Meta(br),
                    op: CmpOp::Eq,
                    value: *g,
                    then_: Box::new(c.clone()),
                })
                .collect();
            if self.opts.express_exclusivity {
                seq.push(Control::Exclusive(arms));
            } else {
                seq.push(Control::Seq(arms));
            }
        }
        Ok(Control::Seq(seq))
    }

    /// Coordination for a tail edge: inline the successor, mark a guarded
    /// successor, hop off-switch, or egress.
    #[allow(clippy::too_many_arguments)]
    fn gen_target(
        &mut self,
        ci: usize,
        subs: &[SwSub],
        target: SwTarget,
        from: usize,
        guarded: &[bool],
        emitted: &mut [bool],
        gate: Option<usize>,
    ) -> Result<Control, String> {
        match target {
            SwTarget::Sub(t) => {
                if guarded[t] {
                    // Mark table setting the successor's reach register.
                    let tid = self.add_table(
                        Table {
                            name: format!("c{ci}_mark_s{from}g{}_to_s{t}", gate.unwrap_or(0)),
                            keys: vec![],
                            actions: vec![Action::new(
                                "mark",
                                vec![Primitive::SetFieldConst(
                                    FieldRef::Meta(subs[t].reach_reg),
                                    1,
                                )],
                            )],
                            default_action: Some(0),
                            size: 1,
                        },
                        TableRole::Steering,
                    );
                    Ok(Control::Apply(tid))
                } else {
                    self.gen_sub(ci, subs, t, guarded, emitted)
                }
            }
            SwTarget::OffSwitch(port) => Ok(self.coordination_table(
                ci,
                SwTarget::OffSwitch(port),
                &format!("c{ci}_to_port{port}_s{from}g{}", gate.unwrap_or(0)),
            )),
            SwTarget::Egress => Ok(self.coordination_table(
                ci,
                SwTarget::Egress,
                &format!("c{ci}_egress_s{from}g{}", gate.unwrap_or(0)),
            )),
        }
    }

    /// A zero-key coordination table for off-switch hops and egress.
    fn coordination_table(&mut self, ci: usize, target: SwTarget, name: &str) -> Control {
        let uses_nsh = self.chain_uses_nsh(ci);
        let (action, data) = match target {
            SwTarget::OffSwitch(port) => {
                let mut prims = Vec::new();
                if uses_nsh {
                    prims.push(Primitive::DecNshSi);
                }
                prims.push(Primitive::SetEgressFromData(0));
                (Action::new("to_hop", prims), vec![port as u64])
            }
            _ => {
                let mut prims = Vec::new();
                if uses_nsh {
                    prims.push(Primitive::PopNsh);
                }
                prims.push(Primitive::SetEgressConst(OUT_PORT));
                (Action::new("egress", prims), vec![])
            }
        };
        let tid = self.add_table(
            Table {
                name: name.to_string(),
                keys: vec![],
                actions: vec![action],
                default_action: None,
                size: 1,
            },
            TableRole::Steering,
        );
        self.add_entry(
            tid,
            TableEntry {
                keys: vec![],
                action: 0,
                action_data: data,
                priority: 1,
            },
        );
        Control::Apply(tid)
    }

    /// NF-specific tables + entries. `branch_reg` is set when this NF is a
    /// branch point whose table must select a gate (and rewrite the SPI).
    fn gen_nf_tables(
        &mut self,
        ci: usize,
        id: NodeId,
        node: &lemur_core::graph::NfNode,
        branch_reg: Option<u8>,
    ) -> Result<Vec<TableId>, String> {
        let prefix = format!("c{ci}_{}", node.name);
        let mut out = Vec::new();
        match node.kind {
            NfKind::Acl => {
                let tid = self.add_table(
                    Table {
                        name: format!("{prefix}_acl"),
                        keys: vec![
                            (FieldRef::Ipv4Src, MatchKind::Ternary),
                            (FieldRef::Ipv4Dst, MatchKind::Ternary),
                            (FieldRef::L4Dport, MatchKind::Range),
                            (FieldRef::Ipv4Proto, MatchKind::Ternary),
                        ],
                        actions: vec![
                            Action::new("permit", vec![Primitive::NoOp]),
                            Action::new("deny", vec![Primitive::Drop]),
                        ],
                        default_action: Some(1),
                        size: acl_size(&node.params),
                    },
                    TableRole::Nf,
                );
                for e in acl_entries(&node.params) {
                    self.add_entry(tid, e);
                }
                out.push(tid);
            }
            NfKind::Ipv4Fwd => {
                let tid = self.add_table(
                    Table {
                        name: format!("{prefix}_lpm"),
                        keys: vec![(FieldRef::Ipv4Dst, MatchKind::Lpm)],
                        actions: vec![
                            Action::new(
                                "set_nhop",
                                vec![Primitive::SetFieldFromData(FieldRef::EthDst, 0)],
                            ),
                            Action::new("drop", vec![Primitive::Drop]),
                        ],
                        default_action: Some(0),
                        size: 1024,
                    },
                    TableRole::Nf,
                );
                // Default route entry (canonical chains forward everything).
                self.add_entry(
                    tid,
                    TableEntry {
                        keys: vec![MatchValue::Lpm {
                            value: 0,
                            prefix_len: 0,
                            width: 32,
                        }],
                        action: 0,
                        action_data: vec![0x0200_0000_0000],
                        priority: 0,
                    },
                );
                out.push(tid);
            }
            NfKind::Nat => {
                let lookup = self.add_table(
                    Table {
                        name: format!("{prefix}_lookup"),
                        keys: vec![
                            (FieldRef::Ipv4Src, MatchKind::Exact),
                            (FieldRef::L4Sport, MatchKind::Exact),
                        ],
                        actions: vec![Action::new(
                            "set_binding",
                            vec![Primitive::SetFieldFromData(FieldRef::Meta(200), 0)],
                        )],
                        // Miss → binding 0 (the default external mapping).
                        default_action: Some(0),
                        size: nat_size(&node.params),
                    },
                    TableRole::Nf,
                );
                let rewrite = self.add_table(
                    Table {
                        name: format!("{prefix}_rewrite"),
                        keys: vec![(FieldRef::Meta(200), MatchKind::Exact)],
                        actions: vec![Action::new(
                            "snat",
                            vec![Primitive::SetFieldFromData(FieldRef::Ipv4Src, 0)],
                        )],
                        default_action: None,
                        size: nat_size(&node.params),
                    },
                    TableRole::Nf,
                );
                // Default binding: rewrite to the carrier external address.
                let ext = lemur_packet::ipv4::Address::new(198, 18, 0, 1).to_u32() as u64;
                self.add_entry(
                    rewrite,
                    TableEntry {
                        keys: vec![MatchValue::Exact(0)],
                        action: 0,
                        action_data: vec![ext],
                        priority: 1,
                    },
                );
                out.push(lookup);
                out.push(rewrite);
            }
            NfKind::Lb => {
                let select = self.add_table(
                    Table {
                        name: format!("{prefix}_select"),
                        keys: vec![(FieldRef::FlowHash(0), MatchKind::Ternary)],
                        actions: vec![Action::new(
                            "pick",
                            vec![Primitive::SetFieldFromData(FieldRef::Meta(201), 0)],
                        )],
                        default_action: Some(0),
                        size: 64,
                    },
                    TableRole::Nf,
                );
                let rewrite = self.add_table(
                    Table {
                        name: format!("{prefix}_rewrite"),
                        keys: vec![(FieldRef::Meta(201), MatchKind::Exact)],
                        actions: vec![Action::new(
                            "to_backend",
                            vec![
                                Primitive::SetFieldFromData(FieldRef::Ipv4Dst, 0),
                                Primitive::SetFieldFromData(FieldRef::EthDst, 1),
                            ],
                        )],
                        default_action: None,
                        size: 64,
                    },
                    TableRole::Nf,
                );
                let n = node.params.int_or("backends", 4).max(1) as u64;
                let pow2 = n.next_power_of_two();
                for b in 0..n {
                    self.add_entry(
                        select,
                        TableEntry {
                            keys: vec![MatchValue::Ternary {
                                value: b,
                                mask: pow2 - 1,
                            }],
                            action: 0,
                            action_data: vec![b],
                            priority: 1,
                        },
                    );
                }
                // Hash values mapping beyond n (non-power-of-two): fold
                // onto backend 0 with a lower priority catch-all.
                self.add_entry(
                    select,
                    TableEntry {
                        keys: vec![MatchValue::Any],
                        action: 0,
                        action_data: vec![0],
                        priority: 0,
                    },
                );
                for b in 0..n {
                    let ip = lemur_packet::ipv4::Address::new(192, 168, 100, (b + 1) as u8);
                    self.add_entry(
                        rewrite,
                        TableEntry {
                            keys: vec![MatchValue::Exact(b)],
                            action: 0,
                            action_data: vec![ip.to_u32() as u64, 0x0200_0064_0000 + b + 1],
                            priority: 1,
                        },
                    );
                }
                out.push(select);
                out.push(rewrite);
            }
            NfKind::Match => {
                let reg = branch_reg.unwrap_or(202);
                let uses_nsh = self.chain_uses_nsh(ci);
                let mut prims = vec![Primitive::SetFieldFromData(FieldRef::Meta(reg), 0)];
                if uses_nsh {
                    prims.push(Primitive::SetFieldFromData(FieldRef::NshSpi, 1));
                }
                let tid = self.add_table(
                    Table {
                        name: format!("{prefix}_match"),
                        keys: vec![
                            (FieldRef::NshSpi, MatchKind::Ternary),
                            (
                                FieldRef::FlowHash(node.params.int_or("salt", 0) as u8),
                                MatchKind::Range,
                            ),
                            (FieldRef::VlanVid, MatchKind::Ternary),
                        ],
                        actions: vec![Action::new("set_gate", prims)],
                        default_action: None,
                        size: 64,
                    },
                    TableRole::Nf,
                );
                for e in self.match_entries(ci, id, node) {
                    self.add_entry(tid, e);
                }
                out.push(tid);
            }
            NfKind::Tunnel => {
                let tid = self.add_table(
                    Table {
                        name: format!("{prefix}_push"),
                        keys: vec![],
                        actions: vec![Action::new(
                            "push_vlan",
                            vec![Primitive::PushVlanFromData(0)],
                        )],
                        default_action: None,
                        size: 1,
                    },
                    TableRole::Nf,
                );
                let vid = node.params.int_or("vid", 1) as u64 & 0xfff;
                self.add_entry(
                    tid,
                    TableEntry {
                        keys: vec![],
                        action: 0,
                        action_data: vec![vid],
                        priority: 1,
                    },
                );
                out.push(tid);
            }
            NfKind::Detunnel => {
                let tid = self.add_table(
                    Table {
                        name: format!("{prefix}_pop"),
                        keys: vec![],
                        actions: vec![Action::new("pop_vlan", vec![Primitive::PopVlan])],
                        default_action: Some(0),
                        size: 1,
                    },
                    TableRole::Nf,
                );
                out.push(tid);
            }
            other => {
                return Err(format!(
                    "NF kind {other} has no P4 implementation (Table 3)"
                ));
            }
        }
        Ok(out)
    }

    /// Entries for a branch Match: per (canonical spi reaching this node,
    /// gate): the hash range or VLAN filter, gate metadata, and the SPI
    /// rewrite from the routing plan's branch map.
    fn match_entries(
        &self,
        ci: usize,
        id: NodeId,
        node: &lemur_core::graph::NfNode,
    ) -> Vec<TableEntry> {
        let g = &self.problem.chains[ci].graph;
        let gates: Vec<usize> = g.out_edges(id).iter().map(|e| e.gate).collect();
        let n_gates = gates.len().max(1);
        // SPI contexts at this node.
        let mut spis: Vec<u32> = self
            .routing
            .branch_map
            .keys()
            .filter(|(_, b, _)| *b == id)
            .map(|(spi, _, _)| *spi)
            .collect();
        spis.sort_unstable();
        spis.dedup();
        if spis.is_empty() {
            spis.push(0);
        }
        let mut entries = Vec::new();
        for spi in spis {
            for (gi, gate) in gates.iter().enumerate() {
                let spi_after = self
                    .routing
                    .branch_map
                    .get(&(spi, id, *gate))
                    .copied()
                    .unwrap_or(spi);
                // Filter: explicit vlan entries or an even hash split.
                let (hash_match, vlan_match) =
                    if let Some(list) = node.params.get("entries").and_then(ParamValue::as_list) {
                        let vlan = list.get(gi).and_then(|v| {
                            v.as_dict()?.get("vlan_tag").and_then(ParamValue::as_int)
                        });
                        (
                            MatchValue::Any,
                            vlan.map(|v| MatchValue::Ternary {
                                value: v as u64,
                                mask: 0xfff,
                            })
                            .unwrap_or(MatchValue::Any),
                        )
                    } else {
                        let lo = (u64::MAX / n_gates as u64).saturating_mul(gi as u64);
                        let hi = if gi + 1 == n_gates {
                            u64::MAX
                        } else {
                            (u64::MAX / n_gates as u64).saturating_mul(gi as u64 + 1) - 1
                        };
                        (MatchValue::Range { lo, hi }, MatchValue::Any)
                    };
                let spi_key = if spi == 0 {
                    MatchValue::Any
                } else {
                    MatchValue::Ternary {
                        value: spi as u64,
                        mask: 0x00ff_ffff,
                    }
                };
                entries.push(TableEntry {
                    keys: vec![spi_key, hash_match, vlan_match],
                    action: 0,
                    action_data: vec![*gate as u64, spi_after as u64],
                    priority: (n_gates - gi) as u32,
                });
            }
        }
        entries
    }

    /// Render generated source and count lines by role.
    fn render(&self) -> (String, usize, usize) {
        let mut src = String::new();
        src.push_str("// Auto-generated by the Lemur meta-compiler. Do not edit.\n");
        src.push_str(&self.parser.to_p4_source());
        let mut steering = 0usize;
        let mut nf = 0usize;
        for (i, t) in self.program.tables.iter().enumerate() {
            let mut block = String::new();
            for a in &t.actions {
                block.push_str(&format!("action {}_{} () {{\n", t.name, a.name));
                for p in &a.primitives {
                    block.push_str(&format!("    {p:?};\n"));
                }
                block.push_str("}\n");
            }
            block.push_str(&format!("table {} {{\n    reads {{\n", t.name));
            for (f, k) in &t.keys {
                block.push_str(&format!("        {f} : {k:?};\n"));
            }
            block.push_str("    }\n    actions {\n");
            for a in &t.actions {
                block.push_str(&format!("        {}_{};\n", t.name, a.name));
            }
            block.push_str(&format!("    }}\n    size : {};\n}}\n", t.size));
            let lines = block.lines().count();
            match self.roles[i] {
                TableRole::Steering => steering += lines,
                TableRole::Nf => nf += lines,
            }
            src.push_str(&block);
        }
        // Control block (attributed to steering: it is pure coordination).
        let control = format!("control ingress {:#?}\n", self.program.control);
        steering += control.lines().count();
        src.push_str(&control);
        (src, steering, nf)
    }
}

fn aggregate_masks(agg: &Option<lemur_packet::TrafficAggregate>) -> (MatchValue, MatchValue) {
    let to_match = |c: Option<lemur_packet::ipv4::Cidr>| match c {
        Some(c) => MatchValue::Ternary {
            value: c.address().to_u32() as u64 & c.mask() as u64,
            mask: c.mask() as u64,
        },
        None => MatchValue::Any,
    };
    match agg {
        Some(a) => (to_match(a.src), to_match(a.dst)),
        None => (MatchValue::Any, MatchValue::Any),
    }
}

fn acl_size(params: &NfParams) -> usize {
    params
        .get("rules")
        .and_then(ParamValue::as_list)
        .map(|l| l.len())
        .filter(|l| *l > 0)
        .unwrap_or_else(|| params.int_or("num_rules", 1024) as usize)
        .max(1)
}

fn nat_size(params: &NfParams) -> usize {
    params.int_or("entries", 12_000).max(1) as usize
}

fn acl_entries(params: &NfParams) -> Vec<TableEntry> {
    let mut out = Vec::new();
    if let Some(list) = params.get("rules").and_then(ParamValue::as_list) {
        for (i, item) in list.iter().enumerate() {
            let Some(d) = item.as_dict() else { continue };
            let cidr = |key: &str| {
                d.get(key)
                    .and_then(ParamValue::as_str)
                    .and_then(|s| s.parse::<lemur_packet::ipv4::Cidr>().ok())
            };
            let to_match = |c: Option<lemur_packet::ipv4::Cidr>| match c {
                Some(c) => MatchValue::Ternary {
                    value: c.address().to_u32() as u64 & c.mask() as u64,
                    mask: c.mask() as u64,
                },
                None => MatchValue::Any,
            };
            let drop = d.get("drop").and_then(ParamValue::as_bool).unwrap_or(false);
            out.push(TableEntry {
                keys: vec![
                    to_match(cidr("src_ip")),
                    to_match(cidr("dst_ip")),
                    MatchValue::Any,
                    MatchValue::Any,
                ],
                action: usize::from(drop),
                action_data: vec![],
                priority: 100 - i as u32,
            });
        }
    }
    if out.is_empty() {
        // Bare ACL: permit everything.
        out.push(TableEntry {
            keys: vec![MatchValue::Any; 4],
            action: 0,
            action_data: vec![],
            priority: 0,
        });
    }
    out
}

/// The NF-local parser tree each standalone P4 NF declares (§A.2.1).
pub fn nf_local_parser(kind: NfKind) -> ParserTree {
    use well_known::*;
    let mut t = ParserTree::new("ethernet");
    t.add_transition("ethernet", ETH_IPV4, "ipv4")
        .add_transition("ethernet", ETH_NSH, "nsh")
        .add_transition("nsh", ETH_IPV4, "ipv4");
    match kind {
        NfKind::Tunnel | NfKind::Detunnel | NfKind::Match => {
            t.add_transition("ethernet", ETH_VLAN, "vlan")
                .add_transition("vlan", ETH_IPV4, "ipv4");
        }
        _ => {}
    }
    match kind {
        NfKind::Acl | NfKind::Nat | NfKind::Lb | NfKind::Match => {
            t.add_transition("ipv4", IP_TCP, "tcp")
                .add_transition("ipv4", IP_UDP, "udp");
        }
        _ => {}
    }
    t
}
