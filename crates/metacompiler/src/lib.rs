//! # lemur-metacompiler
//!
//! Lemur's meta-compiler (§4): takes NF chain specifications plus the
//! Placer's placement and generates everything needed to execute the
//! chains across platforms:
//!
//! * [`routing`] — NSH service-path synthesis: SPI/SI assignment per
//!   decomposed path, encap/decap minimization (one encap at the head and
//!   one decap at the tail of each service path), branch SPI-rewrite maps,
//!   and the demux configuration for every server.
//! * [`p4gen`] — P4 program synthesis for the PISA ToR: the standalone-NF
//!   library, §A.2.1 parser-tree unification, §A.2.2 DAG→tree conversion
//!   (branching nodes become exclusive `Switch` cases; merging nodes are
//!   re-attached at a common ancestor behind metadata guards), and the
//!   §4.2 dependency-elimination optimizations (a)–(d), each toggleable so
//!   their stage cost can be measured.
//! * [`bessgen`] — BESS pipeline generation per server: NSHdecap/demux,
//!   run-to-completion subgroup instances with replica counts, NSHencap,
//!   scheduler-tree core assignment, and the textual BESS script.
//! * [`ebpfgen`] — eBPF program generation for SmartNIC-resident NFs with
//!   loop unrolling and full inlining (§A.3).
//! * [`ofgen`] — OpenFlow rules using the 12-bit VLAN VID as SPI/SI.
//! * [`oracle`] — [`oracle::CompilerOracle`]: the production
//!   `lemur_placer::StageOracle` that synthesizes the unified P4 program
//!   and invokes the `lemur-p4sim` stage-packing compiler; and
//!   [`oracle::CachedCompilerOracle`], the same oracle with a sharded
//!   memoized verdict cache keyed by program fingerprint.
//! * [`loc`] — generated-lines-of-code accounting for the §5.3
//!   "meta-compiler benefits" experiment.

pub mod bessgen;
pub mod ebpfgen;
pub mod fuse;
pub mod loc;
pub mod ofgen;
pub mod oracle;
pub mod p4gen;
pub mod routing;

pub use fuse::{FusedSegment, NfRuntime, RuntimeMode};
pub use oracle::{CachedCompilerOracle, CompilerOracle};
pub use p4gen::{P4GenOptions, SynthesizedP4};
pub use routing::{Location, PathRoute, RoutingPlan, Segment};

use lemur_placer::placement::{EvaluatedPlacement, PlacementProblem};

/// Everything the meta-compiler produces for one placement.
pub struct Deployment {
    pub routing: RoutingPlan,
    pub p4: SynthesizedP4,
    pub bess: Vec<bessgen::ServerPipeline>,
    pub ebpf: Vec<ebpfgen::NicProgram>,
    pub stats: loc::CodegenStats,
}

/// Why meta-compilation of a placement failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// P4 synthesis rejected the switch program.
    P4(String),
    /// eBPF generation rejected a SmartNIC assignment.
    Ebpf(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::P4(msg) => write!(f, "p4 synthesis: {msg}"),
            CompileError::Ebpf(msg) => write!(f, "ebpf generation: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Run the full meta-compilation pipeline (reference server runtime).
pub fn compile(
    problem: &PlacementProblem,
    placement: &EvaluatedPlacement,
) -> Result<Deployment, CompileError> {
    compile_with_options(problem, placement, P4GenOptions::default())
}

/// Full pipeline with server subgroups compiled into fused batch-sweep
/// segments (see [`fuse`]). Routing, P4, and eBPF outputs are identical to
/// [`compile`]; only the server runtime representation changes.
pub fn compile_fused(
    problem: &PlacementProblem,
    placement: &EvaluatedPlacement,
) -> Result<Deployment, CompileError> {
    compile_inner_with_mode(
        problem,
        placement,
        P4GenOptions::default(),
        None,
        RuntimeMode::Fused,
    )
}

/// Full pipeline with explicit P4 generation options (used by the stage
/// optimization experiments).
pub fn compile_with_options(
    problem: &PlacementProblem,
    placement: &EvaluatedPlacement,
    p4_options: P4GenOptions,
) -> Result<Deployment, CompileError> {
    compile_inner(problem, placement, p4_options, None)
}

/// Re-compile a *repaired sub-problem* without global renumbering:
/// `spi_bases[i]` is the original base SPI of the sub-problem's chain `i`
/// (take `routing.entry_spi[kept[i]]` from the pre-failure deployment).
/// Surviving chains keep their original service-path identifiers, so a
/// live epoch swap changes only the tables that actually must change.
pub fn compile_repair(
    problem: &PlacementProblem,
    placement: &EvaluatedPlacement,
    spi_bases: &[u32],
) -> Result<Deployment, CompileError> {
    compile_inner(problem, placement, P4GenOptions::default(), Some(spi_bases))
}

fn compile_inner(
    problem: &PlacementProblem,
    placement: &EvaluatedPlacement,
    p4_options: P4GenOptions,
    spi_bases: Option<&[u32]>,
) -> Result<Deployment, CompileError> {
    compile_inner_with_mode(
        problem,
        placement,
        p4_options,
        spi_bases,
        RuntimeMode::Reference,
    )
}

fn compile_inner_with_mode(
    problem: &PlacementProblem,
    placement: &EvaluatedPlacement,
    p4_options: P4GenOptions,
    spi_bases: Option<&[u32]>,
    mode: RuntimeMode,
) -> Result<Deployment, CompileError> {
    let routing = routing::plan_with_spi_bases(problem, &placement.assignment, spi_bases);
    let p4 = p4gen::synthesize(problem, &placement.assignment, &routing, p4_options)
        .map_err(CompileError::P4)?;
    let bess = bessgen::generate_with_mode(problem, placement, &routing, mode);
    let ebpf = ebpfgen::generate(problem, placement, &routing).map_err(CompileError::Ebpf)?;
    let stats = loc::account(problem, &p4, &bess, &ebpf);
    Ok(Deployment {
        routing,
        p4,
        bess,
        ebpf,
        stats,
    })
}
