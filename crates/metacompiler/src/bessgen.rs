//! BESS pipeline generation (§4.2 "Codegen for BESS packet steering and NF
//! scheduling", §A.1).
//!
//! For every server with placed subgroups, generate:
//!
//! * the demux configuration: `(SPI, SI) → (subgroup, replica by flow
//!   hash)` entries for the shared `NSHdecap` module;
//! * runnable [`lemur_bess::Subgroup`] instances, one per replica;
//! * the mux rule: each departure re-encapsulates with `(SPI', SI−1)`,
//!   where `SPI'` applies the branch rewrite if the subgroup's tail was a
//!   branch `Match` (gate → SPI from the routing plan);
//! * the per-core scheduler trees (round-robin roots, `t_max` rate
//!   enforcement);
//! * a textual BESS script for the LoC accounting.

use crate::fuse::{FusedSegment, NfRuntime, RuntimeMode};
use crate::routing::{Location, RoutingPlan};
use lemur_bess::demux::{Demux, DemuxKey};
use lemur_bess::scheduler::{SchedulerTree, TaskId};
use lemur_bess::subgroup::Subgroup;
use lemur_core::graph::NodeId;
use lemur_nf::build_nf;
use lemur_nf::fused::FusedNf;
use lemur_placer::placement::{EvaluatedPlacement, PlacementProblem};
use std::collections::HashMap;

/// One replica instance of one subgroup, pinned to a core.
pub struct SubgroupInstance {
    pub subgroup_idx: usize,
    pub replica: usize,
    pub core: usize,
    pub runtime: NfRuntime,
}

/// How a packet leaves a subgroup.
#[derive(Debug, Clone, PartialEq)]
pub struct MuxRule {
    /// Branch rewrites: `(incoming spi, gate) → outgoing spi`. Empty for
    /// non-branch tails (spi unchanged).
    pub gate_spi: HashMap<(u32, usize), u32>,
}

/// The generated pipeline for one server.
pub struct ServerPipeline {
    pub server: usize,
    pub demux: Demux,
    /// Instances in execution order; index via `instance_map`.
    pub instances: Vec<SubgroupInstance>,
    /// `(subgroup idx, replica) → index into instances`.
    pub instance_map: HashMap<(usize, usize), usize>,
    /// Per-subgroup mux behaviour.
    pub mux_rules: HashMap<usize, MuxRule>,
    /// Intra-server wiring: `(subgroup idx, gate) → next subgroup idx` for
    /// consecutive same-server subgroups (a branch point splits subgroups
    /// without bouncing through the ToR — BESS connects them by queues).
    pub internal_next: HashMap<(usize, usize), usize>,
    /// Replica count per subgroup (for internal-hop flow hashing).
    pub replicas: HashMap<usize, usize>,
    /// One scheduler tree per worker core used.
    pub schedulers: HashMap<usize, SchedulerTree>,
    /// Generated BESS script text.
    pub script: String,
}

/// Generate pipelines for every server with placed work, using the
/// reference per-NF runtime.
pub fn generate(
    problem: &PlacementProblem,
    placement: &EvaluatedPlacement,
    routing: &RoutingPlan,
) -> Vec<ServerPipeline> {
    generate_with_mode(problem, placement, routing, RuntimeMode::Reference)
}

/// Generate pipelines with an explicit runtime mode: `Reference` emits
/// per-NF `Subgroup` runtimes, `Fused` compiles each subgroup into a
/// [`FusedSegment`] sweep (see [`crate::fuse`]).
pub fn generate_with_mode(
    problem: &PlacementProblem,
    placement: &EvaluatedPlacement,
    routing: &RoutingPlan,
    mode: RuntimeMode,
) -> Vec<ServerPipeline> {
    let mut pipelines = Vec::new();
    for server in 0..problem.topology.servers.len() {
        let sg_indices: Vec<usize> = placement
            .subgroups
            .iter()
            .enumerate()
            .filter(|(_, sg)| sg.server == server)
            .map(|(i, _)| i)
            .collect();
        if sg_indices.is_empty() {
            continue;
        }
        let mut demux = Demux::new();
        let mut instances = Vec::new();
        let mut instance_map = HashMap::new();
        let mut mux_rules: HashMap<usize, MuxRule> = HashMap::new();
        let mut internal_next: HashMap<(usize, usize), usize> = HashMap::new();
        let mut replicas: HashMap<usize, usize> = HashMap::new();
        // node → subgroup index, for intra-server wiring.
        let mut node_sg: HashMap<(usize, NodeId), usize> = HashMap::new();
        for &si in &sg_indices {
            let sg = &placement.subgroups[si];
            for id in &sg.nodes {
                node_sg.insert((sg.chain, *id), si);
            }
            replicas.insert(si, sg.cores);
        }
        let mut schedulers: HashMap<usize, SchedulerTree> = HashMap::new();
        let mut script = String::from(
            "# Auto-generated BESS pipeline (Lemur meta-compiler)\n\
             port0 = PMDPort(port_id=0)\n\
             inc = PortInc(port=port0)\n\
             out = PortOut(port=port0)\n\
             nshdecap = NSHdecap()\n\
             nshencap = NSHencap()\n\
             inc -> nshdecap\n",
        );

        // Core assignment: pack replicas onto worker cores round-robin,
        // skipping the demux core (core 0).
        let worker_cores = problem.topology.worker_cores(server);
        let mut next_core = 0usize;

        for &si in &sg_indices {
            let sg = &placement.subgroups[si];
            let chain = &problem.chains[sg.chain];
            // Subgroups are non-empty by construction; an empty one has
            // nothing to demux, schedule, or wire.
            let (Some(&head), Some(&tail)) = (sg.nodes.first(), sg.nodes.last()) else {
                continue;
            };
            // Each replica gets a fresh-state runtime built from the same
            // node specs (equivalent to building a prototype and calling
            // `clone_fresh`, for either runtime mode).
            let name = format!("c{}_sg_{}", sg.chain, chain.graph.node(head).name);
            let make_runtime = || match mode {
                RuntimeMode::Reference => NfRuntime::Boxed(Subgroup::new(
                    &name,
                    sg.nodes
                        .iter()
                        .map(|id| {
                            let n = chain.graph.node(*id);
                            build_nf(n.kind, &n.params)
                        })
                        .collect(),
                )),
                RuntimeMode::Fused => NfRuntime::Fused(FusedSegment::new(
                    &name,
                    sg.nodes
                        .iter()
                        .map(|id| {
                            let n = chain.graph.node(*id);
                            FusedNf::build(n.kind, &n.params)
                        })
                        .collect(),
                )),
            };
            for r in 0..sg.cores {
                let core = 1 + (next_core % worker_cores.max(1));
                next_core += 1;
                let runtime = make_runtime();
                let inst_idx = instances.len();
                instances.push(SubgroupInstance {
                    subgroup_idx: si,
                    replica: r,
                    core,
                    runtime,
                });
                instance_map.insert((si, r), inst_idx);
                let sched = schedulers.entry(core).or_default();
                let t_max = chain.slo.map(|s| s.t_max_bps).unwrap_or(f64::INFINITY);
                if t_max.is_finite() {
                    sched.add_rate_limited_task(TaskId(inst_idx), t_max, t_max / 100.0);
                } else {
                    sched.add_task(TaskId(inst_idx));
                }
                script.push_str(&format!(
                    "{name}_r{r} = Subgroup(core={core})  # {} NFs\n",
                    sg.nodes.len()
                ));
            }
            script.push_str(&format!("nshdecap -> {name}_r*:hash(flow)\n"));
            script.push_str(&format!("{name}_r* -> nshencap -> out\n"));

            // Demux entries: every (spi, si) of a server segment whose
            // first node belongs to this subgroup.
            for path in &routing.paths {
                if path.chain != sg.chain {
                    continue;
                }
                for (k, seg) in path.segments.iter().enumerate() {
                    if seg.location != Location::Server(server) || seg.nodes.is_empty() {
                        continue;
                    }
                    if !sg.nodes.contains(&seg.nodes[0]) {
                        continue;
                    }
                    let spi = routing.canonical_spi(problem, path, k);
                    demux.add_entry(DemuxKey { spi, si: seg.si }, si, sg.cores);
                }
            }

            // Mux rule: branch rewrite if the tail node is a branch.
            let mut gate_spi = HashMap::new();
            if chain.graph.is_branch(tail) {
                for ((spi, node, gate), spi_after) in &routing.branch_map {
                    if *node == tail {
                        gate_spi.insert((*spi, *gate), *spi_after);
                    }
                }
            }
            mux_rules.insert(si, MuxRule { gate_spi });

            // Intra-server wiring: a tail edge to another subgroup on this
            // same server continues inside the pipeline (no ToR bounce).
            for e in chain.graph.out_edges(tail) {
                if let Some(&target) = node_sg.get(&(sg.chain, e.to)) {
                    if placement.subgroups[target].nodes.first() == Some(&e.to) {
                        internal_next.insert((si, e.gate), target);
                    }
                }
            }
        }

        pipelines.push(ServerPipeline {
            server,
            demux,
            instances,
            instance_map,
            mux_rules,
            internal_next,
            replicas,
            schedulers,
            script,
        });
    }
    pipelines
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_core::chains::{canonical_chain, CanonicalChain};
    use lemur_core::graph::ChainSpec;
    use lemur_core::Slo;
    use lemur_placer::corealloc::CoreStrategy;
    use lemur_placer::profiles::NfProfiles;
    use lemur_placer::topology::Topology;

    fn setup(which: CanonicalChain, delta: f64) -> (PlacementProblem, EvaluatedPlacement) {
        let mut p = PlacementProblem::new(
            vec![ChainSpec {
                name: format!("chain{}", which.index()),
                graph: canonical_chain(which),
                slo: None,
                aggregate: None,
            }],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        let base = p.base_rate_bps(0);
        p.chains[0].slo = Some(Slo::elastic_pipe(delta * base, 100e9));
        let a = lemur_placer::baselines::hw_preferred_assignment(&p);
        let e = p.evaluate(&a, CoreStrategy::WaterFill).unwrap();
        (p, e)
    }

    #[test]
    fn chain3_pipeline_structure() {
        let (p, e) = setup(CanonicalChain::Chain3, 0.5);
        let routing = crate::routing::plan(&p, &e.assignment);
        let pipes = generate(&p, &e, &routing);
        assert_eq!(pipes.len(), 1);
        let pipe = &pipes[0];
        // HW-preferred chain 3 leaves Dedup and Limiter on the server →
        // two subgroups, one instance each at δ=0.5.
        assert_eq!(pipe.demux.num_entries(), 2);
        assert!(!pipe.instances.is_empty());
        assert!(pipe.script.contains("NSHdecap"));
        assert!(pipe.script.contains("Subgroup(core="));
        // Every instance maps back.
        for (i, inst) in pipe.instances.iter().enumerate() {
            assert_eq!(pipe.instance_map[&(inst.subgroup_idx, inst.replica)], i);
        }
    }

    #[test]
    fn replicated_subgroup_gets_instances() {
        let (p, e) = setup(CanonicalChain::Chain3, 2.0);
        let routing = crate::routing::plan(&p, &e.assignment);
        let pipes = generate(&p, &e, &routing);
        let pipe = &pipes[0];
        let dedup_sg = e
            .subgroups
            .iter()
            .enumerate()
            .find(|(_, sg)| {
                sg.nodes
                    .iter()
                    .any(|id| p.chains[0].graph.node(*id).kind == lemur_nf::NfKind::Dedup)
            })
            .unwrap();
        assert!(dedup_sg.1.cores >= 2);
        let replicas = pipe
            .instances
            .iter()
            .filter(|i| i.subgroup_idx == dedup_sg.0)
            .count();
        assert_eq!(replicas, dedup_sg.1.cores);
    }

    #[test]
    fn branch_mux_rules_present_for_server_branches() {
        // SW-preferred chain 2: the split Match lives on the server, so
        // its subgroup's mux rule must carry gate→SPI rewrites.
        let mut p = PlacementProblem::new(
            vec![ChainSpec {
                name: "chain2".into(),
                graph: canonical_chain(CanonicalChain::Chain2),
                slo: None,
                aggregate: None,
            }],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        let base = p.base_rate_bps(0);
        p.chains[0].slo = Some(Slo::elastic_pipe(0.5 * base, 100e9));
        let a = lemur_placer::baselines::sw_preferred_assignment(&p);
        let e = p.evaluate(&a, CoreStrategy::WaterFill).unwrap();
        let routing = crate::routing::plan(&p, &e.assignment);
        let pipes = generate(&p, &e, &routing);
        let has_gate_rules = pipes[0].mux_rules.values().any(|r| !r.gate_spi.is_empty());
        assert!(
            has_gate_rules,
            "server-side branch must produce SPI rewrites"
        );
    }

    #[test]
    fn schedulers_cover_all_instances() {
        let (p, e) = setup(CanonicalChain::Chain3, 1.5);
        let routing = crate::routing::plan(&p, &e.assignment);
        let pipes = generate(&p, &e, &routing);
        let pipe = &pipes[0];
        let scheduled: usize = pipe.schedulers.values().map(|s| s.num_tasks()).sum();
        assert_eq!(scheduled, pipe.instances.len());
    }
}
