//! The production stage oracle: synthesize the unified P4 program and
//! invoke the platform compiler (§3.2: "we then iteratively call a PISA
//! compiler to find the highest-ranked placement within the switch's stage
//! constraints").

use crate::p4gen::{self, P4GenOptions};
use crate::routing;
use lemur_p4sim::compiler::{compile, CompileError, CompileOptions};
use lemur_placer::oracle::{StageOracle, StageVerdict};
use lemur_placer::placement::{Assignment, PlacementProblem};
use lemur_placer::topology::Tor;

/// A [`StageOracle`] backed by real code generation + stage packing.
#[derive(Debug, Clone, Default)]
pub struct CompilerOracle {
    /// Code-generation options (the stage experiments toggle these).
    pub options: P4GenOptions,
}

impl CompilerOracle {
    /// Oracle with default (fully optimized) code generation.
    pub fn new() -> CompilerOracle {
        CompilerOracle::default()
    }

    /// Oracle generating naive (unoptimized) code.
    pub fn naive() -> CompilerOracle {
        CompilerOracle {
            options: P4GenOptions::naive(),
        }
    }
}

impl StageOracle for CompilerOracle {
    fn check(&self, problem: &PlacementProblem, assignment: &Assignment) -> StageVerdict {
        let Tor::Pisa(model) = &problem.topology.tor else {
            // No PISA switch: nothing to fit.
            return StageVerdict::Fits { stages: 0 };
        };
        let plan = routing::plan(problem, assignment);
        let synthesized = match p4gen::synthesize(problem, assignment, &plan, self.options) {
            Ok(s) => s,
            Err(_) => {
                // Parser conflicts and other synthesis failures reject the
                // placement like an over-full pipeline would.
                return StageVerdict::OutOfStages {
                    required: model.num_stages + 1,
                    available: model.num_stages,
                };
            }
        };
        match compile(&synthesized.program, model, CompileOptions::default()) {
            Ok(out) => StageVerdict::Fits {
                stages: out.num_stages_used,
            },
            Err(CompileError::OutOfStages {
                required,
                available,
            }) => StageVerdict::OutOfStages {
                required,
                available,
            },
            Err(CompileError::TableTooLarge(_)) => StageVerdict::OutOfStages {
                required: model.num_stages + 1,
                available: model.num_stages,
            },
        }
    }
}
