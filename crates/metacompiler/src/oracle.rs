//! The production stage oracle: synthesize the unified P4 program and
//! invoke the platform compiler (§3.2: "we then iteratively call a PISA
//! compiler to find the highest-ranked placement within the switch's stage
//! constraints").

use crate::p4gen::{self, P4GenOptions};
use crate::routing;
use lemur_p4sim::compiler::{compile, CompileError, CompileOptions};
use lemur_p4sim::ir::P4Program;
use lemur_p4sim::resources::PisaModel;
use lemur_placer::cache::{CacheStats, StageCache};
use lemur_placer::oracle::{StageOracle, StageVerdict};
use lemur_placer::placement::{Assignment, PlacementProblem};
use lemur_placer::topology::Tor;

/// A [`StageOracle`] backed by real code generation + stage packing.
#[derive(Debug, Clone, Default)]
pub struct CompilerOracle {
    /// Code-generation options (the stage experiments toggle these).
    pub options: P4GenOptions,
}

impl CompilerOracle {
    /// Oracle with default (fully optimized) code generation.
    pub fn new() -> CompilerOracle {
        CompilerOracle::default()
    }

    /// Oracle generating naive (unoptimized) code.
    pub fn naive() -> CompilerOracle {
        CompilerOracle {
            options: P4GenOptions::naive(),
        }
    }
}

/// Run the stage-packing compiler and map its outcome to a verdict.
fn compile_verdict(program: &P4Program, model: &PisaModel) -> StageVerdict {
    match compile(program, model, CompileOptions::default()) {
        Ok(out) => StageVerdict::Fits {
            stages: out.num_stages_used,
        },
        Err(CompileError::OutOfStages {
            required,
            available,
        }) => StageVerdict::OutOfStages {
            required,
            available,
        },
        // An oversized table or a structurally invalid program can never
        // fit, whatever the stage budget: reject the placement.
        Err(CompileError::TableTooLarge(_)) | Err(CompileError::Invalid(_)) => {
            StageVerdict::OutOfStages {
                required: model.num_stages + 1,
                available: model.num_stages,
            }
        }
    }
}

/// Synthesize the switch program for an assignment, or the rejection
/// verdict when synthesis itself fails.
fn synthesize_for(
    options: P4GenOptions,
    problem: &PlacementProblem,
    assignment: &Assignment,
    model: &PisaModel,
) -> Result<P4Program, StageVerdict> {
    let plan = routing::plan(problem, assignment);
    match p4gen::synthesize(problem, assignment, &plan, options) {
        Ok(s) => Ok(s.program),
        // Parser conflicts and other synthesis failures reject the
        // placement like an over-full pipeline would.
        Err(_) => Err(StageVerdict::OutOfStages {
            required: model.num_stages + 1,
            available: model.num_stages,
        }),
    }
}

impl StageOracle for CompilerOracle {
    fn check(&self, problem: &PlacementProblem, assignment: &Assignment) -> StageVerdict {
        let Tor::Pisa(model) = &problem.topology.tor else {
            // No PISA switch: nothing to fit.
            return StageVerdict::Fits { stages: 0 };
        };
        match synthesize_for(self.options, problem, assignment, model) {
            Ok(program) => compile_verdict(&program, model),
            Err(verdict) => verdict,
        }
    }
}

/// [`CompilerOracle`] with a memoized stage-packing step: verdicts are
/// cached in a [`StageCache`] keyed by the canonical fingerprint of the
/// synthesized program mixed with the hardware-model fingerprint.
/// Candidates that differ only in server/NIC choices synthesize the same
/// switch program, and δ-sweeps and repair passes re-probe programs seen
/// before — those probes skip stage packing entirely.
///
/// Compilation is a pure function of (program, model), both of which the
/// key covers, so a cached verdict always equals a fresh compile (the
/// cache-equivalence property test in `tests/proptest_cache.rs` checks
/// this on random chains and placements). Safe to share across the
/// placer's worker pool.
#[derive(Debug, Default)]
pub struct CachedCompilerOracle {
    inner: CompilerOracle,
    cache: StageCache,
}

impl CachedCompilerOracle {
    /// Cached oracle with default (fully optimized) code generation.
    pub fn new() -> CachedCompilerOracle {
        CachedCompilerOracle::default()
    }

    /// Cached oracle generating naive (unoptimized) code.
    pub fn naive() -> CachedCompilerOracle {
        CachedCompilerOracle {
            inner: CompilerOracle::naive(),
            cache: StageCache::new(),
        }
    }

    /// Cached oracle with explicit code-generation options.
    pub fn with_options(options: P4GenOptions) -> CachedCompilerOracle {
        CachedCompilerOracle {
            inner: CompilerOracle { options },
            cache: StageCache::new(),
        }
    }

    /// The underlying verdict cache (for stats snapshots and resets).
    pub fn cache(&self) -> &StageCache {
        &self.cache
    }
}

impl StageOracle for CachedCompilerOracle {
    fn check(&self, problem: &PlacementProblem, assignment: &Assignment) -> StageVerdict {
        let Tor::Pisa(model) = &problem.topology.tor else {
            return StageVerdict::Fits { stages: 0 };
        };
        match synthesize_for(self.inner.options, problem, assignment, model) {
            Ok(program) => {
                let key = program.fingerprint() ^ ((model.fingerprint() as u128) << 64);
                self.cache
                    .get_or_insert_with(key, || compile_verdict(&program, model))
            }
            Err(verdict) => verdict,
        }
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }
}
