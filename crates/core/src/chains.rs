//! The canonical NF chains of Table 2, plus the §5.2 "extreme" chain.
//!
//! "Our experiments use five different canonical chains … selected from
//! [the IETF SFC data-center use cases] and from our discussions with
//! ISPs." Subchains 6–8 are shared building blocks:
//!
//! * Subchain 6: `LB -> Limiter -> ACL`
//! * Subchain 7: `ACL -> Limiter`
//! * Subchain 8: `Detunnel -> Encrypt -> IPv4Fwd`

use crate::graph::{NfGraph, NodeId};
use lemur_nf::{NfKind, NfParams, ParamValue};

/// The five evaluation chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CanonicalChain {
    Chain1,
    Chain2,
    Chain3,
    Chain4,
    Chain5,
}

impl CanonicalChain {
    /// All five, in Table 2 order.
    pub const ALL: [CanonicalChain; 5] = [
        CanonicalChain::Chain1,
        CanonicalChain::Chain2,
        CanonicalChain::Chain3,
        CanonicalChain::Chain4,
        CanonicalChain::Chain5,
    ];

    /// Chain index (1-based, as the paper numbers them).
    pub fn index(&self) -> usize {
        match self {
            CanonicalChain::Chain1 => 1,
            CanonicalChain::Chain2 => 2,
            CanonicalChain::Chain3 => 3,
            CanonicalChain::Chain4 => 4,
            CanonicalChain::Chain5 => 5,
        }
    }
}

fn split_params(n: i64, salt: i64) -> NfParams {
    let mut p = NfParams::new();
    p.set("split", ParamValue::Int(n));
    // Distinct per-branch hash seeds: successive splits must decorrelate
    // (see `lemur_packet::flow::salted_hash`).
    p.set("salt", ParamValue::Int(salt));
    p
}

/// Canonical Limiters enforce the 100 Gbps experiment `t_max`, not the
/// NF-library default of 10 Gbps (the paper sets `t_max` = 100 Gbps in
/// all experiments, §5.1).
fn limiter_params() -> NfParams {
    let mut p = NfParams::new();
    p.set("rate_bps", ParamValue::Float(100e9));
    p.set("burst_bytes", ParamValue::Float(16.0 * 1024.0 * 1024.0));
    p
}

/// Subchain 7 (`ACL -> Limiter`) appended after `head` on `gate` with
/// `fraction`; returns the tail.
fn subchain7(g: &mut NfGraph, prefix: &str, head: NodeId, gate: usize, fraction: f64) -> NodeId {
    let acl = g.add_named(&format!("{prefix}_acl"), NfKind::Acl, NfParams::new());
    let lim = g.add_named(
        &format!("{prefix}_limiter"),
        NfKind::Limiter,
        limiter_params(),
    );
    g.connect_branch(head, acl, gate, fraction);
    g.connect(acl, lim);
    lim
}

/// Subchain 8 (`Detunnel -> Encrypt -> IPv4Fwd`) appended after `head` on
/// `gate` with `fraction`; returns the tail (the chain sink).
fn subchain8(g: &mut NfGraph, prefix: &str, head: NodeId, gate: usize, fraction: f64) -> NodeId {
    let det = g.add_named(
        &format!("{prefix}_detunnel"),
        NfKind::Detunnel,
        NfParams::new(),
    );
    let enc = g.add_named(
        &format!("{prefix}_encrypt"),
        NfKind::Encrypt,
        NfParams::new(),
    );
    let fwd = g.add_named(&format!("{prefix}_fwd"), NfKind::Ipv4Fwd, NfParams::new());
    g.connect_branch(head, det, gate, fraction);
    g.connect(det, enc);
    g.connect(enc, fwd);
    fwd
}

/// Subchain 6 (`LB -> Limiter -> ACL`) appended after `head` on `gate`;
/// returns the tail.
fn subchain6(g: &mut NfGraph, prefix: &str, head: NodeId, gate: usize, fraction: f64) -> NodeId {
    let lb = g.add_named(&format!("{prefix}_lb"), NfKind::Lb, NfParams::new());
    let lim = g.add_named(
        &format!("{prefix}_limiter"),
        NfKind::Limiter,
        limiter_params(),
    );
    let acl = g.add_named(&format!("{prefix}_acl"), NfKind::Acl, NfParams::new());
    g.connect_branch(head, lb, gate, fraction);
    g.connect(lb, lim);
    g.connect(lim, acl);
    acl
}

/// Build a canonical chain's NF graph.
pub fn canonical_chain(which: CanonicalChain) -> NfGraph {
    let mut g = NfGraph::new();
    match which {
        // Chain 1: BPF -> Subchain7 -> BPF -> UrlFilter -> Subchain8, with
        // side branches from each BPF to their own Subchain 8 instances.
        CanonicalChain::Chain1 => {
            let bpf1 = g.add_named("bpf1", NfKind::Match, split_params(2, 1));
            // Gate 1 of bpf1: straight to a Subchain 8 (half the traffic).
            subchain8(&mut g, "sc8a", bpf1, 1, 0.5);
            // Gate 0: Subchain 7, then the second BPF.
            let sc7_lim = subchain7(&mut g, "sc7", bpf1, 0, 0.5);
            let bpf2 = g.add_named("bpf2", NfKind::Match, split_params(2, 2));
            g.connect(sc7_lim, bpf2);
            // Gate 1 of bpf2: its own Subchain 8.
            subchain8(&mut g, "sc8b", bpf2, 1, 0.5);
            // Gate 0: UrlFilter then the final Subchain 8.
            let url = g.add_named("urlfilter", NfKind::UrlFilter, NfParams::new());
            g.connect_branch(bpf2, url, 0, 0.5);
            subchain8(&mut g, "sc8c", url, 0, 1.0);
        }
        // Chain 2: Encrypt -> LB -> 3x NAT (branched) -> IPv4Fwd.
        CanonicalChain::Chain2 => {
            let enc = g.add_named("encrypt", NfKind::Encrypt, NfParams::new());
            let lb = g.add_named("lb", NfKind::Lb, NfParams::new());
            g.connect(enc, lb);
            let split = g.add_named("split", NfKind::Match, split_params(3, 1));
            g.connect(lb, split);
            let fwd = g.add_named("fwd", NfKind::Ipv4Fwd, NfParams::new());
            for i in 0..3 {
                let nat = g.add_named(&format!("nat{i}"), NfKind::Nat, NfParams::new());
                g.connect_branch(split, nat, i, 1.0 / 3.0);
                g.connect(nat, fwd);
            }
        }
        // Chain 3: Dedup -> ACL -> Limiter -> LB -> IPv4Fwd.
        CanonicalChain::Chain3 => {
            let d = g.add_named("dedup", NfKind::Dedup, NfParams::new());
            let a = g.add_named("acl", NfKind::Acl, NfParams::new());
            let l = g.add_named("limiter", NfKind::Limiter, limiter_params());
            let b = g.add_named("lb", NfKind::Lb, NfParams::new());
            let f = g.add_named("fwd", NfKind::Ipv4Fwd, NfParams::new());
            g.connect(d, a);
            g.connect(a, l);
            g.connect(l, b);
            g.connect(b, f);
        }
        // Chain 4: Dedup -> ACL -> Monitor -> Tunnel -> BPF ->
        //          3x Subchain6 (branched) -> IPv4Fwd.
        CanonicalChain::Chain4 => {
            let d = g.add_named("dedup", NfKind::Dedup, NfParams::new());
            let a = g.add_named("acl", NfKind::Acl, NfParams::new());
            let m = g.add_named("monitor", NfKind::Monitor, NfParams::new());
            let t = g.add_named("tunnel", NfKind::Tunnel, NfParams::new());
            let bpf = g.add_named("bpf", NfKind::Match, split_params(3, 1));
            g.connect(d, a);
            g.connect(a, m);
            g.connect(m, t);
            g.connect(t, bpf);
            let fwd = g.add_named("fwd", NfKind::Ipv4Fwd, NfParams::new());
            for i in 0..3 {
                let tail = subchain6(&mut g, &format!("sc6_{i}"), bpf, i, 1.0 / 3.0);
                g.connect(tail, fwd);
            }
        }
        // Chain 5: ACL -> UrlFilter -> Fast Encrypt -> IPv4Fwd.
        CanonicalChain::Chain5 => {
            let a = g.add_named("acl", NfKind::Acl, NfParams::new());
            let u = g.add_named("urlfilter", NfKind::UrlFilter, NfParams::new());
            let fe = g.add_named("fastenc", NfKind::FastEncrypt, NfParams::new());
            let f = g.add_named("fwd", NfKind::Ipv4Fwd, NfParams::new());
            g.connect(a, u);
            g.connect(u, fe);
            g.connect(fe, f);
        }
    }
    g
}

/// The §5.2 extreme configuration: `BPF -> N x NAT (branched) -> IPv4Fwd`
/// (the paper uses N = 11 to blow the switch's stages, and shows 10 fit).
pub fn extreme_nat_chain(n_nats: usize) -> NfGraph {
    let mut g = NfGraph::new();
    let bpf = g.add_named("bpf", NfKind::Match, split_params(n_nats as i64, 1));
    let fwd = g.add_named("fwd", NfKind::Ipv4Fwd, NfParams::new());
    for i in 0..n_nats {
        let nat = g.add_named(&format!("nat{i}"), NfKind::Nat, NfParams::new());
        g.connect_branch(bpf, nat, i, 1.0 / n_nats as f64);
        g.connect(nat, fwd);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_chains_validate() {
        for which in CanonicalChain::ALL {
            let g = canonical_chain(which);
            g.validate()
                .unwrap_or_else(|e| panic!("chain {which:?} invalid: {e}"));
        }
    }

    #[test]
    fn chain_node_counts() {
        // Chain 1: bpf1 + sc8a(3) + sc7(2) + bpf2 + sc8b(3) + url + sc8c(3) = 14
        assert_eq!(canonical_chain(CanonicalChain::Chain1).num_nodes(), 14);
        // Chain 2: encrypt, lb, split, 3 nat, fwd = 7
        assert_eq!(canonical_chain(CanonicalChain::Chain2).num_nodes(), 7);
        assert_eq!(canonical_chain(CanonicalChain::Chain3).num_nodes(), 5);
        // Chain 4: 5 head + bpf? = dedup,acl,monitor,tunnel,bpf + 3*3 + fwd = 15
        assert_eq!(canonical_chain(CanonicalChain::Chain4).num_nodes(), 15);
        assert_eq!(canonical_chain(CanonicalChain::Chain5).num_nodes(), 4);
    }

    #[test]
    fn chain1_decomposes_into_three_paths() {
        let g = canonical_chain(CanonicalChain::Chain1);
        let chains = g.decompose();
        assert_eq!(chains.len(), 3);
        let total: f64 = chains.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Weights 0.5, 0.25, 0.25.
        let mut w: Vec<f64> = chains.iter().map(|c| c.weight).collect();
        w.sort_by(f64::total_cmp);
        assert!((w[0] - 0.25).abs() < 1e-9);
        assert!((w[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn chain2_merges_at_fwd() {
        let g = canonical_chain(CanonicalChain::Chain2);
        let sinks = g.sinks();
        assert_eq!(sinks.len(), 1);
        assert!(g.is_merge(sinks[0]));
        assert_eq!(g.decompose().len(), 3);
    }

    #[test]
    fn chain3_is_linear() {
        let g = canonical_chain(CanonicalChain::Chain3);
        let chains = g.decompose();
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].weight, 1.0);
        let kinds: Vec<NfKind> = chains[0].nodes.iter().map(|id| g.node(*id).kind).collect();
        assert_eq!(
            kinds,
            vec![
                NfKind::Dedup,
                NfKind::Acl,
                NfKind::Limiter,
                NfKind::Lb,
                NfKind::Ipv4Fwd
            ]
        );
    }

    #[test]
    fn chain4_has_three_branches() {
        let g = canonical_chain(CanonicalChain::Chain4);
        assert_eq!(g.decompose().len(), 3);
        // Each path: dedup,acl,monitor,tunnel,bpf,lb,limiter,acl,fwd = 9 nodes
        for c in g.decompose() {
            assert_eq!(c.nodes.len(), 9);
        }
    }

    #[test]
    fn extreme_chain_shape() {
        let g = extreme_nat_chain(11);
        g.validate().unwrap();
        assert_eq!(g.num_nodes(), 13);
        assert_eq!(g.decompose().len(), 11);
        let nats = g.nodes().filter(|(_, n)| n.kind == NfKind::Nat).count();
        assert_eq!(nats, 11);
    }
}
