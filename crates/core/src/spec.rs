//! The NF chain specification language (§2, §A.1.1).
//!
//! A BESS-inspired dataflow language with a hand-written lexer and
//! recursive-descent parser (standing in for the paper's 120 lines of
//! ANTLR). Supported forms:
//!
//! ```text
//! # comments
//! acl0 = ACL(rules=[{'dst_ip': '10.0.0.0/8', 'drop': False}])   # instance
//! sub8 = Detunnel -> Encrypt -> IPv4Fwd                         # sub-chain
//! c1 = acl0 -> [{'vlan_tag': 0x1, Encrypt}, {}] -> sub8          # branches
//! slo(c1, t_min='1G', t_max='10G', d_max='45us')                 # SLO
//! aggregate(c1, src='203.0.113.0/24')                            # traffic
//! ```
//!
//! Branch lists follow the paper's `[{'vlan_tag': 0x1, Encryption}]`
//! syntax: each `{}` is one branch whose key/value pairs are match filters
//! (plus an optional `frac` weight) and whose trailing bare element is the
//! branch body. Branching is realized by an implicit `BPF` (Match) node,
//! matching §A.2.2 ("traffic is split into downstream subgroups with a set
//! of BPF rules"). Referencing a previously defined sub-chain splices in a
//! fresh copy with prefixed instance names.

use crate::graph::{ChainSpec, NfGraph, NodeId};
use crate::slo::Slo;
use lemur_nf::{NfKind, NfParams, ParamValue};
use lemur_packet::TrafficAggregate;
use std::collections::BTreeMap;
use std::fmt;

/// A parsed specification.
#[derive(Debug, Default)]
pub struct Spec {
    /// Top-level chains, in definition order (sub-chains that were only
    /// spliced into others are not listed).
    pub chains: Vec<ChainSpec>,
}

/// Parse errors with line information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Arrow,
    Eq,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Newline,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: message.into(),
        }
    }

    fn tokens(mut self) -> Result<Vec<(Tok, usize)>, ParseError> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    out.push((Tok::Newline, self.line));
                    self.line += 1;
                    self.pos += 1;
                }
                b'#' => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'-' => {
                    if self.src.get(self.pos + 1) == Some(&b'>') {
                        out.push((Tok::Arrow, self.line));
                        self.pos += 2;
                    } else if self.src.get(self.pos + 1).is_some_and(u8::is_ascii_digit) {
                        let t = self.number()?;
                        out.push((t, self.line));
                    } else {
                        return Err(self.error("unexpected '-'"));
                    }
                }
                b'=' => {
                    out.push((Tok::Eq, self.line));
                    self.pos += 1;
                }
                b'(' => {
                    out.push((Tok::LParen, self.line));
                    self.pos += 1;
                }
                b')' => {
                    out.push((Tok::RParen, self.line));
                    self.pos += 1;
                }
                b'[' => {
                    out.push((Tok::LBracket, self.line));
                    self.pos += 1;
                }
                b']' => {
                    out.push((Tok::RBracket, self.line));
                    self.pos += 1;
                }
                b'{' => {
                    out.push((Tok::LBrace, self.line));
                    self.pos += 1;
                }
                b'}' => {
                    out.push((Tok::RBrace, self.line));
                    self.pos += 1;
                }
                b',' => {
                    out.push((Tok::Comma, self.line));
                    self.pos += 1;
                }
                b':' => {
                    out.push((Tok::Colon, self.line));
                    self.pos += 1;
                }
                b'\'' | b'"' => {
                    let quote = c;
                    self.pos += 1;
                    let start = self.pos;
                    while self.pos < self.src.len() && self.src[self.pos] != quote {
                        self.pos += 1;
                    }
                    if self.pos >= self.src.len() {
                        return Err(self.error("unterminated string"));
                    }
                    let s = String::from_utf8_lossy(&self.src[start..self.pos]).to_string();
                    self.pos += 1;
                    out.push((Tok::Str(s), self.line));
                }
                b'0'..=b'9' => {
                    let t = self.number()?;
                    out.push((t, self.line));
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let start = self.pos;
                    while self.pos < self.src.len()
                        && (self.src[self.pos].is_ascii_alphanumeric()
                            || self.src[self.pos] == b'_')
                    {
                        self.pos += 1;
                    }
                    let s = String::from_utf8_lossy(&self.src[start..self.pos]).to_string();
                    out.push((Tok::Ident(s), self.line));
                }
                other => {
                    return Err(self.error(format!("unexpected character {:?}", other as char)))
                }
            }
        }
        out.push((Tok::Newline, self.line));
        Ok(out)
    }

    fn number(&mut self) -> Result<Tok, ParseError> {
        let start = self.pos;
        if self.src[self.pos] == b'-' {
            self.pos += 1;
        }
        // Hex literal (0x...).
        if self.src[self.pos] == b'0' && self.src.get(self.pos + 1) == Some(&b'x') {
            self.pos += 2;
            let hs = self.pos;
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_hexdigit() {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[hs..self.pos]).unwrap();
            let v = i64::from_str_radix(text, 16).map_err(|_| self.error("bad hex literal"))?;
            return Ok(Tok::Int(v));
        }
        let mut is_float = false;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                    if self.src.get(self.pos) == Some(&b'-') {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Tok::Float)
                .map_err(|_| self.error("bad float"))
        } else {
            text.parse::<i64>()
                .map(Tok::Int)
                .map_err(|_| self.error("bad integer"))
        }
    }
}

// --------------------------------------------------------------- parser --

/// Parse a rate like `'10G'`, `'500M'`, `'1.5G'`, or a plain bps number.
pub fn parse_rate(v: &ParamValue) -> Option<f64> {
    match v {
        ParamValue::Int(i) => Some(*i as f64),
        ParamValue::Float(f) => Some(*f),
        ParamValue::Str(s) => {
            let s = s.trim();
            let (num, mult) = match s.chars().last()? {
                'K' | 'k' => (&s[..s.len() - 1], 1e3),
                'M' | 'm' => (&s[..s.len() - 1], 1e6),
                'G' | 'g' => (&s[..s.len() - 1], 1e9),
                'T' | 't' => (&s[..s.len() - 1], 1e12),
                _ => (s, 1.0),
            };
            num.parse::<f64>().ok().map(|n| n * mult)
        }
        _ => None,
    }
}

/// Parse a delay like `'45us'`, `'1ms'`, `'2s'` into nanoseconds.
pub fn parse_delay_ns(v: &ParamValue) -> Option<f64> {
    match v {
        ParamValue::Int(i) => Some(*i as f64),
        ParamValue::Float(f) => Some(*f),
        ParamValue::Str(s) => {
            let s = s.trim();
            for (suffix, mult) in [("ns", 1.0), ("us", 1e3), ("ms", 1e6), ("s", 1e9)] {
                if let Some(num) = s.strip_suffix(suffix) {
                    return num.parse::<f64>().ok().map(|n| n * mult);
                }
            }
            s.parse::<f64>().ok()
        }
        _ => None,
    }
}

/// An expression fragment: the sub-graph plus its entry node and exits
/// (tail nodes with the gate+fraction that must connect onward).
#[derive(Debug, Clone)]
struct Fragment {
    entry: NodeId,
    exits: Vec<(NodeId, usize, f64)>,
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    graph: NfGraph,
    /// name → defined sub-chain (as a graph to splice).
    defs: BTreeMap<String, DefChain>,
    /// Names of definitions referenced (spliced) by later chains.
    used_defs: std::collections::BTreeSet<String>,
    /// name → value macro.
    macros: BTreeMap<String, ParamValue>,
    splice_counter: usize,
}

#[derive(Debug, Clone)]
struct DefChain {
    graph: NfGraph,
    entry: NodeId,
    exits: Vec<(NodeId, usize, f64)>,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks.get(self.pos).map(|(_, l)| *l).unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn skip_newlines(&mut self) {
        while self.eat(&Tok::Newline) {}
    }

    // value := INT | FLOAT | STRING | True | False | list | dict | macro-ref
    fn value(&mut self) -> Result<ParamValue, ParseError> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(ParamValue::Int(i)),
            Some(Tok::Float(f)) => Ok(ParamValue::Float(f)),
            Some(Tok::Str(s)) => Ok(ParamValue::Str(s)),
            Some(Tok::Ident(id)) => match id.as_str() {
                "True" | "true" => Ok(ParamValue::Bool(true)),
                "False" | "false" => Ok(ParamValue::Bool(false)),
                name => self
                    .macros
                    .get(name)
                    .cloned()
                    .ok_or_else(|| self.err(format!("unknown value identifier {name}"))),
            },
            Some(Tok::LBracket) => {
                let mut items = Vec::new();
                loop {
                    self.skip_newlines();
                    if self.eat(&Tok::RBracket) {
                        break;
                    }
                    items.push(self.value()?);
                    self.skip_newlines();
                    if !self.eat(&Tok::Comma) {
                        self.skip_newlines();
                        self.expect(Tok::RBracket)?;
                        break;
                    }
                }
                Ok(ParamValue::List(items))
            }
            Some(Tok::LBrace) => {
                let mut map = BTreeMap::new();
                loop {
                    self.skip_newlines();
                    if self.eat(&Tok::RBrace) {
                        break;
                    }
                    let key = match self.next() {
                        Some(Tok::Str(s)) => s,
                        Some(Tok::Ident(s)) => s,
                        other => return Err(self.err(format!("bad dict key {other:?}"))),
                    };
                    self.expect(Tok::Colon)?;
                    let v = self.value()?;
                    map.insert(key, v);
                    if !self.eat(&Tok::Comma) {
                        self.skip_newlines();
                        self.expect(Tok::RBrace)?;
                        break;
                    }
                }
                Ok(ParamValue::Dict(map))
            }
            other => Err(self.err(format!("expected value, found {other:?}"))),
        }
    }

    // kwargs := (IDENT '=' value),*
    fn kwargs(&mut self) -> Result<NfParams, ParseError> {
        let mut params = NfParams::new();
        loop {
            self.skip_newlines();
            if self.peek() == Some(&Tok::RParen) {
                break;
            }
            let Some(Tok::Ident(key)) = self.next() else {
                return Err(self.err("expected parameter name"));
            };
            self.expect(Tok::Eq)?;
            let v = self.value()?;
            params.set(&key, v);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(params)
    }

    /// Splice a defined sub-chain into the working graph with fresh names.
    fn splice(&mut self, def: &DefChain) -> Fragment {
        self.splice_counter += 1;
        let prefix = format!("s{}_", self.splice_counter);
        let mut mapping = Vec::with_capacity(def.graph.num_nodes());
        for (_, node) in def.graph.nodes() {
            let id = self.graph.add_named(
                &format!("{prefix}{}", node.name),
                node.kind,
                node.params.clone(),
            );
            mapping.push(id);
        }
        for e in def.graph.edges() {
            self.graph
                .connect_branch(mapping[e.from.0], mapping[e.to.0], e.gate, e.fraction);
        }
        Fragment {
            entry: mapping[def.entry.0],
            exits: def
                .exits
                .iter()
                .map(|(n, g, f)| (mapping[n.0], *g, *f))
                .collect(),
        }
    }

    // atom := IDENT params? — an NF kind, an instance def reference, or a
    //          defined sub-chain reference.
    fn atom(&mut self) -> Result<Fragment, ParseError> {
        let Some(Tok::Ident(name)) = self.next() else {
            return Err(self.err("expected NF or chain name"));
        };
        // Defined sub-chain?
        if let Some(def) = self.defs.get(&name).cloned() {
            if self.peek() == Some(&Tok::LParen) {
                return Err(self.err(format!("{name} is a chain, not parameterizable")));
            }
            self.used_defs.insert(name);
            return Ok(self.splice(&def));
        }
        // NF kind (with optional params).
        let kind: NfKind = name
            .parse()
            .map_err(|_| self.err(format!("unknown NF or chain: {name}")))?;
        let params = if self.eat(&Tok::LParen) {
            let p = self.kwargs()?;
            self.expect(Tok::RParen)?;
            p
        } else {
            NfParams::new()
        };
        let id = self.graph.add(kind, params);
        Ok(Fragment {
            entry: id,
            exits: vec![(id, 0, 1.0)],
        })
    }

    // branch list: '[' '{' filters..., body? '}' , ... ']'
    // Returns (fragments per branch with their fractions, filters).
    fn branches(&mut self, upstream: &Fragment) -> Result<Fragment, ParseError> {
        // Insert the implicit BPF/Match branch node (§A.2.2).
        self.expect(Tok::LBracket)?;
        let mut arms: Vec<(BTreeMap<String, ParamValue>, Option<Fragment>)> = Vec::new();
        loop {
            self.skip_newlines();
            self.expect(Tok::LBrace)?;
            let mut filters = BTreeMap::new();
            let mut body: Option<Fragment> = None;
            loop {
                self.skip_newlines();
                if self.eat(&Tok::RBrace) {
                    break;
                }
                // A filter pair starts with a string key; a body is a chain
                // expression starting with an identifier.
                match self.peek() {
                    Some(Tok::Str(_)) => {
                        let Some(Tok::Str(key)) = self.next() else {
                            unreachable!()
                        };
                        self.expect(Tok::Colon)?;
                        let v = self.value()?;
                        filters.insert(key, v);
                    }
                    Some(Tok::Ident(_)) => {
                        if body.is_some() {
                            return Err(self.err("branch has two bodies"));
                        }
                        body = Some(self.chain_expr_no_branch()?);
                    }
                    other => return Err(self.err(format!("bad branch element {other:?}"))),
                }
                if !self.eat(&Tok::Comma) {
                    self.skip_newlines();
                    self.expect(Tok::RBrace)?;
                    break;
                }
            }
            arms.push((filters, body));
            self.skip_newlines();
            if !self.eat(&Tok::Comma) {
                self.skip_newlines();
                self.expect(Tok::RBracket)?;
                break;
            }
        }

        // Build the Match node with per-arm entries.
        let n = arms.len();
        let mut match_params = NfParams::new();
        let has_filters = arms.iter().any(|(f, _)| !f.is_empty());
        match_params.set(
            "salt",
            ParamValue::Int((self.graph.num_nodes() % 250) as i64 + 1),
        );
        if has_filters {
            let entries: Vec<ParamValue> = arms
                .iter()
                .enumerate()
                .map(|(gate, (filters, _))| {
                    let mut d = filters.clone();
                    d.insert("gate".to_string(), ParamValue::Int(gate as i64));
                    ParamValue::Dict(d)
                })
                .collect();
            match_params.set("entries", ParamValue::List(entries));
        } else {
            match_params.set("split", ParamValue::Int(n as i64));
        }
        let branch_node = self.graph.add(NfKind::Match, match_params);
        for (exit, gate, frac) in &upstream.exits {
            self.graph.connect_branch(*exit, branch_node, *gate, *frac);
        }

        // Wire each arm.
        let mut exits = Vec::new();
        for (gate, (filters, body)) in arms.into_iter().enumerate() {
            let frac = filters
                .get("frac")
                .and_then(ParamValue::as_float)
                .unwrap_or(1.0 / n as f64);
            match body {
                Some(frag) => {
                    self.graph
                        .connect_branch(branch_node, frag.entry, gate, frac);
                    exits.extend(frag.exits);
                }
                None => {
                    // Empty branch: the branch node's gate exits directly.
                    exits.push((branch_node, gate, frac));
                }
            }
        }
        Ok(Fragment {
            entry: upstream.entry,
            exits,
        })
    }

    // chain without branch lists (used inside branch bodies).
    fn chain_expr_no_branch(&mut self) -> Result<Fragment, ParseError> {
        let mut frag = self.atom()?;
        while self.eat(&Tok::Arrow) {
            self.skip_newlines();
            let next = self.atom()?;
            for (exit, gate, frac) in &frag.exits {
                self.graph.connect_branch(*exit, next.entry, *gate, *frac);
            }
            frag = Fragment {
                entry: frag.entry,
                exits: next.exits,
            };
        }
        Ok(frag)
    }

    // chain := atom ('->' (atom | branch_list))*
    fn chain_expr(&mut self) -> Result<Fragment, ParseError> {
        let mut frag = self.atom()?;
        while self.eat(&Tok::Arrow) {
            self.skip_newlines();
            if self.peek() == Some(&Tok::LBracket) {
                frag = self.branches(&frag)?;
            } else {
                let next = self.atom()?;
                for (exit, gate, frac) in &frag.exits {
                    self.graph.connect_branch(*exit, next.entry, *gate, *frac);
                }
                frag = Fragment {
                    entry: frag.entry,
                    exits: next.exits,
                };
            }
        }
        Ok(frag)
    }
}

/// Parse a complete specification.
pub fn parse_spec(src: &str) -> Result<Spec, ParseError> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser {
        toks,
        pos: 0,
        graph: NfGraph::new(),
        defs: BTreeMap::new(),
        used_defs: std::collections::BTreeSet::new(),
        macros: BTreeMap::new(),
        splice_counter: 0,
    };
    // name → chain definition order for output; SLOs/aggregates attach later.
    let mut chain_names: Vec<String> = Vec::new();
    let mut slos: BTreeMap<String, Slo> = BTreeMap::new();
    let mut aggregates: BTreeMap<String, TrafficAggregate> = BTreeMap::new();

    loop {
        p.skip_newlines();
        if p.peek().is_none() {
            break;
        }
        let Some(Tok::Ident(first)) = p.peek().cloned() else {
            return Err(p.err("expected statement"));
        };
        // slo(...) / aggregate(...) statements.
        if (first == "slo" || first == "aggregate")
            && p.toks.get(p.pos + 1).map(|(t, _)| t) == Some(&Tok::LParen)
        {
            p.next();
            p.expect(Tok::LParen)?;
            let Some(Tok::Ident(chain)) = p.next() else {
                return Err(p.err("expected chain name"));
            };
            p.expect(Tok::Comma)?;
            let kw = p.kwargs()?;
            p.expect(Tok::RParen)?;
            if first == "slo" {
                let t_min = kw.get("t_min").and_then(parse_rate).unwrap_or(0.0);
                let t_max = kw
                    .get("t_max")
                    .and_then(parse_rate)
                    .unwrap_or(f64::INFINITY);
                let mut slo = Slo {
                    t_min_bps: t_min,
                    t_max_bps: t_max,
                    d_max_ns: None,
                    priority: 0,
                };
                if let Some(d) = kw.get("d_max").and_then(parse_delay_ns) {
                    slo.d_max_ns = Some(d);
                }
                slos.insert(chain, slo);
            } else {
                let mut agg = TrafficAggregate::any();
                if let Some(srcp) = kw.get("src").and_then(ParamValue::as_str) {
                    agg.src = srcp.parse().ok();
                }
                if let Some(dstp) = kw.get("dst").and_then(ParamValue::as_str) {
                    agg.dst = dstp.parse().ok();
                }
                aggregates.insert(chain, agg);
            }
            continue;
        }
        // Assignment or bare chain.
        if p.toks.get(p.pos + 1).map(|(t, _)| t) == Some(&Tok::Eq) {
            p.next(); // name
            p.expect(Tok::Eq)?;
            // Macro value or chain definition? Chain defs start with an
            // identifier that is an NF kind or defined chain.
            let is_chain = matches!(p.peek(), Some(Tok::Ident(id))
                if id.parse::<NfKind>().is_ok() || p.defs.contains_key(id));
            if is_chain {
                // Parse into a temporary graph so the definition can be
                // spliced multiple times.
                let saved = std::mem::take(&mut p.graph);
                let frag = p.chain_expr()?;
                let sub = std::mem::replace(&mut p.graph, saved);
                p.defs.insert(
                    first.clone(),
                    DefChain {
                        graph: sub,
                        entry: frag.entry,
                        exits: frag.exits,
                    },
                );
                chain_names.push(first.clone());
            } else {
                let v = p.value()?;
                p.macros.insert(first.clone(), v);
            }
        } else {
            // A bare chain expression: anonymous chain.
            let saved = std::mem::take(&mut p.graph);
            let frag = p.chain_expr()?;
            let sub = std::mem::replace(&mut p.graph, saved);
            let name = format!("chain{}", chain_names.len() + 1);
            p.defs.insert(
                name.clone(),
                DefChain {
                    graph: sub,
                    entry: frag.entry,
                    exits: frag.exits,
                },
            );
            chain_names.push(name);
        }
        // Statement must end at a newline.
        if !(p.eat(&Tok::Newline) || p.peek().is_none()) {
            return Err(p.err(format!("unexpected token {:?} after statement", p.peek())));
        }
    }

    // Emit top-level chains: definitions never spliced into another chain
    // (a spliced definition is a pure sub-chain), unless an SLO explicitly
    // marks them as deployable.
    let mut chains = Vec::new();
    for name in &chain_names {
        let def = &p.defs[name];
        let used_elsewhere = p.used_defs.contains(name);
        if used_elsewhere && !slos.contains_key(name) {
            continue; // pure sub-chain
        }
        chains.push(ChainSpec {
            name: name.clone(),
            graph: def.graph.clone(),
            slo: slos.get(name).copied(),
            aggregate: aggregates.get(name).copied(),
        });
    }
    Ok(Spec { chains })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_nf::NfKind;

    #[test]
    fn linear_chain() {
        let spec = parse_spec("c = ACL -> Encrypt -> IPv4Fwd\n").unwrap();
        assert_eq!(spec.chains.len(), 1);
        let g = &spec.chains[0].graph;
        assert_eq!(g.num_nodes(), 3);
        let kinds: Vec<NfKind> = g.nodes().map(|(_, n)| n.kind).collect();
        assert_eq!(kinds, vec![NfKind::Acl, NfKind::Encrypt, NfKind::Ipv4Fwd]);
        g.validate().unwrap();
    }

    #[test]
    fn parameters_parse() {
        let spec =
            parse_spec("c = ACL(rules=[{'dst_ip': '10.0.0.0/8', 'drop': False}]) -> IPv4Fwd\n")
                .unwrap();
        let g = &spec.chains[0].graph;
        let (_, acl) = g.nodes().next().unwrap();
        let rules = acl.params.get("rules").unwrap().as_list().unwrap();
        assert_eq!(rules.len(), 1);
        let d = rules[0].as_dict().unwrap();
        assert_eq!(d["dst_ip"].as_str(), Some("10.0.0.0/8"));
        assert_eq!(d["drop"].as_bool(), Some(false));
    }

    #[test]
    fn paper_branch_example() {
        // ACL -> [{'vlan_tag': 0x1, Encrypt}] -> IPv4Fwd
        let spec = parse_spec("c = ACL -> [{'vlan_tag': 0x1, Encrypt}, {}] -> IPv4Fwd\n").unwrap();
        let g = &spec.chains[0].graph;
        g.validate().unwrap();
        // ACL, implicit BPF, Encrypt, IPv4Fwd.
        assert_eq!(g.num_nodes(), 4);
        let kinds: Vec<NfKind> = g.nodes().map(|(_, n)| n.kind).collect();
        assert!(kinds.contains(&NfKind::Match));
        let chains = g.decompose();
        assert_eq!(chains.len(), 2); // through Encrypt, and bypass
        let lens: Vec<usize> = chains.iter().map(|c| c.nodes.len()).collect();
        assert!(lens.contains(&4) && lens.contains(&3));
    }

    #[test]
    fn subchain_splicing() {
        let spec = parse_spec(
            "sub8 = Detunnel -> Encrypt -> IPv4Fwd\n\
             c = BPF -> sub8\n\
             slo(c, t_min='1G')\n",
        )
        .unwrap();
        // sub8 is spliced, not a top-level chain.
        assert_eq!(spec.chains.len(), 1);
        assert_eq!(spec.chains[0].name, "c");
        assert_eq!(spec.chains[0].graph.num_nodes(), 4);
        assert_eq!(spec.chains[0].slo.unwrap().t_min_bps, 1e9);
    }

    #[test]
    fn subchain_spliced_twice_gets_fresh_names() {
        let spec = parse_spec(
            "sub = Encrypt -> IPv4Fwd\n\
             c = BPF -> [{sub}, {sub}]\n",
        )
        .unwrap();
        let g = &spec.chains[0].graph;
        g.validate().unwrap(); // unique names
        assert_eq!(g.num_nodes(), 1 + 1 + 4); // BPF + implicit match + 2×2
    }

    #[test]
    fn slo_units() {
        let spec =
            parse_spec("c = ACL -> IPv4Fwd\nslo(c, t_min='500M', t_max='40G', d_max='45us')\n")
                .unwrap();
        let slo = spec.chains[0].slo.unwrap();
        assert_eq!(slo.t_min_bps, 500e6);
        assert_eq!(slo.t_max_bps, 40e9);
        assert_eq!(slo.d_max_ns, Some(45_000.0));
    }

    #[test]
    fn aggregate_statement() {
        let spec = parse_spec("c = ACL -> IPv4Fwd\naggregate(c, src='203.0.113.0/24')\n").unwrap();
        let agg = spec.chains[0].aggregate.unwrap();
        assert!(agg.src.is_some());
    }

    #[test]
    fn macros_substitute() {
        let spec = parse_spec(
            "myrules = [{'dst_ip': '10.0.0.0/8'}]\n\
             c = ACL(rules=myrules) -> IPv4Fwd\n",
        )
        .unwrap();
        let (_, acl) = spec.chains[0].graph.nodes().next().unwrap();
        assert!(acl.params.get("rules").is_some());
    }

    #[test]
    fn comments_and_blank_lines() {
        let spec = parse_spec(
            "# top comment\n\n\
             c = ACL -> IPv4Fwd  # trailing comment\n\n",
        )
        .unwrap();
        assert_eq!(spec.chains.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_spec("c = ACL ->\nd = WAT -> IPv4Fwd\n").unwrap_err();
        assert!(err.line >= 1);
        let err2 = parse_spec("c = Bogus -> IPv4Fwd\n").unwrap_err();
        assert!(err2.message.contains("Bogus"));
    }

    #[test]
    fn branch_fractions() {
        let spec =
            parse_spec("c = BPF -> [{'frac': 0.8, Encrypt}, {'frac': 0.2, Monitor}] -> IPv4Fwd\n")
                .unwrap();
        let chains = spec.chains[0].graph.decompose();
        let weights: Vec<f64> = chains.iter().map(|c| c.weight).collect();
        assert!(weights.iter().any(|w| (w - 0.8).abs() < 1e-9));
        assert!(weights.iter().any(|w| (w - 0.2).abs() < 1e-9));
    }

    #[test]
    fn rate_parsing() {
        assert_eq!(parse_rate(&ParamValue::Str("10G".into())), Some(10e9));
        assert_eq!(parse_rate(&ParamValue::Str("1.5M".into())), Some(1.5e6));
        assert_eq!(parse_rate(&ParamValue::Int(42)), Some(42.0));
        assert_eq!(parse_rate(&ParamValue::Bool(true)), None);
        assert_eq!(
            parse_delay_ns(&ParamValue::Str("45us".into())),
            Some(45_000.0)
        );
        assert_eq!(parse_delay_ns(&ParamValue::Str("1ms".into())), Some(1e6));
    }
}
