//! # lemur-core
//!
//! The heart of the Lemur reproduction: NF chain specifications, the
//! NF-graph intermediate representation, the SLO model, and the canonical
//! evaluation chains.
//!
//! * [`slo`] — service-level objectives: `t_min`, `t_max`, `d_max`, and the
//!   Table 1 use-case taxonomy (bulk … infinite pipe).
//! * [`graph`] — the NF-graph: a DAG of NF instances with branch edges
//!   carrying traffic-split fractions, plus the §3.2 decomposition of
//!   branchy chains into weighted linear chains.
//! * [`spec`] — the BESS-inspired dataflow specification language
//!   (`ACL -> Encrypt -> IPv4Fwd`, instance definitions, parameters, and
//!   `[{'vlan_tag': 0x1, Encrypt}]` branch syntax) with a hand-written
//!   lexer/parser standing in for the paper's ANTLR grammar.
//! * [`chains`] — the five canonical chains of Table 2 (plus subchains 6–8
//!   and the §5.2 "extreme" NAT chain), as both builder calls and spec
//!   text.
//!
//! ```
//! use lemur_core::spec::parse_spec;
//!
//! let spec = "
//! c1 = ACL(rules=[{'dst_ip': '10.0.0.0/8', 'drop': False}]) -> Encrypt -> IPv4Fwd
//! slo(c1, t_min='1G', t_max='10G')
//! ";
//! let parsed = parse_spec(spec).unwrap();
//! assert_eq!(parsed.chains.len(), 1);
//! assert_eq!(parsed.chains[0].graph.num_nodes(), 3);
//! assert_eq!(parsed.chains[0].slo.unwrap().t_min_bps, 1e9);
//! ```

pub mod chains;
pub mod graph;
pub mod slo;
pub mod spec;

pub use chains::{canonical_chain, extreme_nat_chain, CanonicalChain};
pub use graph::{ChainSpec, LinearChain, NfGraph, NfNode, NodeId};
pub use slo::{Slo, UseCase};
