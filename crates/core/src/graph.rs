//! The NF-graph IR: a DAG of NF instances (§4).
//!
//! "Nodes are NFs, links represent data-flows, and each node is associated
//! with attributes that govern placement." Branch edges carry the traffic
//! fraction operators estimate from historical measurements (§3.2), which
//! the decomposition into linear chains uses to weight each path.

use crate::slo::Slo;
use lemur_nf::{NfKind, NfParams};
use lemur_packet::TrafficAggregate;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Identifies a node within one [`NfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// One NF instance in a chain.
#[derive(Debug, Clone)]
pub struct NfNode {
    /// Instance name (unique within the graph), e.g. `acl0`.
    pub name: String,
    pub kind: NfKind,
    pub params: NfParams,
}

/// An edge with an output gate and the estimated traffic fraction taking it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    pub from: NodeId,
    pub to: NodeId,
    /// Output gate of `from` this edge is attached to.
    pub gate: usize,
    /// Fraction of `from`'s traffic taking this edge (1.0 on linear edges).
    pub fraction: f64,
}

/// Errors graph validation can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    Cycle,
    DuplicateName(String),
    DanglingEdge,
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cycle => write!(f, "NF graph contains a cycle"),
            GraphError::DuplicateName(n) => write!(f, "duplicate instance name {n}"),
            GraphError::DanglingEdge => write!(f, "edge references unknown node"),
            GraphError::Empty => write!(f, "empty NF graph"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A DAG of NF instances.
#[derive(Debug, Clone, Default)]
pub struct NfGraph {
    nodes: Vec<NfNode>,
    edges: Vec<Edge>,
}

impl NfGraph {
    /// An empty graph.
    pub fn new() -> NfGraph {
        NfGraph::default()
    }

    /// Add a node with an auto-derived instance name.
    pub fn add(&mut self, kind: NfKind, params: NfParams) -> NodeId {
        let name = format!("{}_{}", kind.name().to_lowercase(), self.nodes.len());
        self.add_named(&name, kind, params)
    }

    /// Add a node with an explicit instance name.
    pub fn add_named(&mut self, name: &str, kind: NfKind, params: NfParams) -> NodeId {
        self.nodes.push(NfNode {
            name: name.to_string(),
            kind,
            params,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Connect `from` (gate 0, full traffic) to `to`.
    pub fn connect(&mut self, from: NodeId, to: NodeId) {
        self.edges.push(Edge {
            from,
            to,
            gate: 0,
            fraction: 1.0,
        });
    }

    /// Connect a branch edge with a gate and traffic fraction.
    pub fn connect_branch(&mut self, from: NodeId, to: NodeId, gate: usize, fraction: f64) {
        self.edges.push(Edge {
            from,
            to,
            gate,
            fraction,
        });
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &NfNode {
        &self.nodes[id.0]
    }

    /// All nodes, in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &NfNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Outgoing edges of a node, sorted by gate.
    pub fn out_edges(&self, id: NodeId) -> Vec<Edge> {
        let mut v: Vec<Edge> = self
            .edges
            .iter()
            .filter(|e| e.from == id)
            .copied()
            .collect();
        v.sort_by_key(|e| e.gate);
        v
    }

    /// Incoming edge count of a node.
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.edges.iter().filter(|e| e.to == id).count()
    }

    /// Source nodes (no incoming edges).
    pub fn sources(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .map(NodeId)
            .filter(|id| self.in_degree(*id) == 0)
            .collect()
    }

    /// Sink nodes (no outgoing edges).
    pub fn sinks(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .map(NodeId)
            .filter(|id| self.out_edges(*id).is_empty())
            .collect()
    }

    /// True if `id` has more than one outgoing edge (a branch point).
    pub fn is_branch(&self, id: NodeId) -> bool {
        self.out_edges(id).len() > 1
    }

    /// True if `id` has more than one incoming edge (a merge point).
    pub fn is_merge(&self, id: NodeId) -> bool {
        self.in_degree(id) > 1
    }

    /// Validate: non-empty, unique names, edges in range, acyclic.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        let mut seen = BTreeMap::new();
        for n in &self.nodes {
            if seen.insert(n.name.clone(), ()).is_some() {
                return Err(GraphError::DuplicateName(n.name.clone()));
            }
        }
        for e in &self.edges {
            if e.from.0 >= self.nodes.len() || e.to.0 >= self.nodes.len() {
                return Err(GraphError::DanglingEdge);
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Kahn topological order; `Err(Cycle)` if cyclic.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to.0] += 1;
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|i| indeg[*i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(NodeId(i));
            for e in self.edges.iter().filter(|e| e.from.0 == i) {
                indeg[e.to.0] -= 1;
                if indeg[e.to.0] == 0 {
                    queue.push_back(e.to.0);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(GraphError::Cycle)
        }
    }

    /// Decompose into weighted linear chains (§3.2): every source→sink
    /// path becomes one [`LinearChain`] whose weight is the product of edge
    /// fractions along it. "If a chain branches from NF X to two NFs Y and
    /// Z, and then merges back into an NF W, we decompose these into two
    /// chains X→Y→W and X→Z→W."
    pub fn decompose(&self) -> Vec<LinearChain> {
        let mut out = Vec::new();
        for src in self.sources() {
            self.walk(src, &mut vec![src], 1.0, &mut out);
        }
        out
    }

    fn walk(&self, at: NodeId, path: &mut Vec<NodeId>, weight: f64, out: &mut Vec<LinearChain>) {
        let edges = self.out_edges(at);
        if edges.is_empty() {
            out.push(LinearChain {
                nodes: path.clone(),
                weight,
            });
            return;
        }
        for e in edges {
            path.push(e.to);
            self.walk(e.to, path, weight * e.fraction, out);
            path.pop();
        }
    }

    /// Render in the dataflow spec syntax (single-path graphs only get the
    /// exact round-trip form; branchy graphs are annotated).
    pub fn to_spec_string(&self) -> String {
        let mut parts = Vec::new();
        for chain in self.decompose() {
            let names: Vec<&str> = chain
                .nodes
                .iter()
                .map(|id| self.node(*id).name.as_str())
                .collect();
            parts.push(format!(
                "# weight {:.3}\n{}",
                chain.weight,
                names.join(" -> ")
            ));
        }
        parts.join("\n")
    }
}

/// One linear chain from the branch decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearChain {
    pub nodes: Vec<NodeId>,
    /// Fraction of the chain's aggregate traffic taking this path.
    pub weight: f64,
}

/// A chain specification: the graph plus its SLO and traffic aggregate.
#[derive(Debug, Clone)]
pub struct ChainSpec {
    pub name: String,
    pub graph: NfGraph,
    pub slo: Option<Slo>,
    pub aggregate: Option<TrafficAggregate>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_nf::NfKind;

    fn diamond() -> NfGraph {
        // x -> {y (0.7), z (0.3)} -> w
        let mut g = NfGraph::new();
        let x = g.add_named("x", NfKind::Match, NfParams::new());
        let y = g.add_named("y", NfKind::Encrypt, NfParams::new());
        let z = g.add_named("z", NfKind::Monitor, NfParams::new());
        let w = g.add_named("w", NfKind::Ipv4Fwd, NfParams::new());
        g.connect_branch(x, y, 0, 0.7);
        g.connect_branch(x, z, 1, 0.3);
        g.connect(y, w);
        g.connect(z, w);
        g
    }

    #[test]
    fn diamond_decomposition() {
        let g = diamond();
        g.validate().unwrap();
        let chains = g.decompose();
        assert_eq!(chains.len(), 2);
        let weights: Vec<f64> = chains.iter().map(|c| c.weight).collect();
        assert!(weights.contains(&0.7) && weights.contains(&0.3));
        for c in &chains {
            assert_eq!(c.nodes.len(), 3); // x -> {y|z} -> w
            assert_eq!(g.node(c.nodes[0]).name, "x");
            assert_eq!(g.node(c.nodes[2]).name, "w");
        }
    }

    #[test]
    fn branch_and_merge_detection() {
        let g = diamond();
        assert!(g.is_branch(NodeId(0)));
        assert!(!g.is_branch(NodeId(1)));
        assert!(g.is_merge(NodeId(3)));
        assert!(!g.is_merge(NodeId(1)));
        assert_eq!(g.sources(), vec![NodeId(0)]);
        assert_eq!(g.sinks(), vec![NodeId(3)]);
    }

    #[test]
    fn linear_graph_single_chain() {
        let mut g = NfGraph::new();
        let a = g.add(NfKind::Acl, NfParams::new());
        let b = g.add(NfKind::Encrypt, NfParams::new());
        let c = g.add(NfKind::Ipv4Fwd, NfParams::new());
        g.connect(a, b);
        g.connect(b, c);
        let chains = g.decompose();
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].weight, 1.0);
        assert_eq!(chains[0].nodes, vec![a, b, c]);
    }

    #[test]
    fn cycle_detected() {
        let mut g = NfGraph::new();
        let a = g.add(NfKind::Acl, NfParams::new());
        let b = g.add(NfKind::Encrypt, NfParams::new());
        g.connect(a, b);
        g.connect(b, a);
        assert_eq!(g.validate().unwrap_err(), GraphError::Cycle);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = NfGraph::new();
        g.add_named("same", NfKind::Acl, NfParams::new());
        g.add_named("same", NfKind::Encrypt, NfParams::new());
        assert_eq!(
            g.validate().unwrap_err(),
            GraphError::DuplicateName("same".to_string())
        );
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(NfGraph::new().validate().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topo_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|x| *x == id).unwrap();
        for e in g.edges() {
            assert!(pos(e.from) < pos(e.to));
        }
    }

    #[test]
    fn nested_branches_multiply_fractions() {
        // a -> {b (0.5) -> {d (0.5), e (0.5)}, c (0.5)}
        let mut g = NfGraph::new();
        let a = g.add_named("a", NfKind::Match, NfParams::new());
        let b = g.add_named("b", NfKind::Match, NfParams::new());
        let c = g.add_named("c", NfKind::Monitor, NfParams::new());
        let d = g.add_named("d", NfKind::Encrypt, NfParams::new());
        let e = g.add_named("e", NfKind::Acl, NfParams::new());
        g.connect_branch(a, b, 0, 0.5);
        g.connect_branch(a, c, 1, 0.5);
        g.connect_branch(b, d, 0, 0.5);
        g.connect_branch(b, e, 1, 0.5);
        let chains = g.decompose();
        assert_eq!(chains.len(), 3);
        let total: f64 = chains.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(chains.iter().any(|ch| (ch.weight - 0.25).abs() < 1e-9));
    }

    #[test]
    fn spec_string_contains_names() {
        let g = diamond();
        let s = g.to_spec_string();
        assert!(s.contains("x -> y -> w"));
        assert!(s.contains("x -> z -> w"));
    }
}
