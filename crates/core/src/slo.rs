//! Service-level objectives (§2, Table 1).

use core::fmt;

/// An SLO for one chain/traffic-aggregate pair: a minimum guaranteed rate,
/// a burst ceiling, and an optional latency bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slo {
    /// Minimum rate the operator must provision for (bits/second).
    pub t_min_bps: f64,
    /// Maximum rate the customer may burst to (bits/second);
    /// `f64::INFINITY` means uncapped.
    pub t_max_bps: f64,
    /// Maximum chain-imposed delay in nanoseconds, if contracted.
    pub d_max_ns: Option<f64>,
    /// Shedding priority under resource failures: when a degraded rack
    /// cannot satisfy every `t_min`, chains are shed in *ascending*
    /// priority (lowest first). Ties break toward the smaller `t_min`.
    pub priority: u8,
}

/// Table 1's use-case taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseCase {
    /// `t_min = 0, t_max = ∞`: best effort.
    Bulk,
    /// `t_min = 0, t_max = α`: best effort capped at α.
    MeteredBulk,
    /// `t_min = t_max = α`: exactly α guaranteed.
    VirtualPipe,
    /// `α ≤ rate ≤ β`: at least α with bursts up to β.
    ElasticPipe,
    /// `t_min = α, t_max = ∞`: at least α.
    InfinitePipe,
}

impl Slo {
    /// Best-effort traffic.
    pub fn bulk() -> Slo {
        Slo {
            t_min_bps: 0.0,
            t_max_bps: f64::INFINITY,
            d_max_ns: None,
            priority: 0,
        }
    }

    /// Best effort capped at `alpha`.
    pub fn metered_bulk(alpha: f64) -> Slo {
        Slo {
            t_min_bps: 0.0,
            t_max_bps: alpha,
            d_max_ns: None,
            priority: 0,
        }
    }

    /// Exactly `alpha` guaranteed.
    pub fn virtual_pipe(alpha: f64) -> Slo {
        Slo {
            t_min_bps: alpha,
            t_max_bps: alpha,
            d_max_ns: None,
            priority: 0,
        }
    }

    /// At least `alpha`, bursts up to `beta`.
    pub fn elastic_pipe(alpha: f64, beta: f64) -> Slo {
        assert!(beta >= alpha, "elastic pipe burst below guarantee");
        Slo {
            t_min_bps: alpha,
            t_max_bps: beta,
            d_max_ns: None,
            priority: 0,
        }
    }

    /// At least `alpha`, uncapped.
    pub fn infinite_pipe(alpha: f64) -> Slo {
        Slo {
            t_min_bps: alpha,
            t_max_bps: f64::INFINITY,
            d_max_ns: None,
            priority: 0,
        }
    }

    /// Add a latency bound (builder style).
    pub fn with_latency_ns(mut self, d_max_ns: f64) -> Slo {
        self.d_max_ns = Some(d_max_ns);
        self
    }

    /// Set the shedding priority (builder style). Higher survives longer
    /// when a degraded rack forces load shedding.
    pub fn with_priority(mut self, priority: u8) -> Slo {
        self.priority = priority;
        self
    }

    /// Classify into the Table 1 use case.
    pub fn use_case(&self) -> UseCase {
        let capped = self.t_max_bps.is_finite();
        if self.t_min_bps == 0.0 {
            if capped {
                UseCase::MeteredBulk
            } else {
                UseCase::Bulk
            }
        } else if !capped {
            UseCase::InfinitePipe
        } else if self.t_min_bps == self.t_max_bps {
            UseCase::VirtualPipe
        } else {
            UseCase::ElasticPipe
        }
    }

    /// Marginal (revenue-generating) rate of an achieved throughput: the
    /// amount above `t_min`, clamped at the burst cap.
    pub fn marginal_bps(&self, achieved_bps: f64) -> f64 {
        (achieved_bps.min(self.t_max_bps) - self.t_min_bps).max(0.0)
    }

    /// True if an achieved rate meets the minimum guarantee.
    pub fn satisfied_by(&self, achieved_bps: f64) -> bool {
        achieved_bps + 1e-6 >= self.t_min_bps
    }
}

impl fmt::Display for Slo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gbps = |v: f64| {
            if v.is_finite() {
                format!("{:.2}G", v / 1e9)
            } else {
                "∞".to_string()
            }
        };
        write!(
            f,
            "t_min={} t_max={}",
            gbps(self.t_min_bps),
            gbps(self.t_max_bps)
        )?;
        if let Some(d) = self.d_max_ns {
            write!(f, " d_max={:.0}us", d / 1e3)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_taxonomy() {
        assert_eq!(Slo::bulk().use_case(), UseCase::Bulk);
        assert_eq!(Slo::metered_bulk(1e9).use_case(), UseCase::MeteredBulk);
        assert_eq!(Slo::virtual_pipe(1e9).use_case(), UseCase::VirtualPipe);
        assert_eq!(Slo::elastic_pipe(1e9, 4e9).use_case(), UseCase::ElasticPipe);
        assert_eq!(Slo::infinite_pipe(1e9).use_case(), UseCase::InfinitePipe);
    }

    #[test]
    fn marginal_throughput() {
        let slo = Slo::elastic_pipe(2e9, 10e9);
        assert_eq!(slo.marginal_bps(5e9), 3e9);
        assert_eq!(slo.marginal_bps(1e9), 0.0); // below t_min
        assert_eq!(slo.marginal_bps(20e9), 8e9); // clamped at t_max
    }

    #[test]
    fn satisfaction() {
        let slo = Slo::virtual_pipe(1e9);
        assert!(slo.satisfied_by(1e9));
        assert!(slo.satisfied_by(2e9));
        assert!(!slo.satisfied_by(0.5e9));
        assert!(Slo::bulk().satisfied_by(0.0));
    }

    #[test]
    #[should_panic(expected = "burst below guarantee")]
    fn invalid_elastic_pipe() {
        Slo::elastic_pipe(4e9, 1e9);
    }

    #[test]
    fn priority_builder() {
        assert_eq!(Slo::bulk().priority, 0);
        assert_eq!(Slo::virtual_pipe(1e9).with_priority(3).priority, 3);
    }

    #[test]
    fn latency_builder_and_display() {
        let slo = Slo::virtual_pipe(1e9).with_latency_ns(45_000.0);
        assert_eq!(slo.d_max_ns, Some(45_000.0));
        let s = slo.to_string();
        assert!(s.contains("45us"), "{s}");
        assert!(Slo::bulk().to_string().contains('∞'));
    }
}
