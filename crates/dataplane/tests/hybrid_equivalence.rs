//! Equivalence suite for the hybrid engine: flow-level fast path vs the
//! exact packet-level reference.
//!
//! Three properties, in increasing looseness:
//!
//! 1. **θ = 0 is bit-exact.** With the heavy-hitter threshold at zero,
//!    every flow is materialized and the analytic tail is empty — the
//!    hybrid run must produce a byte-identical [`SimReport`] to the
//!    packet-level run of the same scenario.
//! 2. **Small scenarios agree within the documented bound** (proptest).
//!    For any unsaturated scenario of ≤ 64 flows over ≤ 3 chains,
//!    hybrid and packet-level reports agree exactly on injected totals,
//!    and on delivered/dropped totals and per-node NF observables within
//!    `in_flight(p) + in_flight(h) + max(3, 2% of injected)` — the slack
//!    covers packets still in flight at the horizon and window-edge
//!    timing (the tail delivers a window's mass at its close; the packet
//!    path delivers it a queueing delay later).
//! 3. **Worker-count independence.** Hybrid reports are bit-identical
//!    for placements computed at `LEMUR_WORKERS` ∈ {1, 2, 8} (exercised
//!    via explicit [`Workers`] handles, which proves the same property
//!    without racing the test harness's environment).

use lemur_core::chains::{canonical_chain, CanonicalChain};
use lemur_core::graph::ChainSpec;
use lemur_core::Slo;
use lemur_dataplane::{
    ChainLoad, FlowSizeDist, HybridConfig, HybridMode, RuntimeMode, Scenario, ScenarioSpec,
    SimConfig, SimReport, Surge, SurgeKind, Testbed, TrafficSpec,
};
use lemur_nf::NfKind;
use lemur_placer::corealloc::CoreStrategy;
use lemur_placer::placement::{EvaluatedPlacement, PlacementProblem};
use lemur_placer::profiles::NfProfiles;
use lemur_placer::topology::Topology;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn setup(which: &[CanonicalChain]) -> (PlacementProblem, EvaluatedPlacement, Vec<TrafficSpec>) {
    let mut specs = Vec::new();
    let chains: Vec<ChainSpec> = which
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let spec = TrafficSpec::for_chain(i + 1, 1e9).expect("chain index in range");
            let agg = spec.aggregate();
            specs.push(spec);
            ChainSpec {
                name: format!("chain{}", w.index()),
                graph: canonical_chain(*w),
                slo: None,
                aggregate: Some(agg),
            }
        })
        .collect();
    let mut p = PlacementProblem::new(chains, Topology::testbed(), NfProfiles::table4());
    for i in 0..p.chains.len() {
        let base = p.base_rate_bps(i);
        p.chains[i].slo = Some(Slo::elastic_pipe(base, 100e9));
    }
    let a = lemur_placer::baselines::hw_preferred_assignment(&p);
    let e = p.evaluate(&a, CoreStrategy::WaterFill).unwrap();
    (p, e, specs)
}

fn quick() -> SimConfig {
    SimConfig {
        duration_s: 0.004,
        warmup_s: 0.001,
        ..SimConfig::default()
    }
}

fn horizon_ns(c: &SimConfig) -> u64 {
    ((c.warmup_s + c.duration_s) * 1e9) as u64
}

/// A mild flow-level load for `n_chains` chains: small flows, low rates,
/// far from saturating any placement.
fn small_scenario(n_chains: usize, seed: u64, flows: usize, max_size: u64) -> ScenarioSpec {
    ScenarioSpec {
        seed,
        horizon_ns: horizon_ns(&quick()),
        chains: (0..n_chains)
            .map(|ci| ChainLoad {
                flows,
                flow_rate_pps: 400_000.0 + 50_000.0 * ci as f64,
                size: FlowSizeDist {
                    alpha: 1.3,
                    min_packets: 1,
                    max_packets: max_size,
                },
                diurnal: None,
                surges: vec![],
            })
            .collect(),
    }
}

/// `(chain, node, kind)` → summed `(packets, flows)` NF observables.
type NodeObservables = BTreeMap<(usize, usize, NfKind), (u64, u64)>;

/// Per-`(chain, node, kind)` packet/flow observable sums: replica counts
/// are summed because the hybrid tail splits aggregates across replicas
/// deterministically while the packet path hash-spreads flows.
fn obs_by_node(tb: &Testbed) -> NodeObservables {
    let mut m = BTreeMap::new();
    for (chain, node, _replica, kind, o) in tb.nf_observables() {
        let e = m.entry((chain, node, kind)).or_insert((0u64, 0u64));
        e.0 += o.packets;
        e.1 += o.flows;
    }
    m
}

fn run_mode(
    p: &PlacementProblem,
    e: &EvaluatedPlacement,
    specs: &[TrafficSpec],
    scenario: &Scenario,
    mode: &HybridMode,
) -> (SimReport, NodeObservables) {
    let mut tb = Testbed::build_with_mode(p, e, RuntimeMode::Fused).unwrap();
    let slos = vec![None; specs.len()];
    let report = tb
        .run_scenario_supervised(
            scenario,
            specs,
            quick(),
            &lemur_dataplane::FaultPlan::empty(),
            &slos,
            mode,
            &mut lemur_dataplane::NoopHook,
        )
        .expect("valid hybrid config");
    let obs = obs_by_node(&tb);
    (report, obs)
}

#[test]
fn theta_zero_hybrid_is_bit_identical_to_packet_level() {
    let (p, e, specs) = setup(&[CanonicalChain::Chain3, CanonicalChain::Chain5]);
    let scenario = small_scenario(2, 97, 40, 24).materialize();
    let (packet, obs_p) = run_mode(&p, &e, &specs, &scenario, &HybridMode::PacketLevel);
    let (hybrid, obs_h) = run_mode(
        &p,
        &e,
        &specs,
        &scenario,
        &HybridMode::Hybrid(HybridConfig {
            heavy_min_packets: 0,
            capacity_bps: vec![],
            queue_buffer_packets: 4096,
        }),
    );
    assert!(
        packet.ledger.injected > 0,
        "vacuous comparison: nothing injected"
    );
    // Every flow is heavy at θ=0; the tail is empty and must leave no
    // trace — the full report (stats, windows, ledger, timeline) and the
    // NF state observables are bit-identical.
    assert_eq!(packet, hybrid);
    assert_eq!(obs_p, obs_h);
    // The same must hold with the fluid queue armed: capacity budgets
    // and buffers only ever touch tail mass, and at θ=0 there is none.
    let (queued, obs_q) = run_mode(
        &p,
        &e,
        &specs,
        &scenario,
        &HybridMode::Hybrid(HybridConfig {
            heavy_min_packets: 0,
            capacity_bps: vec![10e9, 10e9],
            queue_buffer_packets: 64,
        }),
    );
    assert_eq!(packet, queued, "θ=0 with queueing enabled diverged");
    assert_eq!(obs_p, obs_q);
}

#[test]
fn hybrid_ledger_balances_with_surges_and_capacity() {
    let (p, e, specs) = setup(&[CanonicalChain::Chain1]);
    let mut spec = small_scenario(1, 3, 60, 200);
    spec.chains[0].surges = vec![
        Surge {
            kind: SurgeKind::FlashCrowd,
            start_ns: 2_000_000,
            duration_ns: 1_000_000,
            factor: 3.0,
        },
        Surge {
            kind: SurgeKind::Ddos,
            start_ns: 3_000_000,
            duration_ns: 1_000_000,
            factor: 4.0,
        },
    ];
    let scenario = spec.materialize();
    let (hybrid, _) = run_mode(
        &p,
        &e,
        &specs,
        &scenario,
        &HybridMode::Hybrid(HybridConfig {
            heavy_min_packets: 8,
            // Tight capacity: the surge windows must shed tail packets
            // and the ledger must still balance to the exact packet.
            // A small buffer keeps the queue from absorbing the whole
            // surge, so overflow drops still engage.
            capacity_bps: vec![20e6],
            queue_buffer_packets: 16,
        }),
    );
    assert!(
        hybrid.ledger.balanced(),
        "conservation violated: {:?}",
        hybrid.ledger
    );
    assert!(
        hybrid.ledger.drops_queue > 0,
        "capacity constraint never engaged — test is vacuous"
    );
}

#[test]
fn fluid_queue_delays_and_surfaces_latency_instead_of_dropping() {
    let (p, e, specs) = setup(&[CanonicalChain::Chain1]);
    let mut spec = small_scenario(1, 3, 60, 200);
    spec.chains[0].surges = vec![Surge {
        kind: SurgeKind::FlashCrowd,
        start_ns: 2_000_000,
        duration_ns: 1_000_000,
        factor: 3.0,
    }];
    let scenario = spec.materialize();
    let run = |buffer: u64| {
        run_mode(
            &p,
            &e,
            &specs,
            &scenario,
            &HybridMode::Hybrid(HybridConfig {
                heavy_min_packets: 8,
                capacity_bps: vec![20e6],
                queue_buffer_packets: buffer,
            }),
        )
        .0
    };
    // Drop-only baseline (buffer = 0) vs a deep queue.
    let droponly = run(0);
    let queued = run(1_000_000);
    assert!(droponly.ledger.drops_queue > 0, "vacuous: no overload");
    assert!(queued.ledger.balanced(), "queued ledger unbalanced");
    assert!(
        queued.ledger.drops_queue < droponly.ledger.drops_queue,
        "a deep buffer must absorb mass the drop-only budget discards"
    );
    // The backlog is visible at window closes and is charged as
    // in-flight if the run ends before it drains.
    let peak_backlog = queued
        .windows
        .iter()
        .map(|w| w.backlog_packets)
        .max()
        .unwrap_or(0);
    assert!(peak_backlog > 0, "queue never formed");
    // Queueing produces a latency signal the drop-only budget hides:
    // some window's mean latency must exceed the drop-only run's.
    let max_lat = |r: &SimReport| {
        r.windows
            .iter()
            .map(|w| w.mean_latency_ns)
            .fold(0.0f64, f64::max)
    };
    assert!(
        max_lat(&queued) > max_lat(&droponly),
        "fluid queue added no waiting time to any window"
    );
    // Arrival accounting is identical either way — the queue only moves
    // mass between delivered/dropped/in-flight buckets.
    assert_eq!(droponly.ledger.injected, queued.ledger.injected);
}

#[test]
fn invalid_capacity_is_a_typed_error() {
    let (p, e, specs) = setup(&[CanonicalChain::Chain1]);
    let scenario = small_scenario(1, 5, 10, 16).materialize();
    for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        let mut tb = Testbed::build_with_mode(&p, &e, RuntimeMode::Fused).unwrap();
        let err = tb
            .run_scenario(
                &scenario,
                &specs,
                quick(),
                &HybridMode::Hybrid(HybridConfig {
                    heavy_min_packets: 4,
                    capacity_bps: vec![bad],
                    queue_buffer_packets: 0,
                }),
            )
            .expect_err("bad capacity must be refused");
        let lemur_dataplane::ScenarioError::InvalidCapacity { chain, value } = err;
        assert_eq!(chain, 0);
        assert!(value == bad || (value.is_nan() && bad.is_nan()));
    }
}

proptest! {
    #![cases = 6]

    /// Any small scenario: hybrid matches packet-level on injected totals
    /// exactly, and on delivered totals and per-node NF observables
    /// within the documented in-flight + window-edge bound.
    #[test]
    fn small_scenarios_agree_within_bound(
        seed in 0u64..1_000,
        n_chains in 1usize..=3,
        flows in 1usize..=21, // ≤ 63 flows across ≤ 3 chains
        max_size in 4u64..=32,
        theta in 2u64..=16,
    ) {
        let all = [CanonicalChain::Chain1, CanonicalChain::Chain3, CanonicalChain::Chain5];
        let (p, e, specs) = setup(&all[..n_chains]);
        let scenario = small_scenario(n_chains, seed, flows, max_size).materialize();
        let (packet, obs_p) = run_mode(&p, &e, &specs, &scenario, &HybridMode::PacketLevel);
        let (hybrid, obs_h) = run_mode(
            &p,
            &e,
            &specs,
            &scenario,
            &HybridMode::Hybrid(HybridConfig { heavy_min_packets: theta, ..HybridConfig::default() }),
        );
        // Arrival accounting is exact in both modes.
        prop_assert_eq!(packet.ledger.injected, hybrid.ledger.injected);
        prop_assert!(packet.ledger.balanced(), "packet ledger unbalanced");
        prop_assert!(hybrid.ledger.balanced(), "hybrid ledger unbalanced");
        let bound = packet.ledger.in_flight_at_end
            + hybrid.ledger.in_flight_at_end
            + (packet.ledger.injected / 50).max(3);
        let d_p = packet.ledger.delivered;
        let d_h = hybrid.ledger.delivered;
        prop_assert!(
            d_p.abs_diff(d_h) <= bound,
            "delivered diverged: packet={d_p} hybrid={d_h} bound={bound}"
        );
        // NF state effects: per-(chain, node, kind) packet counts agree
        // within the same bound; flow counts within the flow total.
        prop_assert_eq!(
            obs_p.keys().collect::<Vec<_>>(),
            obs_h.keys().collect::<Vec<_>>(),
            "NF index diverged"
        );
        for (k, (pk_packets, pk_flows)) in &obs_p {
            let (hy_packets, hy_flows) = obs_h[k];
            prop_assert!(
                pk_packets.abs_diff(hy_packets) <= bound,
                "{k:?}: NF packets diverged: packet={pk_packets} hybrid={hy_packets} bound={bound}"
            );
            let flow_bound = (scenario.flows.len() as u64 / 20).max(2);
            prop_assert!(
                pk_flows.abs_diff(hy_flows) <= flow_bound,
                "{k:?}: NF flows diverged: packet={pk_flows} hybrid={hy_flows} bound={flow_bound}"
            );
        }
    }
}

#[test]
fn hybrid_reports_are_bit_identical_across_worker_counts() {
    use lemur_metacompiler::CompilerOracle;
    use lemur_placer::parallel::Workers;

    let (p, _, specs) = setup(&[CanonicalChain::Chain3]);
    let scenario = small_scenario(1, 41, 48, 64).materialize();
    let mode = HybridMode::Hybrid(HybridConfig {
        heavy_min_packets: 12,
        ..HybridConfig::default()
    });
    let oracle = CompilerOracle::new();
    let mut baseline: Option<SimReport> = None;
    for workers in [1usize, 2, 8] {
        let e = lemur_placer::heuristic::place_with_workers(
            &p,
            &oracle,
            CoreStrategy::WaterFill,
            Workers::new(workers),
        )
        .unwrap();
        let (report, _) = run_mode(&p, &e, &specs, &scenario, &mode);
        match &baseline {
            None => baseline = Some(report),
            Some(r0) => assert_eq!(r0, &report, "hybrid report changed at workers={workers}"),
        }
    }
}
