//! Differential test: the fused batch dataplane must be *observationally
//! identical* to the per-NF trait-object reference runtime.
//!
//! Two axes of comparison:
//!
//! 1. **Whole-testbed**: build the same placement twice — once with
//!    [`RuntimeMode::Reference`], once with [`RuntimeMode::Fused`] — drive
//!    identical seeded traffic, and `assert_eq!` the *entire* [`SimReport`]
//!    (delivered bytes, drop reasons, conservation ledger, latency
//!    timelines, SLO violations). Any divergence in a verdict, a rewritten
//!    byte, or a drop reason shows up as a report mismatch.
//! 2. **Segment-level adversarial**: feed hand-built hostile frames
//!    (truncated, garbage, VLAN-tagged, non-IPv4, empty) through a
//!    reference [`Subgroup`] and a [`FusedSegment`] built from the same
//!    chain spec, and compare outputs, gates, counters, and per-NF state
//!    fingerprints after every batch.
//!
//! The placer's LP fan-outs honour `LEMUR_WORKERS`; the worker-count axis
//! is exercised with explicit [`Workers`] handles (1, 2, 8) rather than by
//! mutating the environment, which would race with the parallel test
//! harness while proving the same property: the fused/reference
//! equivalence is independent of how the placement was computed.

use lemur_bess::subgroup::Subgroup;
use lemur_core::chains::{canonical_chain, CanonicalChain};
use lemur_core::graph::ChainSpec;
use lemur_core::Slo;
use lemur_dataplane::{RuntimeMode, SimConfig, SimReport, Testbed, TrafficSpec};
use lemur_metacompiler::FusedSegment;
use lemur_nf::fused::FusedNf;
use lemur_nf::{build_nf, NfCtx, NfKind, NfParams};
use lemur_packet::batch::Batch;
use lemur_packet::builder::udp_packet;
use lemur_packet::{ethernet, ipv4, PacketBuf};
use lemur_placer::corealloc::CoreStrategy;
use lemur_placer::placement::{EvaluatedPlacement, PlacementProblem};
use lemur_placer::profiles::NfProfiles;
use lemur_placer::topology::Topology;

#[derive(Clone, Copy)]
enum Placement {
    HwPreferred,
    /// Push every NF down to the servers: maximal fused-segment coverage.
    SwPreferred,
}

fn setup(
    which: &[CanonicalChain],
    placement: Placement,
    delta: f64,
) -> (PlacementProblem, EvaluatedPlacement, Vec<TrafficSpec>) {
    let mut specs = Vec::new();
    let chains: Vec<ChainSpec> = which
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let spec = TrafficSpec::for_chain(i + 1, 1e9).expect("chain index in range");
            let agg = spec.aggregate();
            specs.push(spec);
            ChainSpec {
                name: format!("chain{}", w.index()),
                graph: canonical_chain(*w),
                slo: None,
                aggregate: Some(agg),
            }
        })
        .collect();
    let mut p = PlacementProblem::new(chains, Topology::testbed(), NfProfiles::table4());
    for i in 0..p.chains.len() {
        let base = p.base_rate_bps(i);
        p.chains[i].slo = Some(Slo::elastic_pipe(delta * base, 100e9));
    }
    let a = match placement {
        Placement::HwPreferred => lemur_placer::baselines::hw_preferred_assignment(&p),
        Placement::SwPreferred => lemur_placer::baselines::sw_preferred_assignment(&p),
    };
    let e = p.evaluate(&a, CoreStrategy::WaterFill).unwrap();
    for (i, s) in specs.iter_mut().enumerate() {
        // Offer 20% above the predicted rate, capped at the link, so the
        // run exercises both the delivery and the overload/drop paths.
        s.offered_bps = (e.chain_rates_bps[i] * 1.2).min(20e9);
    }
    (p, e, specs)
}

fn quick() -> SimConfig {
    SimConfig {
        duration_s: 0.004,
        warmup_s: 0.001,
        ..SimConfig::default()
    }
}

/// Build the same placement under both runtime modes, run identical
/// traffic, and return both reports plus the fused testbed's census.
fn run_both(
    p: &PlacementProblem,
    e: &EvaluatedPlacement,
    specs: &[TrafficSpec],
) -> (SimReport, SimReport, (usize, usize)) {
    let mut reference = Testbed::build_with_mode(p, e, RuntimeMode::Reference).unwrap();
    let mut fused = Testbed::build_with_mode(p, e, RuntimeMode::Fused).unwrap();
    assert_eq!(
        reference.runtime_census().0,
        0,
        "reference mode must not contain fused replicas"
    );
    let census = fused.runtime_census();
    let ref_report = reference.run(specs, quick());
    let fused_report = fused.run(specs, quick());
    (ref_report, fused_report, census)
}

#[test]
fn every_canonical_chain_fused_matches_reference_sw_preferred() {
    for chain in CanonicalChain::ALL {
        // All-software placements cannot reach the full hw-assisted base
        // rate; a relaxed SLO floor keeps them feasible.
        let (p, e, specs) = setup(&[chain], Placement::SwPreferred, 0.25);
        let (ref_report, fused_report, (fused_n, total)) = run_both(&p, &e, &specs);
        assert!(
            fused_n > 0 && fused_n == total,
            "chain{}: expected all {total} server replicas fused, got {fused_n}",
            chain.index()
        );
        assert!(
            ref_report.per_chain[0].delivered_bps > 0.0,
            "chain{}: reference delivered nothing — vacuous comparison",
            chain.index()
        );
        // Bit-identical verdicts, bytes, drop reasons, ledger totals,
        // latency samples: the whole report must match.
        assert_eq!(
            ref_report,
            fused_report,
            "chain{} diverged under fusion",
            chain.index()
        );
    }
}

#[test]
fn hw_preferred_mixed_platform_fused_matches_reference() {
    // Under hw-preferred placement only the residual server-side segments
    // are fused; switch and NIC hops are shared verbatim between modes.
    let (p, e, specs) = setup(
        &[CanonicalChain::Chain3, CanonicalChain::Chain5],
        Placement::HwPreferred,
        1.0,
    );
    let (ref_report, fused_report, (fused_n, total)) = run_both(&p, &e, &specs);
    assert_eq!(fused_n, total, "every server replica should be fused");
    assert_eq!(ref_report, fused_report);
}

#[test]
fn all_five_chains_together_fused_matches_reference() {
    let (p, e, specs) = setup(&CanonicalChain::ALL, Placement::SwPreferred, 0.2);
    let (ref_report, fused_report, (fused_n, _)) = run_both(&p, &e, &specs);
    assert!(fused_n > 0);
    let delivered: f64 = ref_report.per_chain.iter().map(|c| c.delivered_bps).sum();
    assert!(delivered > 0.0, "vacuous comparison");
    assert_eq!(ref_report, fused_report);
}

#[test]
fn worker_count_does_not_affect_fused_equivalence() {
    use lemur_metacompiler::CompilerOracle;
    use lemur_placer::parallel::Workers;

    // Compute the placement through the real heuristic pipeline at several
    // LEMUR_WORKERS settings. The placer guarantees bit-identical results
    // for every worker count; the fused runtime must preserve that.
    let (p, _, mut specs) = setup(&[CanonicalChain::Chain3], Placement::HwPreferred, 1.0);
    let oracle = CompilerOracle::new();
    let mut baseline: Option<(EvaluatedPlacement, SimReport)> = None;
    for workers in [1usize, 2, 8] {
        let e = lemur_placer::heuristic::place_with_workers(
            &p,
            &oracle,
            CoreStrategy::WaterFill,
            Workers::new(workers),
        )
        .unwrap();
        specs[0].offered_bps = (e.chain_rates_bps[0] * 1.2).min(20e9);
        let (ref_report, fused_report, _) = run_both(&p, &e, &specs);
        assert_eq!(
            ref_report, fused_report,
            "fused diverged at workers={workers}"
        );
        match &baseline {
            None => baseline = Some((e, fused_report)),
            Some((e0, r0)) => {
                assert_eq!(
                    e0.assignment, e.assignment,
                    "placement changed at workers={workers}"
                );
                assert_eq!(r0, &fused_report, "report changed at workers={workers}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Segment-level adversarial differential
// ---------------------------------------------------------------------------

fn valid_pkt(dst: ipv4::Address, src_port: u16, payload: &[u8]) -> PacketBuf {
    udp_packet(
        ethernet::Address([2, 0, 0, 0, 0, 1]),
        ethernet::Address([2, 0, 0, 0, 0, 2]),
        ipv4::Address::new(203, 0, 113, 9),
        dst,
        src_port,
        443,
        payload,
    )
}

/// Hostile frames: every parse stage gets something it must reject.
fn adversarial_frames() -> Vec<PacketBuf> {
    let mut out = Vec::new();
    // Empty frame.
    out.push(PacketBuf::from_bytes(&[]));
    // Truncated ethernet header.
    out.push(PacketBuf::from_bytes(&[0xde, 0xad, 0xbe]));
    // Ethernet header only, no L3.
    let mut eth_only = vec![0u8; ethernet::HEADER_LEN];
    eth_only[12] = 0x08; // ethertype IPv4...
    eth_only[13] = 0x00; // ...but nothing follows.
    out.push(PacketBuf::from_bytes(&eth_only));
    // Non-IPv4 ethertype (ARP).
    let mut arp = vec![0u8; 60];
    arp[12] = 0x08;
    arp[13] = 0x06;
    out.push(PacketBuf::from_bytes(&arp));
    // VLAN-tagged frame (0x8100) — the plain IPv4 parser must reject it.
    let mut vlan = valid_pkt(ipv4::Address::new(10, 0, 0, 1), 1111, b"vlan")
        .as_slice()
        .to_vec();
    vlan.splice(12..12, [0x81, 0x00, 0x00, 0x2a]);
    out.push(PacketBuf::from_bytes(&vlan));
    // IPv4 header truncated mid-way.
    let full = valid_pkt(ipv4::Address::new(10, 0, 0, 2), 2222, b"trunc")
        .as_slice()
        .to_vec();
    out.push(PacketBuf::from_bytes(&full[..ethernet::HEADER_LEN + 7]));
    // IPv4 claiming IHL=15 with no options present.
    let mut bad_ihl = valid_pkt(ipv4::Address::new(10, 0, 0, 3), 3333, b"ihl")
        .as_slice()
        .to_vec();
    bad_ihl[ethernet::HEADER_LEN] = 0x4f;
    out.push(PacketBuf::from_bytes(&bad_ihl));
    // Non-UDP/TCP protocol (ICMP): no L4 tuple.
    let mut icmp = valid_pkt(ipv4::Address::new(10, 0, 0, 4), 4444, b"icmp")
        .as_slice()
        .to_vec();
    icmp[ethernet::HEADER_LEN + 9] = 1;
    out.push(PacketBuf::from_bytes(&icmp));
    // Pure garbage, longer than every header combined.
    let garbage: Vec<u8> = (0..96u16)
        .map(|i| (i.wrapping_mul(197) >> 3) as u8)
        .collect();
    out.push(PacketBuf::from_bytes(&garbage));
    out
}

/// Deterministic mixed stream: valid flows interleaved with every
/// adversarial frame, `n` packets long.
fn mixed_stream(n: usize, seed: u16) -> Vec<PacketBuf> {
    let hostile = adversarial_frames();
    (0..n)
        .map(|i| {
            if i % 3 == 2 {
                hostile[(seed as usize + i) % hostile.len()].clone()
            } else {
                let x = seed.wrapping_add(i as u16);
                valid_pkt(
                    ipv4::Address::new(10, (x % 5) as u8, 0, (x % 9) as u8 + 1),
                    5000 + (x % 37),
                    b"mixed stream payload",
                )
            }
        })
        .collect()
}

fn both_runtimes(specs: &[(NfKind, NfParams)]) -> (Subgroup, FusedSegment) {
    let boxed = Subgroup::new("ref", specs.iter().map(|(k, p)| build_nf(*k, p)).collect());
    let fused = FusedSegment::new(
        "fused",
        specs.iter().map(|(k, p)| FusedNf::build(*k, p)).collect(),
    );
    (boxed, fused)
}

/// Chains that together cover all 14 NF kinds, including every
/// flow-cache-preserving classifier and every cache-invalidating mutator.
fn coverage_chains() -> Vec<Vec<(NfKind, NfParams)>> {
    let p = NfParams::new;
    vec![
        vec![
            (NfKind::Acl, p()),
            (NfKind::Match, p()),
            (NfKind::Monitor, p()),
            (NfKind::Limiter, p()),
        ],
        vec![(NfKind::Nat, p()), (NfKind::Monitor, p())],
        vec![(NfKind::Lb, p()), (NfKind::Acl, p())],
        vec![(NfKind::Encrypt, p()), (NfKind::Decrypt, p())],
        vec![(NfKind::Tunnel, p()), (NfKind::Detunnel, p())],
        vec![
            (NfKind::Dedup, p()),
            (NfKind::UrlFilter, p()),
            (NfKind::Ipv4Fwd, p()),
        ],
        vec![(NfKind::FastEncrypt, p()), (NfKind::Monitor, p())],
    ]
}

#[test]
fn adversarial_batches_match_reference_at_every_batch_size() {
    for (ci, specs) in coverage_chains().into_iter().enumerate() {
        for batch_size in [1usize, 8, 32, 64] {
            let (mut sg, mut fs) = both_runtimes(&specs);
            let mut now_ns = 10_000u64;
            for round in 0..4u16 {
                let stream = mixed_stream(batch_size, round.wrapping_mul(31) + ci as u16);
                let ctx = NfCtx { now_ns };
                let mut batch_a = Batch::new();
                let mut batch_b = Batch::new();
                for pkt in &stream {
                    batch_a.push(pkt.clone());
                    batch_b.push(pkt.clone());
                }
                let ref_out = sg.process_batch(&ctx, batch_a);
                let fused_out = fs.process_batch(&ctx, batch_b);
                assert_eq!(
                    ref_out.dropped, fused_out.dropped,
                    "chain {ci} batch={batch_size} round={round}: drop count diverged"
                );
                // Survivor bytes AND exit gates, in order.
                assert_eq!(
                    ref_out.packets, fused_out.packets,
                    "chain {ci} batch={batch_size} round={round}: packets diverged"
                );
                assert_eq!(sg.packets_in(), fs.packets_in());
                assert_eq!(sg.packets_dropped(), fs.packets_dropped());
                for idx in 0..specs.len() {
                    assert_eq!(
                        sg.nf_state_fingerprint(idx),
                        fs.nf_state_fingerprint(idx),
                        "chain {ci} batch={batch_size} round={round}: NF {idx} state diverged"
                    );
                }
                now_ns += 1_000_000;
            }
        }
    }
}

#[test]
fn adversarial_single_packet_path_matches_reference() {
    // The engine's per-packet entry point (`process_packet`) must agree
    // with the reference on the same hostile stream, byte for byte.
    for specs in coverage_chains() {
        let (mut sg, mut fs) = both_runtimes(&specs);
        let ctx = NfCtx { now_ns: 77_000 };
        for (i, pkt) in mixed_stream(48, 7).into_iter().enumerate() {
            let mut a = pkt.clone();
            let mut b = pkt;
            let ga = sg.process_packet(&ctx, &mut a);
            let gb = fs.process_packet(&ctx, &mut b);
            assert_eq!(ga, gb, "packet {i}: gate diverged");
            assert_eq!(a, b, "packet {i}: bytes diverged");
        }
        for idx in 0..specs.len() {
            assert_eq!(sg.nf_state_fingerprint(idx), fs.nf_state_fingerprint(idx));
        }
    }
}
