//! Deterministic fault injection for the simulated testbed.
//!
//! A [`FaultPlan`] schedules events in *virtual* time: the engine replays
//! them from its event heap exactly like packet hops, so a run with a
//! given `(SimConfig, FaultPlan)` pair is bit-for-bit reproducible. An
//! empty plan leaves the engine's behavior byte-identical to a run without
//! fault support — the plan only exists in the heap if it has events.

use std::collections::BTreeSet;

use lemur_placer::Topology;
use serde::{DeError, Deserialize, Serialize, Value};

/// What an injected migration fault breaks inside the drain-window state
/// migration. These arm at injection time and fire at the *next* epoch
/// swap, modelling failures of the snapshot→transfer→restore pipeline
/// itself rather than of the steady-state dataplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationFaultKind {
    /// One snapshot's bytes are corrupted in transit (single byte flip);
    /// the per-NF checksum must catch it and force a rollback.
    SnapshotCorrupt,
    /// The state transfer is cut short: the last record is lost while the
    /// manifest still declares it, so the receiver sees a truncation.
    TransferTruncate,
    /// The control plane crashes between snapshot and restore; the
    /// supervisor must replay its decision log to a consistent state.
    ControlCrash,
    /// The restore phase exceeds the drain window (modelled as a timeout);
    /// the old epoch must stay live.
    RestoreTimeout,
}

impl MigrationFaultKind {
    /// Short human-readable tag used in reports and JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            MigrationFaultKind::SnapshotCorrupt => "snapshot_corrupt",
            MigrationFaultKind::TransferTruncate => "transfer_truncate",
            MigrationFaultKind::ControlCrash => "control_crash",
            MigrationFaultKind::RestoreTimeout => "restore_timeout",
        }
    }

    /// All kinds, for storm generation.
    pub const ALL: [MigrationFaultKind; 4] = [
        MigrationFaultKind::SnapshotCorrupt,
        MigrationFaultKind::TransferTruncate,
        MigrationFaultKind::ControlCrash,
        MigrationFaultKind::RestoreTimeout,
    ];

    fn from_tag(tag: &str) -> Option<MigrationFaultKind> {
        MigrationFaultKind::ALL.into_iter().find(|k| k.tag() == tag)
    }
}

impl std::fmt::Display for MigrationFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// One kind of injected fault (or recovery).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The ToR↔server link for `server` goes down: packets routed over it
    /// in either direction are dropped until a matching [`FaultKind::LinkUp`].
    LinkDown { server: usize },
    /// The ToR↔server link for `server` comes back.
    LinkUp { server: usize },
    /// A worker core on `server` fails: every packet steered to an NF
    /// instance pinned to that core is dropped for the rest of the run.
    CoreFail { server: usize, core: usize },
    /// The NF subgroup (global index into the placement's subgroup list)
    /// crashes: its traffic is dropped until [`FaultKind::NfRecover`].
    NfCrash { subgroup: usize },
    /// The crashed subgroup finishes restarting.
    NfRecover { subgroup: usize },
    /// The subgroup's per-packet cycle cost is multiplied by `factor`
    /// (> 1.0 models drift away from the profiled cost, e.g. a cache-
    /// hostile traffic mix).
    ProfileDrift { subgroup: usize, factor: f64 },
    /// The chain's offered rate is multiplied by `factor` from this point
    /// on (> 1.0 is a surge, < 1.0 a lull).
    TrafficSurge { chain: usize, factor: f64 },
    /// Arm a failure of the state-migration pipeline: it fires during the
    /// *next* epoch swap after this event's injection time (a no-op if no
    /// swap ever happens).
    MigrationFault { fault: MigrationFaultKind },
}

impl FaultKind {
    /// Short human-readable tag used in reports.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::LinkDown { .. } => "link_down",
            FaultKind::LinkUp { .. } => "link_up",
            FaultKind::CoreFail { .. } => "core_fail",
            FaultKind::NfCrash { .. } => "nf_crash",
            FaultKind::NfRecover { .. } => "nf_recover",
            FaultKind::ProfileDrift { .. } => "profile_drift",
            FaultKind::TrafficSurge { .. } => "traffic_surge",
            FaultKind::MigrationFault { .. } => "migration_fault",
        }
    }
}

impl Serialize for FaultKind {
    fn to_value(&self) -> Value {
        let mut entries = vec![("type".to_string(), Value::Str(self.tag().to_string()))];
        match self {
            FaultKind::LinkDown { server } | FaultKind::LinkUp { server } => {
                entries.push(("server".to_string(), server.to_value()));
            }
            FaultKind::CoreFail { server, core } => {
                entries.push(("server".to_string(), server.to_value()));
                entries.push(("core".to_string(), core.to_value()));
            }
            FaultKind::NfCrash { subgroup } | FaultKind::NfRecover { subgroup } => {
                entries.push(("subgroup".to_string(), subgroup.to_value()));
            }
            FaultKind::ProfileDrift { subgroup, factor } => {
                entries.push(("subgroup".to_string(), subgroup.to_value()));
                entries.push(("factor".to_string(), factor.to_value()));
            }
            FaultKind::TrafficSurge { chain, factor } => {
                entries.push(("chain".to_string(), chain.to_value()));
                entries.push(("factor".to_string(), factor.to_value()));
            }
            FaultKind::MigrationFault { fault } => {
                entries.push(("fault".to_string(), Value::Str(fault.tag().to_string())));
            }
        }
        Value::object(entries)
    }
}

/// Pull a typed field out of a JSON object, erroring if absent.
fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    T::from_value(v.get(name).ok_or_else(|| DeError::missing(name))?)
}

impl Deserialize for FaultKind {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let tag: String = field(v, "type")?;
        match tag.as_str() {
            "link_down" => Ok(FaultKind::LinkDown {
                server: field(v, "server")?,
            }),
            "link_up" => Ok(FaultKind::LinkUp {
                server: field(v, "server")?,
            }),
            "core_fail" => Ok(FaultKind::CoreFail {
                server: field(v, "server")?,
                core: field(v, "core")?,
            }),
            "nf_crash" => Ok(FaultKind::NfCrash {
                subgroup: field(v, "subgroup")?,
            }),
            "nf_recover" => Ok(FaultKind::NfRecover {
                subgroup: field(v, "subgroup")?,
            }),
            "profile_drift" => Ok(FaultKind::ProfileDrift {
                subgroup: field(v, "subgroup")?,
                factor: field(v, "factor")?,
            }),
            "traffic_surge" => Ok(FaultKind::TrafficSurge {
                chain: field(v, "chain")?,
                factor: field(v, "factor")?,
            }),
            "migration_fault" => {
                let name: String = field(v, "fault")?;
                let fault = MigrationFaultKind::from_tag(&name)
                    .ok_or_else(|| DeError(format!("unknown migration fault `{name}`")))?;
                Ok(FaultKind::MigrationFault { fault })
            }
            other => Err(DeError(format!("unknown fault kind `{other}`"))),
        }
    }
}

/// A scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Virtual time of injection (ns from simulation start; the warm-up
    /// period counts, so plans usually schedule after `warmup_s`).
    pub at_ns: u64,
    pub kind: FaultKind,
}

impl Serialize for FaultEvent {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("at_ns".to_string(), self.at_ns.to_value()),
            ("kind".to_string(), self.kind.to_value()),
        ])
    }
}

impl Deserialize for FaultEvent {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(FaultEvent {
            at_ns: field(v, "at_ns")?,
            kind: field(v, "kind")?,
        })
    }
}

/// A deterministic schedule of fault events, sorted by injection time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl Serialize for FaultPlan {
    fn to_value(&self) -> Value {
        Value::object(vec![("events".to_string(), self.events.to_value())])
    }
}

impl Deserialize for FaultPlan {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // `new` re-sorts, so hand-edited JSON need not be time-ordered.
        Ok(FaultPlan::new(field(v, "events")?))
    }
}

/// Why a [`FaultPlan`] was rejected by [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A server index exceeds the topology.
    ServerOutOfRange {
        event: usize,
        server: usize,
        n_servers: usize,
    },
    /// A core index exceeds the server's core count.
    CoreOutOfRange {
        event: usize,
        server: usize,
        core: usize,
        n_cores: usize,
    },
    /// A subgroup index exceeds the deployment's subgroup count.
    SubgroupOutOfRange {
        event: usize,
        subgroup: usize,
        n_subgroups: usize,
    },
    /// A chain index exceeds the problem's chain count.
    ChainOutOfRange {
        event: usize,
        chain: usize,
        n_chains: usize,
    },
    /// A drift/surge factor was non-positive or non-finite.
    BadFactor { event: usize, factor: f64 },
    /// A recovery (`LinkUp`/`NfRecover`) with no preceding matching fault.
    RepairBeforeFault { event: usize, kind: FaultKind },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::ServerOutOfRange {
                event,
                server,
                n_servers,
            } => {
                write!(
                    f,
                    "event {event}: server {server} out of range (topology has {n_servers})"
                )
            }
            FaultPlanError::CoreOutOfRange {
                event,
                server,
                core,
                n_cores,
            } => {
                write!(
                    f,
                    "event {event}: core {core} out of range (server {server} has {n_cores})"
                )
            }
            FaultPlanError::SubgroupOutOfRange {
                event,
                subgroup,
                n_subgroups,
            } => {
                write!(
                    f,
                    "event {event}: subgroup {subgroup} out of range (deployment has {n_subgroups})"
                )
            }
            FaultPlanError::ChainOutOfRange {
                event,
                chain,
                n_chains,
            } => {
                write!(
                    f,
                    "event {event}: chain {chain} out of range (problem has {n_chains})"
                )
            }
            FaultPlanError::BadFactor { event, factor } => {
                write!(f, "event {event}: factor {factor} must be finite and > 0")
            }
            FaultPlanError::RepairBeforeFault { event, kind } => {
                write!(
                    f,
                    "event {event}: {} has no preceding matching fault",
                    kind.tag()
                )
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

impl FaultPlan {
    /// A plan with no events — running with it is identical to running
    /// without fault injection.
    pub fn empty() -> FaultPlan {
        FaultPlan { events: Vec::new() }
    }

    /// Build a plan from events (sorted by time on construction; ties keep
    /// their relative order, so e.g. a `LinkDown` listed before a `LinkUp`
    /// at the same instant applies first).
    pub fn new(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.at_ns);
        FaultPlan { events }
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Events in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Add an event, keeping the schedule sorted (builder style).
    pub fn with(mut self, at_ns: u64, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent { at_ns, kind });
        self.events.sort_by_key(|e| e.at_ns);
        self
    }

    /// Convenience: a link flap on `server` over `[down_ns, up_ns)`.
    pub fn link_flap(self, server: usize, down_ns: u64, up_ns: u64) -> FaultPlan {
        assert!(up_ns > down_ns, "flap must recover after it fails");
        self.with(down_ns, FaultKind::LinkDown { server })
            .with(up_ns, FaultKind::LinkUp { server })
    }

    /// Convenience: crash subgroup for a repair interval `[at_ns, at_ns + repair_ns)`.
    pub fn nf_crash(self, subgroup: usize, at_ns: u64, repair_ns: u64) -> FaultPlan {
        self.with(at_ns, FaultKind::NfCrash { subgroup })
            .with(at_ns + repair_ns, FaultKind::NfRecover { subgroup })
    }

    /// The set of servers whose links are down at the end of the plan
    /// (useful for building a degraded-topology repair problem).
    pub fn links_down_at_end(&self) -> BTreeSet<usize> {
        let mut down = BTreeSet::new();
        for e in &self.events {
            match e.kind {
                FaultKind::LinkDown { server } => {
                    down.insert(server);
                }
                FaultKind::LinkUp { server } => {
                    down.remove(&server);
                }
                _ => {}
            }
        }
        down
    }

    /// Check the plan against a topology (and the deployment's subgroup /
    /// chain counts, which the topology does not know). Rejects
    /// out-of-range indices, non-positive factors, and repairs that
    /// precede any matching fault — all of which would otherwise simulate
    /// silently as no-ops or nonsense.
    pub fn validate(
        &self,
        topo: &Topology,
        n_subgroups: usize,
        n_chains: usize,
    ) -> Result<(), FaultPlanError> {
        let n_servers = topo.servers.len();
        let check_server = |event: usize, server: usize| {
            if server >= n_servers {
                Err(FaultPlanError::ServerOutOfRange {
                    event,
                    server,
                    n_servers,
                })
            } else {
                Ok(())
            }
        };
        let check_subgroup = |event: usize, subgroup: usize| {
            if subgroup >= n_subgroups {
                Err(FaultPlanError::SubgroupOutOfRange {
                    event,
                    subgroup,
                    n_subgroups,
                })
            } else {
                Ok(())
            }
        };
        let check_factor = |event: usize, factor: f64| {
            if !factor.is_finite() || factor <= 0.0 {
                Err(FaultPlanError::BadFactor { event, factor })
            } else {
                Ok(())
            }
        };
        // Events are time-sorted, so a linear scan sees faults before the
        // repairs that reference them.
        let mut links_down: BTreeSet<usize> = BTreeSet::new();
        let mut crashed: BTreeSet<usize> = BTreeSet::new();
        for (i, e) in self.events.iter().enumerate() {
            match e.kind {
                FaultKind::LinkDown { server } => {
                    check_server(i, server)?;
                    links_down.insert(server);
                }
                FaultKind::LinkUp { server } => {
                    check_server(i, server)?;
                    if !links_down.remove(&server) {
                        return Err(FaultPlanError::RepairBeforeFault {
                            event: i,
                            kind: e.kind.clone(),
                        });
                    }
                }
                FaultKind::CoreFail { server, core } => {
                    check_server(i, server)?;
                    let n_cores = topo.servers[server].num_cores();
                    if core >= n_cores {
                        return Err(FaultPlanError::CoreOutOfRange {
                            event: i,
                            server,
                            core,
                            n_cores,
                        });
                    }
                }
                FaultKind::NfCrash { subgroup } => {
                    check_subgroup(i, subgroup)?;
                    crashed.insert(subgroup);
                }
                FaultKind::NfRecover { subgroup } => {
                    check_subgroup(i, subgroup)?;
                    if !crashed.remove(&subgroup) {
                        return Err(FaultPlanError::RepairBeforeFault {
                            event: i,
                            kind: e.kind.clone(),
                        });
                    }
                }
                FaultKind::ProfileDrift { subgroup, factor } => {
                    check_subgroup(i, subgroup)?;
                    check_factor(i, factor)?;
                }
                FaultKind::TrafficSurge { chain, factor } => {
                    if chain >= n_chains {
                        return Err(FaultPlanError::ChainOutOfRange {
                            event: i,
                            chain,
                            n_chains,
                        });
                    }
                    check_factor(i, factor)?;
                }
                // Migration faults arm the next swap; nothing to range-check.
                FaultKind::MigrationFault { .. } => {}
            }
        }
        Ok(())
    }

    /// `(server, core)` pairs failed by the plan (core failures are
    /// permanent for the run).
    pub fn cores_failed(&self) -> BTreeSet<(usize, usize)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::CoreFail { server, core } => Some((server, core)),
                _ => None,
            })
            .collect()
    }
}

/// What a fleet-level fault does to the coordinator↔PoP control channel.
/// These are *windowed* conditions (active between `from_ns` and `to_ns`
/// of a [`ChannelFault`]), unlike the point events of [`FaultKind`] —
/// control-plane failures are outages, not edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelFaultKind {
    /// Total blackout: every message to *and* from the site is dropped
    /// (the whole-PoP failure a fleet must survive).
    Blackout,
    /// Asymmetric partition: messages *to* the site are dropped, but the
    /// site's own messages still get out — the coordinator hears a PoP it
    /// cannot command.
    PartitionTo,
    /// Asymmetric partition the other way: the site hears everything but
    /// its replies are lost — the coordinator sees silence from a PoP that
    /// is obeying stale orders.
    PartitionFrom,
    /// Brownout: both directions limp along with an extra `drop_permille`
    /// ‰ loss on top of the channel's baseline.
    Brownout { drop_permille: u16 },
}

impl ChannelFaultKind {
    /// Short human-readable tag used in reports and JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            ChannelFaultKind::Blackout => "blackout",
            ChannelFaultKind::PartitionTo => "partition_to",
            ChannelFaultKind::PartitionFrom => "partition_from",
            ChannelFaultKind::Brownout { .. } => "brownout",
        }
    }
}

impl std::fmt::Display for ChannelFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelFaultKind::Brownout { drop_permille } => {
                write!(f, "brownout({drop_permille}‰)")
            }
            other => f.write_str(other.tag()),
        }
    }
}

/// One windowed control-channel fault against a site (PoP). The window is
/// half-open: active for `from_ns <= now < to_ns`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelFault {
    pub site: usize,
    pub kind: ChannelFaultKind,
    pub from_ns: u64,
    pub to_ns: u64,
}

impl ChannelFault {
    /// Is this fault active at `now` for traffic involving `site`?
    pub fn active(&self, now_ns: u64, site: usize) -> bool {
        self.site == site && self.from_ns <= now_ns && now_ns < self.to_ns
    }
}

impl Serialize for ChannelFault {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("site".to_string(), self.site.to_value()),
            ("kind".to_string(), Value::Str(self.kind.tag().to_string())),
            ("from_ns".to_string(), self.from_ns.to_value()),
            ("to_ns".to_string(), self.to_ns.to_value()),
        ];
        if let ChannelFaultKind::Brownout { drop_permille } = self.kind {
            entries.push(("drop_permille".to_string(), drop_permille.to_value()));
        }
        Value::object(entries)
    }
}

impl Deserialize for ChannelFault {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let tag: String = field(v, "kind")?;
        let kind = match tag.as_str() {
            "blackout" => ChannelFaultKind::Blackout,
            "partition_to" => ChannelFaultKind::PartitionTo,
            "partition_from" => ChannelFaultKind::PartitionFrom,
            "brownout" => ChannelFaultKind::Brownout {
                drop_permille: field(v, "drop_permille")?,
            },
            other => return Err(DeError(format!("unknown channel fault `{other}`"))),
        };
        Ok(ChannelFault {
            site: field(v, "site")?,
            kind,
            from_ns: field(v, "from_ns")?,
            to_ns: field(v, "to_ns")?,
        })
    }
}

/// Live fault state the engine consults on the per-packet fast path.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    /// Per-server ToR↔server link up/down.
    pub link_up: Vec<bool>,
    /// `(server, core)` pairs that have failed.
    pub failed_cores: BTreeSet<(usize, usize)>,
    /// Global subgroup indices currently offline.
    pub crashed_subgroups: BTreeSet<usize>,
    /// Migration faults armed for the next epoch swap, in injection order
    /// (the swap drains the whole queue).
    pub armed_migration_faults: Vec<MigrationFaultKind>,
}

impl FaultState {
    pub fn healthy(n_servers: usize) -> FaultState {
        FaultState {
            link_up: vec![true; n_servers],
            failed_cores: BTreeSet::new(),
            crashed_subgroups: BTreeSet::new(),
            armed_migration_faults: Vec::new(),
        }
    }

    pub fn link_is_up(&self, server: usize) -> bool {
        self.link_up.get(server).copied().unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_sort_and_track_end_state() {
        let plan = FaultPlan::empty()
            .with(500, FaultKind::CoreFail { server: 1, core: 3 })
            .link_flap(0, 100, 400)
            .with(200, FaultKind::LinkDown { server: 2 });
        let times: Vec<u64> = plan.events().iter().map(|e| e.at_ns).collect();
        assert_eq!(times, vec![100, 200, 400, 500]);
        // Server 0 flapped back up; server 2 stays down.
        assert_eq!(
            plan.links_down_at_end().into_iter().collect::<Vec<_>>(),
            vec![2]
        );
        assert_eq!(
            plan.cores_failed().into_iter().collect::<Vec<_>>(),
            vec![(1, 3)]
        );
    }

    #[test]
    fn crash_recover_pairing() {
        let plan = FaultPlan::empty().nf_crash(4, 1_000, 2_000);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].kind, FaultKind::NfCrash { subgroup: 4 });
        assert_eq!(plan.events()[1].at_ns, 3_000);
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::empty().is_empty());
        assert!(FaultPlan::default().is_empty());
        assert_eq!(FaultPlan::empty(), FaultPlan::new(vec![]));
    }

    #[test]
    fn json_round_trip() {
        let plan = FaultPlan::empty()
            .link_flap(0, 100, 400)
            .with(500, FaultKind::CoreFail { server: 1, core: 3 })
            .nf_crash(2, 600, 100)
            .with(
                800,
                FaultKind::ProfileDrift {
                    subgroup: 1,
                    factor: 1.5,
                },
            )
            .with(
                900,
                FaultKind::TrafficSurge {
                    chain: 0,
                    factor: 2.0,
                },
            )
            .with(
                950,
                FaultKind::MigrationFault {
                    fault: MigrationFaultKind::SnapshotCorrupt,
                },
            )
            .with(
                960,
                FaultKind::MigrationFault {
                    fault: MigrationFaultKind::ControlCrash,
                },
            );
        let text = serde_json::to_string_pretty(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn json_rejects_unknown_kind() {
        let text = r#"{"events":[{"at_ns":1,"kind":{"type":"meteor_strike"}}]}"#;
        assert!(serde_json::from_str::<FaultPlan>(text).is_err());
        let missing = r#"{"events":[{"at_ns":1,"kind":{"type":"link_down"}}]}"#;
        assert!(serde_json::from_str::<FaultPlan>(missing).is_err());
        let bad_mig =
            r#"{"events":[{"at_ns":1,"kind":{"type":"migration_fault","fault":"gremlins"}}]}"#;
        assert!(serde_json::from_str::<FaultPlan>(bad_mig).is_err());
    }

    #[test]
    fn migration_fault_tags_are_distinct() {
        let tags: BTreeSet<&str> = MigrationFaultKind::ALL.iter().map(|k| k.tag()).collect();
        assert_eq!(tags.len(), MigrationFaultKind::ALL.len());
        for k in MigrationFaultKind::ALL {
            assert_eq!(MigrationFaultKind::from_tag(k.tag()), Some(k));
        }
    }

    #[test]
    fn json_resorts_on_load() {
        let text = r#"{"events":[
            {"at_ns":400,"kind":{"type":"link_up","server":0}},
            {"at_ns":100,"kind":{"type":"link_down","server":0}}
        ]}"#;
        let plan: FaultPlan = serde_json::from_str(text).unwrap();
        assert_eq!(plan.events()[0].at_ns, 100);
    }

    #[test]
    fn validate_accepts_sane_plans() {
        let topo = Topology::with_servers(2);
        let plan = FaultPlan::empty()
            .link_flap(1, 100, 400)
            .with(500, FaultKind::CoreFail { server: 0, core: 2 })
            .nf_crash(1, 600, 100)
            .with(
                800,
                FaultKind::TrafficSurge {
                    chain: 0,
                    factor: 3.0,
                },
            );
        assert_eq!(plan.validate(&topo, 2, 1), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let topo = Topology::with_servers(2);
        let bad_server = FaultPlan::empty().with(1, FaultKind::LinkDown { server: 2 });
        assert!(matches!(
            bad_server.validate(&topo, 1, 1),
            Err(FaultPlanError::ServerOutOfRange { server: 2, .. })
        ));
        let bad_core = FaultPlan::empty().with(
            1,
            FaultKind::CoreFail {
                server: 0,
                core: 99,
            },
        );
        assert!(matches!(
            bad_core.validate(&topo, 1, 1),
            Err(FaultPlanError::CoreOutOfRange { core: 99, .. })
        ));
        let bad_sg = FaultPlan::empty().with(1, FaultKind::NfCrash { subgroup: 7 });
        assert!(matches!(
            bad_sg.validate(&topo, 3, 1),
            Err(FaultPlanError::SubgroupOutOfRange { subgroup: 7, .. })
        ));
        let bad_chain = FaultPlan::empty().with(
            1,
            FaultKind::TrafficSurge {
                chain: 4,
                factor: 2.0,
            },
        );
        assert!(matches!(
            bad_chain.validate(&topo, 1, 2),
            Err(FaultPlanError::ChainOutOfRange { chain: 4, .. })
        ));
        let bad_factor = FaultPlan::empty().with(
            1,
            FaultKind::ProfileDrift {
                subgroup: 0,
                factor: 0.0,
            },
        );
        assert!(matches!(
            bad_factor.validate(&topo, 1, 1),
            Err(FaultPlanError::BadFactor { .. })
        ));
    }

    #[test]
    fn validate_rejects_repair_before_fault() {
        let topo = Topology::with_servers(2);
        let orphan_up = FaultPlan::empty().with(1, FaultKind::LinkUp { server: 0 });
        assert!(matches!(
            orphan_up.validate(&topo, 1, 1),
            Err(FaultPlanError::RepairBeforeFault { .. })
        ));
        // A recover scheduled *before* its crash is the same bug even
        // though both events exist.
        let inverted = FaultPlan::empty()
            .with(10, FaultKind::NfRecover { subgroup: 0 })
            .with(20, FaultKind::NfCrash { subgroup: 0 });
        assert!(matches!(
            inverted.validate(&topo, 1, 1),
            Err(FaultPlanError::RepairBeforeFault { .. })
        ));
    }
}
