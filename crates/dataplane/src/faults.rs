//! Deterministic fault injection for the simulated testbed.
//!
//! A [`FaultPlan`] schedules events in *virtual* time: the engine replays
//! them from its event heap exactly like packet hops, so a run with a
//! given `(SimConfig, FaultPlan)` pair is bit-for-bit reproducible. An
//! empty plan leaves the engine's behavior byte-identical to a run without
//! fault support — the plan only exists in the heap if it has events.

use std::collections::BTreeSet;

/// One kind of injected fault (or recovery).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The ToR↔server link for `server` goes down: packets routed over it
    /// in either direction are dropped until a matching [`FaultKind::LinkUp`].
    LinkDown { server: usize },
    /// The ToR↔server link for `server` comes back.
    LinkUp { server: usize },
    /// A worker core on `server` fails: every packet steered to an NF
    /// instance pinned to that core is dropped for the rest of the run.
    CoreFail { server: usize, core: usize },
    /// The NF subgroup (global index into the placement's subgroup list)
    /// crashes: its traffic is dropped until [`FaultKind::NfRecover`].
    NfCrash { subgroup: usize },
    /// The crashed subgroup finishes restarting.
    NfRecover { subgroup: usize },
    /// The subgroup's per-packet cycle cost is multiplied by `factor`
    /// (> 1.0 models drift away from the profiled cost, e.g. a cache-
    /// hostile traffic mix).
    ProfileDrift { subgroup: usize, factor: f64 },
    /// The chain's offered rate is multiplied by `factor` from this point
    /// on (> 1.0 is a surge, < 1.0 a lull).
    TrafficSurge { chain: usize, factor: f64 },
}

impl FaultKind {
    /// Short human-readable tag used in reports.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::LinkDown { .. } => "link_down",
            FaultKind::LinkUp { .. } => "link_up",
            FaultKind::CoreFail { .. } => "core_fail",
            FaultKind::NfCrash { .. } => "nf_crash",
            FaultKind::NfRecover { .. } => "nf_recover",
            FaultKind::ProfileDrift { .. } => "profile_drift",
            FaultKind::TrafficSurge { .. } => "traffic_surge",
        }
    }
}

/// A scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Virtual time of injection (ns from simulation start; the warm-up
    /// period counts, so plans usually schedule after `warmup_s`).
    pub at_ns: u64,
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events, sorted by injection time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no events — running with it is identical to running
    /// without fault injection.
    pub fn empty() -> FaultPlan {
        FaultPlan { events: Vec::new() }
    }

    /// Build a plan from events (sorted by time on construction; ties keep
    /// their relative order, so e.g. a `LinkDown` listed before a `LinkUp`
    /// at the same instant applies first).
    pub fn new(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.at_ns);
        FaultPlan { events }
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Events in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Add an event, keeping the schedule sorted (builder style).
    pub fn with(mut self, at_ns: u64, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent { at_ns, kind });
        self.events.sort_by_key(|e| e.at_ns);
        self
    }

    /// Convenience: a link flap on `server` over `[down_ns, up_ns)`.
    pub fn link_flap(self, server: usize, down_ns: u64, up_ns: u64) -> FaultPlan {
        assert!(up_ns > down_ns, "flap must recover after it fails");
        self.with(down_ns, FaultKind::LinkDown { server })
            .with(up_ns, FaultKind::LinkUp { server })
    }

    /// Convenience: crash subgroup for a repair interval `[at_ns, at_ns + repair_ns)`.
    pub fn nf_crash(self, subgroup: usize, at_ns: u64, repair_ns: u64) -> FaultPlan {
        self.with(at_ns, FaultKind::NfCrash { subgroup })
            .with(at_ns + repair_ns, FaultKind::NfRecover { subgroup })
    }

    /// The set of servers whose links are down at the end of the plan
    /// (useful for building a degraded-topology repair problem).
    pub fn links_down_at_end(&self) -> BTreeSet<usize> {
        let mut down = BTreeSet::new();
        for e in &self.events {
            match e.kind {
                FaultKind::LinkDown { server } => {
                    down.insert(server);
                }
                FaultKind::LinkUp { server } => {
                    down.remove(&server);
                }
                _ => {}
            }
        }
        down
    }

    /// `(server, core)` pairs failed by the plan (core failures are
    /// permanent for the run).
    pub fn cores_failed(&self) -> BTreeSet<(usize, usize)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::CoreFail { server, core } => Some((server, core)),
                _ => None,
            })
            .collect()
    }
}

/// Live fault state the engine consults on the per-packet fast path.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    /// Per-server ToR↔server link up/down.
    pub link_up: Vec<bool>,
    /// `(server, core)` pairs that have failed.
    pub failed_cores: BTreeSet<(usize, usize)>,
    /// Global subgroup indices currently offline.
    pub crashed_subgroups: BTreeSet<usize>,
}

impl FaultState {
    pub fn healthy(n_servers: usize) -> FaultState {
        FaultState {
            link_up: vec![true; n_servers],
            failed_cores: BTreeSet::new(),
            crashed_subgroups: BTreeSet::new(),
        }
    }

    pub fn link_is_up(&self, server: usize) -> bool {
        self.link_up.get(server).copied().unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_sort_and_track_end_state() {
        let plan = FaultPlan::empty()
            .with(500, FaultKind::CoreFail { server: 1, core: 3 })
            .link_flap(0, 100, 400)
            .with(200, FaultKind::LinkDown { server: 2 });
        let times: Vec<u64> = plan.events().iter().map(|e| e.at_ns).collect();
        assert_eq!(times, vec![100, 200, 400, 500]);
        // Server 0 flapped back up; server 2 stays down.
        assert_eq!(plan.links_down_at_end().into_iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(
            plan.cores_failed().into_iter().collect::<Vec<_>>(),
            vec![(1, 3)]
        );
    }

    #[test]
    fn crash_recover_pairing() {
        let plan = FaultPlan::empty().nf_crash(4, 1_000, 2_000);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].kind, FaultKind::NfCrash { subgroup: 4 });
        assert_eq!(plan.events()[1].at_ns, 3_000);
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::empty().is_empty());
        assert!(FaultPlan::default().is_empty());
        assert_eq!(FaultPlan::empty(), FaultPlan::new(vec![]));
    }
}
