//! Statistical validation of generated traffic against its declared
//! scenario parameters.
//!
//! Synthetic workload bugs are silent: a mis-seeded surge or a wrong
//! Pareto exponent doesn't crash anything, it just makes every
//! downstream "SLO met at 1M flows" claim meaningless. Before a scale
//! experiment trusts a [`crate::Scenario`], this module measures the
//! realized traffic and checks it against what the
//! [`crate::ScenarioSpec`] declared:
//!
//! - **mean arrival rate** (packets/s over the horizon),
//! - **window-to-window coefficient of variation** (captures diurnal
//!   modulation and surges),
//! - **burst factor** (peak window rate over mean rate),
//! - **flow-size tail index** via the Hill estimator on the drawn
//!   (untruncated) sizes.

use crate::flowsim::{Scenario, ScenarioSpec, SurgeKind};
use std::fmt;

/// Measured or declared statistical profile of one chain's traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficProfile {
    /// Mean packet arrival rate over the horizon (packets/second), with
    /// per-flow sizes capped at a trim threshold. The *untrimmed* mean of
    /// an `alpha < 2` Pareto doesn't concentrate — a single elephant can
    /// move it by tens of percent at realistic flow counts — so the rate
    /// check trims at the declared distribution's 98th percentile and
    /// leaves tail fidelity to the Hill estimator.
    pub mean_rate_pps: f64,
    /// Coefficient of variation of per-window packet counts.
    pub window_cv: f64,
    /// Peak window rate divided by mean window rate.
    pub burst_factor: f64,
    /// Hill tail-index estimate of the flow-size distribution
    /// (`None` when there are too few flows to estimate).
    pub tail_alpha: Option<f64>,
}

/// Relative (and for CV, absolute) tolerances for profile comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficTolerance {
    /// Allowed relative error on the mean rate (e.g. 0.1 = ±10%).
    pub rate_rel: f64,
    /// Allowed absolute error on the window CV.
    pub cv_abs: f64,
    /// Allowed relative error on the burst factor.
    pub burst_rel: f64,
    /// Allowed relative error on the tail index.
    pub alpha_rel: f64,
}

impl Default for TrafficTolerance {
    fn default() -> TrafficTolerance {
        TrafficTolerance {
            rate_rel: 0.15,
            cv_abs: 0.25,
            burst_rel: 0.5,
            alpha_rel: 0.35,
        }
    }
}

/// A declared-vs-observed mismatch on one chain.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficValidationError {
    MeanRate {
        chain: usize,
        declared_pps: f64,
        observed_pps: f64,
    },
    WindowCv {
        chain: usize,
        declared: f64,
        observed: f64,
    },
    BurstFactor {
        chain: usize,
        declared: f64,
        observed: f64,
    },
    TailIndex {
        chain: usize,
        declared: f64,
        observed: f64,
    },
}

impl fmt::Display for TrafficValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficValidationError::MeanRate {
                chain,
                declared_pps,
                observed_pps,
            } => write!(
                f,
                "chain {chain}: mean rate {observed_pps:.0} pps deviates from declared {declared_pps:.0} pps"
            ),
            TrafficValidationError::WindowCv {
                chain,
                declared,
                observed,
            } => write!(
                f,
                "chain {chain}: window CV {observed:.3} deviates from declared {declared:.3}"
            ),
            TrafficValidationError::BurstFactor {
                chain,
                declared,
                observed,
            } => write!(
                f,
                "chain {chain}: burst factor {observed:.2} deviates from declared {declared:.2}"
            ),
            TrafficValidationError::TailIndex {
                chain,
                declared,
                observed,
            } => write!(
                f,
                "chain {chain}: flow-size tail index {observed:.2} deviates from declared {declared:.2}"
            ),
        }
    }
}

impl std::error::Error for TrafficValidationError {}

impl TrafficProfile {
    /// Measure one chain's realized profile from a materialized scenario,
    /// binning packet arrivals into `window_ns` windows. `trim_packets`
    /// caps each flow's contribution to the rate estimate (pass
    /// `u64::MAX` for the raw rate); use the same trim as the declared
    /// profile it will be checked against.
    pub fn observed(
        scenario: &Scenario,
        chain: usize,
        window_ns: u64,
        trim_packets: u64,
    ) -> TrafficProfile {
        let window_ns = window_ns.max(1);
        let n_windows = scenario.horizon_ns.div_ceil(window_ns) as usize;
        let mut bins = vec![0u64; n_windows.max(1)];
        let mut total = 0u64;
        let mut trimmed = 0u64;
        let mut sizes: Vec<u64> = Vec::new();
        for f in scenario.flows.iter().filter(|f| f.chain == chain) {
            sizes.push(f.size_packets);
            total += f.packets;
            trimmed += f.packets.min(trim_packets);
            // Exact per-window arrival counts via the difference of the
            // flow's arrival-counting function at window edges.
            let first = (f.start_ns / window_ns) as usize;
            let mut before_prev = 0u64;
            for (w, bin) in bins.iter_mut().enumerate().skip(first) {
                let end = ((w as u64 + 1) * window_ns).min(scenario.horizon_ns);
                let before_end = f.arrivals_before(end);
                *bin += before_end - before_prev;
                before_prev = before_end;
                if before_end == f.packets {
                    break;
                }
            }
        }
        let horizon_s = scenario.horizon_ns as f64 / 1e9;
        let mean_rate_pps = trimmed as f64 / horizon_s.max(1e-12);
        let mean_bin = total as f64 / bins.len() as f64;
        let var = bins
            .iter()
            .map(|&b| (b as f64 - mean_bin).powi(2))
            .sum::<f64>()
            / bins.len() as f64;
        let window_cv = if mean_bin > 0.0 {
            var.sqrt() / mean_bin
        } else {
            0.0
        };
        let peak = bins.iter().copied().max().unwrap_or(0) as f64;
        let burst_factor = if mean_bin > 0.0 { peak / mean_bin } else { 1.0 };
        TrafficProfile {
            mean_rate_pps,
            window_cv,
            burst_factor,
            tail_alpha: hill_estimator(&mut sizes),
        }
    }

    /// The profile the spec *declares* for one chain, derived analytically
    /// (no sampling): expected packet mass from the mean of the bounded
    /// Pareto, CV/burst from the intensity curve, alpha from the spec.
    pub fn declared(spec: &ScenarioSpec, chain: usize, window_ns: u64) -> TrafficProfile {
        let load = &spec.chains[chain];
        let trim = rate_trim(spec, chain);
        let mean_size = bounded_pareto_capped_mean(
            load.size.alpha,
            load.size.min_packets as f64,
            load.size.max_packets as f64,
            trim as f64,
        );
        let horizon_s = spec.horizon_ns as f64 / 1e9;
        // DDoS junk flows add min-size mass on top of the nominal flows.
        let ddos_flows: f64 = load
            .surges
            .iter()
            .filter(|s| s.kind == SurgeKind::Ddos)
            .map(|s| {
                (s.factor - 1.0).max(0.0) * load.flows as f64 * s.duration_ns as f64
                    / spec.horizon_ns.max(1) as f64
            })
            .sum();
        let total_packets =
            load.flows as f64 * mean_size + ddos_flows * load.size.min_packets as f64;
        let mean_rate_pps = total_packets / horizon_s.max(1e-12);

        // Window-count statistics from the normalized intensity curve,
        // sampled at window midpoints. This treats packet mass as
        // proportional to arrival intensity — accurate when flows are
        // short relative to the modulation period.
        let window_ns = window_ns.max(1);
        let n_windows = spec.horizon_ns.div_ceil(window_ns) as usize;
        let mut weights = Vec::with_capacity(n_windows);
        for w in 0..n_windows {
            let mid = (w as u64 * window_ns + window_ns / 2).min(spec.horizon_ns - 1);
            let mut f = 1.0;
            if let Some(d) = load.diurnal {
                let phase = mid as f64 / d.period_ns.max(1) as f64;
                f *= 1.0 + d.amplitude * (phase * std::f64::consts::TAU).sin();
            }
            for s in &load.surges {
                let active = mid >= s.start_ns && mid - s.start_ns < s.duration_ns;
                if active {
                    match s.kind {
                        SurgeKind::FlashCrowd => f *= s.factor,
                        // Junk flows are min-size; their packet-mass
                        // contribution scales by min/mean size.
                        SurgeKind::Ddos => {
                            f +=
                                (s.factor - 1.0).max(0.0) * load.size.min_packets as f64 / mean_size
                        }
                    }
                }
            }
            weights.push(f);
        }
        let mean_w = weights.iter().sum::<f64>() / weights.len().max(1) as f64;
        let var_w =
            weights.iter().map(|w| (w - mean_w).powi(2)).sum::<f64>() / weights.len().max(1) as f64;
        let window_cv = if mean_w > 0.0 {
            var_w.sqrt() / mean_w
        } else {
            0.0
        };
        let peak_w = weights.iter().copied().fold(0.0, f64::max);
        let burst_factor = if mean_w > 0.0 { peak_w / mean_w } else { 1.0 };
        TrafficProfile {
            mean_rate_pps,
            window_cv,
            burst_factor,
            tail_alpha: Some(load.size.alpha),
        }
    }

    /// Compare an observed profile against a declared one.
    pub fn check(
        &self,
        declared: &TrafficProfile,
        chain: usize,
        tol: &TrafficTolerance,
    ) -> Result<(), TrafficValidationError> {
        let rel = |obs: f64, dec: f64| (obs - dec).abs() / dec.abs().max(1e-12);
        if rel(self.mean_rate_pps, declared.mean_rate_pps) > tol.rate_rel {
            return Err(TrafficValidationError::MeanRate {
                chain,
                declared_pps: declared.mean_rate_pps,
                observed_pps: self.mean_rate_pps,
            });
        }
        if (self.window_cv - declared.window_cv).abs() > tol.cv_abs {
            return Err(TrafficValidationError::WindowCv {
                chain,
                declared: declared.window_cv,
                observed: self.window_cv,
            });
        }
        if rel(self.burst_factor, declared.burst_factor) > tol.burst_rel {
            return Err(TrafficValidationError::BurstFactor {
                chain,
                declared: declared.burst_factor,
                observed: self.burst_factor,
            });
        }
        if let (Some(obs), Some(dec)) = (self.tail_alpha, declared.tail_alpha) {
            if rel(obs, dec) > tol.alpha_rel {
                return Err(TrafficValidationError::TailIndex {
                    chain,
                    declared: dec,
                    observed: obs,
                });
            }
        }
        Ok(())
    }
}

/// Validate every chain of a materialized scenario against its spec.
pub fn validate_scenario(
    spec: &ScenarioSpec,
    scenario: &Scenario,
    window_ns: u64,
    tol: &TrafficTolerance,
) -> Result<Vec<TrafficProfile>, TrafficValidationError> {
    let mut profiles = Vec::with_capacity(spec.chains.len());
    for chain in 0..spec.chains.len() {
        let obs = TrafficProfile::observed(scenario, chain, window_ns, rate_trim(spec, chain));
        let dec = TrafficProfile::declared(spec, chain, window_ns);
        obs.check(&dec, chain, tol)?;
        profiles.push(obs);
    }
    Ok(profiles)
}

/// Trim threshold for the rate check: the declared size distribution's
/// 98th percentile (its inverse CDF at 0.98).
fn rate_trim(spec: &ScenarioSpec, chain: usize) -> u64 {
    spec.chains[chain].size.sample(0.98)
}

/// Mean of `min(S, t)` for a bounded Pareto `S` on `[l, h]` with tail
/// index `alpha`: `E[S·1{S≤t}] + t·P(S>t)`.
fn bounded_pareto_capped_mean(alpha: f64, l: f64, h: f64, t: f64) -> f64 {
    if l >= h {
        return l.min(t);
    }
    let t = t.clamp(l, h);
    let la = l.powf(-alpha);
    let ha = h.powf(-alpha);
    let ta = t.powf(-alpha);
    let p_above = (ta - ha) / (la - ha);
    let below = if (alpha - 1.0).abs() < 1e-9 {
        // α = 1 limit: ∫ x·αx^{-α-1} dx = ln(t/l) over the normalizer.
        (t / l).ln() / (la - ha)
    } else {
        alpha / (alpha - 1.0) * (l.powf(1.0 - alpha) - t.powf(1.0 - alpha)) / (la - ha)
    };
    below + t * p_above
}

/// Hill estimator of the tail index over the top ~10% order statistics.
/// Sorts `sizes` in place; returns `None` below 20 samples.
fn hill_estimator(sizes: &mut [u64]) -> Option<f64> {
    if sizes.len() < 20 {
        return None;
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let k = (sizes.len() / 10).clamp(10, sizes.len() - 1);
    let x_k = sizes[k] as f64;
    if x_k <= 0.0 {
        return None;
    }
    let sum: f64 = sizes[..k].iter().map(|&x| (x as f64 / x_k).ln()).sum();
    if sum <= 0.0 {
        return None;
    }
    Some(k as f64 / sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowsim::{ChainLoad, Diurnal, FlowSizeDist, Surge};

    fn base_spec() -> ScenarioSpec {
        ScenarioSpec {
            seed: 11,
            horizon_ns: 50_000_000,
            chains: vec![ChainLoad {
                flows: 3_000,
                flow_rate_pps: 200_000.0,
                size: FlowSizeDist {
                    alpha: 1.2,
                    min_packets: 2,
                    max_packets: 100_000,
                },
                diurnal: Some(Diurnal {
                    period_ns: 50_000_000,
                    amplitude: 0.3,
                }),
                surges: vec![],
            }],
        }
    }

    #[test]
    fn faithful_scenario_validates() {
        let spec = base_spec();
        let scenario = spec.materialize();
        let profiles = validate_scenario(&spec, &scenario, 1_000_000, &TrafficTolerance::default())
            .expect("faithful generation must pass its own validator");
        assert_eq!(profiles.len(), 1);
        assert!(profiles[0].mean_rate_pps > 0.0);
    }

    #[test]
    fn hill_estimator_recovers_alpha_on_skewed_input() {
        // Pure inverse-CDF samples at a known alpha — no generation
        // machinery in the loop.
        let dist = FlowSizeDist {
            alpha: 1.3,
            min_packets: 2,
            max_packets: 1_000_000,
        };
        let mut sizes: Vec<u64> = (0..20_000)
            .map(|i| dist.sample((i as f64 + 0.5) / 20_000.0))
            .collect();
        let est = hill_estimator(&mut sizes).unwrap();
        assert!(
            (est - 1.3).abs() / 1.3 < 0.2,
            "Hill estimate {est} far from 1.3"
        );
    }

    #[test]
    fn wrong_rate_is_rejected() {
        let spec = base_spec();
        let mut declared = TrafficProfile::declared(&spec, 0, 1_000_000);
        // Claim twice the rate the generator produces.
        declared.mean_rate_pps *= 2.0;
        let scenario = spec.materialize();
        let obs = TrafficProfile::observed(&scenario, 0, 1_000_000, rate_trim(&spec, 0));
        let err = obs
            .check(&declared, 0, &TrafficTolerance::default())
            .unwrap_err();
        assert!(
            matches!(err, TrafficValidationError::MeanRate { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("mean rate"));
    }

    #[test]
    fn wrong_tail_index_is_rejected() {
        // Generate at α=1.2 but declare α=3.0 (nearly light-tailed):
        // the Hill estimator must notice.
        let spec = base_spec();
        let scenario = spec.materialize();
        let obs = TrafficProfile::observed(&scenario, 0, 1_000_000, rate_trim(&spec, 0));
        let mut declared = TrafficProfile::declared(&spec, 0, 1_000_000);
        declared.tail_alpha = Some(3.0);
        let err = obs
            .check(&declared, 0, &TrafficTolerance::default())
            .unwrap_err();
        assert!(
            matches!(err, TrafficValidationError::TailIndex { .. }),
            "{err}"
        );
    }

    mod degenerate {
        use super::*;
        use proptest::prelude::*;

        /// A spec strategy that leans into the validator's edge cases:
        /// tiny (possibly zero) flow counts, point-mass size
        /// distributions (`min == max`), tail indices straddling the
        /// α = 1 limit of the capped-mean integral, and windows as large
        /// as (or larger than) the whole horizon.
        fn degenerate_spec() -> impl Strategy<Value = ScenarioSpec> {
            (
                (any::<u64>(), 0usize..60, 1_000.0f64..1e6),
                (0.5f64..3.0, 1u64..10, 0u64..400, 1_000_000u64..20_000_000),
            )
                .prop_map(
                    |((seed, flows, rate), (alpha, min_packets, extra, horizon_ns))| ScenarioSpec {
                        seed,
                        horizon_ns,
                        chains: vec![ChainLoad {
                            flows,
                            flow_rate_pps: rate,
                            size: FlowSizeDist {
                                alpha,
                                min_packets,
                                max_packets: min_packets + extra,
                            },
                            diurnal: None,
                            surges: vec![],
                        }],
                    },
                )
        }

        fn finite(p: &TrafficProfile) -> bool {
            p.mean_rate_pps.is_finite()
                && p.window_cv.is_finite()
                && p.burst_factor.is_finite()
                && p.tail_alpha.map(f64::is_finite).unwrap_or(true)
        }

        proptest! {
            /// The Hill estimator must answer every input with `None` or
            /// a finite positive estimate — never a panic, NaN, or ±∞.
            /// The generator covers the degenerate shapes directly:
            /// empty input, fewer samples than the order-statistic floor,
            /// and all-equal sizes (whose log-spacings sum to zero).
            #[test]
            fn hill_estimator_total_on_arbitrary_sizes(
                mut sizes in prop::collection::vec(any::<u64>(), 0..200),
            ) {
                if let Some(est) = hill_estimator(&mut sizes) {
                    prop_assert!(est.is_finite() && est > 0.0, "estimate {est}");
                }
            }

            /// All-equal sizes have no measurable tail: the estimator
            /// must decline (its log-sum is exactly zero) rather than
            /// divide by it.
            #[test]
            fn hill_estimator_declines_point_mass(
                n in 0usize..100,
                v in 1u64..1_000_000,
            ) {
                prop_assert_eq!(hill_estimator(&mut vec![v; n]), None);
            }

            /// Below 20 samples there are not enough order statistics:
            /// always `None`, even for perfectly heavy-tailed data.
            #[test]
            fn hill_estimator_declines_short_input(
                mut sizes in prop::collection::vec(1u64..1_000_000, 0..20),
            ) {
                prop_assert_eq!(hill_estimator(&mut sizes), None);
            }

            /// Degenerate specs — zero flows, point-mass sizes, α at the
            /// integral's removable singularity, a window spanning the
            /// whole horizon — must produce finite profiles and either
            /// validate or fail with a *typed* error whose display
            /// formats. No panic, no NaN, anywhere in the pipeline.
            #[test]
            fn validation_pipeline_total_on_degenerate_specs(
                spec in degenerate_spec(),
                window_ns in 500_000u64..30_000_000,
            ) {
                let scenario = spec.materialize();
                let declared = TrafficProfile::declared(&spec, 0, window_ns);
                let observed =
                    TrafficProfile::observed(&scenario, 0, window_ns, rate_trim(&spec, 0));
                prop_assert!(finite(&declared), "declared {declared:?}");
                prop_assert!(finite(&observed), "observed {observed:?}");
                match validate_scenario(&spec, &scenario, window_ns, &TrafficTolerance::default()) {
                    Ok(profiles) => prop_assert!(profiles.iter().all(finite)),
                    Err(err) => prop_assert!(!err.to_string().is_empty()),
                }
            }
        }
    }

    #[test]
    fn surge_raises_burstiness_and_cv() {
        let mut spec = base_spec();
        spec.chains[0].surges = vec![Surge {
            kind: SurgeKind::FlashCrowd,
            start_ns: 20_000_000,
            duration_ns: 5_000_000,
            factor: 4.0,
        }];
        let calm = base_spec().materialize();
        let surged = spec.materialize();
        let obs_calm = TrafficProfile::observed(&calm, 0, 1_000_000, u64::MAX);
        let obs_surge = TrafficProfile::observed(&surged, 0, 1_000_000, u64::MAX);
        assert!(obs_surge.window_cv > obs_calm.window_cv);
        assert!(obs_surge.burst_factor > obs_calm.burst_factor);
        // And the surged scenario still validates against the spec that
        // declares the surge.
        validate_scenario(&spec, &surged, 1_000_000, &TrafficTolerance::default())
            .expect("declared surge must validate");
    }
}
