//! Measurement results.

use crate::faults::FaultKind;
use crate::migrate::{MigrationError, MigrationStats};

/// Why a packet was dropped — split out so overload, mis-programming, NF
/// policy, and injected faults are distinguishable in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// A station's queueing delay exceeded `SimConfig::max_queue_ns`.
    QueueOverflow,
    /// The per-packet hop cap tripped (mis-programmed steering loop).
    MaxHops,
    /// A platform verdict: P4 drop / no egress, unmatched demux, an NF
    /// gate drop, or an eBPF verdict other than TX.
    Verdict,
    /// An injected fault (downed link, failed core, crashed subgroup).
    Fault,
    /// Lost during an epoch swap: still in flight when the drain window
    /// expired, or injected into a draining epoch. This is the
    /// update-time-loss metric of the reconfiguration literature.
    Reconfig,
    /// The chain was shed by the supervisor (admission denied at inject).
    Shed,
    /// Admission control: the supervisor's overload ladder denied the
    /// junk/low-priority tail before it could queue (distinct from
    /// [`DropReason::Shed`], which refuses a whole chain).
    Admission,
}

/// Per-chain measurements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChainStats {
    pub offered_bps: f64,
    /// Goodput: ingress bits of packets that completed the chain, per
    /// second of measurement window.
    pub delivered_bps: f64,
    pub delivered_packets: u64,
    /// Total drops (the sum of the per-reason counters below).
    pub dropped_packets: u64,
    /// Drops from queueing delay past the overload bound.
    pub drops_queue: u64,
    /// Drops from the MAX_HOPS safety cap.
    pub drops_hops: u64,
    /// Drops from platform verdicts (P4/demux/NF/eBPF).
    pub drops_verdict: u64,
    /// Drops caused by injected faults.
    pub drops_fault: u64,
    /// Drops during epoch swaps (update-time loss).
    pub drops_reconfig: u64,
    /// Packets refused at inject because the chain was shed.
    pub drops_shed: u64,
    /// Junk tail packets denied by overload admission control.
    pub drops_admission: u64,
    /// Mean end-to-end latency of delivered packets (ns).
    pub mean_latency_ns: f64,
    /// Maximum observed latency (ns).
    pub max_latency_ns: f64,
}

impl ChainStats {
    /// Record one drop under its reason (also bumps the total).
    pub fn record_drop(&mut self, reason: DropReason) {
        self.record_drops(reason, 1);
    }

    /// Record `n` drops of one reason in a single call — the hybrid
    /// engine charges a whole window of analytic-tail mass at once.
    pub fn record_drops(&mut self, reason: DropReason, n: u64) {
        self.dropped_packets += n;
        match reason {
            DropReason::QueueOverflow => self.drops_queue += n,
            DropReason::MaxHops => self.drops_hops += n,
            DropReason::Verdict => self.drops_verdict += n,
            DropReason::Fault => self.drops_fault += n,
            DropReason::Reconfig => self.drops_reconfig += n,
            DropReason::Shed => self.drops_shed += n,
            DropReason::Admission => self.drops_admission += n,
        }
    }
}

/// Whole-run packet accounting, unconditioned by warmup or measurement
/// windows: every packet ever injected must land in exactly one bucket.
/// The chaos soak asserts `injected == delivered + drops + in_flight_at_end`
/// exactly (integer arithmetic, no tolerance).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConservationLedger {
    /// Packets handed to the simulation (including warmup and shed refusals).
    pub injected: u64,
    /// Packets that completed their chain.
    pub delivered: u64,
    /// Drops by reason, summed over all chains and the whole run.
    pub drops_queue: u64,
    pub drops_hops: u64,
    pub drops_verdict: u64,
    pub drops_fault: u64,
    pub drops_reconfig: u64,
    pub drops_shed: u64,
    pub drops_admission: u64,
    /// Packets still in flight when the simulation horizon was reached
    /// (packet-path in-flight plus any undrained analytic-tail backlog).
    pub in_flight_at_end: u64,
}

impl ConservationLedger {
    pub fn record_drop(&mut self, reason: DropReason) {
        self.record_drops(reason, 1);
    }

    /// Record `n` drops of one reason in a single call (aggregate tail
    /// mass stays exact-integer, so `balanced` still holds in hybrid runs).
    pub fn record_drops(&mut self, reason: DropReason, n: u64) {
        match reason {
            DropReason::QueueOverflow => self.drops_queue += n,
            DropReason::MaxHops => self.drops_hops += n,
            DropReason::Verdict => self.drops_verdict += n,
            DropReason::Fault => self.drops_fault += n,
            DropReason::Reconfig => self.drops_reconfig += n,
            DropReason::Shed => self.drops_shed += n,
            DropReason::Admission => self.drops_admission += n,
        }
    }

    pub fn total_drops(&self) -> u64 {
        self.drops_queue
            + self.drops_hops
            + self.drops_verdict
            + self.drops_fault
            + self.drops_reconfig
            + self.drops_shed
            + self.drops_admission
    }

    /// Exact conservation: injected = delivered + drops + in-flight.
    pub fn balanced(&self) -> bool {
        self.injected == self.delivered + self.total_drops() + self.in_flight_at_end
    }
}

/// Which SLO bound a violation tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Windowed delivered rate fell below `t_min`.
    RateBelowMin,
    /// Windowed mean latency exceeded `d_max`.
    LatencyAboveMax,
}

/// One entry of the run's event timeline, in virtual-time order.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineEvent {
    /// A fault from the plan was applied.
    Fault { at_ns: u64, kind: FaultKind },
    /// The SLO guard flagged a chain at the close of a window.
    SloViolation {
        /// Close time of the offending window.
        at_ns: u64,
        chain: usize,
        kind: ViolationKind,
        /// The observed windowed value (bps or ns, per `kind`).
        observed: f64,
        /// The bound it violated (t_min_bps or d_max_ns).
        bound: f64,
    },
    /// The supervisor began draining the old epoch ahead of a swap.
    DrainStart {
        at_ns: u64,
        /// Epoch being drained (the swap installs `epoch + 1`).
        epoch: u64,
        /// True when the staged configuration is a rollback to the
        /// last-known-good placement rather than a fresh repair.
        rollback: bool,
    },
    /// The atomic epoch swap completed (end of the drain window).
    EpochCommit {
        at_ns: u64,
        /// The epoch now live.
        epoch: u64,
        /// In-flight + drain-window packets lost to the swap — the
        /// update-time-loss metric for this reconfiguration.
        packets_lost: u64,
        rollback: bool,
    },
    /// Per-NF state was migrated into the committed epoch (emitted just
    /// before the matching [`TimelineEvent::EpochCommit`]).
    Migration {
        at_ns: u64,
        /// The epoch the state was restored into.
        epoch: u64,
        stats: MigrationStats,
    },
    /// State migration failed verification and the swap was aborted: the
    /// old epoch (and its state) stays live — no `EpochCommit` follows.
    MigrationAborted {
        at_ns: u64,
        /// The epoch that remains live.
        epoch: u64,
        error: MigrationError,
    },
    /// The control hook flipped per-chain tail admission control (the
    /// first rung of the graceful-degradation ladder): chains with
    /// `deny_junk[chain]` set have their DDoS-flagged tail arrivals
    /// refused as [`DropReason::Admission`] from this instant on.
    AdmissionChange { at_ns: u64, deny_junk: Vec<bool> },
}

impl TimelineEvent {
    pub fn at_ns(&self) -> u64 {
        match self {
            TimelineEvent::Fault { at_ns, .. } => *at_ns,
            TimelineEvent::SloViolation { at_ns, .. } => *at_ns,
            TimelineEvent::DrainStart { at_ns, .. } => *at_ns,
            TimelineEvent::EpochCommit { at_ns, .. } => *at_ns,
            TimelineEvent::Migration { at_ns, .. } => *at_ns,
            TimelineEvent::MigrationAborted { at_ns, .. } => *at_ns,
            TimelineEvent::AdmissionChange { at_ns, .. } => *at_ns,
        }
    }
}

/// Per-chain measurements over one SLO-guard window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    pub start_ns: u64,
    pub end_ns: u64,
    pub chain: usize,
    /// Delivered rate within the window.
    pub delivered_bps: f64,
    pub delivered_packets: u64,
    pub dropped_packets: u64,
    /// Mean latency of packets delivered in the window (0 if none).
    /// Includes analytic-tail queueing delay when the fluid queue is
    /// active, so surge-induced latency reaches the SLO guard.
    pub mean_latency_ns: f64,
    /// Arrivals charged to this window (heavy-path injects plus
    /// analytic-tail mass), before any shed/admission/capacity decision —
    /// the offered-load signal a surge detector compares against the
    /// declared intensity.
    pub arrived_packets: u64,
    /// Arrivals flagged as DDoS junk (analytic tail only; the packet
    /// path carries no junk marking, so this is 0 in packet-level runs).
    pub junk_packets: u64,
    /// Fluid-queue backlog at window close (0 when the queue is off).
    pub backlog_packets: u64,
}

/// A full simulation report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    pub per_chain: Vec<ChainStats>,
    /// Simulated measurement window (seconds).
    pub duration_s: f64,
    /// Faults applied and SLO violations detected, in virtual-time order.
    pub timeline: Vec<TimelineEvent>,
    /// SLO-guard window samples (empty when the guard is off).
    pub windows: Vec<WindowSample>,
    /// Whole-run packet accounting (exact, unconditioned by warmup).
    pub ledger: ConservationLedger,
}

impl SimReport {
    /// Σ delivered rates.
    pub fn aggregate_bps(&self) -> f64 {
        self.per_chain.iter().map(|c| c.delivered_bps).sum()
    }

    /// Aggregate marginal throughput against per-chain `t_min`s.
    pub fn marginal_bps(&self, t_mins: &[f64]) -> f64 {
        self.per_chain
            .iter()
            .zip(t_mins)
            .map(|(c, t)| (c.delivered_bps - t).max(0.0))
            .sum()
    }

    /// True if every chain met its minimum (within `tol` fraction).
    pub fn slos_met(&self, t_mins: &[f64], tol: f64) -> bool {
        self.per_chain
            .iter()
            .zip(t_mins)
            .all(|(c, t)| c.delivered_bps >= t * (1.0 - tol))
    }

    /// The SLO violations in the timeline.
    pub fn violations(&self) -> impl Iterator<Item = &TimelineEvent> {
        self.timeline
            .iter()
            .filter(|e| matches!(e, TimelineEvent::SloViolation { .. }))
    }

    /// Virtual time of the first SLO violation for `chain`, if any.
    pub fn first_violation_ns(&self, chain: usize) -> Option<u64> {
        self.timeline.iter().find_map(|e| match e {
            TimelineEvent::SloViolation {
                at_ns, chain: c, ..
            } if *c == chain => Some(*at_ns),
            _ => None,
        })
    }

    /// Total packets lost across all epoch swaps (update-time loss).
    pub fn update_time_loss(&self) -> u64 {
        self.timeline
            .iter()
            .map(|e| match e {
                TimelineEvent::EpochCommit { packets_lost, .. } => *packets_lost,
                _ => 0,
            })
            .sum()
    }

    /// Number of committed epoch swaps (including rollbacks).
    pub fn commits(&self) -> usize {
        self.timeline
            .iter()
            .filter(|e| matches!(e, TimelineEvent::EpochCommit { .. }))
            .count()
    }

    /// Successful state migrations, in commit order.
    pub fn migrations(&self) -> impl Iterator<Item = &MigrationStats> {
        self.timeline.iter().filter_map(|e| match e {
            TimelineEvent::Migration { stats, .. } => Some(stats),
            _ => None,
        })
    }

    /// Aborted migrations (swap rolled back to the live epoch), in order.
    pub fn migration_aborts(&self) -> impl Iterator<Item = &MigrationError> {
        self.timeline.iter().filter_map(|e| match e {
            TimelineEvent::MigrationAborted { error, .. } => Some(error),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let r = SimReport {
            per_chain: vec![
                ChainStats {
                    delivered_bps: 2e9,
                    ..Default::default()
                },
                ChainStats {
                    delivered_bps: 3e9,
                    ..Default::default()
                },
            ],
            duration_s: 0.1,
            ..Default::default()
        };
        assert_eq!(r.aggregate_bps(), 5e9);
        assert_eq!(r.marginal_bps(&[1e9, 1e9]), 3e9);
        assert!(r.slos_met(&[1e9, 2.9e9], 0.01));
        assert!(!r.slos_met(&[2.5e9, 3e9], 0.01));
    }

    #[test]
    fn drop_reasons_sum_to_total() {
        let mut s = ChainStats::default();
        s.record_drop(DropReason::QueueOverflow);
        s.record_drop(DropReason::Fault);
        s.record_drop(DropReason::Fault);
        s.record_drop(DropReason::Verdict);
        s.record_drop(DropReason::Reconfig);
        s.record_drop(DropReason::Shed);
        s.record_drops(DropReason::Admission, 2);
        assert_eq!(s.dropped_packets, 8);
        assert_eq!(
            s.drops_queue
                + s.drops_hops
                + s.drops_verdict
                + s.drops_fault
                + s.drops_reconfig
                + s.drops_shed
                + s.drops_admission,
            s.dropped_packets
        );
        assert_eq!(s.drops_fault, 2);
        assert_eq!(s.drops_reconfig, 1);
        assert_eq!(s.drops_shed, 1);
        assert_eq!(s.drops_admission, 2);
    }

    #[test]
    fn ledger_balances() {
        let mut l = ConservationLedger {
            injected: 11,
            delivered: 6,
            ..Default::default()
        };
        l.record_drop(DropReason::Reconfig);
        l.record_drop(DropReason::Fault);
        l.record_drop(DropReason::Admission);
        l.in_flight_at_end = 2;
        assert!(l.balanced());
        l.injected += 1;
        assert!(!l.balanced());
    }

    #[test]
    fn update_loss_sums_commits() {
        let r = SimReport {
            timeline: vec![
                TimelineEvent::DrainStart {
                    at_ns: 50,
                    epoch: 0,
                    rollback: false,
                },
                TimelineEvent::EpochCommit {
                    at_ns: 100,
                    epoch: 1,
                    packets_lost: 3,
                    rollback: false,
                },
                TimelineEvent::EpochCommit {
                    at_ns: 200,
                    epoch: 2,
                    packets_lost: 4,
                    rollback: true,
                },
            ],
            ..Default::default()
        };
        assert_eq!(r.update_time_loss(), 7);
        assert_eq!(r.commits(), 2);
        assert_eq!(r.timeline[0].at_ns(), 50);
    }

    #[test]
    fn first_violation_lookup() {
        let r = SimReport {
            timeline: vec![
                TimelineEvent::Fault {
                    at_ns: 100,
                    kind: FaultKind::LinkDown { server: 0 },
                },
                TimelineEvent::SloViolation {
                    at_ns: 1_100,
                    chain: 1,
                    kind: ViolationKind::RateBelowMin,
                    observed: 1e8,
                    bound: 2e9,
                },
            ],
            ..Default::default()
        };
        assert_eq!(r.first_violation_ns(1), Some(1_100));
        assert_eq!(r.first_violation_ns(0), None);
        assert_eq!(r.violations().count(), 1);
    }
}
