//! Measurement results.

/// Per-chain measurements.
#[derive(Debug, Clone, Default)]
pub struct ChainStats {
    pub offered_bps: f64,
    /// Goodput: ingress bits of packets that completed the chain, per
    /// second of measurement window.
    pub delivered_bps: f64,
    pub delivered_packets: u64,
    pub dropped_packets: u64,
    /// Mean end-to-end latency of delivered packets (ns).
    pub mean_latency_ns: f64,
    /// Maximum observed latency (ns).
    pub max_latency_ns: f64,
}

/// A full simulation report.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    pub per_chain: Vec<ChainStats>,
    /// Simulated measurement window (seconds).
    pub duration_s: f64,
}

impl SimReport {
    /// Σ delivered rates.
    pub fn aggregate_bps(&self) -> f64 {
        self.per_chain.iter().map(|c| c.delivered_bps).sum()
    }

    /// Aggregate marginal throughput against per-chain `t_min`s.
    pub fn marginal_bps(&self, t_mins: &[f64]) -> f64 {
        self.per_chain
            .iter()
            .zip(t_mins)
            .map(|(c, t)| (c.delivered_bps - t).max(0.0))
            .sum()
    }

    /// True if every chain met its minimum (within `tol` fraction).
    pub fn slos_met(&self, t_mins: &[f64], tol: f64) -> bool {
        self.per_chain
            .iter()
            .zip(t_mins)
            .all(|(c, t)| c.delivered_bps >= t * (1.0 - tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let r = SimReport {
            per_chain: vec![
                ChainStats { delivered_bps: 2e9, ..Default::default() },
                ChainStats { delivered_bps: 3e9, ..Default::default() },
            ],
            duration_s: 0.1,
        };
        assert_eq!(r.aggregate_bps(), 5e9);
        assert_eq!(r.marginal_bps(&[1e9, 1e9]), 3e9);
        assert!(r.slos_met(&[1e9, 2.9e9], 0.01));
        assert!(!r.slos_met(&[2.5e9, 3e9], 0.01));
    }
}
