//! # lemur-dataplane
//!
//! The cross-platform execution engine: the simulated stand-in for the
//! paper's physical testbed (Tofino ToR + BESS servers + SmartNIC).
//!
//! A [`Testbed`] is built from a placement and its meta-compiled
//! [`lemur_metacompiler::Deployment`]: the generated P4 program runs on a
//! real [`lemur_p4sim::Switch`], server subgroups run real `lemur-nf` code
//! behind the generated demux/mux, and SmartNIC NFs execute on the
//! `lemur-ebpf` VM. Packets *really* traverse every platform — NSH headers
//! are pushed, rewritten, and popped by the generated artifacts, not by
//! the simulator.
//!
//! Time is virtual: a deterministic discrete-event simulation charges each
//! hop its modeled cost (link serialization, demux cycles, per-subgroup
//! worst-case cycles with NUMA and replication effects, NIC instruction
//! costs) so throughput and latency measurements are reproducible
//! bit-for-bit on any machine. Per-packet service times sample the
//! profile's min–max band (Table 4), which is why *measured* throughput
//! can slightly exceed the Placer's conservative *prediction* — the same
//! effect the paper reports (§5.2 "Predictions are conservative").

pub mod engine;
pub mod faults;
pub mod flowsim;
pub mod migrate;
pub mod report;
pub mod traffic;
pub mod validate;

pub use engine::{
    BuildError, ControlAction, ControlHook, HybridConfig, HybridMode, NoopHook, RuntimeMode,
    ScenarioError, SimConfig, StagedConfig, Testbed,
};
pub use faults::{
    ChannelFault, ChannelFaultKind, FaultEvent, FaultKind, FaultPlan, FaultPlanError,
    MigrationFaultKind,
};
pub use flowsim::{
    ChainLoad, Diurnal, FlowPacketSource, FlowRecord, FlowSizeDist, Scenario, ScenarioSpec, Surge,
    SurgeKind, TailCell, TailPlan,
};
pub use migrate::{CrossSiteTransfer, MigrationError, MigrationStats, StateRecord, StateTransfer};
pub use report::{
    ChainStats, ConservationLedger, DropReason, SimReport, TimelineEvent, ViolationKind,
    WindowSample,
};
pub use traffic::{ChainIndexOutOfRange, TrafficSpec};
pub use validate::{validate_scenario, TrafficProfile, TrafficTolerance, TrafficValidationError};
