//! Deterministic traffic generation for the experiments.

use lemur_packet::builder::udp_packet;
use lemur_packet::{ethernet, ipv4, PacketBuf};
use lemur_placer::PACKET_BYTES;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Error for chain indices whose classifier prefix cannot be derived:
/// `10.hi.lo.0/24` encodes the index in two octets, so only
/// `0..=65535` are representable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainIndexOutOfRange(pub usize);

impl fmt::Display for ChainIndexOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chain index {} exceeds 65535: classifier prefixes derive both middle octets from the index",
            self.0
        )
    }
}

impl std::error::Error for ChainIndexOutOfRange {}

/// Offered load for one chain.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// Offered rate in bits/second.
    pub offered_bps: f64,
    /// Source prefix the chain's aggregate classifies on.
    pub src_prefix: ipv4::Cidr,
    /// Number of long-lived flows (paper footnote 6 uses 30–50).
    pub flows: usize,
    /// Payload bytes per packet.
    pub payload_len: usize,
    /// Fraction of packets carrying a *redundant* payload (exercises
    /// Dedup's redundancy elimination).
    pub redundancy: f64,
}

impl TrafficSpec {
    /// A default spec for a chain index: long-lived flows from
    /// `10.(idx >> 8).(idx & 0xff).0/24`. Both middle octets derive from
    /// the index, so every chain in `0..=65535` gets a disjoint classifier
    /// prefix (a plain `10.(idx).0.0/16` would silently wrap at 256 and
    /// alias chains 0 and 256 onto one aggregate). The flow count is high
    /// enough that hashing over many subgroup replicas stays balanced
    /// (40-flow profiling traffic per footnote 6 is available via
    /// [`TrafficSpec::flows`]).
    pub fn for_chain(idx: usize, offered_bps: f64) -> Result<TrafficSpec, ChainIndexOutOfRange> {
        if idx > u16::MAX as usize {
            return Err(ChainIndexOutOfRange(idx));
        }
        Ok(TrafficSpec {
            offered_bps,
            src_prefix: ipv4::Cidr::new(
                ipv4::Address::new(10, (idx >> 8) as u8, (idx & 0xff) as u8, 0),
                24,
            )
            .expect("/24 is a valid prefix length"),
            flows: 512,
            payload_len: PACKET_BYTES as usize - 42, // eth+ip+udp headers
            redundancy: 0.5,
        })
    }

    /// The chain's traffic aggregate matching this spec.
    pub fn aggregate(&self) -> lemur_packet::TrafficAggregate {
        lemur_packet::TrafficAggregate {
            src: Some(self.src_prefix),
            ..lemur_packet::TrafficAggregate::any()
        }
    }
}

/// Generates packets for one chain at a steady rate.
pub struct ChainSource {
    spec: TrafficSpec,
    rng: StdRng,
    next_ns: u64,
    interval_ns: f64,
    /// Nominal inter-packet gap at the spec's offered rate; `interval_ns`
    /// is this divided by the current rate factor.
    base_interval_ns: f64,
    carry: f64,
    seq: u64,
    redundant_payload: Vec<u8>,
}

impl ChainSource {
    /// Create a source; `seed` controls flow/payload randomness.
    pub fn new(spec: TrafficSpec, seed: u64) -> ChainSource {
        let bits = (spec.payload_len + 42) as f64 * 8.0;
        let interval_ns = bits / spec.offered_bps * 1e9;
        let mut redundant = Vec::with_capacity(spec.payload_len);
        while redundant.len() < spec.payload_len {
            redundant.extend_from_slice(b"The quick brown fox jumps over the lazy dog. ");
        }
        redundant.truncate(spec.payload_len);
        ChainSource {
            spec,
            rng: StdRng::seed_from_u64(seed),
            next_ns: 0,
            interval_ns,
            base_interval_ns: interval_ns,
            carry: 0.0,
            seq: 0,
            redundant_payload: redundant,
        }
    }

    /// Timestamp of the next packet (ns).
    pub fn peek_time(&self) -> u64 {
        self.next_ns
    }

    /// Scale the offered rate by `factor` (relative to the spec's nominal
    /// rate, not cumulative) from the next packet on. Used by the fault
    /// injector's traffic surges.
    pub fn set_rate_factor(&mut self, factor: f64) {
        assert!(factor > 0.0, "rate factor must be positive");
        self.interval_ns = self.base_interval_ns / factor;
    }

    /// Produce the next packet.
    pub fn next_packet(&mut self) -> (u64, PacketBuf) {
        let t = self.next_ns;
        // Advance with sub-ns carry so long runs keep the exact rate.
        self.carry += self.interval_ns;
        let step = self.carry as u64;
        self.carry -= step as f64;
        self.next_ns += step.max(1);

        let flow = (self.seq % self.spec.flows as u64) as u32;
        self.seq += 1;
        let base = self.spec.src_prefix.address().to_u32();
        // Host octet stays inside the /24; flows beyond 254 remain
        // distinct five-tuples via the source port.
        let src = ipv4::Address::from_u32(base | ((flow % 254) + 1));
        let sport = 10_000 + (flow as u16 % 40_000);
        let payload: Vec<u8> = if self.rng.gen_bool(self.spec.redundancy) {
            self.redundant_payload.clone()
        } else {
            (0..self.spec.payload_len)
                .map(|_| self.rng.gen::<u8>())
                .collect()
        };
        let pkt = udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 0x10]),
            ethernet::Address([2, 0, 0, 0, 0, 0x20]),
            src,
            ipv4::Address::new(10, 200, (flow % 250) as u8, 1),
            sport,
            80,
            &payload,
        );
        (t, pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_packet::flow::FiveTuple;

    #[test]
    fn chain_prefixes_are_disjoint_and_bounded() {
        // The /16 scheme aliased chains 0 and 256; the two-octet /24
        // derivation keeps every index distinct.
        let a = TrafficSpec::for_chain(0, 1e9).unwrap();
        let b = TrafficSpec::for_chain(256, 1e9).unwrap();
        assert_ne!(a.src_prefix, b.src_prefix);
        assert_eq!(b.src_prefix.address(), ipv4::Address::new(10, 1, 0, 0));
        assert_eq!(
            TrafficSpec::for_chain(65_536, 1e9).unwrap_err(),
            ChainIndexOutOfRange(65_536)
        );
        let err = ChainIndexOutOfRange(70_000).to_string();
        assert!(err.contains("70000"), "{err}");
    }

    #[test]
    fn rate_is_honored() {
        let spec = TrafficSpec::for_chain(1, 1e9).unwrap(); // 1 Gbps
        let mut src = ChainSource::new(spec, 7);
        let mut last = 0;
        let mut bits = 0u64;
        for _ in 0..1000 {
            let (t, p) = src.next_packet();
            bits += p.len() as u64 * 8;
            last = t;
        }
        let rate = bits as f64 / (last as f64 / 1e9);
        assert!((rate / 1e9 - 1.0).abs() < 0.02, "measured {rate}");
    }

    #[test]
    fn flows_are_bounded_and_in_prefix() {
        let spec = TrafficSpec::for_chain(3, 1e9).unwrap();
        let agg = spec.aggregate();
        let mut src = ChainSource::new(spec, 7);
        let mut flows = std::collections::HashSet::new();
        for _ in 0..500 {
            let (_, p) = src.next_packet();
            let t = FiveTuple::parse(p.as_slice()).unwrap();
            assert!(agg.matches(&t), "packet outside aggregate");
            flows.insert(t);
        }
        assert!(flows.len() <= 512, "{} flows", flows.len());
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<_> = {
            let mut s = ChainSource::new(TrafficSpec::for_chain(1, 5e9).unwrap(), 42);
            (0..50)
                .map(|_| s.next_packet().1.as_slice().to_vec())
                .collect()
        };
        let b: Vec<_> = {
            let mut s = ChainSource::new(TrafficSpec::for_chain(1, 5e9).unwrap(), 42);
            (0..50)
                .map(|_| s.next_packet().1.as_slice().to_vec())
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn redundancy_mix() {
        let mut spec = TrafficSpec::for_chain(1, 1e9).unwrap();
        spec.redundancy = 1.0;
        let mut s = ChainSource::new(spec, 1);
        let (_, p1) = s.next_packet();
        let (_, p2) = s.next_packet();
        // Fully redundant: payloads identical.
        let off = p1.len() - 500;
        assert_eq!(p1.as_slice()[off..], p2.as_slice()[off..]);
    }
}
