//! Flow-level scenario generation for the hybrid simulation engine.
//!
//! The paper's experiments drive tens of long-lived CBR flows per chain;
//! fleet-scale evaluation needs *millions* of flows with realistic
//! heavy-tailed sizes, diurnal load curves, and surge events. Simulating
//! every packet of every flow caps the engine at toy scale, so the hybrid
//! engine splits a [`Scenario`] in two:
//!
//! - **Heavy hitters** (`size_packets >= heavy_min_packets`) are
//!   materialized and run packet-by-packet through the full dataplane —
//!   exact NF semantics, exact queueing, exact latency.
//! - **The long tail** (everything else) is advanced analytically once
//!   per SLO window as a [`TailPlan`]: exact-integer packet/flow counts
//!   per `(window, chain)` cell, charged to the same ledgers and applied
//!   to stateful NFs as batched [`lemur_nf::AggregateUpdate`]s.
//!
//! Everything is seeded and deterministic: materializing the same
//! [`ScenarioSpec`] twice yields byte-identical flow tables, so hybrid
//! runs replay bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Heavy-tailed (bounded-Pareto) flow-size distribution, in packets.
///
/// `P(S > x) ∝ x^-alpha` on `[min_packets, max_packets]` — the classic
/// mice-and-elephants shape: most flows are a few packets, a small
/// fraction carry most of the volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSizeDist {
    /// Tail index (Internet flow sizes are typically 1.05–1.3).
    pub alpha: f64,
    pub min_packets: u64,
    pub max_packets: u64,
}

impl FlowSizeDist {
    /// Inverse-CDF sample from one uniform draw `u ∈ [0, 1)`.
    pub fn sample(&self, u: f64) -> u64 {
        let l = self.min_packets.max(1) as f64;
        let h = (self.max_packets.max(self.min_packets.max(1))) as f64;
        if l >= h {
            return l as u64;
        }
        // Bounded Pareto inverse CDF:
        //   x = (-(u·(H^-α − L^-α) − L^-α))^(-1/α)
        let la = l.powf(-self.alpha);
        let ha = h.powf(-self.alpha);
        let x = (la - u * (la - ha)).powf(-1.0 / self.alpha);
        (x as u64).clamp(self.min_packets.max(1), self.max_packets)
    }
}

/// Sinusoidal diurnal load curve: arrival intensity scales by
/// `1 + amplitude·sin(2πt/period)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diurnal {
    pub period_ns: u64,
    /// In `[0, 1)`: 0.3 means ±30% around the mean rate.
    pub amplitude: f64,
}

impl Diurnal {
    fn factor(&self, t_ns: u64) -> f64 {
        let phase = t_ns as f64 / self.period_ns.max(1) as f64;
        1.0 + self.amplitude * (phase * std::f64::consts::TAU).sin()
    }
}

/// What kind of surge a [`Surge`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurgeKind {
    /// Legitimate flash crowd: flow arrivals intensify by `factor` but
    /// flows keep their normal size distribution.
    FlashCrowd,
    /// Volumetric DDoS: `factor − 1` times the nominal arrival mass of
    /// *minimum-size* junk flows is added on top of normal traffic.
    Ddos,
}

/// A load surge over `[start_ns, start_ns + duration_ns)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Surge {
    pub kind: SurgeKind,
    pub start_ns: u64,
    pub duration_ns: u64,
    /// Intensity multiplier (> 1) while the surge is active.
    pub factor: f64,
}

impl Surge {
    fn active(&self, t_ns: u64) -> bool {
        t_ns >= self.start_ns && t_ns - self.start_ns < self.duration_ns
    }
}

/// Flow-level load for one chain.
#[derive(Debug, Clone)]
pub struct ChainLoad {
    /// Flows arriving over the horizon at nominal intensity (flash crowds
    /// reshape *when* they arrive; DDoS surges add flows on top).
    pub flows: usize,
    /// Per-flow packet rate (CBR within a flow).
    pub flow_rate_pps: f64,
    pub size: FlowSizeDist,
    pub diurnal: Option<Diurnal>,
    pub surges: Vec<Surge>,
}

/// A seeded, fully-specified flow-level scenario for every chain.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    pub seed: u64,
    pub horizon_ns: u64,
    /// Index-aligned with the placement problem's chains.
    pub chains: Vec<ChainLoad>,
}

/// One generated flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    pub chain: usize,
    /// Dense per-chain id; drives the flow's five-tuple when materialized.
    pub flow_id: u64,
    pub start_ns: u64,
    /// Inter-packet gap (CBR).
    pub interval_ns: u64,
    /// Packets this flow emits *before the horizon* — the mass the
    /// simulation actually carries.
    pub packets: u64,
    /// The flow's drawn size, untruncated by the horizon. Heavy-hitter
    /// selection and tail-index estimation use this, so the split is a
    /// property of the workload, not of the simulated window.
    pub size_packets: u64,
    /// True for junk flows added by a [`SurgeKind::Ddos`] surge.
    pub ddos: bool,
}

impl FlowRecord {
    /// Exact number of this flow's packet arrivals strictly before
    /// `t_ns` (arrivals happen at `start + k·interval`, `k < packets`).
    pub fn arrivals_before(&self, t_ns: u64) -> u64 {
        if t_ns <= self.start_ns {
            return 0;
        }
        let elapsed = t_ns - 1 - self.start_ns;
        self.packets.min(1 + elapsed / self.interval_ns.max(1))
    }
}

/// A materialized scenario: every flow, with deterministic start times,
/// sizes, and schedules. `flows` is sorted by `(chain, start_ns, flow_id)`.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub horizon_ns: u64,
    pub n_chains: usize,
    pub flows: Vec<FlowRecord>,
}

impl ScenarioSpec {
    /// Generate the concrete flow table. Deterministic in `seed`: flow
    /// start times are drawn by rejection sampling against the chain's
    /// diurnal × flash-crowd intensity curve, sizes by inverse CDF, and
    /// DDoS junk flows are appended inside their surge windows.
    pub fn materialize(&self) -> Scenario {
        let mut flows = Vec::new();
        for (ci, load) in self.chains.iter().enumerate() {
            let mut rng =
                StdRng::seed_from_u64(self.seed ^ (ci as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let interval_ns = (1e9 / load.flow_rate_pps).max(1.0) as u64;
            // Peak intensity bounds the rejection-sampling envelope.
            let peak = {
                let d = 1.0 + load.diurnal.map(|d| d.amplitude).unwrap_or(0.0);
                let s = load
                    .surges
                    .iter()
                    .filter(|s| s.kind == SurgeKind::FlashCrowd)
                    .map(|s| s.factor)
                    .fold(1.0, f64::max);
                d * s
            };
            let intensity = |t: u64| -> f64 {
                let mut f = load.diurnal.map(|d| d.factor(t)).unwrap_or(1.0);
                for s in &load.surges {
                    if s.kind == SurgeKind::FlashCrowd && s.active(t) {
                        f *= s.factor;
                    }
                }
                f
            };
            let mut starts: Vec<u64> = Vec::with_capacity(load.flows);
            while starts.len() < load.flows {
                let t = rng.gen_range(0..self.horizon_ns.max(1));
                if rng.gen::<f64>() * peak <= intensity(t) {
                    starts.push(t);
                }
            }
            starts.sort_unstable();
            let mut push = |start_ns: u64, size_packets: u64, ddos: bool, id: &mut u64| {
                let horizon_cap = {
                    // Arrivals strictly before the horizon.
                    let span = self.horizon_ns.saturating_sub(start_ns);
                    if span == 0 {
                        0
                    } else {
                        1 + (span - 1) / interval_ns
                    }
                };
                flows.push(FlowRecord {
                    chain: ci,
                    flow_id: *id,
                    start_ns,
                    interval_ns,
                    packets: size_packets.min(horizon_cap),
                    size_packets,
                    ddos,
                });
                *id += 1;
            };
            let mut id = 0u64;
            for start in starts {
                let size = load.size.sample(rng.gen::<f64>());
                push(start, size, false, &mut id);
            }
            // DDoS junk: (factor−1) × the nominal arrival mass of the
            // surge window, all minimum-size flows.
            for s in &load.surges {
                if s.kind != SurgeKind::Ddos {
                    continue;
                }
                let share = s.duration_ns as f64 / self.horizon_ns.max(1) as f64;
                let extra = ((s.factor - 1.0).max(0.0) * load.flows as f64 * share) as usize;
                for _ in 0..extra {
                    let t = s.start_ns + rng.gen_range(0..s.duration_ns.max(1));
                    push(
                        t.min(self.horizon_ns.saturating_sub(1)),
                        load.size.min_packets,
                        true,
                        &mut id,
                    );
                }
            }
        }
        flows.sort_by_key(|f| (f.chain, f.start_ns, f.flow_id));
        Scenario {
            horizon_ns: self.horizon_ns,
            n_chains: self.chains.len(),
            flows,
        }
    }
}

/// One `(window, chain)` cell of analytic-tail mass. All counts are exact
/// integers, so charging a cell keeps the conservation ledger balanced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailCell {
    pub packets: u64,
    pub bytes: u64,
    pub new_flows: u64,
    /// The subset of `packets` carried by [`SurgeKind::Ddos`] junk flows
    /// — the mass overload admission control may deny.
    pub junk_packets: u64,
    /// The subset of `new_flows` that are junk flows.
    pub junk_flows: u64,
}

impl TailCell {
    pub fn is_empty(&self) -> bool {
        self.packets == 0 && self.new_flows == 0
    }
}

/// The analytic tail, pre-binned onto the engine's SLO-window grid.
///
/// The grid mirrors the engine's lazy window closes exactly: `warmup`
/// covers `[0, warmup_ns)`, `windows[w]` covers the w-th full guard
/// window, and `rest` covers the partial span between the last full
/// window and the horizon (empty cells when the horizon is aligned).
#[derive(Debug, Clone)]
pub struct TailPlan {
    pub warmup_ns: u64,
    pub window_ns: u64,
    pub horizon_ns: u64,
    /// Per chain: arrivals before measurement starts.
    pub warmup: Vec<TailCell>,
    /// `[window][chain]` cells over the full guard windows.
    pub windows: Vec<Vec<TailCell>>,
    /// Per chain: arrivals in the final partial window.
    pub rest: Vec<TailCell>,
    /// Tail flows per chain (for observability and validation).
    pub tail_flows: Vec<u64>,
    /// Tail packets per chain before the horizon.
    pub tail_packets: Vec<u64>,
}

impl Scenario {
    /// Split point: flows at least this large (by *drawn* size) are
    /// materialized; the rest go to the analytic tail. Returns the
    /// indices of heavy flows.
    pub fn heavy_indices(&self, heavy_min_packets: u64) -> Vec<usize> {
        self.flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.size_packets >= heavy_min_packets)
            .map(|(i, _)| i)
            .collect()
    }

    /// Bin every non-heavy flow's arrivals onto the window grid.
    /// `frame_len` is the per-chain wire bytes per packet.
    pub fn tail_plan(
        &self,
        heavy_min_packets: u64,
        warmup_ns: u64,
        window_ns: u64,
        frame_len: &[u64],
    ) -> TailPlan {
        assert_eq!(frame_len.len(), self.n_chains, "one frame length per chain");
        let window_ns = window_ns.max(1);
        let n_windows = (self.horizon_ns.saturating_sub(warmup_ns) / window_ns) as usize;
        let mut plan = TailPlan {
            warmup_ns,
            window_ns,
            horizon_ns: self.horizon_ns,
            warmup: vec![TailCell::default(); self.n_chains],
            windows: vec![vec![TailCell::default(); self.n_chains]; n_windows],
            rest: vec![TailCell::default(); self.n_chains],
            tail_flows: vec![0; self.n_chains],
            tail_packets: vec![0; self.n_chains],
        };
        // Cell edges: warmup end, then each full window end, then horizon.
        let edge = |i: usize| -> u64 {
            if i == 0 {
                0
            } else if i <= n_windows + 1 {
                (warmup_ns + (i as u64 - 1) * window_ns).min(self.horizon_ns)
            } else {
                self.horizon_ns
            }
        };
        let cell_of_start = |start: u64| -> usize {
            if start < warmup_ns {
                0
            } else {
                (1 + ((start - warmup_ns) / window_ns) as usize).min(n_windows + 1)
            }
        };
        for f in &self.flows {
            if f.size_packets >= heavy_min_packets || f.packets == 0 {
                continue;
            }
            plan.tail_flows[f.chain] += 1;
            plan.tail_packets[f.chain] += f.packets;
            // Walk only the cells the flow's schedule overlaps.
            let first = cell_of_start(f.start_ns);
            let mut before_prev = f.arrivals_before(edge(first));
            debug_assert_eq!(before_prev, 0);
            for i in first..n_windows + 2 {
                let before_end = f.arrivals_before(edge(i + 1));
                let n = before_end - before_prev;
                before_prev = before_end;
                if n > 0 {
                    let cell = if i == 0 {
                        &mut plan.warmup[f.chain]
                    } else if i <= n_windows {
                        &mut plan.windows[i - 1][f.chain]
                    } else {
                        &mut plan.rest[f.chain]
                    };
                    cell.packets += n;
                    cell.bytes += n * frame_len[f.chain];
                    if f.ddos {
                        cell.junk_packets += n;
                    }
                    if i == first {
                        cell.new_flows += 1;
                        if f.ddos {
                            cell.junk_flows += 1;
                        }
                    }
                }
                if before_end == f.packets {
                    break;
                }
            }
        }
        plan
    }
}

/// Packet-by-packet source over a set of materialized flows of one chain
/// — the heavy-hitter counterpart of [`crate::ChainSource`], driven by a
/// min-heap over per-flow CBR schedules.
pub struct FlowPacketSource {
    /// `(chain-relative) flow table`, only this chain's heavy flows.
    flows: Vec<FlowRecord>,
    /// Packets already emitted per flow.
    emitted: Vec<u64>,
    /// `(next_arrival_ns, flow_idx)` min-heap.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Source prefix base (the chain's classifier `/24`).
    prefix_base: u32,
    payload_len: usize,
    /// Surge-fault rate multiplier (1.0 nominally); scales the *gaps*
    /// of future arrivals, mirroring `ChainSource::set_rate_factor`.
    rate_factor: f64,
    horizon_ns: u64,
}

impl FlowPacketSource {
    /// Build from the scenario's flows for `chain`, keeping only the
    /// given indices (the heavy set; pass all indices for a full
    /// packet-level run).
    pub fn new(
        scenario: &Scenario,
        chain: usize,
        keep: impl Fn(&FlowRecord) -> bool,
        prefix: lemur_packet::ipv4::Cidr,
        payload_len: usize,
    ) -> FlowPacketSource {
        let flows: Vec<FlowRecord> = scenario
            .flows
            .iter()
            .filter(|f| f.chain == chain && f.packets > 0 && keep(f))
            .copied()
            .collect();
        let mut heap = BinaryHeap::with_capacity(flows.len());
        for (i, f) in flows.iter().enumerate() {
            heap.push(Reverse((f.start_ns, i)));
        }
        FlowPacketSource {
            emitted: vec![0; flows.len()],
            flows,
            heap,
            prefix_base: prefix.address().to_u32(),
            payload_len,
            rate_factor: 1.0,
            horizon_ns: scenario.horizon_ns,
        }
    }

    /// Timestamp of the next packet (`u64::MAX` when exhausted).
    pub fn peek_time(&self) -> u64 {
        self.heap
            .peek()
            .map(|Reverse((t, _))| *t)
            .unwrap_or(u64::MAX)
    }

    /// Total packets this source will emit (for sizing checks).
    pub fn total_packets(&self) -> u64 {
        self.flows.iter().map(|f| f.packets).sum()
    }

    /// Mirror of [`crate::ChainSource::set_rate_factor`]: future
    /// inter-packet gaps divide by `factor`.
    pub fn set_rate_factor(&mut self, factor: f64) {
        assert!(factor > 0.0, "rate factor must be positive");
        self.rate_factor = factor;
    }

    /// Produce the next packet; `None` when every flow is exhausted.
    pub fn next_packet(&mut self) -> Option<(u64, lemur_packet::PacketBuf)> {
        let Reverse((t, idx)) = self.heap.pop()?;
        let f = self.flows[idx];
        self.emitted[idx] += 1;
        if self.emitted[idx] < f.packets {
            let gap = ((f.interval_ns as f64 / self.rate_factor) as u64).max(1);
            let next = t + gap;
            if next < self.horizon_ns {
                self.heap.push(Reverse((next, idx)));
            }
        }
        // Five-tuple mirrors ChainSource: host octet inside the /24,
        // flows beyond 254 stay distinct via the source port.
        let src = lemur_packet::ipv4::Address::from_u32(
            self.prefix_base | ((f.flow_id as u32 % 254) + 1),
        );
        let sport = 10_000 + (f.flow_id % 40_000) as u16;
        let payload = vec![f.flow_id as u8; self.payload_len];
        let pkt = lemur_packet::builder::udp_packet(
            lemur_packet::ethernet::Address([2, 0, 0, 0, 0, 0x10]),
            lemur_packet::ethernet::Address([2, 0, 0, 0, 0, 0x20]),
            src,
            lemur_packet::ipv4::Address::new(10, 200, (f.flow_id % 250) as u8, 1),
            sport,
            80,
            &payload,
        );
        Some((t, pkt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            seed: 7,
            horizon_ns: 10_000_000,
            chains: vec![ChainLoad {
                flows: 200,
                flow_rate_pps: 100_000.0,
                size: FlowSizeDist {
                    alpha: 1.1,
                    min_packets: 2,
                    max_packets: 10_000,
                },
                diurnal: Some(Diurnal {
                    period_ns: 10_000_000,
                    amplitude: 0.3,
                }),
                surges: vec![Surge {
                    kind: SurgeKind::FlashCrowd,
                    start_ns: 4_000_000,
                    duration_ns: 2_000_000,
                    factor: 3.0,
                }],
            }],
        }
    }

    #[test]
    fn materialize_is_deterministic() {
        let a = spec().materialize();
        let b = spec().materialize();
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.flows.len(), 200);
    }

    #[test]
    fn sizes_are_heavy_tailed_and_bounded() {
        let s = spec().materialize();
        let sizes: Vec<u64> = s.flows.iter().map(|f| f.size_packets).collect();
        assert!(sizes.iter().all(|&x| (2..=10_000).contains(&x)));
        // Mice dominate by count…
        let small = sizes.iter().filter(|&&x| x <= 10).count();
        assert!(
            small * 2 > sizes.len(),
            "only {small} mice of {}",
            sizes.len()
        );
        // …while a few elephants exist.
        assert!(sizes.iter().any(|&x| x >= 100));
    }

    #[test]
    fn flash_crowd_skews_start_times() {
        let s = spec().materialize();
        let in_surge = s
            .flows
            .iter()
            .filter(|f| (4_000_000..6_000_000).contains(&f.start_ns))
            .count();
        // The surge window is 20% of the horizon but at 3× intensity it
        // should attract well over 20% of the flows.
        assert!(
            in_surge as f64 > 0.3 * s.flows.len() as f64,
            "{in_surge} of {} flows in surge window",
            s.flows.len()
        );
    }

    #[test]
    fn ddos_adds_min_size_flows() {
        let mut sp = spec();
        sp.chains[0].surges = vec![Surge {
            kind: SurgeKind::Ddos,
            start_ns: 2_000_000,
            duration_ns: 5_000_000,
            factor: 3.0,
        }];
        let s = sp.materialize();
        let junk: Vec<_> = s.flows.iter().filter(|f| f.ddos).collect();
        assert_eq!(junk.len(), 200); // (3−1) × 200 × 0.5
        assert!(junk.iter().all(|f| f.size_packets == 2));
        assert!(junk
            .iter()
            .all(|f| (2_000_000..7_000_000).contains(&f.start_ns)));
    }

    #[test]
    fn arrivals_before_is_exact() {
        let f = FlowRecord {
            chain: 0,
            flow_id: 0,
            start_ns: 100,
            interval_ns: 10,
            packets: 5,
            size_packets: 5,
            ddos: false,
        };
        // Arrivals at 100, 110, 120, 130, 140.
        assert_eq!(f.arrivals_before(100), 0);
        assert_eq!(f.arrivals_before(101), 1);
        assert_eq!(f.arrivals_before(110), 1);
        assert_eq!(f.arrivals_before(111), 2);
        assert_eq!(f.arrivals_before(1_000), 5);
    }

    #[test]
    fn tail_plan_conserves_mass() {
        let s = spec().materialize();
        let total: u64 = s.flows.iter().map(|f| f.packets).sum();
        let plan = s.tail_plan(u64::MAX, 1_000_000, 1_000_000, &[100]);
        // θ = MAX: everything is tail. Every packet lands in exactly one
        // cell, and every flow registers exactly one new_flows increment.
        let binned: u64 = plan.warmup.iter().map(|c| c.packets).sum::<u64>()
            + plan
                .windows
                .iter()
                .flat_map(|w| w.iter())
                .map(|c| c.packets)
                .sum::<u64>()
            + plan.rest.iter().map(|c| c.packets).sum::<u64>();
        assert_eq!(binned, total);
        assert_eq!(plan.tail_packets[0], total);
        let flows_binned: u64 = plan.warmup.iter().map(|c| c.new_flows).sum::<u64>()
            + plan
                .windows
                .iter()
                .flat_map(|w| w.iter())
                .map(|c| c.new_flows)
                .sum::<u64>()
            + plan.rest.iter().map(|c| c.new_flows).sum::<u64>();
        assert_eq!(flows_binned, plan.tail_flows[0]);
        // Bytes are packets × frame everywhere.
        for c in plan.windows.iter().flat_map(|w| w.iter()) {
            assert_eq!(c.bytes, c.packets * 100);
        }
    }

    #[test]
    fn tail_plan_splits_junk_mass_exactly() {
        let mut sp = spec();
        sp.chains[0].surges = vec![Surge {
            kind: SurgeKind::Ddos,
            start_ns: 2_000_000,
            duration_ns: 5_000_000,
            factor: 3.0,
        }];
        let s = sp.materialize();
        let junk_total: u64 = s.flows.iter().filter(|f| f.ddos).map(|f| f.packets).sum();
        let junk_flows = s.flows.iter().filter(|f| f.ddos).count() as u64;
        let plan = s.tail_plan(u64::MAX, 1_000_000, 1_000_000, &[100]);
        let cells = plan
            .warmup
            .iter()
            .chain(plan.windows.iter().flat_map(|w| w.iter()))
            .chain(plan.rest.iter());
        let (mut jp, mut jf) = (0u64, 0u64);
        for c in cells {
            assert!(c.junk_packets <= c.packets, "junk is a subset of packets");
            assert!(c.junk_flows <= c.new_flows, "junk flows subset");
            jp += c.junk_packets;
            jf += c.junk_flows;
        }
        assert!(junk_total > 0, "vacuous: no junk generated");
        assert_eq!(jp, junk_total);
        assert_eq!(jf, junk_flows);
    }

    #[test]
    fn heavy_split_partitions_packets() {
        let s = spec().materialize();
        let theta = 50;
        let heavy: u64 = s
            .flows
            .iter()
            .filter(|f| f.size_packets >= theta)
            .map(|f| f.packets)
            .sum();
        let plan = s.tail_plan(theta, 1_000_000, 1_000_000, &[100]);
        let total: u64 = s.flows.iter().map(|f| f.packets).sum();
        assert_eq!(heavy + plan.tail_packets[0], total);
    }

    #[test]
    fn flow_source_replays_schedule_exactly() {
        let s = spec().materialize();
        let prefix =
            lemur_packet::ipv4::Cidr::new(lemur_packet::ipv4::Address::new(10, 0, 1, 0), 24)
                .unwrap();
        let mut src = FlowPacketSource::new(&s, 0, |_| true, prefix, 100);
        let total: u64 = s.flows.iter().map(|f| f.packets).sum();
        assert_eq!(src.total_packets(), total);
        let mut n = 0u64;
        let mut last = 0u64;
        while let Some((t, pkt)) = src.next_packet() {
            assert!(t >= last, "time went backwards");
            assert!(t < s.horizon_ns);
            last = t;
            n += 1;
            if n == 1 {
                let tuple = lemur_packet::flow::FiveTuple::parse(pkt.as_slice()).unwrap();
                assert!(prefix.contains(tuple.src_ip), "src outside chain prefix");
            }
        }
        assert_eq!(n, total);
        assert_eq!(src.peek_time(), u64::MAX);
    }
}
