//! Stateful NF migration across epoch swaps.
//!
//! When the supervisor commits a reconfiguration, per-NF state (NAT
//! bindings, LB flow affinity, token buckets, ...) must survive the swap —
//! a "hitless" update reprograms the dataplane without resetting the
//! connections flowing through it. The engine runs a migration phase
//! inside the drain window:
//!
//! 1. **Snapshot** every state-bearing NF of the old epoch into a
//!    versioned, checksummed [`lemur_nf::NfSnapshot`] frame.
//! 2. **Transfer** the frames as a [`StateTransfer`] whose manifest count
//!    detects truncation; each frame's own FNV-1a/128 digest detects
//!    corruption.
//! 3. **Restore** into the staged configuration — back into the matching
//!    server NF, or, when the node moved onto the ToR, re-expressed as P4
//!    table entries via the metacompiler's table map
//!    (`SynthesizedP4::nf_tables`).
//!
//! Any verification failure aborts the whole swap: the old epoch (and its
//! intact state) stays live, which *is* the rollback to last-known-good.
//! Injected [`crate::faults::MigrationFaultKind`] events break specific
//! steps of this pipeline so the soak can prove each failure mode is
//! contained.

use crate::faults::MigrationFaultKind;
use lemur_core::graph::NodeId;
use lemur_nf::snapshot::SnapshotError;
use lemur_nf::{NfKind, NfSnapshot};
use lemur_p4sim::{MatchValue, TableEntry, TableId};
use lemur_packet::ipv4;

/// Where one state-bearing NF instance lives inside a built configuration.
/// `(chain, node, replica)` is the placement-independent identity; the
/// rest locates the runtime object in that epoch's server pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct NfLocator {
    pub chain: usize,
    pub node: NodeId,
    pub replica: usize,
    pub kind: NfKind,
    pub server: usize,
    pub inst_idx: usize,
    pub nf_idx: usize,
}

/// A NAT node whose tables live on the ToR in this epoch: restored
/// bindings are installed as entries into `(lookup, rewrite)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TorNatTarget {
    pub chain: usize,
    pub node: NodeId,
    pub lookup: TableId,
    pub rewrite: TableId,
}

/// One NF's snapshot in transit, addressed by placement-independent
/// identity. `bytes` is the full [`NfSnapshot::encode`] frame (magic,
/// version, kind, payload, digest) so integrity is checked per record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateRecord {
    pub chain: usize,
    pub node: NodeId,
    pub replica: usize,
    pub kind: NfKind,
    pub bytes: Vec<u8>,
}

/// The whole migration payload. `declared` is the sender-side manifest
/// count; a receiver seeing fewer records knows the transfer was cut
/// short even though every surviving frame still checksums.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateTransfer {
    pub declared: usize,
    pub records: Vec<StateRecord>,
}

impl StateTransfer {
    pub fn new(records: Vec<StateRecord>) -> StateTransfer {
        StateTransfer {
            declared: records.len(),
            records,
        }
    }

    /// Break the transfer the way an injected fault dictates. Corruption
    /// flips one payload byte of the first record (the per-frame digest
    /// must catch it); truncation drops the last record while the
    /// manifest still declares it. Crash/timeout faults don't touch the
    /// bytes — the engine turns them into errors directly.
    pub fn apply_fault(&mut self, fault: MigrationFaultKind) {
        match fault {
            MigrationFaultKind::SnapshotCorrupt => {
                if let Some(rec) = self.records.first_mut() {
                    let mid = rec.bytes.len() / 2;
                    if let Some(b) = rec.bytes.get_mut(mid) {
                        *b ^= 0x01;
                    }
                }
            }
            MigrationFaultKind::TransferTruncate => {
                self.records.pop();
            }
            MigrationFaultKind::ControlCrash | MigrationFaultKind::RestoreTimeout => {}
        }
    }
}

/// A state transfer crossing PoP (site) boundaries: the payload of a
/// cross-site failover, fenced so a delayed or duplicated copy can never
/// resurrect state under a superseded owner. `token` is the per-chain
/// fencing token the coordinator granted alongside this state; a receiver
/// that has already seen a newer token for `chain` must reject the whole
/// transfer with [`MigrationError::StaleFencingToken`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossSiteTransfer {
    /// Site (PoP index) the state was captured at.
    pub src_site: usize,
    /// Site the state is being restored into.
    pub dst_site: usize,
    /// Global chain index the state belongs to.
    pub chain: usize,
    /// Per-chain fencing token under which the destination may serve.
    pub token: u64,
    /// The LMSN-framed records, exactly as an intra-PoP migration ships
    /// them — cross-site failover reuses the same wire format.
    pub transfer: StateTransfer,
}

impl CrossSiteTransfer {
    /// Decode and integrity-check every record, enforcing the fencing
    /// token against the newest token the receiver has observed for this
    /// chain. On success the verified snapshots are returned in record
    /// order; on any failure nothing must be restored.
    pub fn verify(&self, newest_seen: u64) -> Result<Vec<NfSnapshot>, MigrationError> {
        if self.token < newest_seen {
            return Err(MigrationError::StaleFencingToken {
                chain: self.chain,
                held: newest_seen,
                offered: self.token,
            });
        }
        if self.transfer.records.len() < self.transfer.declared {
            return Err(MigrationError::Truncated {
                expected: self.transfer.declared,
                got: self.transfer.records.len(),
            });
        }
        self.transfer.records.iter().map(decode_record).collect()
    }
}

/// Why a state migration failed (and the swap was aborted). Every variant
/// leaves the old epoch live with its state untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationError {
    /// A record's frame failed to decode: bad magic/version, checksum
    /// mismatch, or an NF-level invariant violation on restore.
    Decode {
        chain: usize,
        node: NodeId,
        replica: usize,
        source: SnapshotError,
    },
    /// The restored NF's state fingerprint does not match the snapshot's —
    /// the restore silently diverged.
    FingerprintMismatch {
        chain: usize,
        node: NodeId,
        replica: usize,
    },
    /// The transfer manifest declared more records than arrived.
    Truncated { expected: usize, got: usize },
    /// The control plane crashed between snapshot and restore.
    ControlCrash,
    /// The restore phase overran the drain window.
    RestoreTimeout,
    /// A cross-site transfer arrived under a fencing token older than one
    /// the receiver has already honored for this chain — a partitioned or
    /// delayed sender trying to commit a superseded decision.
    StaleFencingToken {
        chain: usize,
        held: u64,
        offered: u64,
    },
    /// The destination site never acknowledged the transfer within its
    /// timeout budget (coordinator-side view of a dead or partitioned
    /// PoP).
    SiteUnreachable { site: usize },
}

impl std::fmt::Display for MigrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrationError::Decode {
                chain,
                node,
                replica,
                source,
            } => write!(
                f,
                "state record chain {chain} node {} replica {replica}: {source}",
                node.0
            ),
            MigrationError::FingerprintMismatch {
                chain,
                node,
                replica,
            } => write!(
                f,
                "restored state fingerprint mismatch at chain {chain} node {} replica {replica}",
                node.0
            ),
            MigrationError::Truncated { expected, got } => {
                write!(f, "state transfer truncated: {got} of {expected} records")
            }
            MigrationError::ControlCrash => {
                write!(f, "control plane crashed between snapshot and restore")
            }
            MigrationError::RestoreTimeout => write!(f, "restore overran the drain window"),
            MigrationError::StaleFencingToken {
                chain,
                held,
                offered,
            } => write!(
                f,
                "stale fencing token for chain {chain}: offered {offered}, already honored {held}"
            ),
            MigrationError::SiteUnreachable { site } => {
                write!(f, "site {site} unreachable during state transfer")
            }
        }
    }
}

impl std::error::Error for MigrationError {}

/// Exact-integer accounting of one successful migration phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Records captured from the old epoch.
    pub snapshots: u64,
    /// Records restored into server NFs of the new epoch.
    pub restored: u64,
    /// P4 table entries installed for NAT nodes that moved onto the ToR.
    pub tor_entries: u64,
    /// Records with no target in the new placement (e.g. a shed chain);
    /// their state is discarded deliberately, not lost.
    pub dropped: u64,
}

/// Turn decoded NAT bindings into the P4 entries the metacompiler's
/// generated tables expect: `lookup (src_ip, sport) → binding id` and
/// `rewrite id → external ip`. Ids start at 1 — id 0 is the generated
/// default binding that rewrites misses to the carrier address.
pub(crate) fn nat_binding_entries(
    target: &TorNatTarget,
    external_ip: ipv4::Address,
    bindings: &[(ipv4::Address, u16, u16)],
) -> Vec<(TableId, TableEntry)> {
    let mut out = Vec::with_capacity(bindings.len() * 2);
    for (i, (int_ip, int_port, _ext_port)) in bindings.iter().enumerate() {
        let id = (i + 1) as u64;
        out.push((
            target.lookup,
            TableEntry {
                keys: vec![
                    MatchValue::Exact(int_ip.to_u32() as u64),
                    MatchValue::Exact(*int_port as u64),
                ],
                action: 0,
                action_data: vec![id],
                priority: 2,
            },
        ));
        out.push((
            target.rewrite,
            TableEntry {
                keys: vec![MatchValue::Exact(id)],
                action: 0,
                action_data: vec![external_ip.to_u32() as u64],
                priority: 2,
            },
        ));
    }
    out
}

/// Decode one record's frame back into a verified snapshot.
pub(crate) fn decode_record(rec: &StateRecord) -> Result<NfSnapshot, MigrationError> {
    let snap = NfSnapshot::decode(&rec.bytes).map_err(|source| MigrationError::Decode {
        chain: rec.chain,
        node: rec.node,
        replica: rec.replica,
        source,
    })?;
    snap.expect_kind(rec.kind)
        .map_err(|source| MigrationError::Decode {
            chain: rec.chain,
            node: rec.node,
            replica: rec.replica,
            source,
        })?;
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_nf::snapshot::Encoder;

    fn record(payload: &[u8]) -> StateRecord {
        let mut e = Encoder::new();
        for b in payload {
            e.u8(*b);
        }
        let snap = NfSnapshot::new(NfKind::Monitor, e.finish());
        StateRecord {
            chain: 0,
            node: NodeId(1),
            replica: 0,
            kind: NfKind::Monitor,
            bytes: snap.encode(),
        }
    }

    #[test]
    fn clean_transfer_round_trips() {
        let t = StateTransfer::new(vec![record(b"abc"), record(b"def")]);
        assert_eq!(t.declared, 2);
        for rec in &t.records {
            decode_record(rec).expect("clean record decodes");
        }
    }

    #[test]
    fn corruption_fault_is_detected() {
        let mut t = StateTransfer::new(vec![record(b"state bytes")]);
        t.apply_fault(MigrationFaultKind::SnapshotCorrupt);
        let err = decode_record(&t.records[0]).unwrap_err();
        assert!(
            matches!(err, MigrationError::Decode { .. }),
            "corruption must surface as a decode error: {err:?}"
        );
    }

    #[test]
    fn truncation_fault_breaks_manifest() {
        let mut t = StateTransfer::new(vec![record(b"a"), record(b"b")]);
        t.apply_fault(MigrationFaultKind::TransferTruncate);
        assert_eq!(t.declared, 2);
        assert_eq!(t.records.len(), 1);
        // The surviving record is still intact — truncation is a manifest
        // failure, not a corruption failure.
        decode_record(&t.records[0]).expect("survivor decodes");
    }

    #[test]
    fn kind_mismatch_is_a_decode_error() {
        let mut rec = record(b"x");
        rec.kind = NfKind::Nat; // lie about the kind
        assert!(matches!(
            decode_record(&rec),
            Err(MigrationError::Decode {
                source: SnapshotError::KindMismatch { .. },
                ..
            })
        ));
    }

    #[test]
    fn nat_entries_shape() {
        let target = TorNatTarget {
            chain: 0,
            node: NodeId(2),
            lookup: TableId(4),
            rewrite: TableId(5),
        };
        let ext = ipv4::Address::new(198, 18, 0, 1);
        let bindings = vec![
            (ipv4::Address::new(10, 0, 0, 1), 1111, 5000),
            (ipv4::Address::new(10, 0, 0, 2), 2222, 5001),
        ];
        let entries = nat_binding_entries(&target, ext, &bindings);
        assert_eq!(entries.len(), 4);
        // Binding ids start at 1 and pair lookup→rewrite.
        assert_eq!(entries[0].0, TableId(4));
        assert_eq!(entries[0].1.action_data, vec![1]);
        assert_eq!(entries[1].0, TableId(5));
        assert_eq!(entries[1].1.keys, vec![MatchValue::Exact(1)]);
        assert_eq!(entries[3].1.action_data, vec![ext.to_u32() as u64]);
        // Restored entries outrank the generated default (priority 1).
        assert!(entries.iter().all(|(_, e)| e.priority == 2));
    }

    #[test]
    fn cross_site_transfer_verifies_and_fences() {
        let xfer = CrossSiteTransfer {
            src_site: 0,
            dst_site: 1,
            chain: 3,
            token: 7,
            transfer: StateTransfer::new(vec![record(b"warm state")]),
        };
        // Fresh token: records decode and verify.
        let snaps = xfer.verify(7).expect("same token is acceptable");
        assert_eq!(snaps.len(), 1);
        assert!(xfer.verify(5).is_ok(), "newer token than seen is fine");
        // Stale token: rejected wholesale, regardless of payload health.
        assert_eq!(
            xfer.verify(9),
            Err(MigrationError::StaleFencingToken {
                chain: 3,
                held: 9,
                offered: 7,
            })
        );
        // Truncation is caught before any record is surfaced.
        let mut cut = xfer.clone();
        cut.transfer
            .apply_fault(MigrationFaultKind::TransferTruncate);
        assert!(matches!(
            cut.verify(0),
            Err(MigrationError::Truncated {
                expected: 1,
                got: 0
            })
        ));
        // Corruption in any record fails the whole transfer.
        let mut bad = xfer.clone();
        bad.transfer
            .apply_fault(MigrationFaultKind::SnapshotCorrupt);
        assert!(matches!(bad.verify(0), Err(MigrationError::Decode { .. })));
    }

    #[test]
    fn errors_display() {
        let e = MigrationError::Truncated {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("2 of 3"));
        assert!(MigrationError::ControlCrash.to_string().contains("crashed"));
    }
}
