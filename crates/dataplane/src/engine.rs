//! The discrete-event cross-platform execution engine.

use crate::faults::{FaultKind, FaultPlan, FaultState, MigrationFaultKind};
use crate::flowsim::{FlowPacketSource, Scenario, TailCell, TailPlan};
use crate::migrate::{
    decode_record, nat_binding_entries, MigrationError, MigrationStats, NfLocator, StateRecord,
    StateTransfer, TorNatTarget,
};
use crate::report::{
    ChainStats, ConservationLedger, DropReason, SimReport, TimelineEvent, ViolationKind,
    WindowSample,
};
use crate::traffic::{ChainSource, TrafficSpec};
use lemur_bess::CoreId;
use lemur_core::Slo;
use lemur_ebpf::{Vm, XdpVerdict};
use lemur_metacompiler::Deployment;
pub use lemur_metacompiler::RuntimeMode;
use lemur_nf::{AggregateObservables, AggregateUpdate, NfCtx, NfKind};
use lemur_p4sim::{PisaModel, Switch};
use lemur_packet::PacketBuf;
use lemur_placer::placement::{EvaluatedPlacement, PlacementProblem};
use lemur_placer::topology::Tor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Propagation + PHY latency per link traversal (ns).
const PROP_NS: u64 = 500;
/// Demultiplexer cost per packet (cycles on the demux core).
const DEMUX_CYCLES: f64 = 300.0;
/// Safety cap on per-packet hops (a mis-programmed chain loops forever
/// otherwise).
const MAX_HOPS: u8 = 64;

/// Why a testbed could not be constructed from a deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The topology's ToR is not the PISA switch this engine simulates.
    UnsupportedTor(String),
    /// The generated P4 program failed to compile/load on the switch.
    SwitchLoad(String),
    /// Meta-compilation failed inside [`Testbed::build_with_mode`].
    Compile(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnsupportedTor(msg) => write!(f, "unsupported ToR: {msg}"),
            BuildError::SwitchLoad(msg) => write!(f, "switch load: {msg}"),
            BuildError::Compile(msg) => write!(f, "meta-compile: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Measurement window (seconds of virtual time).
    pub duration_s: f64,
    /// Warm-up before measurement starts.
    pub warmup_s: f64,
    /// Seed for service-time sampling and traffic payloads.
    pub seed: u64,
    /// Queueing delay beyond which a station drops arrivals (overload).
    pub max_queue_ns: u64,
    /// SLO-guard sampling window (ns of virtual time). The guard only
    /// runs when `run_with_faults` is given per-chain SLOs.
    pub window_ns: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            duration_s: 0.02,
            warmup_s: 0.002,
            seed: 42,
            max_queue_ns: 3_000_000, // 3 ms
            window_ns: 1_000_000,    // 1 ms
        }
    }
}

/// How [`Testbed::run_scenario`] advances a flow-level [`Scenario`].
#[derive(Debug, Clone)]
pub enum HybridMode {
    /// Materialize every flow packet-by-packet — exact but O(total
    /// packets); the reference the hybrid engine is validated against.
    PacketLevel,
    /// Heavy hitters packet-by-packet, long tail analytically per SLO
    /// window.
    Hybrid(HybridConfig),
}

/// Parameters of the hybrid fast path.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Flows whose *drawn* size is at least this many packets are
    /// materialized; smaller flows join the analytic tail.
    pub heavy_min_packets: u64,
    /// Per-chain delivery capacity (bits/s) charged against tail mass
    /// each window. Tail packets beyond what the heavy path left of the
    /// budget queue in a fluid M/D/1-style backlog that drains at
    /// capacity and contributes waiting time to the window's latency;
    /// only mass past `queue_buffer_packets` drops as
    /// [`DropReason::QueueOverflow`]. Empty disables the constraint
    /// (the tail is assumed deliverable).
    pub capacity_bps: Vec<f64>,
    /// Bound on the per-chain fluid-queue backlog (packets). Mass
    /// arriving when the backlog is full overflows to
    /// [`DropReason::QueueOverflow`]; `0` restores the drop-only
    /// capacity budget (no queueing, no added waiting time).
    pub queue_buffer_packets: u64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            heavy_min_packets: 0,
            capacity_bps: vec![],
            queue_buffer_packets: 4096,
        }
    }
}

impl HybridConfig {
    /// Reject silently-misbehaving capacity entries (zero, negative,
    /// NaN, infinite) before a run starts.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        for (chain, &cap) in self.capacity_bps.iter().enumerate() {
            if !cap.is_finite() || cap <= 0.0 {
                return Err(ScenarioError::InvalidCapacity { chain, value: cap });
            }
        }
        Ok(())
    }
}

/// Why a scenario run was refused before it started.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// `HybridConfig::capacity_bps[chain]` is zero, negative, NaN, or
    /// infinite — each of which would silently disable or corrupt the
    /// capacity budget instead of modelling a real link.
    InvalidCapacity { chain: usize, value: f64 },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::InvalidCapacity { chain, value } => write!(
                f,
                "capacity_bps[{chain}] = {value} is not a positive finite rate"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Uniform packet feed: the classic steady-rate generator or a
/// materialized flow schedule (the hybrid engine's heavy-hitter set).
enum PacketSource {
    Steady(ChainSource),
    Flows(FlowPacketSource),
}

impl PacketSource {
    fn peek_time(&self) -> u64 {
        match self {
            PacketSource::Steady(s) => s.peek_time(),
            PacketSource::Flows(s) => s.peek_time(),
        }
    }

    fn next_packet(&mut self) -> Option<(u64, PacketBuf)> {
        match self {
            PacketSource::Steady(s) => Some(s.next_packet()),
            PacketSource::Flows(s) => s.next_packet(),
        }
    }

    fn set_rate_factor(&mut self, factor: f64) {
        match self {
            PacketSource::Steady(s) => s.set_rate_factor(factor),
            PacketSource::Flows(s) => s.set_rate_factor(factor),
        }
    }
}

/// Run-time cursor over a [`TailPlan`]: which cells have been charged.
struct TailState {
    plan: TailPlan,
    /// Wire bytes per packet, per chain.
    frame_bytes: Vec<u64>,
    /// Per-chain capacity (empty = unconstrained).
    capacity_bps: Vec<f64>,
    /// Per-chain fluid-queue backlog (packets queued above capacity,
    /// draining at capacity across subsequent windows).
    backlog: Vec<u64>,
    /// Backlog bound: mass past this overflows to
    /// [`DropReason::QueueOverflow`].
    buffer_packets: u64,
    /// Next full-window row of `plan.windows` to apply.
    next_window: usize,
    warmup_applied: bool,
}

/// A FIFO station with a single server.
#[derive(Debug, Default, Clone, Copy)]
struct Station {
    free_at: u64,
}

impl Station {
    /// Try to serve an arrival: returns completion time, or `None` if the
    /// queue is too long (drop).
    fn serve(&mut self, now: u64, service_ns: u64, max_queue_ns: u64) -> Option<u64> {
        let start = now.max(self.free_at);
        if start - now > max_queue_ns {
            return None;
        }
        let done = start + service_ns;
        self.free_at = done;
        Some(done)
    }
}

struct ServerSim {
    pipeline: lemur_metacompiler::bessgen::ServerPipeline,
    demux: Station,
    cores: HashMap<usize, Station>,
    clock_hz: f64,
    /// Discount for instances on the NIC's socket: the profile is
    /// worst-case cross-socket, so same-socket cores run faster.
    same_socket_factor: f64,
    nic_socket: lemur_bess::SocketId,
    spec: lemur_bess::ServerSpec,
}

struct NicSim {
    program: lemur_ebpf::Program,
    proc: Station,
    link_in: Station,
    link_out: Station,
    clock_hz: f64,
    link_bps: f64,
}

struct SimPacket {
    buf: PacketBuf,
    chain: usize,
    t_in: u64,
    ingress_bits: u64,
    hops: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Hop {
    /// Apply fault-plan event `i`. Declared first so that at equal
    /// `(time, id)` a fault applies before any packet hop.
    Fault(usize),
    /// Pacemaker for the SLO-guard / tail window grid. Windows close
    /// lazily as events pop, so without this a run whose heap holds no
    /// packet events (e.g. a pure analytic-tail scenario) would close
    /// every window in one catch-up burst at the first pop — handing the
    /// control hook a garbage `now` and scheduling any staged swap after
    /// the whole run. The tick pins each window boundary to a real heap
    /// event; its handler is otherwise a no-op.
    WindowTick,
    Inject(usize),
    AtTor,
    AtServer(usize),
    /// Core processing finished; reserve the server→ToR link *now* (a
    /// separate event so link reservations happen in true arrival order —
    /// reserving at enqueue time would let one backed-up replica inflate
    /// every other replica's link start time).
    ServerEgress(usize),
    AtNic(usize),
    Deliver,
    /// End of a drain window: swap the staged configuration in. Declared
    /// last so that at an equal `(time, id)` every fault and packet hop
    /// settles before the epoch changes.
    EpochSwap,
}

/// A pre-built configuration waiting to be swapped in at the end of a
/// drain window (phase one of the two-phase commit). Compiling and
/// loading happen here, off the "live" path, so the swap itself is
/// atomic from the dataplane's point of view.
pub struct StagedConfig {
    switch: Switch,
    servers: Vec<Option<ServerSim>>,
    nics: Vec<Option<NicSim>>,
    subgroup_cycles: Vec<f64>,
    /// Where each state-bearing NF lives in this configuration.
    nf_index: Vec<NfLocator>,
    /// NAT nodes whose tables live on the ToR in this configuration.
    tor_nat: Vec<TorNatTarget>,
    /// Per *original* chain: is it admitted in the new epoch? Shed
    /// chains have their packets refused at inject ([`DropReason::Shed`]).
    admitted: Vec<bool>,
    /// Replacement SLO-guard bounds, indexed by original chain (shed
    /// chains should carry `None` so the guard stops flagging them).
    slos: Vec<Option<Slo>>,
    /// True when this config restores a last-known-good placement.
    rollback: bool,
}

impl StagedConfig {
    /// Pre-stage a deployment for a (possibly repaired sub-)problem.
    /// `admitted` and `slos` are indexed by the *original* problem's
    /// chains — the engine keeps original chain numbering across epochs.
    pub fn build(
        problem: &PlacementProblem,
        placement: &EvaluatedPlacement,
        deployment: Deployment,
        admitted: Vec<bool>,
        slos: Vec<Option<Slo>>,
        rollback: bool,
    ) -> Result<StagedConfig, BuildError> {
        let parts = build_parts(problem, placement, deployment)?;
        Ok(StagedConfig {
            switch: parts.switch,
            servers: parts.servers,
            nics: parts.nics,
            subgroup_cycles: parts.subgroup_cycles,
            nf_index: parts.nf_index,
            tor_nat: parts.tor_nat,
            admitted,
            slos,
            rollback,
        })
    }

    pub fn is_rollback(&self) -> bool {
        self.rollback
    }
}

/// What a [`ControlHook`] tells the engine to do after a callback.
pub enum ControlAction {
    /// Keep running the current epoch.
    Continue,
    /// Begin the two-phase commit: emit [`TimelineEvent::DrainStart`] now
    /// and swap `staged` in after `drain_ns` of virtual time. Ignored if
    /// a swap is already pending.
    StageCommit {
        staged: Box<StagedConfig>,
        drain_ns: u64,
    },
    /// Flip per-chain tail admission control (the first, cheapest rung of
    /// the graceful-degradation ladder): chains with `deny_junk[chain]`
    /// set have their DDoS-flagged analytic-tail arrivals refused as
    /// [`DropReason::Admission`] from this instant on. No epoch swap, no
    /// drain window — it takes effect at the next tail application.
    /// Only meaningful in hybrid runs (packet-level runs carry no junk
    /// marking); a no-op there.
    SetTailAdmission { deny_junk: Vec<bool> },
}

/// Control-plane logic running *inside* the simulation. The engine calls
/// back at guard-window closes and fault applications; the hook may
/// respond with a staged reconfiguration. All timing is virtual, so a
/// hooked run is exactly as deterministic as a plain one.
pub trait ControlHook {
    /// A fault-plan event was just applied.
    fn on_fault(&mut self, _at_ns: u64, _kind: &FaultKind) -> ControlAction {
        ControlAction::Continue
    }

    /// An SLO-guard window closed. `samples` holds this window's
    /// per-chain measurements; `violations` the violation events it
    /// produced (empty when all admitted chains met their bounds).
    fn on_window(
        &mut self,
        _end_ns: u64,
        _samples: &[WindowSample],
        _violations: &[TimelineEvent],
    ) -> ControlAction {
        ControlAction::Continue
    }

    /// An epoch swap committed (`packets_lost` = update-time loss).
    fn on_commit(&mut self, _at_ns: u64, _epoch: u64, _packets_lost: u64, _rollback: bool) {}

    /// The staged swap was aborted because state migration failed
    /// verification. The old epoch is still live with its state intact;
    /// the hook decides whether to retry, back off, or recover a crashed
    /// control plane from its decision log.
    fn on_migration_failed(&mut self, _at_ns: u64, _error: &MigrationError) {}
}

/// The do-nothing hook: [`Testbed::run_with_faults`] uses it, keeping
/// un-supervised runs byte-identical to the pre-control-loop engine.
pub struct NoopHook;

impl ControlHook for NoopHook {}

/// The executable testbed.
pub struct Testbed {
    switch: Switch,
    servers: Vec<Option<ServerSim>>,
    nics: Vec<Option<NicSim>>,
    n_chains: usize,
    pisa: PisaModel,
    /// ToR→server and server→ToR link stations, per server.
    tor_to_server: Vec<Station>,
    server_to_tor: Vec<Station>,
    tor_out: Station,
    link_bps: Vec<f64>,
    tor_rate_bps: f64,
    subgroup_cycles: Vec<f64>,
    /// Where each state-bearing NF lives in the current epoch.
    nf_index: Vec<NfLocator>,
    /// NAT nodes whose tables live on the ToR in the current epoch.
    tor_nat: Vec<TorNatTarget>,
}

impl Testbed {
    /// Build from a placement and its deployment. The deployment's P4
    /// program is compiled and loaded; BESS pipelines and NIC programs are
    /// taken as-is.
    pub fn build(
        problem: &PlacementProblem,
        placement: &EvaluatedPlacement,
        deployment: Deployment,
    ) -> Result<Testbed, BuildError> {
        let parts = build_parts(problem, placement, deployment)?;
        let n_servers = problem.topology.servers.len();
        let link_bps: Vec<f64> = (0..n_servers)
            .map(|s| problem.topology.server_link_bps(s))
            .collect();
        Ok(Testbed {
            switch: parts.switch,
            servers: parts.servers,
            nics: parts.nics,
            n_chains: problem.chains.len(),
            pisa: parts.pisa,
            tor_to_server: vec![Station::default(); n_servers],
            server_to_tor: vec![Station::default(); n_servers],
            tor_out: Station::default(),
            link_bps,
            tor_rate_bps: parts.pisa.port_rate_bps,
            subgroup_cycles: parts.subgroup_cycles,
            nf_index: parts.nf_index,
            tor_nat: parts.tor_nat,
        })
    }

    /// Build from a placement, compiling the deployment internally with an
    /// explicit server runtime mode: `RuntimeMode::Reference` keeps the
    /// per-NF trait-object path (the reference semantics), while
    /// `RuntimeMode::Fused` compiles each server subgroup into a fused
    /// batch-sweep segment. Both modes are bit-identical in observable
    /// behaviour (enforced by `tests/fused_equivalence.rs`); fused trades
    /// vtable dispatch and repeated header parses for a static-dispatch
    /// sweep.
    pub fn build_with_mode(
        problem: &PlacementProblem,
        placement: &EvaluatedPlacement,
        mode: RuntimeMode,
    ) -> Result<Testbed, BuildError> {
        let deployment = match mode {
            RuntimeMode::Reference => lemur_metacompiler::compile(problem, placement),
            RuntimeMode::Fused => lemur_metacompiler::compile_fused(problem, placement),
        }
        .map_err(|e| BuildError::Compile(e.to_string()))?;
        Testbed::build(problem, placement, deployment)
    }

    /// `(fused replicas, total replicas)` across all servers — lets tests
    /// and benches assert which runtime a testbed actually executes.
    pub fn runtime_census(&self) -> (usize, usize) {
        let mut fused = 0;
        let mut total = 0;
        for server in self.servers.iter().flatten() {
            for inst in &server.pipeline.instances {
                total += 1;
                if inst.runtime.is_fused() {
                    fused += 1;
                }
            }
        }
        (fused, total)
    }

    /// Run the workload. `specs` must be index-aligned with the problem's
    /// chains (and the chains' aggregates must match the specs' prefixes —
    /// classification happens in the generated P4).
    pub fn run(&mut self, specs: &[TrafficSpec], config: SimConfig) -> SimReport {
        self.run_with_faults(specs, config, &FaultPlan::empty(), &[])
    }

    /// Run the workload while replaying a [`FaultPlan`] and (optionally)
    /// watching per-chain SLOs. `slos` is index-aligned with the chains;
    /// an empty slice disables the guard. When enabled, the guard closes a
    /// window every `config.window_ns` of virtual time after warm-up and
    /// emits a [`TimelineEvent::SloViolation`] whenever a chain's windowed
    /// delivered rate falls below its `t_min` or its windowed mean latency
    /// exceeds its `d_max`. An empty plan with no SLOs is byte-identical
    /// to [`Testbed::run`].
    pub fn run_with_faults(
        &mut self,
        specs: &[TrafficSpec],
        config: SimConfig,
        plan: &FaultPlan,
        slos: &[Option<Slo>],
    ) -> SimReport {
        self.run_supervised(specs, config, plan, slos, &mut NoopHook)
    }

    /// [`Testbed::run_with_faults`] plus a live control plane: `hook` is
    /// called back at guard-window closes and fault applications and may
    /// stage a transactional reconfiguration ([`ControlAction::StageCommit`]).
    /// The engine then emits [`TimelineEvent::DrainStart`], lets the old
    /// epoch run for the drain window, and atomically swaps the staged
    /// configuration in — dropping whatever is still in flight as
    /// [`DropReason::Reconfig`] (the update-time-loss metric) in sorted
    /// packet-id order, so supervised runs stay bit-for-bit reproducible.
    pub fn run_supervised(
        &mut self,
        specs: &[TrafficSpec],
        config: SimConfig,
        plan: &FaultPlan,
        slos: &[Option<Slo>],
        hook: &mut dyn ControlHook,
    ) -> SimReport {
        assert_eq!(specs.len(), self.n_chains, "one spec per chain");
        let sources: Vec<PacketSource> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                PacketSource::Steady(ChainSource::new(
                    s.clone(),
                    config.seed.wrapping_add(i as u64),
                ))
            })
            .collect();
        let offered: Vec<f64> = specs.iter().map(|s| s.offered_bps).collect();
        self.run_internal(sources, None, &offered, config, plan, slos, hook)
    }

    /// Run a flow-level [`Scenario`] instead of steady-rate sources.
    /// `specs` supplies each chain's classifier prefix and frame size
    /// (flow packets are built inside the chain's `src_prefix`); the
    /// scenario's horizon must equal `config.warmup_s + config.duration_s`
    /// so the analytic tail's window grid lines up with the SLO guard's.
    ///
    /// [`HybridMode::PacketLevel`] materializes every flow — the exact
    /// reference. [`HybridMode::Hybrid`] materializes heavy hitters and
    /// charges the long tail analytically per guard window (see the
    /// module docs of [`crate::flowsim`]).
    pub fn run_scenario(
        &mut self,
        scenario: &Scenario,
        specs: &[TrafficSpec],
        config: SimConfig,
        mode: &HybridMode,
    ) -> Result<SimReport, ScenarioError> {
        self.run_scenario_supervised(
            scenario,
            specs,
            config,
            &FaultPlan::empty(),
            &[],
            mode,
            &mut NoopHook,
        )
    }

    /// [`Testbed::run_scenario`] with faults, SLOs, and a control hook —
    /// the hybrid counterpart of [`Testbed::run_supervised`]. Guard
    /// windows close on the same grid in both modes; in hybrid mode each
    /// closing window has its analytic-tail cell applied first, so the
    /// [`WindowSample`]s the hook sees (and any SLO violations) include
    /// tail mass.
    #[allow(clippy::too_many_arguments)]
    pub fn run_scenario_supervised(
        &mut self,
        scenario: &Scenario,
        specs: &[TrafficSpec],
        config: SimConfig,
        plan: &FaultPlan,
        slos: &[Option<Slo>],
        mode: &HybridMode,
        hook: &mut dyn ControlHook,
    ) -> Result<SimReport, ScenarioError> {
        if let HybridMode::Hybrid(hc) = mode {
            hc.validate()?;
        }
        assert_eq!(scenario.n_chains, self.n_chains, "one chain load per chain");
        assert_eq!(specs.len(), self.n_chains, "one spec per chain");
        let horizon_ns = ((config.warmup_s + config.duration_s) * 1e9) as u64;
        assert_eq!(
            scenario.horizon_ns, horizon_ns,
            "scenario horizon must equal warmup_s + duration_s"
        );
        let warmup_ns = (config.warmup_s * 1e9) as u64;
        let frame_bytes: Vec<u64> = specs.iter().map(|s| (s.payload_len + 42) as u64).collect();
        // Report the *realized* offered load, not a nominal rate.
        let horizon_s = scenario.horizon_ns as f64 / 1e9;
        let mut offered = vec![0f64; self.n_chains];
        for f in &scenario.flows {
            offered[f.chain] += (f.packets * frame_bytes[f.chain] * 8) as f64 / horizon_s;
        }
        let theta = match mode {
            HybridMode::PacketLevel => 0,
            HybridMode::Hybrid(hc) => hc.heavy_min_packets,
        };
        let sources: Vec<PacketSource> = specs
            .iter()
            .enumerate()
            .map(|(ci, s)| {
                PacketSource::Flows(FlowPacketSource::new(
                    scenario,
                    ci,
                    |f| f.size_packets >= theta,
                    s.src_prefix,
                    s.payload_len,
                ))
            })
            .collect();
        let tail = match mode {
            HybridMode::PacketLevel => None,
            HybridMode::Hybrid(hc) => Some(TailState {
                plan: scenario.tail_plan(
                    hc.heavy_min_packets,
                    warmup_ns,
                    config.window_ns.max(1),
                    &frame_bytes,
                ),
                frame_bytes,
                capacity_bps: hc.capacity_bps.clone(),
                backlog: vec![0; self.n_chains],
                buffer_packets: hc.queue_buffer_packets,
                next_window: 0,
                warmup_applied: false,
            }),
        };
        Ok(self.run_internal(sources, tail, &offered, config, plan, slos, hook))
    }

    /// Aggregate observables of every server-resident NF instance as
    /// `(chain, node, replica, kind, observables)` in deterministic
    /// `(chain, node, replica)` order — packet-path state and applied
    /// tail aggregates combined. NAT tables offloaded to the ToR are not
    /// included (the tail sweep doesn't reach them either, so the two
    /// views stay comparable).
    pub fn nf_observables(&self) -> Vec<(usize, usize, usize, NfKind, AggregateObservables)> {
        let mut out = Vec::with_capacity(self.nf_index.len());
        for loc in &self.nf_index {
            let Some(Some(srv)) = self.servers.get(loc.server) else {
                continue;
            };
            let Some(inst) = srv.pipeline.instances.get(loc.inst_idx) else {
                continue;
            };
            if let Some(obs) = inst.runtime.nf_observables(loc.nf_idx) {
                out.push((loc.chain, loc.node.0, loc.replica, loc.kind, obs));
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn run_internal(
        &mut self,
        mut sources: Vec<PacketSource>,
        mut tail: Option<TailState>,
        offered_bps: &[f64],
        config: SimConfig,
        plan: &FaultPlan,
        slos: &[Option<Slo>],
        hook: &mut dyn ControlHook,
    ) -> SimReport {
        assert_eq!(sources.len(), self.n_chains, "one source per chain");
        assert!(
            slos.is_empty() || slos.len() == self.n_chains,
            "SLO guard needs one (optional) SLO per chain"
        );
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x1e307);
        let horizon_ns = ((config.warmup_s + config.duration_s) * 1e9) as u64;
        let warmup_ns = (config.warmup_s * 1e9) as u64;
        let mut heap: BinaryHeap<Reverse<(u64, u64, Hop)>> = BinaryHeap::new();
        let mut packets: HashMap<u64, SimPacket> = HashMap::new();
        // Packet ids start at 1: id 0 is reserved for fault events so a
        // fault at the same instant as a packet hop applies first.
        let mut next_id: u64 = 1;
        // Event ids double as FIFO tie-breakers; Hop carried inline except
        // packet identity which rides in the id→packet map keyed by the
        // event's second component.
        // (One packet = one in-flight event at a time.)
        for (ci, src) in sources.iter().enumerate() {
            heap.push(Reverse((
                src.peek_time(),
                u64::MAX - ci as u64,
                Hop::Inject(ci),
            )));
        }
        for (fi, ev) in plan.events().iter().enumerate() {
            if ev.at_ns < horizon_ns {
                heap.push(Reverse((ev.at_ns, 0, Hop::Fault(fi))));
            }
        }
        // One pacemaker tick per guard window (chained as they pop), so
        // window closes — and the control hook's view of `now` — never
        // depend on packet traffic existing. Window accounting is
        // span-based, so runs that already had packet events are
        // unchanged by the extra no-op pops.
        let first_tick = warmup_ns + config.window_ns.max(1);
        if (!slos.is_empty() || tail.is_some()) && first_tick <= horizon_ns {
            heap.push(Reverse((first_tick, 0, Hop::WindowTick)));
        }
        let mut fault_state = FaultState::healthy(self.servers.len());
        let mut timeline: Vec<TimelineEvent> = Vec::new();
        let mut ledger = ConservationLedger::default();

        let mut stats: Vec<ChainStats> = offered_bps
            .iter()
            .map(|&o| ChainStats {
                offered_bps: o,
                ..Default::default()
            })
            .collect();
        let mut latency_sum = vec![0f64; self.n_chains];
        // Latency denominators are tracked separately from delivered
        // counts: analytic-tail deliveries add packets but no latency
        // samples, and must not dilute the mean.
        let mut latency_packets = vec![0u64; self.n_chains];

        // Epoch state for live reconfiguration.
        let mut epoch: u64 = 0;
        let mut pending_swap: Option<Box<StagedConfig>> = None;
        let mut admitted: Vec<bool> = vec![true; self.n_chains];
        // Tail admission control (ladder rung 1): per-chain junk denial,
        // flipped by ControlAction::SetTailAdmission without an epoch swap.
        let mut deny_junk: Vec<bool> = vec![false; self.n_chains];
        // The guard bounds are swappable (a commit replaces them so shed
        // chains stop being flagged), so keep a local copy.
        let mut slos_live: Vec<Option<Slo>> = slos.to_vec();

        // SLO-guard window state. Windows also close (without SLO checks)
        // when an analytic tail is attached: its cells are applied at
        // window boundaries, so the grid must advance.
        let guard_on = !slos.is_empty();
        let windows_on = guard_on || tail.is_some();
        let window_ns = config.window_ns.max(1);
        let mut window_acc: Vec<WindowAcc> = vec![WindowAcc::default(); self.n_chains];
        let mut window_start = warmup_ns;
        let mut windows: Vec<WindowSample> = Vec::new();
        fn close_window(
            end_ns: u64,
            start_ns: u64,
            acc: &mut [WindowAcc],
            backlog: &[u64],
            windows: &mut Vec<WindowSample>,
            timeline: &mut Vec<TimelineEvent>,
            slos: &[Option<Slo>],
        ) {
            let span_s = (end_ns - start_ns) as f64 / 1e9;
            for (ci, a) in acc.iter_mut().enumerate() {
                let delivered_bps = if span_s > 0.0 { a.bits / span_s } else { 0.0 };
                let mean_latency_ns = if a.lat_packets > 0 {
                    a.lat_sum / a.lat_packets as f64
                } else {
                    0.0
                };
                windows.push(WindowSample {
                    start_ns,
                    end_ns,
                    chain: ci,
                    delivered_bps,
                    delivered_packets: a.packets,
                    dropped_packets: a.drops,
                    mean_latency_ns,
                    arrived_packets: a.arrivals,
                    junk_packets: a.junk,
                    backlog_packets: backlog.get(ci).copied().unwrap_or(0),
                });
                if let Some(Some(slo)) = slos.get(ci) {
                    if delivered_bps < slo.t_min_bps {
                        timeline.push(TimelineEvent::SloViolation {
                            at_ns: end_ns,
                            chain: ci,
                            kind: ViolationKind::RateBelowMin,
                            observed: delivered_bps,
                            bound: slo.t_min_bps,
                        });
                    }
                    if let Some(d_max) = slo.d_max_ns {
                        if a.lat_packets > 0 && mean_latency_ns > d_max {
                            timeline.push(TimelineEvent::SloViolation {
                                at_ns: end_ns,
                                chain: ci,
                                kind: ViolationKind::LatencyAboveMax,
                                observed: mean_latency_ns,
                                bound: d_max,
                            });
                        }
                    }
                }
                *a = WindowAcc::default();
            }
        }

        // Apply a hook's verdict: stage at most one pending swap, or flip
        // tail admission control in place.
        macro_rules! handle_action {
            ($action:expr, $now:expr) => {
                match $action {
                    ControlAction::Continue => {}
                    ControlAction::SetTailAdmission { deny_junk: dj } => {
                        debug_assert_eq!(dj.len(), self.n_chains);
                        timeline.push(TimelineEvent::AdmissionChange {
                            at_ns: $now,
                            deny_junk: dj.clone(),
                        });
                        deny_junk = dj;
                    }
                    ControlAction::StageCommit { staged, drain_ns } => {
                        if pending_swap.is_none() {
                            debug_assert_eq!(staged.admitted.len(), self.n_chains);
                            debug_assert_eq!(staged.slos.len(), self.n_chains);
                            timeline.push(TimelineEvent::DrainStart {
                                at_ns: $now,
                                epoch,
                                rollback: staged.rollback,
                            });
                            heap.push(Reverse(($now + drain_ns, 0, Hop::EpochSwap)));
                            pending_swap = Some(staged);
                        }
                    }
                }
            };
        }

        while let Some(Reverse((now, id, hop))) = heap.pop() {
            // Close any SLO-guard windows that ended before this event.
            if windows_on {
                while window_start + window_ns <= now && window_start + window_ns <= horizon_ns {
                    let end = window_start + window_ns;
                    let w0 = windows.len();
                    let t0 = timeline.len();
                    // The closing window's analytic-tail cell lands first
                    // so the sample (and the hook) sees heavy + tail mass.
                    if let Some(ts) = tail.as_mut() {
                        advance_tail(
                            ts,
                            window_start,
                            end,
                            &mut self.servers,
                            &self.nf_index,
                            &admitted,
                            &deny_junk,
                            &mut stats,
                            &mut window_acc,
                            &mut ledger,
                        );
                    }
                    close_window(
                        end,
                        window_start,
                        &mut window_acc,
                        tail.as_ref().map(|t| t.backlog.as_slice()).unwrap_or(&[]),
                        &mut windows,
                        &mut timeline,
                        &slos_live,
                    );
                    window_start = end;
                    let action = hook.on_window(end, &windows[w0..], &timeline[t0..]);
                    handle_action!(action, now);
                }
            }
            match hop {
                Hop::Fault(fi) => {
                    let ev = &plan.events()[fi];
                    match ev.kind {
                        FaultKind::LinkDown { server } => {
                            if let Some(up) = fault_state.link_up.get_mut(server) {
                                *up = false;
                            }
                        }
                        FaultKind::LinkUp { server } => {
                            if let Some(up) = fault_state.link_up.get_mut(server) {
                                *up = true;
                            }
                        }
                        FaultKind::CoreFail { server, core } => {
                            fault_state.failed_cores.insert((server, core));
                        }
                        FaultKind::NfCrash { subgroup } => {
                            fault_state.crashed_subgroups.insert(subgroup);
                        }
                        FaultKind::NfRecover { subgroup } => {
                            fault_state.crashed_subgroups.remove(&subgroup);
                        }
                        FaultKind::ProfileDrift { subgroup, factor } => {
                            if let Some(c) = self.subgroup_cycles.get_mut(subgroup) {
                                *c *= factor;
                            }
                        }
                        FaultKind::TrafficSurge { chain, factor } => {
                            if let Some(src) = sources.get_mut(chain) {
                                src.set_rate_factor(factor);
                            }
                        }
                        FaultKind::MigrationFault { fault } => {
                            // Arms the next epoch swap; nothing happens to
                            // steady-state traffic now.
                            fault_state.armed_migration_faults.push(fault);
                        }
                    }
                    timeline.push(TimelineEvent::Fault {
                        at_ns: now,
                        kind: ev.kind.clone(),
                    });
                    let action = hook.on_fault(now, &ev.kind);
                    handle_action!(action, now);
                }
                Hop::Inject(ci) => {
                    let Some((t, buf)) = sources[ci].next_packet() else {
                        continue;
                    };
                    debug_assert_eq!(t, now);
                    ledger.injected += 1;
                    if now >= warmup_ns && now < horizon_ns {
                        // Arrival accounting happens before any admission
                        // decision — identically in packet-level and hybrid
                        // runs, so θ=0 equivalence holds field-for-field.
                        window_acc[ci].arrivals += 1;
                    }
                    if !admitted[ci] {
                        // The chain is shed in the current epoch: refuse
                        // admission. The source still advances so the
                        // arrival process is identical whether or not
                        // (and when) the chain is re-admitted.
                        ledger.record_drop(DropReason::Shed);
                        if now >= warmup_ns && now < horizon_ns {
                            stats[ci].record_drop(DropReason::Shed);
                            window_acc[ci].drops += 1;
                        }
                    } else {
                        let pid = next_id;
                        next_id += 1;
                        packets.insert(
                            pid,
                            SimPacket {
                                ingress_bits: buf.len() as u64 * 8,
                                buf,
                                chain: ci,
                                t_in: now,
                                hops: 0,
                            },
                        );
                        heap.push(Reverse((now, pid, Hop::AtTor)));
                    }
                    if sources[ci].peek_time() < horizon_ns {
                        heap.push(Reverse((
                            sources[ci].peek_time(),
                            u64::MAX - ci as u64,
                            Hop::Inject(ci),
                        )));
                    }
                }
                Hop::Deliver => {
                    // A stale event (its packet was dropped at an epoch
                    // swap) is skipped, not a panic: post-swap heaps
                    // legitimately hold hops for packets that no longer
                    // exist.
                    let Some(p) = packets.remove(&id) else {
                        continue;
                    };
                    ledger.delivered += 1;
                    // Egress-rate accounting: count packets *exiting* within
                    // the measurement window, so measured throughput is a
                    // true rate even before queues reach steady state.
                    if now >= warmup_ns && now < horizon_ns {
                        let s = &mut stats[p.chain];
                        s.delivered_packets += 1;
                        s.delivered_bps += p.ingress_bits as f64; // finalized below
                        let lat = (now - p.t_in) as f64;
                        latency_sum[p.chain] += lat;
                        latency_packets[p.chain] += 1;
                        s.max_latency_ns = s.max_latency_ns.max(lat);
                        let w = &mut window_acc[p.chain];
                        w.bits += p.ingress_bits as f64;
                        w.packets += 1;
                        w.lat_sum += lat;
                        w.lat_packets += 1;
                    }
                }
                Hop::AtTor => {
                    let Some(p) = packets.get_mut(&id) else {
                        continue;
                    };
                    p.hops += 1;
                    if p.hops > MAX_HOPS {
                        drop_packet(
                            &mut packets,
                            &mut stats,
                            &mut window_acc,
                            &mut ledger,
                            id,
                            DropReason::MaxHops,
                            warmup_ns,
                            horizon_ns,
                        );
                        continue;
                    }
                    let bits = p.buf.len() as f64 * 8.0;
                    let verdict = self.switch.process(&mut p.buf);
                    let after_pipe = now
                        + self
                            .pisa
                            .pipeline_latency_ns(self.switch.assignment().num_stages_used.max(1))
                            as u64;
                    if verdict.dropped {
                        drop_packet(
                            &mut packets,
                            &mut stats,
                            &mut window_acc,
                            &mut ledger,
                            id,
                            DropReason::Verdict,
                            warmup_ns,
                            horizon_ns,
                        );
                        continue;
                    }
                    match verdict.egress_port {
                        None => drop_packet(
                            &mut packets,
                            &mut stats,
                            &mut window_acc,
                            &mut ledger,
                            id,
                            DropReason::Verdict,
                            warmup_ns,
                            horizon_ns,
                        ),
                        Some(0) => {
                            // Out port: serialize on the ToR uplink.
                            let ser = (bits / self.tor_rate_bps * 1e9) as u64;
                            match self.tor_out.serve(after_pipe, ser, config.max_queue_ns) {
                                Some(done) => {
                                    heap.push(Reverse((done + PROP_NS, id, Hop::Deliver)))
                                }
                                None => drop_packet(
                                    &mut packets,
                                    &mut stats,
                                    &mut window_acc,
                                    &mut ledger,
                                    id,
                                    DropReason::QueueOverflow,
                                    warmup_ns,
                                    horizon_ns,
                                ),
                            }
                        }
                        Some(port) if (1..100).contains(&port) => {
                            let s = (port - 1) as usize;
                            if s >= self.tor_to_server.len() {
                                drop_packet(
                                    &mut packets,
                                    &mut stats,
                                    &mut window_acc,
                                    &mut ledger,
                                    id,
                                    DropReason::Verdict,
                                    warmup_ns,
                                    horizon_ns,
                                );
                                continue;
                            }
                            if !fault_state.link_is_up(s) {
                                drop_packet(
                                    &mut packets,
                                    &mut stats,
                                    &mut window_acc,
                                    &mut ledger,
                                    id,
                                    DropReason::Fault,
                                    warmup_ns,
                                    horizon_ns,
                                );
                                continue;
                            }
                            let ser = (bits / self.link_bps[s] * 1e9) as u64;
                            match self.tor_to_server[s].serve(after_pipe, ser, config.max_queue_ns)
                            {
                                Some(done) => {
                                    heap.push(Reverse((done + PROP_NS, id, Hop::AtServer(s))))
                                }
                                None => drop_packet(
                                    &mut packets,
                                    &mut stats,
                                    &mut window_acc,
                                    &mut ledger,
                                    id,
                                    DropReason::QueueOverflow,
                                    warmup_ns,
                                    horizon_ns,
                                ),
                            }
                        }
                        Some(port) => {
                            let n = (port - 100) as usize;
                            let Some(Some(nic)) = self.nics.get_mut(n) else {
                                drop_packet(
                                    &mut packets,
                                    &mut stats,
                                    &mut window_acc,
                                    &mut ledger,
                                    id,
                                    DropReason::Verdict,
                                    warmup_ns,
                                    horizon_ns,
                                );
                                continue;
                            };
                            let ser = (bits / nic.link_bps * 1e9) as u64;
                            match nic.link_in.serve(after_pipe, ser, config.max_queue_ns) {
                                Some(done) => {
                                    heap.push(Reverse((done + PROP_NS, id, Hop::AtNic(n))))
                                }
                                None => drop_packet(
                                    &mut packets,
                                    &mut stats,
                                    &mut window_acc,
                                    &mut ledger,
                                    id,
                                    DropReason::QueueOverflow,
                                    warmup_ns,
                                    horizon_ns,
                                ),
                            }
                        }
                    }
                }
                Hop::AtServer(s) => {
                    let outcome = {
                        let Some(server) = self.servers[s].as_mut() else {
                            drop_packet(
                                &mut packets,
                                &mut stats,
                                &mut window_acc,
                                &mut ledger,
                                id,
                                DropReason::Verdict,
                                warmup_ns,
                                horizon_ns,
                            );
                            continue;
                        };
                        let Some(p) = packets.get_mut(&id) else {
                            continue;
                        };
                        server_hop(
                            server,
                            s,
                            p,
                            now,
                            &config,
                            &self.subgroup_cycles,
                            &fault_state,
                            &mut rng,
                        )
                    };
                    match outcome {
                        Ok(done_at) => {
                            heap.push(Reverse((done_at, id, Hop::ServerEgress(s))));
                        }
                        Err(reason) => drop_packet(
                            &mut packets,
                            &mut stats,
                            &mut window_acc,
                            &mut ledger,
                            id,
                            reason,
                            warmup_ns,
                            horizon_ns,
                        ),
                    }
                }
                Hop::ServerEgress(s) => {
                    // Back over the server→ToR link, reserved at the moment
                    // the core actually finished.
                    let Some(p) = packets.get(&id) else { continue };
                    if !fault_state.link_is_up(s) {
                        drop_packet(
                            &mut packets,
                            &mut stats,
                            &mut window_acc,
                            &mut ledger,
                            id,
                            DropReason::Fault,
                            warmup_ns,
                            horizon_ns,
                        );
                        continue;
                    }
                    let bits = p.buf.len() as f64 * 8.0;
                    let ser = (bits / self.link_bps[s] * 1e9) as u64;
                    match self.server_to_tor[s].serve(now, ser, config.max_queue_ns) {
                        Some(done) => heap.push(Reverse((done + PROP_NS, id, Hop::AtTor))),
                        None => drop_packet(
                            &mut packets,
                            &mut stats,
                            &mut window_acc,
                            &mut ledger,
                            id,
                            DropReason::QueueOverflow,
                            warmup_ns,
                            horizon_ns,
                        ),
                    }
                }
                Hop::AtNic(n) => {
                    // Process on the NIC, then reserve its egress link —
                    // both under one borrow so no post-hoc re-lookup (and
                    // no unwrap) is needed.
                    let outcome = {
                        let Some(nic) = self.nics[n].as_mut() else {
                            drop_packet(
                                &mut packets,
                                &mut stats,
                                &mut window_acc,
                                &mut ledger,
                                id,
                                DropReason::Verdict,
                                warmup_ns,
                                horizon_ns,
                            );
                            continue;
                        };
                        let Some(p) = packets.get_mut(&id) else {
                            continue;
                        };
                        nic_hop(nic, p, now, &config).map(|done_at| {
                            let bits = p.buf.len() as f64 * 8.0;
                            let ser = (bits / nic.link_bps * 1e9) as u64;
                            nic.link_out.serve(done_at, ser, config.max_queue_ns)
                        })
                    };
                    match outcome {
                        Ok(Some(done)) => heap.push(Reverse((done + PROP_NS, id, Hop::AtTor))),
                        Ok(None) => drop_packet(
                            &mut packets,
                            &mut stats,
                            &mut window_acc,
                            &mut ledger,
                            id,
                            DropReason::QueueOverflow,
                            warmup_ns,
                            horizon_ns,
                        ),
                        Err(reason) => drop_packet(
                            &mut packets,
                            &mut stats,
                            &mut window_acc,
                            &mut ledger,
                            id,
                            reason,
                            warmup_ns,
                            horizon_ns,
                        ),
                    }
                }
                Hop::WindowTick => {
                    // The catch-up loop above already closed the window
                    // this tick paces; just chain the next one.
                    let next = now + window_ns;
                    if next <= horizon_ns {
                        heap.push(Reverse((next, 0, Hop::WindowTick)));
                    }
                }
                Hop::EpochSwap => {
                    let Some(mut staged) = pending_swap.take().map(|b| *b) else {
                        continue;
                    };
                    // State migration runs inside the drain window:
                    // snapshot the old epoch, apply any armed migration
                    // faults to the transfer, restore into the staged
                    // configuration, and verify. A failure aborts the
                    // whole swap — the old epoch stays live with its
                    // state intact (the rollback to last-known-good).
                    let mut transfer = capture_state(&self.servers, &self.nf_index);
                    let snapshots = transfer.declared as u64;
                    let armed = std::mem::take(&mut fault_state.armed_migration_faults);
                    for fault in &armed {
                        transfer.apply_fault(*fault);
                    }
                    let migration = if armed.contains(&MigrationFaultKind::ControlCrash) {
                        Err(MigrationError::ControlCrash)
                    } else if armed.contains(&MigrationFaultKind::RestoreTimeout) {
                        Err(MigrationError::RestoreTimeout)
                    } else {
                        apply_transfer(&transfer, &mut staged)
                    };
                    let mut mig_stats = match migration {
                        Ok(s) => s,
                        Err(error) => {
                            timeline.push(TimelineEvent::MigrationAborted {
                                at_ns: now,
                                epoch,
                                error: error.clone(),
                            });
                            hook.on_migration_failed(now, &error);
                            continue;
                        }
                    };
                    mig_stats.snapshots = snapshots;
                    // Phase two of the commit: anything still in flight
                    // missed the drain window and is charged to the swap
                    // (update-time loss). Sorted id order keeps the drop
                    // sequence — and thus the report — deterministic.
                    let mut stale: Vec<u64> = packets.keys().copied().collect();
                    stale.sort_unstable();
                    let packets_lost = stale.len() as u64;
                    for sid in stale {
                        drop_packet(
                            &mut packets,
                            &mut stats,
                            &mut window_acc,
                            &mut ledger,
                            sid,
                            DropReason::Reconfig,
                            warmup_ns,
                            horizon_ns,
                        );
                    }
                    // Atomic swap: compute state is replaced, physical
                    // link stations (and their backlog) persist.
                    self.switch = staged.switch;
                    self.servers = staged.servers;
                    self.nics = staged.nics;
                    self.subgroup_cycles = staged.subgroup_cycles;
                    self.nf_index = staged.nf_index;
                    self.tor_nat = staged.tor_nat;
                    admitted = staged.admitted;
                    slos_live = staged.slos;
                    epoch += 1;
                    timeline.push(TimelineEvent::Migration {
                        at_ns: now,
                        epoch,
                        stats: mig_stats,
                    });
                    timeline.push(TimelineEvent::EpochCommit {
                        at_ns: now,
                        epoch,
                        packets_lost,
                        rollback: staged.rollback,
                    });
                    hook.on_commit(now, epoch, packets_lost, staged.rollback);
                }
            }
        }

        // Flush any windows still open at the horizon. (No hook calls:
        // the run is over, nothing can be staged anymore.)
        if windows_on {
            while window_start + window_ns <= horizon_ns {
                let end = window_start + window_ns;
                if let Some(ts) = tail.as_mut() {
                    advance_tail(
                        ts,
                        window_start,
                        end,
                        &mut self.servers,
                        &self.nf_index,
                        &admitted,
                        &deny_junk,
                        &mut stats,
                        &mut window_acc,
                        &mut ledger,
                    );
                }
                close_window(
                    end,
                    window_start,
                    &mut window_acc,
                    tail.as_ref().map(|t| t.backlog.as_slice()).unwrap_or(&[]),
                    &mut windows,
                    &mut timeline,
                    &slos_live,
                );
                window_start = end;
            }
        }
        // Any tail mass past the last full window (the partial `rest`
        // span) is still owed to the ledger and the chain totals.
        if let Some(ts) = tail.as_mut() {
            finish_tail(
                ts,
                &mut self.servers,
                &self.nf_index,
                &admitted,
                &deny_junk,
                &mut stats,
                &mut window_acc,
                &mut ledger,
            );
        }
        // Undrained fluid-queue backlog at the horizon is in flight, not
        // lost: it balances the ledger exactly like packets still on the
        // wire.
        ledger.in_flight_at_end = packets.len() as u64
            + tail
                .as_ref()
                .map(|t| t.backlog.iter().sum::<u64>())
                .unwrap_or(0);

        if std::env::var("LEMUR_DBG").is_ok() {
            eprintln!(
                "END tor_out backlog={}us",
                self.tor_out.free_at.saturating_sub(horizon_ns) / 1000
            );
            for (s, st) in self.tor_to_server.iter().enumerate() {
                eprintln!(
                    "END tor_to_server[{s}] backlog={}us",
                    st.free_at.saturating_sub(horizon_ns) / 1000
                );
            }
            for (s, st) in self.server_to_tor.iter().enumerate() {
                eprintln!(
                    "END server_to_tor[{s}] backlog={}us",
                    st.free_at.saturating_sub(horizon_ns) / 1000
                );
            }
            for (s, srv) in self.servers.iter().enumerate() {
                if let Some(srv) = srv {
                    eprintln!(
                        "END demux[{s}] backlog={}us unmatched={}",
                        srv.demux.free_at.saturating_sub(horizon_ns) / 1000,
                        srv.pipeline.demux.unmatched
                    );
                    let mut cores: Vec<_> = srv.cores.iter().collect();
                    cores.sort_by_key(|(c, _)| **c);
                    for (c, st) in cores {
                        eprintln!(
                            "END core[{c}] backlog={}us",
                            st.free_at.saturating_sub(horizon_ns) / 1000
                        );
                    }
                    for inst in &srv.pipeline.instances {
                        eprintln!(
                            "END inst sg{} r{} core{} in={} nf_drops={}",
                            inst.subgroup_idx,
                            inst.replica,
                            inst.core,
                            inst.runtime.packets_in(),
                            inst.runtime.packets_dropped()
                        );
                    }
                }
            }
        }
        // Finalize rates. The latency mean divides by the count of
        // *latency-carrying* deliveries (identical to delivered_packets
        // in pure packet-level runs).
        for (ci, s) in stats.iter_mut().enumerate() {
            s.delivered_bps /= config.duration_s;
            if latency_packets[ci] > 0 {
                s.mean_latency_ns = latency_sum[ci] / latency_packets[ci] as f64;
            }
        }
        SimReport {
            per_chain: stats,
            duration_s: config.duration_s,
            timeline,
            windows,
            ledger,
        }
    }
}

/// Compiled simulation state shared by [`Testbed::build`] and
/// [`StagedConfig::build`].
struct BuiltParts {
    switch: Switch,
    pisa: PisaModel,
    servers: Vec<Option<ServerSim>>,
    nics: Vec<Option<NicSim>>,
    subgroup_cycles: Vec<f64>,
    nf_index: Vec<NfLocator>,
    tor_nat: Vec<TorNatTarget>,
}

fn build_parts(
    problem: &PlacementProblem,
    placement: &EvaluatedPlacement,
    deployment: Deployment,
) -> Result<BuiltParts, BuildError> {
    let pisa = match &problem.topology.tor {
        Tor::Pisa(m) => *m,
        Tor::OpenFlow { .. } => {
            return Err(BuildError::UnsupportedTor(
                "OpenFlow testbeds use OfTestbed (see exp_fig3c)".to_string(),
            ))
        }
    };
    let mut switch = Switch::new(deployment.p4.program.clone(), pisa)
        .map_err(|e| BuildError::SwitchLoad(e.to_string()))?;
    deployment.p4.install(&mut switch);
    // NAT nodes synthesized onto the ToR are migration targets: their
    // (lookup, rewrite) table pair receives restored bindings as entries.
    let tor_nat: Vec<TorNatTarget> = deployment
        .p4
        .nf_tables
        .iter()
        .filter(|(_, _, kind, tables)| *kind == lemur_nf::NfKind::Nat && tables.len() == 2)
        .map(|(chain, node, _, tables)| TorNatTarget {
            chain: *chain,
            node: *node,
            lookup: tables[0],
            rewrite: tables[1],
        })
        .collect();

    let n_servers = problem.topology.servers.len();
    let mut servers: Vec<Option<ServerSim>> = (0..n_servers).map(|_| None).collect();
    for pipe in deployment.bess {
        let s = pipe.server;
        let spec = problem.topology.servers[s].clone();
        let nic_socket = spec
            .nics
            .first()
            .map(|n| n.socket)
            .unwrap_or(lemur_bess::SocketId(0));
        servers[s] = Some(ServerSim {
            pipeline: pipe,
            demux: Station::default(),
            cores: HashMap::new(),
            clock_hz: spec.clock_hz,
            same_socket_factor: 1.0 / spec.cross_socket_penalty,
            nic_socket,
            spec,
        });
    }
    let mut nics: Vec<Option<NicSim>> = (0..problem.topology.smartnics.len())
        .map(|_| None)
        .collect();
    for np in deployment.ebpf {
        let spec = &problem.topology.smartnics[np.nic];
        nics[np.nic] = Some(NicSim {
            program: np.program,
            proc: Station::default(),
            link_in: Station::default(),
            link_out: Station::default(),
            clock_hz: spec.clock_hz,
            link_bps: spec.rate_bps,
        });
    }
    let subgroup_cycles = placement
        .subgroups
        .iter()
        .map(|sg| {
            let mut c = sg.cycles;
            if sg.cores > 1 {
                c += lemur_placer::REPLICATION_OVERHEAD_CYCLES;
            }
            c
        })
        .collect();
    // Index every NF instance by its placement-independent identity
    // `(chain, node, replica)` so state captured from one epoch can be
    // aimed at the matching instance of the next. Sorted order makes the
    // capture (and thus the whole migration) deterministic.
    let mut nf_index: Vec<NfLocator> = Vec::new();
    for (s, srv) in servers.iter().enumerate() {
        let Some(srv) = srv else { continue };
        for (inst_idx, inst) in srv.pipeline.instances.iter().enumerate() {
            let Some(sg) = placement.subgroups.get(inst.subgroup_idx) else {
                continue;
            };
            for (nf_idx, node) in sg.nodes.iter().enumerate() {
                let Some(kind) = inst.runtime.nf_kind(nf_idx) else {
                    continue;
                };
                nf_index.push(NfLocator {
                    chain: sg.chain,
                    node: *node,
                    replica: inst.replica,
                    kind,
                    server: s,
                    inst_idx,
                    nf_idx,
                });
            }
        }
    }
    nf_index.sort_by_key(|l| (l.chain, l.node, l.replica));
    Ok(BuiltParts {
        switch,
        pisa,
        servers,
        nics,
        subgroup_cycles,
        nf_index,
        tor_nat,
    })
}

/// Snapshot every state-bearing NF of the live configuration, in the
/// deterministic `(chain, node, replica)` order of the index. NFs that
/// export no state (stateless kinds) are simply absent from the transfer.
fn capture_state(servers: &[Option<ServerSim>], nf_index: &[NfLocator]) -> StateTransfer {
    let mut records = Vec::new();
    for loc in nf_index {
        let Some(Some(srv)) = servers.get(loc.server) else {
            continue;
        };
        let Some(inst) = srv.pipeline.instances.get(loc.inst_idx) else {
            continue;
        };
        if let Some(snap) = inst.runtime.snapshot_nf(loc.nf_idx) {
            records.push(StateRecord {
                chain: loc.chain,
                node: loc.node,
                replica: loc.replica,
                kind: loc.kind,
                bytes: snap.encode(),
            });
        }
    }
    StateTransfer::new(records)
}

/// Restore a transfer into a staged configuration, verifying integrity at
/// every step. Server-resident targets get a byte-exact restore checked
/// by state fingerprint; NAT nodes that moved onto the ToR have their
/// bindings re-expressed as P4 table entries; records whose node has no
/// target in the new placement (e.g. a shed chain) are dropped
/// deliberately. Errors leave the *live* configuration untouched — only
/// `staged`, which the caller then discards.
fn apply_transfer(
    transfer: &StateTransfer,
    staged: &mut StagedConfig,
) -> Result<MigrationStats, MigrationError> {
    if transfer.records.len() != transfer.declared {
        return Err(MigrationError::Truncated {
            expected: transfer.declared,
            got: transfer.records.len(),
        });
    }
    let mut stats = MigrationStats::default();
    for rec in &transfer.records {
        let snap = decode_record(rec)?;
        let target = staged
            .nf_index
            .iter()
            .find(|l| l.chain == rec.chain && l.node == rec.node && l.replica == rec.replica)
            .copied();
        if let Some(loc) = target {
            let Some(Some(srv)) = staged.servers.get_mut(loc.server) else {
                stats.dropped += 1;
                continue;
            };
            let Some(inst) = srv.pipeline.instances.get_mut(loc.inst_idx) else {
                stats.dropped += 1;
                continue;
            };
            inst.runtime
                .restore_nf(loc.nf_idx, &snap)
                .map_err(|source| MigrationError::Decode {
                    chain: rec.chain,
                    node: rec.node,
                    replica: rec.replica,
                    source,
                })?;
            if inst.runtime.nf_state_fingerprint(loc.nf_idx) != snap.fingerprint() {
                return Err(MigrationError::FingerprintMismatch {
                    chain: rec.chain,
                    node: rec.node,
                    replica: rec.replica,
                });
            }
            stats.restored += 1;
        } else if let Some(tor) = staged
            .tor_nat
            .iter()
            .find(|t| t.chain == rec.chain && t.node == rec.node)
            .copied()
        {
            // Cross-platform move: the NAT now runs as ToR tables, so its
            // bindings become match-action entries.
            let (ext_ip, bindings) =
                lemur_nf::nat::Nat::decode_bindings(&snap).map_err(|source| {
                    MigrationError::Decode {
                        chain: rec.chain,
                        node: rec.node,
                        replica: rec.replica,
                        source,
                    }
                })?;
            for (tid, entry) in nat_binding_entries(&tor, ext_ip, &bindings) {
                staged.switch.add_entry(tid, entry);
                stats.tor_entries += 1;
            }
        } else {
            stats.dropped += 1;
        }
    }
    Ok(stats)
}

/// Per-chain accumulator for one SLO-guard window.
#[derive(Debug, Default, Clone)]
struct WindowAcc {
    bits: f64,
    packets: u64,
    drops: u64,
    lat_sum: f64,
    /// Deliveries that contributed to `lat_sum` — the packet path plus,
    /// when the fluid queue is active, analytic-tail mass served through
    /// it (its Little's-law waiting time lands in `lat_sum`).
    lat_packets: u64,
    /// Arrivals before any shed/admission/capacity decision: heavy-path
    /// injects plus analytic-tail mass.
    arrivals: u64,
    /// DDoS-flagged analytic-tail arrivals (0 in packet-level runs).
    junk: u64,
}

/// Apply the tail cells owed before the guard window ending at
/// `window_end_ns` closes: the warm-up cell first (exactly once), then
/// the window's own row.
#[allow(clippy::too_many_arguments)]
fn advance_tail(
    ts: &mut TailState,
    window_start_ns: u64,
    window_end_ns: u64,
    servers: &mut [Option<ServerSim>],
    nf_index: &[NfLocator],
    admitted: &[bool],
    deny_junk: &[bool],
    stats: &mut [ChainStats],
    window_acc: &mut [WindowAcc],
    ledger: &mut ConservationLedger,
) {
    let TailState {
        plan,
        frame_bytes,
        capacity_bps,
        backlog,
        buffer_packets,
        next_window,
        warmup_applied,
    } = ts;
    if !*warmup_applied {
        *warmup_applied = true;
        apply_tail_cells(
            &plan.warmup,
            0,
            plan.warmup_ns,
            false,
            false,
            frame_bytes,
            capacity_bps,
            backlog,
            *buffer_packets,
            servers,
            nf_index,
            admitted,
            deny_junk,
            stats,
            window_acc,
            ledger,
        );
    }
    if let Some(row) = plan.windows.get(*next_window) {
        *next_window += 1;
        apply_tail_cells(
            row,
            window_start_ns,
            window_end_ns,
            true,
            true,
            frame_bytes,
            capacity_bps,
            backlog,
            *buffer_packets,
            servers,
            nf_index,
            admitted,
            deny_junk,
            stats,
            window_acc,
            ledger,
        );
    }
}

/// Charge whatever tail mass is still owed at the horizon: a never-applied
/// warm-up cell, any unreached window rows, and the final partial-window
/// `rest` span (measured, but not capacity-constrained — it is not a full
/// guard window).
#[allow(clippy::too_many_arguments)]
fn finish_tail(
    ts: &mut TailState,
    servers: &mut [Option<ServerSim>],
    nf_index: &[NfLocator],
    admitted: &[bool],
    deny_junk: &[bool],
    stats: &mut [ChainStats],
    window_acc: &mut [WindowAcc],
    ledger: &mut ConservationLedger,
) {
    let TailState {
        plan,
        frame_bytes,
        capacity_bps,
        backlog,
        buffer_packets,
        next_window,
        warmup_applied,
    } = ts;
    if !*warmup_applied {
        *warmup_applied = true;
        apply_tail_cells(
            &plan.warmup,
            0,
            plan.warmup_ns,
            false,
            false,
            frame_bytes,
            capacity_bps,
            backlog,
            *buffer_packets,
            servers,
            nf_index,
            admitted,
            deny_junk,
            stats,
            window_acc,
            ledger,
        );
    }
    while let Some(row) = plan.windows.get(*next_window) {
        let start = plan.warmup_ns + *next_window as u64 * plan.window_ns;
        *next_window += 1;
        apply_tail_cells(
            row,
            start,
            start + plan.window_ns,
            true,
            true,
            frame_bytes,
            capacity_bps,
            backlog,
            *buffer_packets,
            servers,
            nf_index,
            admitted,
            deny_junk,
            stats,
            window_acc,
            ledger,
        );
    }
    let rest_start = plan.warmup_ns + plan.windows.len() as u64 * plan.window_ns;
    if rest_start < plan.horizon_ns {
        apply_tail_cells(
            &plan.rest,
            rest_start,
            plan.horizon_ns,
            true,
            false,
            frame_bytes,
            capacity_bps,
            backlog,
            *buffer_packets,
            servers,
            nf_index,
            admitted,
            deny_junk,
            stats,
            window_acc,
            ledger,
        );
    }
}

/// Charge one span's tail cells: conservation ledger, shed, admission
/// control, the fluid queue's backlog and overflow, batched NF
/// aggregates down the chain, and delivered mass. `measured` spans
/// (inside `[warmup, horizon)`) also count toward chain stats and the
/// open guard window; `constrain` spans are charged against the
/// per-chain capacity left over by the heavy path. Tail mass above
/// capacity queues in `backlog` (bounded by `buffer_packets`, overflow
/// drops as [`DropReason::QueueOverflow`]) and its Little's-law waiting
/// time lands in the window's latency accumulators, so the SLO guard
/// sees surge-induced latency, not just loss.
#[allow(clippy::too_many_arguments)]
fn apply_tail_cells(
    cells: &[TailCell],
    span_start_ns: u64,
    span_end_ns: u64,
    measured: bool,
    constrain: bool,
    frame_bytes: &[u64],
    capacity_bps: &[f64],
    backlog: &mut [u64],
    buffer_packets: u64,
    servers: &mut [Option<ServerSim>],
    nf_index: &[NfLocator],
    admitted: &[bool],
    deny_junk: &[bool],
    stats: &mut [ChainStats],
    window_acc: &mut [WindowAcc],
    ledger: &mut ConservationLedger,
) {
    for (ci, cell) in cells.iter().enumerate() {
        if cell.is_empty() && (!constrain || backlog[ci] == 0) {
            // Zero-mass cells (with no queued carry-over) leave no
            // trace, so a hybrid run whose tail is empty stays
            // bit-identical to its packet-level twin.
            continue;
        }
        ledger.injected += cell.packets;
        if measured {
            window_acc[ci].arrivals += cell.packets;
            window_acc[ci].junk += cell.junk_packets;
        }
        if !admitted[ci] {
            // A shed chain refuses new arrivals *and* flushes whatever
            // its queue still holds — shed mass must not strand in the
            // backlog where it would read as in-flight forever.
            let shed = cell.packets + backlog[ci];
            backlog[ci] = 0;
            ledger.record_drops(DropReason::Shed, shed);
            if measured {
                stats[ci].record_drops(DropReason::Shed, shed);
                window_acc[ci].drops += shed;
            }
            continue;
        }
        // Ladder rung 1: admission control denies the DDoS-flagged junk
        // slice before it can queue (typed, exact in the ledger).
        let mut pkts = cell.packets;
        let mut new_flows = cell.new_flows;
        if deny_junk.get(ci).copied().unwrap_or(false) && cell.junk_packets > 0 {
            pkts -= cell.junk_packets;
            new_flows -= cell.junk_flows;
            ledger.record_drops(DropReason::Admission, cell.junk_packets);
            if measured {
                stats[ci].record_drops(DropReason::Admission, cell.junk_packets);
                window_acc[ci].drops += cell.junk_packets;
            }
        }
        let frame = frame_bytes[ci].max(1);
        if constrain {
            if let Some(&cap) = capacity_bps.get(ci) {
                if cap > 0.0 {
                    let span_ns = span_end_ns - span_start_ns;
                    let span_s = span_ns as f64 / 1e9;
                    // Whatever the heavy path already delivered this
                    // window has consumed its share of the budget.
                    let budget = ((cap * span_s / (frame * 8) as f64) as u64)
                        .saturating_sub(window_acc[ci].packets);
                    // Fluid M/D/1 step: last window's backlog plus this
                    // window's arrivals drain at the leftover capacity;
                    // what doesn't fit queues up to the buffer bound and
                    // overflows past it.
                    let b0 = backlog[ci];
                    let demand = b0 + pkts;
                    let served = demand.min(budget);
                    let queued_after = demand - served;
                    let over = queued_after.saturating_sub(buffer_packets);
                    if over > 0 {
                        ledger.record_drops(DropReason::QueueOverflow, over);
                        if measured {
                            stats[ci].record_drops(DropReason::QueueOverflow, over);
                            window_acc[ci].drops += over;
                        }
                    }
                    backlog[ci] = queued_after - over;
                    if measured && buffer_packets > 0 && span_ns > 0 {
                        // Little's law: total waiting time equals the
                        // integral of the queue length over the span.
                        // Q(t) is piecewise linear from b0 at slope
                        // g = λ − μ, clamped at the buffer going up and
                        // at zero going down.
                        let span = span_ns as f64;
                        let lam = pkts as f64 / span;
                        let mu = budget as f64 / span;
                        let g = lam - mu;
                        let b0f = b0 as f64;
                        let buf = buffer_packets as f64;
                        let wait = if g > 0.0 {
                            if b0f >= buf {
                                buf * span
                            } else {
                                let t_b = ((buf - b0f) / g).min(span);
                                b0f * t_b + 0.5 * g * t_b * t_b + buf * (span - t_b)
                            }
                        } else if g < 0.0 {
                            let t_e = (b0f / -g).min(span);
                            b0f * t_e - 0.5 * -g * t_e * t_e
                        } else {
                            b0f * span
                        };
                        if wait > 0.0 {
                            let w = &mut window_acc[ci];
                            w.lat_sum += wait;
                            w.lat_packets += served;
                        }
                    }
                    pkts = served;
                }
            }
        }
        // Sweep the chain's server NFs in (node, replica) order, splitting
        // each aggregate across replicas (remainder to the earliest) and
        // attenuating packet mass by each node's admitted outcome. Flow
        // pressure propagates unattenuated — refused packets don't
        // un-arrive their flows — which keeps binding counts conservative.
        let mut i = 0;
        while i < nf_index.len() {
            if nf_index[i].chain != ci {
                i += 1;
                continue;
            }
            let node = nf_index[i].node;
            let mut j = i;
            while j < nf_index.len() && nf_index[j].chain == ci && nf_index[j].node == node {
                j += 1;
            }
            let replicas = (j - i) as u64;
            let mut passed = 0u64;
            for (r, loc) in nf_index[i..j].iter().enumerate() {
                let r = r as u64;
                let share_p = pkts / replicas + u64::from(r < pkts % replicas);
                let share_f = new_flows / replicas + u64::from(r < new_flows % replicas);
                if share_p == 0 && share_f == 0 {
                    continue;
                }
                let update = AggregateUpdate {
                    packets: share_p,
                    bytes: share_p * frame,
                    new_flows: share_f,
                    window_start_ns: span_start_ns,
                    window_end_ns: span_end_ns,
                };
                let out = servers
                    .get_mut(loc.server)
                    .and_then(|s| s.as_mut())
                    .and_then(|srv| srv.pipeline.instances.get_mut(loc.inst_idx))
                    .and_then(|inst| inst.runtime.apply_aggregate_nf(loc.nf_idx, &update));
                passed += out.map(|o| o.packets.min(share_p)).unwrap_or(share_p);
            }
            if passed < pkts {
                let refused = pkts - passed;
                ledger.record_drops(DropReason::Verdict, refused);
                if measured {
                    stats[ci].record_drops(DropReason::Verdict, refused);
                    window_acc[ci].drops += refused;
                }
                pkts = passed;
            }
            i = j;
        }
        ledger.delivered += pkts;
        if measured && pkts > 0 {
            let bits = (pkts * frame * 8) as f64;
            let s = &mut stats[ci];
            s.delivered_packets += pkts;
            s.delivered_bps += bits;
            let w = &mut window_acc[ci];
            w.bits += bits;
            w.packets += pkts;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn drop_packet(
    packets: &mut HashMap<u64, SimPacket>,
    stats: &mut [ChainStats],
    window_acc: &mut [WindowAcc],
    ledger: &mut ConservationLedger,
    id: u64,
    reason: DropReason,
    warmup_ns: u64,
    horizon_ns: u64,
) {
    if let Some(p) = packets.remove(&id) {
        // The ledger is unconditional — every injected packet lands in
        // exactly one bucket regardless of warmup windows.
        ledger.record_drop(reason);
        if std::env::var("LEMUR_DBG").is_ok() {
            eprintln!(
                "DROP chain={} hops={} t_in={}us reason={reason:?}",
                p.chain,
                p.hops,
                p.t_in / 1000
            );
        }
        if p.t_in >= warmup_ns && p.t_in < horizon_ns {
            stats[p.chain].record_drop(reason);
            window_acc[p.chain].drops += 1;
        }
    }
}

/// Demux → subgroup instance(s) → mux. Consecutive same-server subgroups
/// (created by branch points) chain *inside* the pipeline, one core hop
/// each, before the packet re-encapsulates — one server visit on the wire.
/// Returns the time the packet is ready to leave the server, or the drop
/// reason.
#[allow(clippy::too_many_arguments)]
fn server_hop(
    server: &mut ServerSim,
    server_idx: usize,
    p: &mut SimPacket,
    now: u64,
    config: &SimConfig,
    subgroup_cycles: &[f64],
    faults: &FaultState,
    rng: &mut StdRng,
) -> Result<u64, DropReason> {
    // Demux core.
    let demux_ns = (DEMUX_CYCLES / server.clock_hz * 1e9) as u64;
    let after_demux = server
        .demux
        .serve(now, demux_ns, config.max_queue_ns)
        .ok_or(DropReason::QueueOverflow)?;
    let (first_sg, first_replica, key) = server
        .pipeline
        .demux
        .steer(&mut p.buf)
        .ok_or(DropReason::Verdict)?;

    let mut sg_idx = first_sg;
    let mut replica = first_replica;
    let mut spi = key.spi;
    let mut at = after_demux;
    for _chained in 0..16 {
        if faults.crashed_subgroups.contains(&sg_idx) {
            return Err(DropReason::Fault);
        }
        let inst_idx = *server
            .pipeline
            .instance_map
            .get(&(sg_idx, replica))
            .ok_or(DropReason::Verdict)?;
        let core = server.pipeline.instances[inst_idx].core;
        if faults.failed_cores.contains(&(server_idx, core)) {
            return Err(DropReason::Fault);
        }

        // Effective service time: worst-case profile cycles, discounted
        // for same-socket placement and sampled over the Table 4 min–max
        // band.
        let base = subgroup_cycles.get(sg_idx).copied().unwrap_or(1000.0);
        let numa = if server.spec.socket_of(CoreId(core)) == server.nic_socket {
            server.same_socket_factor
        } else {
            1.0
        };
        let sample = 0.94 + 0.06 * rng.gen::<f64>();
        let service_ns = (base * numa * sample / server.clock_hz * 1e9) as u64;
        let station = server.cores.entry(core).or_default();
        let done = station
            .serve(at, service_ns, config.max_queue_ns)
            .ok_or(DropReason::QueueOverflow)?;
        at = done;

        // Functional execution.
        let ctx = NfCtx { now_ns: done };
        let gate = server.pipeline.instances[inst_idx]
            .runtime
            .process_packet(&ctx, &mut p.buf)
            .ok_or(DropReason::Verdict)?;

        // Branch decision: rewrite the SPI per the routing plan.
        if let Some(rule) = server.pipeline.mux_rules.get(&sg_idx) {
            if let Some(&next_spi) = rule.gate_spi.get(&(spi, gate)) {
                spi = next_spi;
            }
        }

        // Continue inside the server, or leave.
        match server.pipeline.internal_next.get(&(sg_idx, gate)) {
            Some(&next_sg) => {
                sg_idx = next_sg;
                let n = server.pipeline.replicas.get(&next_sg).copied().unwrap_or(1);
                replica = if n <= 1 {
                    0
                } else {
                    lemur_packet::flow::FiveTuple::parse(p.buf.as_slice())
                        .map(|t| (t.symmetric_hash() % n as u64) as usize)
                        .unwrap_or(0)
                };
            }
            None => break,
        }
    }

    // Mux: re-encapsulate for the next on-wire segment.
    let si = key.si.checked_sub(1).ok_or(DropReason::Verdict)?;
    lemur_bess::demux::mux(&mut p.buf, spi, si);
    Ok(at)
}

/// SmartNIC execution.
fn nic_hop(
    nic: &mut NicSim,
    p: &mut SimPacket,
    now: u64,
    config: &SimConfig,
) -> Result<u64, DropReason> {
    let mut frame = p.buf.as_slice().to_vec();
    let result = Vm::run(&nic.program, &mut frame).map_err(|_| DropReason::Verdict)?;
    if result.verdict != XdpVerdict::Tx {
        return Err(DropReason::Verdict);
    }
    p.buf = PacketBuf::from_bytes(&frame);
    // One VM step ≈ one NFP cycle.
    let service_ns = (result.steps as f64 / nic.clock_hz * 1e9) as u64;
    nic.proc
        .serve(now, service_ns, config.max_queue_ns)
        .ok_or(DropReason::QueueOverflow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_core::chains::{canonical_chain, CanonicalChain};
    use lemur_core::graph::ChainSpec;
    use lemur_core::Slo;
    use lemur_placer::corealloc::CoreStrategy;
    use lemur_placer::profiles::NfProfiles;
    use lemur_placer::topology::Topology;

    fn setup(
        which: &[CanonicalChain],
        delta: f64,
    ) -> (PlacementProblem, EvaluatedPlacement, Vec<TrafficSpec>) {
        let mut specs = Vec::new();
        let chains: Vec<ChainSpec> = which
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let spec = TrafficSpec::for_chain(i + 1, 1e9).expect("chain index in range");
                let agg = spec.aggregate();
                specs.push(spec);
                ChainSpec {
                    name: format!("chain{}", w.index()),
                    graph: canonical_chain(*w),
                    slo: None,
                    aggregate: Some(agg),
                }
            })
            .collect();
        let mut p = PlacementProblem::new(chains, Topology::testbed(), NfProfiles::table4());
        for i in 0..p.chains.len() {
            let base = p.base_rate_bps(i);
            p.chains[i].slo = Some(Slo::elastic_pipe(delta * base, 100e9));
        }
        let a = lemur_placer::baselines::hw_preferred_assignment(&p);
        let e = p.evaluate(&a, CoreStrategy::WaterFill).unwrap();
        for (i, s) in specs.iter_mut().enumerate() {
            // Offer 20% above the predicted rate, capped at the link.
            s.offered_bps = (e.chain_rates_bps[i] * 1.2).min(20e9);
        }
        (p, e, specs)
    }

    /// Short window keeping debug-mode tests fast; the bench harness uses
    /// longer windows in release mode.
    fn quick() -> SimConfig {
        SimConfig {
            duration_s: 0.004,
            warmup_s: 0.001,
            ..SimConfig::default()
        }
    }

    #[test]
    fn chain3_measured_tracks_predicted() {
        let (p, e, specs) = setup(&[CanonicalChain::Chain3], 1.0);
        let dep = lemur_metacompiler::compile(&p, &e).unwrap();
        let mut tb = Testbed::build(&p, &e, dep).unwrap();
        let report = tb.run(&specs, quick());
        let measured = report.per_chain[0].delivered_bps;
        let predicted = e.chain_rates_bps[0];
        assert!(measured > 0.0, "no traffic delivered");
        let ratio = measured / predicted;
        assert!(
            (0.80..=1.25).contains(&ratio),
            "measured {:.3}G vs predicted {:.3}G (ratio {ratio:.3})",
            measured / 1e9,
            predicted / 1e9
        );
        // Conservative profiling: measured is usually ≥ predicted.
        assert!(report.per_chain[0].mean_latency_ns > 0.0);
    }

    #[test]
    fn two_chains_meet_slos() {
        let (p, e, specs) = setup(&[CanonicalChain::Chain3, CanonicalChain::Chain5], 1.0);
        let dep = lemur_metacompiler::compile(&p, &e).unwrap();
        let mut tb = Testbed::build(&p, &e, dep).unwrap();
        let report = tb.run(&specs, quick());
        let t_mins: Vec<f64> = p.chains.iter().map(|c| c.slo.unwrap().t_min_bps).collect();
        assert!(
            report.slos_met(&t_mins, 0.05),
            "SLOs unmet: {:?} vs {:?}",
            report
                .per_chain
                .iter()
                .map(|c| c.delivered_bps / 1e9)
                .collect::<Vec<_>>(),
            t_mins.iter().map(|t| t / 1e9).collect::<Vec<_>>()
        );
    }

    #[test]
    fn branchy_chain2_delivers_on_all_paths() {
        let (p, e, specs) = setup(&[CanonicalChain::Chain2], 0.5);
        let dep = lemur_metacompiler::compile(&p, &e).unwrap();
        let mut tb = Testbed::build(&p, &e, dep).unwrap();
        let report = tb.run(&specs, quick());
        let s = &report.per_chain[0];
        assert!(s.delivered_packets > 100, "{s:?}");
        // NAT pools and branch gates must not black-hole traffic: drops
        // should be a small fraction under moderate load.
        let total = s.delivered_packets + s.dropped_packets;
        assert!(
            s.dropped_packets as f64 / total as f64 <= 0.35,
            "{} drops of {total}",
            s.dropped_packets
        );
    }

    #[test]
    fn deterministic_runs() {
        let (p, e, specs) = setup(&[CanonicalChain::Chain5], 0.5);
        let run = || {
            let dep = lemur_metacompiler::compile(&p, &e).unwrap();
            let mut tb = Testbed::build(&p, &e, dep).unwrap();
            let r = tb.run(&specs, quick());
            (
                r.per_chain[0].delivered_packets,
                r.per_chain[0].dropped_packets,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_fault_plan_matches_plain_run() {
        let (p, e, specs) = setup(&[CanonicalChain::Chain3], 0.5);
        let dep = lemur_metacompiler::compile(&p, &e).unwrap();
        let mut tb = Testbed::build(&p, &e, dep).unwrap();
        let plain = tb.run(&specs, quick());
        let dep = lemur_metacompiler::compile(&p, &e).unwrap();
        let mut tb = Testbed::build(&p, &e, dep).unwrap();
        let faulted = tb.run_with_faults(&specs, quick(), &FaultPlan::empty(), &[]);
        assert_eq!(plain, faulted);
        assert!(faulted.timeline.is_empty());
        assert!(faulted.windows.is_empty());
    }

    #[test]
    fn link_down_triggers_guard_within_a_window() {
        let (p, e, specs) = setup(&[CanonicalChain::Chain3], 1.0);
        let server = e
            .subgroups
            .iter()
            .find(|sg| sg.chain == 0)
            .map(|sg| sg.server)
            .unwrap();
        let dep = lemur_metacompiler::compile(&p, &e).unwrap();
        let mut tb = Testbed::build(&p, &e, dep).unwrap();
        let config = quick(); // warmup 1 ms, duration 4 ms, window 1 ms
        let fault_ns = 2_000_000;
        let plan = FaultPlan::empty().with(fault_ns, FaultKind::LinkDown { server });
        let slos: Vec<Option<Slo>> = p.chains.iter().map(|c| c.slo).collect();
        let report = tb.run_with_faults(&specs, config, &plan, &slos);

        // The fault landed on the timeline.
        assert!(report
            .timeline
            .iter()
            .any(|ev| matches!(ev, TimelineEvent::Fault { .. })));
        // Fault-reason drops were recorded, and distinguished from others.
        assert!(
            report.per_chain[0].drops_fault > 0,
            "{:?}",
            report.per_chain[0]
        );
        // The guard flagged the starved chain no later than two windows
        // after injection (one full window must elapse below t_min).
        let detected = report
            .first_violation_ns(0)
            .expect("no SLO violation detected");
        assert!(
            detected >= fault_ns && detected <= fault_ns + 2 * config.window_ns,
            "detected at {detected} for fault at {fault_ns}"
        );
    }

    #[test]
    fn link_flap_recovers_goodput() {
        let (p, e, specs) = setup(&[CanonicalChain::Chain3], 1.0);
        let server = e
            .subgroups
            .iter()
            .find(|sg| sg.chain == 0)
            .map(|sg| sg.server)
            .unwrap();
        let dep = lemur_metacompiler::compile(&p, &e).unwrap();
        let mut tb = Testbed::build(&p, &e, dep).unwrap();
        // Down for 1 ms mid-run, then back.
        let plan = FaultPlan::empty().link_flap(server, 2_000_000, 3_000_000);
        let slos: Vec<Option<Slo>> = p.chains.iter().map(|c| c.slo).collect();
        let report = tb.run_with_faults(&specs, quick(), &plan, &slos);
        // Traffic resumed after the flap: the last window delivers again.
        let last = report
            .windows
            .iter()
            .rfind(|w| w.chain == 0)
            .expect("guard produced windows");
        assert!(
            last.delivered_packets > 0,
            "no recovery after link came back: {last:?}"
        );
        assert!(report.per_chain[0].drops_fault > 0);
    }

    #[test]
    fn traffic_surge_raises_arrivals() {
        let (p, e, specs) = setup(&[CanonicalChain::Chain5], 0.5);
        let run_with = |plan: &FaultPlan| {
            let dep = lemur_metacompiler::compile(&p, &e).unwrap();
            let mut tb = Testbed::build(&p, &e, dep).unwrap();
            let r = tb.run_with_faults(&specs, quick(), plan, &[]);
            r.per_chain[0].delivered_packets + r.per_chain[0].dropped_packets
        };
        let baseline = run_with(&FaultPlan::empty());
        let surged = run_with(&FaultPlan::empty().with(
            1_000_000,
            FaultKind::TrafficSurge {
                chain: 0,
                factor: 3.0,
            },
        ));
        assert!(
            surged > baseline + baseline / 2,
            "surge did not raise arrivals: {surged} vs {baseline}"
        );
    }

    #[test]
    fn profile_drift_slows_service() {
        let (p, e, specs) = setup(&[CanonicalChain::Chain5], 0.5);
        let mean_latency = |plan: &FaultPlan| {
            let dep = lemur_metacompiler::compile(&p, &e).unwrap();
            let mut tb = Testbed::build(&p, &e, dep).unwrap();
            tb.run_with_faults(&specs, quick(), plan, &[]).per_chain[0].mean_latency_ns
        };
        let healthy = mean_latency(&FaultPlan::empty());
        // Inflate every subgroup's cycle cost 4× right at start.
        let mut plan = FaultPlan::empty();
        for sg in 0..e.subgroups.len() {
            plan = plan.with(
                0,
                FaultKind::ProfileDrift {
                    subgroup: sg,
                    factor: 4.0,
                },
            );
        }
        let drifted = mean_latency(&plan);
        assert!(
            drifted > healthy,
            "drift did not slow the chain: {drifted} vs {healthy}"
        );
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let (p, e, specs) = setup(&[CanonicalChain::Chain3], 1.0);
        let server = e
            .subgroups
            .iter()
            .find(|sg| sg.chain == 0)
            .map(|sg| sg.server)
            .unwrap();
        let slos: Vec<Option<Slo>> = p.chains.iter().map(|c| c.slo).collect();
        let run = || {
            let dep = lemur_metacompiler::compile(&p, &e).unwrap();
            let mut tb = Testbed::build(&p, &e, dep).unwrap();
            let plan = FaultPlan::empty()
                .link_flap(server, 1_500_000, 2_500_000)
                .with(
                    3_000_000,
                    FaultKind::TrafficSurge {
                        chain: 0,
                        factor: 1.5,
                    },
                );
            tb.run_with_faults(&specs, quick(), &plan, &slos)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn latency_includes_bounces() {
        let (p, e, mut specs) = setup(&[CanonicalChain::Chain3], 0.5);
        // Light load: latency should reflect compute + bounces, not queues.
        for s in specs.iter_mut() {
            s.offered_bps = e.chain_rates_bps[0] * 0.4;
        }
        let dep = lemur_metacompiler::compile(&p, &e).unwrap();
        let mut tb = Testbed::build(&p, &e, dep).unwrap();
        let report = tb.run(&specs, quick());
        // Chain 3 HW-preferred bounces twice: latency must exceed the pure
        // compute floor (Dedup ~18µs + Limiter) plus several link hops.
        let lat = report.per_chain[0].mean_latency_ns;
        assert!(lat > 15_000.0, "latency {lat}ns implausibly low");
        assert!(lat < 3_000_000.0, "latency {lat}ns implausibly high");
    }
}
