//! # lemur-p4sim
//!
//! A PISA (Protocol Independent Switch Architecture) switch substrate: the
//! simulated stand-in for the Barefoot Tofino switch in the paper's testbed.
//!
//! The crate has three layers:
//!
//! * [`ir`] — a P4-like intermediate representation: match-action tables,
//!   actions built from primitives, and a control-flow tree with explicit
//!   exclusive branches (the property Lemur's meta-compiler surfaces so the
//!   platform compiler "can pack parallel branches into the same set of
//!   switch stages", §4.2).
//! * [`compiler`] — the stage-packing compiler. This is the piece the
//!   paper's Placer must *invoke* rather than approximate: "it is hard to
//!   estimate a priori the number of PISA switch stages used by a placement
//!   because the PISA compiler performs stage packing" (§3.2). It performs
//!   table-dependency analysis and first-fit stage packing under per-stage
//!   SRAM/TCAM/table limits, and also exposes the *conservative analytic
//!   estimator* the paper compares against (14 estimated vs 12 compiled
//!   stages for the 10-NAT placement, §5.2).
//! * [`runtime`] — a switch that executes a compiled program on packets at
//!   line rate, used by the cross-platform dataplane.
//!
//! [`parser`] holds P4 parser trees and the §A.2.1 merge algorithm used by
//! the meta-compiler when unifying standalone NFs.

pub mod compiler;
pub mod ir;
pub mod parser;
pub mod resources;
pub mod runtime;

pub use compiler::{
    compile, compile_naive, estimate_conservative, estimate_conservative_with, table_guards,
    CompileError, CompileOptions, GuardAtom, StageAssignment,
};
pub use ir::{
    Action, CmpOp, Control, FieldRef, MatchKind, MatchValue, P4Program, Primitive, ProgramError,
    Table, TableEntry, TableId,
};
pub use parser::{MergeError, ParserTree};
pub use resources::PisaModel;
pub use runtime::{DropCause, EntryError, Switch, SwitchVerdict, TableCounters};
