//! PISA hardware resource model.
//!
//! Loosely dimensioned after a Tofino-class pipeline: 12 match-action
//! stages, with per-stage SRAM blocks, TCAM blocks, and a logical-table
//! limit. The paper's evaluation identifies stage count as "the constraint
//! that is easiest to violate" (§4.2); the other resources exist so large
//! exact-match tables (e.g. 12 000-entry NAT) spill across stages the way
//! they do on real hardware.

use crate::ir::Table;

/// Dimensions of one pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PisaModel {
    /// Number of match-action stages.
    pub num_stages: usize,
    /// SRAM blocks per stage (one block ≈ 4096 exact-match entries).
    pub sram_blocks_per_stage: u32,
    /// TCAM blocks per stage (one block ≈ 512 ternary entries).
    pub tcam_blocks_per_stage: u32,
    /// Maximum logical tables per stage.
    pub tables_per_stage: u32,
    /// Port line rate in bits per second (100 Gbps ports on our testbed
    /// switch).
    pub port_rate_bps: f64,
    /// Per-stage pipeline latency in nanoseconds (used for the latency
    /// experiments; PISA stages are fixed-latency).
    pub stage_latency_ns: f64,
}

/// Entries per SRAM block.
pub const SRAM_ENTRIES_PER_BLOCK: usize = 4096;
/// Entries per TCAM block.
pub const TCAM_ENTRIES_PER_BLOCK: usize = 512;

impl Default for PisaModel {
    fn default() -> Self {
        PisaModel {
            num_stages: 12,
            sram_blocks_per_stage: 8,
            tcam_blocks_per_stage: 8,
            tables_per_stage: 16,
            port_rate_bps: 100e9,
            stage_latency_ns: 50.0,
        }
    }
}

impl PisaModel {
    /// SRAM blocks a table consumes.
    pub fn sram_cost(&self, table: &Table) -> u32 {
        if table.uses_tcam() {
            // Ternary tables keep action data in SRAM: charge one block.
            1
        } else {
            (table.size.div_ceil(SRAM_ENTRIES_PER_BLOCK)).max(1) as u32
        }
    }

    /// TCAM blocks a table consumes.
    pub fn tcam_cost(&self, table: &Table) -> u32 {
        if table.uses_tcam() {
            (table.size.div_ceil(TCAM_ENTRIES_PER_BLOCK)).max(1) as u32
        } else {
            0
        }
    }

    /// End-to-end pipeline latency for a program occupying `stages` stages.
    pub fn pipeline_latency_ns(&self, stages: usize) -> f64 {
        stages as f64 * self.stage_latency_ns
    }

    /// Stable hash of every model parameter stage packing reads. Mixed
    /// into memoized stage-oracle cache keys so verdicts cached against
    /// one pipeline shape are never served for another.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325; // FNV-1a/64
        let mut mix = |w: u64| {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        mix(self.num_stages as u64);
        mix(self.sram_blocks_per_stage as u64);
        mix(self.tcam_blocks_per_stage as u64);
        mix(self.tables_per_stage as u64);
        mix(self.port_rate_bps.to_bits());
        mix(self.stage_latency_ns.to_bits());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FieldRef, MatchKind};

    fn table(size: usize, kind: MatchKind) -> Table {
        Table {
            name: "t".into(),
            keys: vec![(FieldRef::Ipv4Dst, kind)],
            actions: vec![],
            default_action: None,
            size,
        }
    }

    #[test]
    fn sram_cost_scales_with_entries() {
        let m = PisaModel::default();
        assert_eq!(m.sram_cost(&table(100, MatchKind::Exact)), 1);
        assert_eq!(m.sram_cost(&table(4096, MatchKind::Exact)), 1);
        assert_eq!(m.sram_cost(&table(4097, MatchKind::Exact)), 2);
        assert_eq!(m.sram_cost(&table(12_000, MatchKind::Exact)), 3);
    }

    #[test]
    fn tcam_cost_only_for_ternary_family() {
        let m = PisaModel::default();
        assert_eq!(m.tcam_cost(&table(100, MatchKind::Exact)), 0);
        assert_eq!(m.tcam_cost(&table(100, MatchKind::Lpm)), 1);
        assert_eq!(m.tcam_cost(&table(1024, MatchKind::Ternary)), 2);
        // 8 TCAM blocks per stage fit four 1024-entry ternary tables.
        assert_eq!(m.tcam_cost(&table(100, MatchKind::Range)), 1);
    }

    #[test]
    fn latency_model() {
        let m = PisaModel::default();
        assert_eq!(m.pipeline_latency_ns(12), 600.0);
    }
}
