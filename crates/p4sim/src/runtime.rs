//! The PISA switch runtime: executes a compiled program on packets.
//!
//! One [`Switch`] instance models the ToR. Packets flow through the control
//! tree; each applied table extracts its key fields, finds the highest-
//! priority matching entry, and runs the entry's action primitives. PISA
//! pipelines process at line rate, so the runtime charges no per-packet CPU
//! cost — rate limits are enforced by port capacities in the dataplane.

use crate::compiler::{
    compile, compile_naive, table_guards, CompileOptions, GuardAtom, StageAssignment,
};
use crate::ir::*;
use crate::resources::PisaModel;
use lemur_packet::builder;
use lemur_packet::ethernet::{self, EtherType};
use lemur_packet::flow::FiveTuple;
use lemur_packet::ipv4::Protocol;
use lemur_packet::{ipv4, nsh, tcp, udp, vlan, PacketBuf};
use std::collections::HashMap;
use std::fmt;

/// Why a packet was dropped — part of the observable behavior the
/// differential fuzzer diffs across compilers and backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// A table action executed [`Primitive::Drop`].
    TableAction,
    /// [`Primitive::DecNshSi`] underflowed the service index.
    SiUnderflow,
}

/// Result of running one packet through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchVerdict {
    /// Egress port, if the packet survived.
    pub egress_port: Option<u16>,
    /// True if the packet was dropped.
    pub dropped: bool,
    /// Why it was dropped (`None` when it survived).
    pub cause: Option<DropCause>,
}

/// Per-table match/apply counters, exposed so differential execution can
/// diff not just packet bytes but which tables actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableCounters {
    /// Times the table executed (guard passed, packet alive).
    pub applied: u64,
    /// Executions that matched an installed entry.
    pub hits: u64,
    /// Executions that fell through to the default action.
    pub misses: u64,
}

/// Why a runtime entry was rejected by [`Switch::try_add_entry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryError {
    /// The table id has no definition in the program.
    NoSuchTable(TableId),
    /// The entry's key count does not match the table's key count.
    KeyArityMismatch {
        table: TableId,
        expected: usize,
        got: usize,
    },
    /// The entry's action index is out of range for the table.
    NoSuchAction { table: TableId, action: usize },
}

impl fmt::Display for EntryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryError::NoSuchTable(t) => write!(f, "no table {}", t.0),
            EntryError::KeyArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "table {} expects {expected} keys, entry has {got}",
                table.0
            ),
            EntryError::NoSuchAction { table, action } => {
                write!(f, "table {} has no action {action}", table.0)
            }
        }
    }
}

impl std::error::Error for EntryError {}

/// Per-packet execution state.
#[derive(Debug, Default)]
struct ExecState {
    meta: HashMap<u8, u64>,
    egress: Option<u16>,
    dropped: bool,
    cause: Option<DropCause>,
}

/// A running PISA switch: program + entries + counters.
pub struct Switch {
    program: P4Program,
    /// Entries per table, kept sorted by descending priority.
    entries: Vec<Vec<TableEntry>>,
    assignment: StageAssignment,
    /// Path condition of each table, for stage-order execution.
    guards: HashMap<TableId, Vec<GuardAtom>>,
    /// Tables in stage order (first slice only for split tables).
    staged_order: Vec<TableId>,
    counters: Vec<TableCounters>,
    model: PisaModel,
    packets_in: u64,
    packets_dropped: u64,
}

impl Switch {
    /// Compile `program` for `model` and instantiate a switch. Fails if the
    /// program does not fit the pipeline.
    pub fn new(
        program: P4Program,
        model: PisaModel,
    ) -> Result<Switch, crate::compiler::CompileError> {
        Switch::new_with_options(program, model, CompileOptions::default())
    }

    /// [`Switch::new`] with explicit compiler options (the differential
    /// fuzzer compiles with `effect_deps` and, in its self-test, with the
    /// injected packing bug).
    pub fn new_with_options(
        program: P4Program,
        model: PisaModel,
        opts: CompileOptions,
    ) -> Result<Switch, crate::compiler::CompileError> {
        let assignment = compile(&program, &model, opts)?;
        Ok(Switch::from_assignment(program, model, assignment))
    }

    /// Instantiate a switch on the naive reference compilation (one table
    /// per stage in control order) — the oracle side of axis-1 diffing.
    pub fn new_naive(
        program: P4Program,
        model: PisaModel,
    ) -> Result<Switch, crate::compiler::CompileError> {
        let assignment = compile_naive(&program, &model)?;
        Ok(Switch::from_assignment(program, model, assignment))
    }

    fn from_assignment(
        program: P4Program,
        model: PisaModel,
        assignment: StageAssignment,
    ) -> Switch {
        let guards = table_guards(&program);
        // Flatten stages into an execution order; a split table occupies
        // several stages but executes once, at its first slice.
        let mut staged_order = Vec::new();
        for stage in &assignment.stages {
            for &t in stage {
                if !staged_order.contains(&t) {
                    staged_order.push(t);
                }
            }
        }
        let entries = vec![Vec::new(); program.num_tables()];
        let counters = vec![TableCounters::default(); program.num_tables()];
        Switch {
            program,
            entries,
            assignment,
            guards,
            staged_order,
            counters,
            model,
            packets_in: 0,
            packets_dropped: 0,
        }
    }

    /// The stage assignment produced at compile time.
    pub fn assignment(&self) -> &StageAssignment {
        &self.assignment
    }

    /// Pipeline latency for this program.
    pub fn latency_ns(&self) -> f64 {
        self.assignment.latency_ns
    }

    /// The hardware model.
    pub fn model(&self) -> &PisaModel {
        &self.model
    }

    /// Install an entry; entries are matched in priority order.
    ///
    /// Trusted-path API: panics on an unknown table id (a code-generator
    /// bug, not a runtime input). Untrusted/generated entries go through
    /// [`Switch::try_add_entry`].
    pub fn add_entry(&mut self, table: TableId, entry: TableEntry) {
        let list = &mut self.entries[table.0];
        let pos = list
            .iter()
            .position(|e| e.priority < entry.priority)
            .unwrap_or(list.len());
        list.insert(pos, entry);
    }

    /// Validate and install an entry: the table must exist, the key arity
    /// must match, and the action index must be in range.
    pub fn try_add_entry(&mut self, table: TableId, entry: TableEntry) -> Result<(), EntryError> {
        let Some(def) = self.program.tables.get(table.0) else {
            return Err(EntryError::NoSuchTable(table));
        };
        if entry.keys.len() != def.keys.len() {
            return Err(EntryError::KeyArityMismatch {
                table,
                expected: def.keys.len(),
                got: entry.keys.len(),
            });
        }
        if entry.action >= def.actions.len() {
            return Err(EntryError::NoSuchAction {
                table,
                action: entry.action,
            });
        }
        self.add_entry(table, entry);
        Ok(())
    }

    /// Packets processed so far.
    pub fn packets_in(&self) -> u64 {
        self.packets_in
    }

    /// Packets dropped so far.
    pub fn packets_dropped(&self) -> u64 {
        self.packets_dropped
    }

    /// Per-table counters, indexed by `TableId`.
    pub fn table_counters(&self) -> &[TableCounters] {
        &self.counters
    }

    /// The table execution order stage packing produced (used by
    /// stage-order execution).
    pub fn staged_order(&self) -> &[TableId] {
        &self.staged_order
    }

    /// Run one packet through the pipeline.
    pub fn process(&mut self, pkt: &mut PacketBuf) -> SwitchVerdict {
        self.packets_in += 1;
        let mut state = ExecState::default();
        if let Some(control) = self.program.control.clone() {
            self.exec(&control, pkt, &mut state);
        }
        self.finish(state)
    }

    /// Run one packet in *stage order*: tables execute in the sequence the
    /// stage packer assigned, each gated by its path condition (guards are
    /// re-evaluated at execution time). This is how a physical pipeline
    /// actually consumes a [`StageAssignment`] — and the execution mode
    /// under which packed and naive compilations of the same program must
    /// agree. [`Switch::process`] walks the control tree instead and never
    /// looks at stages.
    pub fn process_staged(&mut self, pkt: &mut PacketBuf) -> SwitchVerdict {
        self.packets_in += 1;
        let mut state = ExecState::default();
        let order = self.staged_order.clone();
        for t in order {
            if state.dropped {
                break;
            }
            if self.guard_passes(t, pkt, &state) {
                self.apply_table(t, pkt, &mut state);
            }
        }
        self.finish(state)
    }

    fn guard_passes(&self, t: TableId, pkt: &PacketBuf, state: &ExecState) -> bool {
        match self.guards.get(&t) {
            Some(gs) => gs.iter().all(|g| {
                let v = read_field(pkt, g.field(), state).unwrap_or(0);
                g.eval(v)
            }),
            None => true,
        }
    }

    fn finish(&mut self, state: ExecState) -> SwitchVerdict {
        if state.dropped {
            self.packets_dropped += 1;
            SwitchVerdict {
                egress_port: None,
                dropped: true,
                cause: state.cause.or(Some(DropCause::TableAction)),
            }
        } else {
            SwitchVerdict {
                egress_port: state.egress,
                dropped: false,
                cause: None,
            }
        }
    }

    fn exec(&mut self, node: &Control, pkt: &mut PacketBuf, state: &mut ExecState) {
        if state.dropped {
            return;
        }
        match node {
            Control::Nop => {}
            Control::Seq(items) => {
                for item in items {
                    self.exec(item, pkt, state);
                    if state.dropped {
                        return;
                    }
                }
            }
            Control::Apply(t) => self.apply_table(*t, pkt, state),
            Control::Switch { on, cases, default } => {
                let v = read_field(pkt, *on, state).unwrap_or(0);
                let case = cases.iter().find(|(k, _)| *k == v);
                match case {
                    Some((_, c)) => self.exec(c, pkt, state),
                    None => {
                        if let Some(d) = default {
                            self.exec(d, pkt, state);
                        }
                    }
                }
            }
            Control::If {
                field,
                op,
                value,
                then_,
            } => {
                let v = read_field(pkt, *field, state).unwrap_or(0);
                if op.eval(v, *value) {
                    self.exec(then_, pkt, state);
                }
            }
            Control::Exclusive(items) => {
                for item in items {
                    self.exec(item, pkt, state);
                    if state.dropped {
                        return;
                    }
                }
            }
        }
    }

    fn apply_table(&mut self, id: TableId, pkt: &mut PacketBuf, state: &mut ExecState) {
        let table = &self.program.tables[id.0];
        self.counters[id.0].applied += 1;
        let keys: Vec<u64> = table
            .keys
            .iter()
            .map(|(f, _)| read_field(pkt, *f, state).unwrap_or(0))
            .collect();
        let hit = self.entries[id.0]
            .iter()
            .find(|e| {
                e.keys.len() == keys.len() && e.keys.iter().zip(&keys).all(|(m, v)| m.matches(*v))
            })
            .cloned();
        let (action_idx, data) = match hit {
            Some(e) => {
                self.counters[id.0].hits += 1;
                (Some(e.action), e.action_data)
            }
            None => {
                self.counters[id.0].misses += 1;
                (table.default_action, Vec::new())
            }
        };
        let Some(ai) = action_idx else { return };
        // Out-of-range indices are screened by `validate`/`try_add_entry`;
        // treat any that slip through a trusted path as a no-op rather
        // than panicking mid-pipeline.
        let Some(action) = table.actions.get(ai).cloned() else {
            return;
        };
        for prim in &action.primitives {
            run_primitive(*prim, &data, pkt, state);
            if state.dropped {
                return;
            }
        }
    }
}

fn run_primitive(p: Primitive, data: &[u64], pkt: &mut PacketBuf, state: &mut ExecState) {
    let word = |n: u8| data.get(n as usize).copied().unwrap_or(0);
    match p {
        Primitive::NoOp => {}
        Primitive::Drop => {
            state.dropped = true;
            state.cause = Some(DropCause::TableAction);
        }
        Primitive::SetEgressConst(port) => state.egress = Some(port),
        Primitive::SetEgressFromData(n) => state.egress = Some(word(n) as u16),
        Primitive::SetFieldConst(f, v) => write_field(pkt, f, v, state),
        Primitive::SetFieldFromData(f, n) => write_field(pkt, f, word(n), state),
        Primitive::PushVlanFromData(n) => {
            // The tag belongs to the inner (service-payload) frame, behind
            // any NSH encapsulation.
            let off = inner_frame_offset(pkt.as_slice());
            builder::vlan_push_at(pkt, off, (word(n) & 0x0fff) as u16);
        }
        Primitive::PopVlan => {
            let off = inner_frame_offset(pkt.as_slice());
            let _ = builder::vlan_pop_at(pkt, off);
        }
        Primitive::PushNshFromData(n) => {
            builder::nsh_encap(pkt, word(n) as u32 & 0x00ff_ffff, word(n + 1) as u8);
        }
        Primitive::PopNsh => {
            let _ = builder::nsh_decap(pkt);
        }
        Primitive::DecNshSi => {
            let whole_len = pkt.len();
            let frame = pkt.as_mut_slice();
            if let Ok(eth) = ethernet::Frame::new_checked(&frame[..]) {
                // The EtherType may promise NSH on a frame truncated
                // mid-header; only a complete service header is writable.
                if eth.ethertype() == EtherType::Nsh
                    && whole_len >= ethernet::HEADER_LEN + nsh::HEADER_LEN
                {
                    let mut h = nsh::Header::new_unchecked(&mut frame[ethernet::HEADER_LEN..]);
                    if h.decrement_si().is_err() {
                        state.dropped = true;
                        state.cause = Some(DropCause::SiUnderflow);
                    }
                }
            }
        }
    }
}

/// Offset of the "effective" (inner) Ethernet frame: behind the outer
/// Ethernet+NSH headers for service-chained packets, 0 otherwise.
fn inner_frame_offset(frame: &[u8]) -> usize {
    if let Ok(eth) = ethernet::Frame::new_checked(frame) {
        if eth.ethertype() == EtherType::Nsh && nsh::Header::new_checked(eth.payload()).is_ok() {
            return ethernet::HEADER_LEN + nsh::HEADER_LEN;
        }
    }
    0
}

/// L3 offset within the inner frame, looking through one VLAN tag.
fn l3_offset(frame: &[u8]) -> Option<usize> {
    let eth = ethernet::Frame::new_checked(frame).ok()?;
    match eth.ethertype() {
        EtherType::Ipv4 => Some(ethernet::HEADER_LEN),
        EtherType::Vlan => {
            let tag = vlan::Tag::new_checked(eth.payload()).ok()?;
            (tag.inner_ethertype() == EtherType::Ipv4)
                .then_some(ethernet::HEADER_LEN + vlan::TAG_LEN)
        }
        _ => None,
    }
}

fn read_field(pkt: &PacketBuf, f: FieldRef, state: &ExecState) -> Option<u64> {
    let whole = pkt.as_slice();
    if let FieldRef::Meta(n) = f {
        return Some(state.meta.get(&n).copied().unwrap_or(0));
    }
    if matches!(f, FieldRef::NshSpi | FieldRef::NshSi) {
        let eth = ethernet::Frame::new_checked(whole).ok()?;
        if eth.ethertype() != EtherType::Nsh {
            return None;
        }
        let h = nsh::Header::new_checked(eth.payload()).ok()?;
        return Some(match f {
            FieldRef::NshSpi => h.spi() as u64,
            _ => h.si() as u64,
        });
    }
    let frame = &whole[inner_frame_offset(whole)..];
    match f {
        FieldRef::EthSrc => {
            let eth = ethernet::Frame::new_checked(frame).ok()?;
            Some(mac_to_u64(eth.src()))
        }
        FieldRef::EthDst => {
            let eth = ethernet::Frame::new_checked(frame).ok()?;
            Some(mac_to_u64(eth.dst()))
        }
        FieldRef::EtherType => {
            let eth = ethernet::Frame::new_checked(frame).ok()?;
            Some(u16::from(eth.ethertype()) as u64)
        }
        FieldRef::VlanVid => Some(builder::vlan_peek(frame)? as u64),
        FieldRef::FlowHash(salt) => FiveTuple::parse(frame)
            .ok()
            .map(|t| lemur_packet::flow::salted_hash(t.symmetric_hash(), salt)),
        FieldRef::Ipv4Src | FieldRef::Ipv4Dst | FieldRef::Ipv4Proto | FieldRef::Ipv4Ttl => {
            let l3 = l3_offset(frame)?;
            let ip = ipv4::Packet::new_checked(&frame[l3..]).ok()?;
            Some(match f {
                FieldRef::Ipv4Src => ip.src().to_u32() as u64,
                FieldRef::Ipv4Dst => ip.dst().to_u32() as u64,
                FieldRef::Ipv4Proto => u8::from(ip.protocol()) as u64,
                _ => ip.ttl() as u64,
            })
        }
        FieldRef::L4Sport | FieldRef::L4Dport => {
            let l3 = l3_offset(frame)?;
            let ip = ipv4::Packet::new_checked(&frame[l3..]).ok()?;
            let l4 = l3 + ip.header_len() as usize;
            let (s, d) = match ip.protocol() {
                Protocol::Udp => {
                    let u = udp::Packet::new_checked(&frame[l4..]).ok()?;
                    (u.src_port(), u.dst_port())
                }
                Protocol::Tcp => {
                    let t = tcp::Packet::new_checked(&frame[l4..]).ok()?;
                    (t.src_port(), t.dst_port())
                }
                _ => return None,
            };
            Some(if f == FieldRef::L4Sport {
                s as u64
            } else {
                d as u64
            })
        }
        FieldRef::NshSpi | FieldRef::NshSi | FieldRef::Meta(_) => unreachable!(),
    }
}

fn write_field(pkt: &mut PacketBuf, f: FieldRef, v: u64, state: &mut ExecState) {
    if let FieldRef::Meta(n) = f {
        state.meta.insert(n, v);
        return;
    }
    let whole_len = pkt.len();
    let whole = pkt.as_mut_slice();
    if matches!(f, FieldRef::NshSpi | FieldRef::NshSi) {
        if let Ok(eth) = ethernet::Frame::new_checked(&whole[..]) {
            if eth.ethertype() == EtherType::Nsh
                && whole_len >= ethernet::HEADER_LEN + nsh::HEADER_LEN
            {
                let mut h = nsh::Header::new_unchecked(&mut whole[ethernet::HEADER_LEN..]);
                match f {
                    FieldRef::NshSpi => h.set_spi(v as u32 & 0x00ff_ffff),
                    _ => h.set_si(v as u8),
                }
            }
        }
        return;
    }
    let off = inner_frame_offset(whole);
    let frame = &mut whole[off..];
    match f {
        FieldRef::EthSrc | FieldRef::EthDst => {
            if frame.len() >= ethernet::HEADER_LEN {
                let mut eth = ethernet::Frame::new_unchecked(frame);
                let mac = u64_to_mac(v);
                if f == FieldRef::EthSrc {
                    eth.set_src(mac);
                } else {
                    eth.set_dst(mac);
                }
            }
        }
        FieldRef::EtherType => {
            if frame.len() >= ethernet::HEADER_LEN {
                let mut eth = ethernet::Frame::new_unchecked(frame);
                eth.set_ethertype(EtherType::from((v & 0xffff) as u16));
            }
        }
        FieldRef::VlanVid => {
            if let Ok(eth) = ethernet::Frame::new_checked(&frame[..]) {
                if eth.ethertype() == EtherType::Vlan {
                    // The EtherType may promise a tag the truncation cut
                    // off; only a complete tag is writable.
                    if let Ok(mut tag) = vlan::Tag::new_checked(&mut frame[ethernet::HEADER_LEN..])
                    {
                        tag.set_vid((v & 0x0fff) as u16);
                    }
                }
            }
        }
        FieldRef::Ipv4Src | FieldRef::Ipv4Dst | FieldRef::Ipv4Ttl => {
            if let Some(l3) = l3_offset(frame) {
                // Checked: adversarial frames truncate mid-header, and a
                // partial IPv4 header is unwritable (no room for the
                // checksum rewrite).
                if let Ok(mut ip) = ipv4::Packet::new_checked(&mut frame[l3..]) {
                    match f {
                        FieldRef::Ipv4Src => ip.set_src(ipv4::Address::from_u32(v as u32)),
                        FieldRef::Ipv4Dst => ip.set_dst(ipv4::Address::from_u32(v as u32)),
                        _ => ip.set_ttl(v as u8),
                    }
                    ip.fill_checksum();
                }
            }
        }
        FieldRef::L4Sport | FieldRef::L4Dport => {
            if let Some(l3) = l3_offset(frame) {
                let Ok(ip) = ipv4::Packet::new_checked(&frame[l3..]) else {
                    return;
                };
                let (l4, protocol) = (l3 + ip.header_len() as usize, ip.protocol());
                match protocol {
                    Protocol::Udp => {
                        if let Ok(mut u) = udp::Packet::new_checked(&mut frame[l4..]) {
                            if f == FieldRef::L4Sport {
                                u.set_src_port(v as u16);
                            } else {
                                u.set_dst_port(v as u16);
                            }
                        }
                    }
                    Protocol::Tcp => {
                        if let Ok(mut t) = tcp::Packet::new_checked(&mut frame[l4..]) {
                            if f == FieldRef::L4Sport {
                                t.set_src_port(v as u16);
                            } else {
                                t.set_dst_port(v as u16);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        FieldRef::Ipv4Proto | FieldRef::FlowHash(_) => {
            // Not writable on this pipeline.
        }
        FieldRef::NshSpi | FieldRef::NshSi | FieldRef::Meta(_) => unreachable!(),
    }
}

fn mac_to_u64(a: ethernet::Address) -> u64 {
    let mut v = 0u64;
    for b in a.0 {
        v = (v << 8) | b as u64;
    }
    v
}

fn u64_to_mac(v: u64) -> ethernet::Address {
    let b = v.to_be_bytes();
    ethernet::Address([b[2], b[3], b[4], b[5], b[6], b[7]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_packet::builder::udp_packet;

    fn sample_pkt(dst: ipv4::Address, dport: u16) -> PacketBuf {
        udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(10, 1, 2, 3),
            dst,
            4000,
            dport,
            b"payload",
        )
    }

    /// A forwarding table: LPM on ipv4.dst → set egress port.
    fn fwd_program() -> (P4Program, TableId) {
        let mut p = P4Program::new();
        let t = p.add_table(Table {
            name: "ipv4_fwd".into(),
            keys: vec![(FieldRef::Ipv4Dst, MatchKind::Lpm)],
            actions: vec![
                Action::new("set_port", vec![Primitive::SetEgressFromData(0)]),
                Action::new("drop", vec![Primitive::Drop]),
            ],
            default_action: Some(1),
            size: 1024,
        });
        p.control = Some(Control::Apply(t));
        (p, t)
    }

    #[test]
    fn lpm_forwarding() {
        let (p, t) = fwd_program();
        let mut sw = Switch::new(p, PisaModel::default()).unwrap();
        sw.add_entry(
            t,
            TableEntry {
                keys: vec![MatchValue::Lpm {
                    value: u64::from(ipv4::Address::new(20, 0, 0, 0).to_u32()),
                    prefix_len: 8,
                    width: 32,
                }],
                action: 0,
                action_data: vec![7],
                priority: 8,
            },
        );
        let mut hit = sample_pkt(ipv4::Address::new(20, 9, 9, 9), 80);
        assert_eq!(
            sw.process(&mut hit),
            SwitchVerdict {
                egress_port: Some(7),
                dropped: false,
                cause: None,
            }
        );
        let mut miss = sample_pkt(ipv4::Address::new(30, 0, 0, 1), 80);
        assert_eq!(
            sw.process(&mut miss),
            SwitchVerdict {
                egress_port: None,
                dropped: true,
                cause: Some(DropCause::TableAction),
            }
        );
        assert_eq!(sw.packets_in(), 2);
        assert_eq!(sw.packets_dropped(), 1);
        // Counters saw one hit and one miss.
        assert_eq!(
            sw.table_counters()[t.0],
            TableCounters {
                applied: 2,
                hits: 1,
                misses: 1
            }
        );
    }

    #[test]
    fn priority_longest_prefix_wins() {
        let (p, t) = fwd_program();
        let mut sw = Switch::new(p, PisaModel::default()).unwrap();
        for (prefix, len, port) in [
            (ipv4::Address::new(20, 0, 0, 0), 8u8, 1u64),
            (ipv4::Address::new(20, 1, 0, 0), 16, 2),
        ] {
            sw.add_entry(
                t,
                TableEntry {
                    keys: vec![MatchValue::Lpm {
                        value: u64::from(prefix.to_u32()),
                        prefix_len: len,
                        width: 32,
                    }],
                    action: 0,
                    action_data: vec![port],
                    priority: len as u32,
                },
            );
        }
        let mut specific = sample_pkt(ipv4::Address::new(20, 1, 5, 5), 80);
        assert_eq!(sw.process(&mut specific).egress_port, Some(2));
        let mut general = sample_pkt(ipv4::Address::new(20, 7, 5, 5), 80);
        assert_eq!(sw.process(&mut general).egress_port, Some(1));
    }

    #[test]
    fn acl_ternary_drop() {
        let mut p = P4Program::new();
        let t = p.add_table(Table {
            name: "acl".into(),
            keys: vec![
                (FieldRef::Ipv4Dst, MatchKind::Ternary),
                (FieldRef::L4Dport, MatchKind::Range),
            ],
            actions: vec![
                Action::new("permit", vec![Primitive::NoOp]),
                Action::new("deny", vec![Primitive::Drop]),
            ],
            default_action: Some(0),
            size: 512,
        });
        p.control = Some(Control::Apply(t));
        let mut sw = Switch::new(p, PisaModel::default()).unwrap();
        // Deny dport 23 (telnet) to anywhere.
        sw.add_entry(
            t,
            TableEntry {
                keys: vec![MatchValue::Any, MatchValue::Range { lo: 23, hi: 23 }],
                action: 1,
                action_data: vec![],
                priority: 10,
            },
        );
        let mut telnet = sample_pkt(ipv4::Address::new(1, 1, 1, 1), 23);
        assert!(sw.process(&mut telnet).dropped);
        let mut http = sample_pkt(ipv4::Address::new(1, 1, 1, 1), 80);
        assert!(!sw.process(&mut http).dropped);
    }

    #[test]
    fn nat_rewrite_via_action_data() {
        let mut p = P4Program::new();
        let t = p.add_table(Table {
            name: "nat".into(),
            keys: vec![(FieldRef::Ipv4Src, MatchKind::Exact)],
            actions: vec![Action::new(
                "snat",
                vec![
                    Primitive::SetFieldFromData(FieldRef::Ipv4Src, 0),
                    Primitive::SetFieldFromData(FieldRef::L4Sport, 1),
                ],
            )],
            default_action: None,
            size: 12_000,
        });
        p.control = Some(Control::Apply(t));
        let mut sw = Switch::new(p, PisaModel::default()).unwrap();
        let internal = ipv4::Address::new(10, 1, 2, 3);
        let external = ipv4::Address::new(198, 18, 0, 1);
        sw.add_entry(
            t,
            TableEntry {
                keys: vec![MatchValue::Exact(internal.to_u32() as u64)],
                action: 0,
                action_data: vec![external.to_u32() as u64, 7777],
                priority: 1,
            },
        );
        let mut pkt = sample_pkt(ipv4::Address::new(8, 8, 8, 8), 53);
        sw.process(&mut pkt);
        let tpl = FiveTuple::parse(pkt.as_slice()).unwrap();
        assert_eq!(tpl.src_ip, external);
        assert_eq!(tpl.src_port, 7777);
        // IP checksum must have been refreshed by the write.
        let eth = ethernet::Frame::new_checked(pkt.as_slice()).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
    }

    #[test]
    fn switch_branching_on_metadata() {
        let mut p = P4Program::new();
        let classify = p.add_table(Table {
            name: "classify".into(),
            keys: vec![(FieldRef::L4Dport, MatchKind::Exact)],
            actions: vec![Action::new(
                "set_class",
                vec![Primitive::SetFieldFromData(FieldRef::Meta(0), 0)],
            )],
            default_action: None,
            size: 16,
        });
        let web = p.add_table(Table {
            name: "web_path".into(),
            keys: vec![],
            actions: vec![Action::new("mark", vec![Primitive::SetEgressConst(1)])],
            default_action: Some(0),
            size: 1,
        });
        let other = p.add_table(Table {
            name: "other_path".into(),
            keys: vec![],
            actions: vec![Action::new("mark", vec![Primitive::SetEgressConst(2)])],
            default_action: Some(0),
            size: 1,
        });
        p.control = Some(Control::Seq(vec![
            Control::Apply(classify),
            Control::Switch {
                on: FieldRef::Meta(0),
                cases: vec![(1, Control::Apply(web))],
                default: Some(Box::new(Control::Apply(other))),
            },
        ]));
        let mut sw = Switch::new(p, PisaModel::default()).unwrap();
        sw.add_entry(
            classify,
            TableEntry {
                keys: vec![MatchValue::Exact(80)],
                action: 0,
                action_data: vec![1],
                priority: 1,
            },
        );
        let mut http = sample_pkt(ipv4::Address::new(1, 1, 1, 1), 80);
        assert_eq!(sw.process(&mut http).egress_port, Some(1));
        let mut dns = sample_pkt(ipv4::Address::new(1, 1, 1, 1), 53);
        assert_eq!(sw.process(&mut dns).egress_port, Some(2));
    }

    #[test]
    fn nsh_coordination_primitives() {
        // Encap, decrement, read back, decap — the ToR coordinator ops.
        let mut p = P4Program::new();
        let t = p.add_table(Table {
            name: "encap".into(),
            keys: vec![],
            actions: vec![Action::new(
                "push",
                vec![Primitive::PushNshFromData(0), Primitive::DecNshSi],
            )],
            default_action: Some(0),
            size: 1,
        });
        p.control = Some(Control::Apply(t));
        let mut sw = Switch::new(p, PisaModel::default()).unwrap();
        let mut pkt = sample_pkt(ipv4::Address::new(1, 1, 1, 1), 80);
        sw.add_entry(
            t,
            TableEntry {
                keys: vec![],
                action: 0,
                action_data: vec![5, 255],
                priority: 1,
            },
        );
        sw.process(&mut pkt);
        assert_eq!(builder::nsh_peek(pkt.as_slice()), Some((5, 254)));
        // Fields of the inner packet remain readable through the encap.
        let state = ExecState::default();
        assert_eq!(
            read_field(&pkt, FieldRef::L4Dport, &state),
            Some(80),
            "inner fields must be visible through NSH"
        );
    }

    #[test]
    fn flow_hash_field_reads() {
        let pkt = sample_pkt(ipv4::Address::new(1, 2, 3, 4), 80);
        let state = ExecState::default();
        let h = read_field(&pkt, FieldRef::FlowHash(0), &state).unwrap();
        let expect = FiveTuple::parse(pkt.as_slice()).unwrap().symmetric_hash();
        assert_eq!(h, expect);
        // Salted reads decorrelate.
        let h7 = read_field(&pkt, FieldRef::FlowHash(7), &state).unwrap();
        assert_ne!(h, h7);
        assert_eq!(h7, lemur_packet::flow::salted_hash(expect, 7));
    }

    #[test]
    fn mac_u64_roundtrip() {
        let a = ethernet::Address([1, 2, 3, 4, 5, 6]);
        assert_eq!(u64_to_mac(mac_to_u64(a)), a);
    }

    #[test]
    fn si_underflow_drops_packet() {
        let mut p = P4Program::new();
        let t = p.add_table(Table {
            name: "dec".into(),
            keys: vec![],
            actions: vec![Action::new("dec", vec![Primitive::DecNshSi])],
            default_action: Some(0),
            size: 1,
        });
        p.control = Some(Control::Apply(t));
        let mut sw = Switch::new(p, PisaModel::default()).unwrap();
        let mut pkt = sample_pkt(ipv4::Address::new(1, 1, 1, 1), 80);
        builder::nsh_encap(&mut pkt, 1, 0); // SI already 0: mis-programmed
        let v = sw.process(&mut pkt);
        assert!(v.dropped);
        assert_eq!(v.cause, Some(DropCause::SiUnderflow));
    }

    #[test]
    fn try_add_entry_rejects_malformed_entries() {
        let (p, t) = fwd_program();
        let mut sw = Switch::new(p, PisaModel::default()).unwrap();
        let entry = |keys: Vec<MatchValue>, action: usize| TableEntry {
            keys,
            action,
            action_data: vec![],
            priority: 1,
        };
        assert_eq!(
            sw.try_add_entry(TableId(9), entry(vec![MatchValue::Any], 0)),
            Err(EntryError::NoSuchTable(TableId(9)))
        );
        assert_eq!(
            sw.try_add_entry(t, entry(vec![], 0)),
            Err(EntryError::KeyArityMismatch {
                table: t,
                expected: 1,
                got: 0
            })
        );
        assert_eq!(
            sw.try_add_entry(t, entry(vec![MatchValue::Any], 7)),
            Err(EntryError::NoSuchAction {
                table: t,
                action: 7
            })
        );
        assert_eq!(sw.try_add_entry(t, entry(vec![MatchValue::Any], 0)), Ok(()));
    }

    /// Branchy program used by the staged-execution tests: classify writes
    /// Meta(0), a Switch dispatches to one of two egress markers.
    fn branchy() -> (P4Program, TableId) {
        let mut p = P4Program::new();
        let classify = p.add_table(Table {
            name: "classify".into(),
            keys: vec![(FieldRef::L4Dport, MatchKind::Exact)],
            actions: vec![Action::new(
                "set_class",
                vec![Primitive::SetFieldFromData(FieldRef::Meta(0), 0)],
            )],
            default_action: None,
            size: 16,
        });
        let web = p.add_table(Table {
            name: "web_path".into(),
            keys: vec![],
            actions: vec![Action::new("mark", vec![Primitive::SetEgressConst(1)])],
            default_action: Some(0),
            size: 1,
        });
        let other = p.add_table(Table {
            name: "other_path".into(),
            keys: vec![],
            actions: vec![Action::new("mark", vec![Primitive::SetEgressConst(2)])],
            default_action: Some(0),
            size: 1,
        });
        p.control = Some(Control::Seq(vec![
            Control::Apply(classify),
            Control::Switch {
                on: FieldRef::Meta(0),
                cases: vec![(1, Control::Apply(web))],
                default: Some(Box::new(Control::Apply(other))),
            },
        ]));
        (p, classify)
    }

    #[test]
    fn staged_execution_matches_tree_execution() {
        let install = |sw: &mut Switch, classify: TableId| {
            sw.add_entry(
                classify,
                TableEntry {
                    keys: vec![MatchValue::Exact(80)],
                    action: 0,
                    action_data: vec![1],
                    priority: 1,
                },
            );
        };
        for (port, want) in [(80u16, Some(1u16)), (53, Some(2))] {
            let (p, classify) = branchy();
            let mut tree = Switch::new(p.clone(), PisaModel::default()).unwrap();
            let mut staged = Switch::new(p.clone(), PisaModel::default()).unwrap();
            let mut naive = Switch::new_naive(p, PisaModel::default()).unwrap();
            install(&mut tree, classify);
            install(&mut staged, classify);
            install(&mut naive, classify);
            let mut a = sample_pkt(ipv4::Address::new(1, 1, 1, 1), port);
            let mut b = a.clone();
            let mut c = a.clone();
            let vt = tree.process(&mut a);
            let vs = staged.process_staged(&mut b);
            let vn = naive.process_staged(&mut c);
            assert_eq!(vt.egress_port, want);
            assert_eq!(vt, vs);
            assert_eq!(vt, vn);
            assert_eq!(a.as_slice(), b.as_slice());
            assert_eq!(a.as_slice(), c.as_slice());
            // Guard-skipped branch tables are not counted as applied.
            assert_eq!(staged.table_counters(), tree.table_counters());
            assert_eq!(staged.table_counters(), naive.table_counters());
        }
    }

    #[test]
    fn staged_execution_respects_drop_short_circuit() {
        // dropper (effect-dep barrier) followed by an egress marker: once
        // dropped, the marker must not fire — and not count as applied.
        let mut p = P4Program::new();
        let dropper = p.add_table(Table {
            name: "deny".into(),
            keys: vec![(FieldRef::L4Dport, MatchKind::Exact)],
            actions: vec![Action::new("deny", vec![Primitive::Drop])],
            default_action: None,
            size: 4,
        });
        let mark = p.add_table(Table {
            name: "mark".into(),
            keys: vec![],
            actions: vec![Action::new("out", vec![Primitive::SetEgressConst(3)])],
            default_action: Some(0),
            size: 1,
        });
        p.control = Some(Control::Seq(vec![
            Control::Apply(dropper),
            Control::Apply(mark),
        ]));
        let mut sw = Switch::new_with_options(
            p,
            PisaModel::default(),
            crate::compiler::CompileOptions {
                effect_deps: true,
                ..Default::default()
            },
        )
        .unwrap();
        sw.add_entry(
            dropper,
            TableEntry {
                keys: vec![MatchValue::Exact(23)],
                action: 0,
                action_data: vec![],
                priority: 1,
            },
        );
        let mut pkt = sample_pkt(ipv4::Address::new(1, 1, 1, 1), 23);
        let v = sw.process_staged(&mut pkt);
        assert!(v.dropped);
        assert_eq!(v.cause, Some(DropCause::TableAction));
        assert_eq!(sw.table_counters()[mark.0].applied, 0);
    }
}
