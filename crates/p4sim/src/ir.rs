//! P4-like intermediate representation: fields, tables, actions, control.

use std::collections::BTreeSet;
use std::fmt;

/// A header or metadata field a table can match on or an action can write.
///
/// The vocabulary is fixed to what Lemur's NF library needs; `Meta(n)` slots
/// are free-form per-packet metadata registers (branch decisions, drop
/// flags, and similar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FieldRef {
    EthSrc,
    EthDst,
    EtherType,
    VlanVid,
    Ipv4Src,
    Ipv4Dst,
    Ipv4Proto,
    Ipv4Ttl,
    L4Sport,
    L4Dport,
    NshSpi,
    NshSi,
    /// Symmetric flow hash with a per-table seed (switches expose multiple
    /// hash seeds so successive splits decorrelate).
    FlowHash(u8),
    /// Per-packet metadata register.
    Meta(u8),
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldRef::EthSrc => write!(f, "ethernet.srcAddr"),
            FieldRef::EthDst => write!(f, "ethernet.dstAddr"),
            FieldRef::EtherType => write!(f, "ethernet.etherType"),
            FieldRef::VlanVid => write!(f, "vlan.vid"),
            FieldRef::Ipv4Src => write!(f, "ipv4.srcAddr"),
            FieldRef::Ipv4Dst => write!(f, "ipv4.dstAddr"),
            FieldRef::Ipv4Proto => write!(f, "ipv4.protocol"),
            FieldRef::Ipv4Ttl => write!(f, "ipv4.ttl"),
            FieldRef::L4Sport => write!(f, "l4.srcPort"),
            FieldRef::L4Dport => write!(f, "l4.dstPort"),
            FieldRef::NshSpi => write!(f, "nsh.spi"),
            FieldRef::NshSi => write!(f, "nsh.si"),
            FieldRef::FlowHash(salt) => write!(f, "meta.flow_hash_s{salt}"),
            FieldRef::Meta(n) => write!(f, "meta.r{n}"),
        }
    }
}

/// How a table matches a key field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchKind {
    Exact,
    Lpm,
    Ternary,
    Range,
}

/// A match value installed in a table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchValue {
    /// Match any value (wildcard).
    Any,
    Exact(u64),
    /// LPM over the low `width` bits: value, prefix length.
    Lpm {
        value: u64,
        prefix_len: u8,
        width: u8,
    },
    /// Ternary: value, mask.
    Ternary {
        value: u64,
        mask: u64,
    },
    /// Inclusive range.
    Range {
        lo: u64,
        hi: u64,
    },
}

impl MatchValue {
    /// True if `v` satisfies this match.
    pub fn matches(&self, v: u64) -> bool {
        match *self {
            MatchValue::Any => true,
            MatchValue::Exact(e) => v == e,
            MatchValue::Lpm {
                value,
                prefix_len,
                width,
            } => {
                if prefix_len == 0 {
                    return true;
                }
                let shift = width.saturating_sub(prefix_len);
                (v >> shift) == (value >> shift)
            }
            MatchValue::Ternary { value, mask } => (v & mask) == (value & mask),
            MatchValue::Range { lo, hi } => lo <= v && v <= hi,
        }
    }

    /// Specificity used as a default priority (longer prefixes win).
    pub fn specificity(&self) -> u32 {
        match *self {
            MatchValue::Any => 0,
            MatchValue::Exact(_) => 64,
            MatchValue::Lpm { prefix_len, .. } => prefix_len as u32,
            MatchValue::Ternary { mask, .. } => mask.count_ones(),
            MatchValue::Range { .. } => 32,
        }
    }
}

/// Primitive operations actions are built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primitive {
    /// Write a constant to a field.
    SetFieldConst(FieldRef, u64),
    /// Write entry action-data word `n` to a field.
    SetFieldFromData(FieldRef, u8),
    /// Mark the packet dropped.
    Drop,
    /// Set the egress port from action-data word `n`.
    SetEgressFromData(u8),
    /// Set the egress port to a constant.
    SetEgressConst(u16),
    /// Push a VLAN tag with the VID from action-data word `n`.
    PushVlanFromData(u8),
    /// Pop the outer VLAN tag.
    PopVlan,
    /// Push an NSH header with SPI/SI from action-data words `n`, `n+1`.
    PushNshFromData(u8),
    /// Pop the NSH header.
    PopNsh,
    /// Decrement the NSH service index.
    DecNshSi,
    /// No operation.
    NoOp,
}

impl Primitive {
    /// The field this primitive writes, if any (for dependency analysis).
    pub fn written_field(&self) -> Option<FieldRef> {
        match *self {
            Primitive::SetFieldConst(f, _) | Primitive::SetFieldFromData(f, _) => Some(f),
            Primitive::PushVlanFromData(_) | Primitive::PopVlan => Some(FieldRef::VlanVid),
            Primitive::PushNshFromData(_) | Primitive::PopNsh => Some(FieldRef::NshSpi),
            Primitive::DecNshSi => Some(FieldRef::NshSi),
            _ => None,
        }
    }

    /// True if executing this primitive can mark the packet dropped
    /// (directly, or via SI underflow).
    pub fn can_drop(&self) -> bool {
        matches!(self, Primitive::Drop | Primitive::DecNshSi)
    }

    /// True if this primitive writes the egress-port intrinsic.
    pub fn sets_egress(&self) -> bool {
        matches!(
            self,
            Primitive::SetEgressFromData(_) | Primitive::SetEgressConst(_)
        )
    }

    /// True if this primitive inserts or removes headers, shifting the
    /// offsets of every packet-resident field behind the edit point.
    pub fn restructures(&self) -> bool {
        matches!(
            self,
            Primitive::PushVlanFromData(_)
                | Primitive::PopVlan
                | Primitive::PushNshFromData(_)
                | Primitive::PopNsh
        )
    }
}

/// A named action: a list of primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Action {
    pub name: String,
    pub primitives: Vec<Primitive>,
}

impl Action {
    /// Construct an action.
    pub fn new(name: &str, primitives: Vec<Primitive>) -> Action {
        Action {
            name: name.to_string(),
            primitives,
        }
    }

    /// All fields this action writes.
    pub fn written_fields(&self) -> BTreeSet<FieldRef> {
        self.primitives
            .iter()
            .filter_map(Primitive::written_field)
            .collect()
    }
}

/// Identifies a table within a [`P4Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub usize);

/// A match-action table definition.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    /// Key fields with their match kinds.
    pub keys: Vec<(FieldRef, MatchKind)>,
    /// Actions entries can invoke (index = action id within the table).
    pub actions: Vec<Action>,
    /// Action applied when no entry matches (index into `actions`), or
    /// `None` for no-op miss.
    pub default_action: Option<usize>,
    /// Provisioned entry capacity (drives SRAM/TCAM block usage).
    pub size: usize,
}

impl Table {
    /// All fields this table's actions may write.
    pub fn written_fields(&self) -> BTreeSet<FieldRef> {
        self.actions
            .iter()
            .flat_map(|a| a.written_fields())
            .collect()
    }

    /// All fields this table matches.
    pub fn read_fields(&self) -> BTreeSet<FieldRef> {
        self.keys.iter().map(|(f, _)| *f).collect()
    }

    /// True if any key uses TCAM-backed matching.
    pub fn uses_tcam(&self) -> bool {
        self.keys
            .iter()
            .any(|(_, k)| matches!(k, MatchKind::Ternary | MatchKind::Lpm | MatchKind::Range))
    }
}

/// A runtime table entry.
#[derive(Debug, Clone)]
pub struct TableEntry {
    /// One match value per table key.
    pub keys: Vec<MatchValue>,
    /// Index into the table's `actions`.
    pub action: usize,
    /// Action data words referenced by `*FromData` primitives.
    pub action_data: Vec<u64>,
    /// Higher wins; ties broken by insertion order (first wins).
    pub priority: u32,
}

/// Control flow of the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Control {
    /// Apply tables/blocks in sequence.
    Seq(Vec<Control>),
    /// Apply one table.
    Apply(TableId),
    /// Branch on a metadata field value: exactly one case executes. Cases
    /// are *mutually exclusive*, which the compiler exploits to pack their
    /// tables into the same stages.
    Switch {
        on: FieldRef,
        cases: Vec<(u64, Control)>,
        default: Option<Box<Control>>,
    },
    /// Conditional execution (on a comparison), used for merge-point guards.
    If {
        field: FieldRef,
        op: CmpOp,
        value: u64,
        then_: Box<Control>,
    },
    /// Mutually exclusive blocks: at most one child processes any given
    /// packet (each child carries its own guard). The compiler exploits
    /// this to overlay the children onto the same stages — the property
    /// Lemur's generated code "expresses explicitly" so the platform
    /// compiler "can pack parallel branches into the same set of switch
    /// stages" (§4.2). At runtime every child executes; internal guards
    /// filter.
    Exclusive(Vec<Control>),
    /// Nothing.
    Nop,
}

/// Comparison operators for [`Control::If`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison.
    pub fn eval(&self, lhs: u64, rhs: u64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

/// Why a program is structurally invalid (rejected before compilation).
///
/// These are the malformations a *generated* program can plausibly carry
/// (the fuzzer's attack surface); compilation and the runtime assume a
/// validated program, so both entry points check this first instead of
/// panicking on out-of-range indices deep inside analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramError {
    /// The control tree applies a table id with no definition.
    DanglingTable(TableId),
    /// A table is applied more than once — the paper's §4.2 rule that "a
    /// table cannot be revisited".
    RevisitedTable(TableId),
    /// A table's default action index is out of range for its action list.
    BadDefaultAction { table: TableId, action: usize },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::DanglingTable(t) => {
                write!(f, "control applies undefined table {}", t.0)
            }
            ProgramError::RevisitedTable(t) => {
                write!(f, "table {} applied more than once", t.0)
            }
            ProgramError::BadDefaultAction { table, action } => {
                write!(f, "table {} default action {action} out of range", table.0)
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A complete P4 program: tables plus a control tree.
#[derive(Debug, Clone, Default)]
pub struct P4Program {
    pub tables: Vec<Table>,
    pub control: Option<Control>,
}

impl P4Program {
    /// An empty program.
    pub fn new() -> P4Program {
        P4Program::default()
    }

    /// Add a table, returning its id.
    pub fn add_table(&mut self, table: Table) -> TableId {
        self.tables.push(table);
        TableId(self.tables.len() - 1)
    }

    /// Look up a table.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0]
    }

    /// Total number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// All table ids in control-flow order (pre-order walk).
    pub fn tables_in_order(&self) -> Vec<TableId> {
        fn walk(c: &Control, out: &mut Vec<TableId>) {
            match c {
                Control::Seq(items) => items.iter().for_each(|i| walk(i, out)),
                Control::Apply(t) => out.push(*t),
                Control::Switch { cases, default, .. } => {
                    cases.iter().for_each(|(_, c)| walk(c, out));
                    if let Some(d) = default {
                        walk(d, out);
                    }
                }
                Control::If { then_, .. } => walk(then_, out),
                Control::Exclusive(items) => items.iter().for_each(|i| walk(i, out)),
                Control::Nop => {}
            }
        }
        let mut out = Vec::new();
        if let Some(c) = &self.control {
            walk(c, &mut out);
        }
        out
    }

    /// Structural validation: every applied table exists, no table is
    /// revisited, and default-action indices are in range. [`crate::compiler::compile`]
    /// and friends run this before analysis so malformed (e.g. fuzz-generated)
    /// programs surface a typed error instead of an index panic.
    pub fn validate(&self) -> Result<(), ProgramError> {
        let mut seen = vec![false; self.tables.len()];
        for t in self.tables_in_order() {
            if t.0 >= self.tables.len() {
                return Err(ProgramError::DanglingTable(t));
            }
            if seen[t.0] {
                return Err(ProgramError::RevisitedTable(t));
            }
            seen[t.0] = true;
        }
        for (i, table) in self.tables.iter().enumerate() {
            if let Some(d) = table.default_action {
                if d >= table.actions.len() {
                    return Err(ProgramError::BadDefaultAction {
                        table: TableId(i),
                        action: d,
                    });
                }
            }
        }
        Ok(())
    }

    /// A stable 128-bit fingerprint of everything stage compilation reads:
    /// every table's name, keys (field + match kind), action structure,
    /// default action, and provisioned size, plus the control tree that
    /// orders and groups them. Two programs with equal fingerprints compile
    /// identically against the same hardware model (compilation is a pure
    /// function of these features — runtime entries are irrelevant), which
    /// is the contract the placer's memoized stage-oracle cache relies on.
    ///
    /// The encoding is a canonical byte stream hashed with FNV-1a/128:
    /// purely structural, independent of `HashMap` iteration or allocation
    /// order, and stable across processes and runs (no `DefaultHasher`
    /// seeding).
    pub fn fingerprint(&self) -> u128 {
        let mut fp = Fingerprint::new();
        fp.word(self.tables.len() as u64);
        for t in &self.tables {
            fp.bytes(t.name.as_bytes());
            fp.word(t.keys.len() as u64);
            for (f, k) in &t.keys {
                fp.word(field_code(*f));
                fp.word(*k as u64);
            }
            fp.word(t.actions.len() as u64);
            for a in &t.actions {
                fp.bytes(a.name.as_bytes());
                fp.word(a.primitives.len() as u64);
                for p in &a.primitives {
                    primitive_code(p, &mut fp);
                }
            }
            fp.word(t.default_action.map(|d| d as u64 + 1).unwrap_or(0));
            fp.word(t.size as u64);
        }
        match &self.control {
            Some(c) => control_code(c, &mut fp),
            None => fp.word(0),
        }
        fp.finish()
    }
}

/// Incremental FNV-1a/128 over a canonical byte stream.
struct Fingerprint(u128);

impl Fingerprint {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    fn new() -> Fingerprint {
        Fingerprint(Self::OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u128;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        // Length-prefix so concatenated fields cannot alias.
        self.word(bs.len() as u64);
        for b in bs {
            self.byte(*b);
        }
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.byte(b);
        }
    }

    fn finish(self) -> u128 {
        self.0
    }
}

/// Stable numeric code for a field (variant tag ×256 + payload).
fn field_code(f: FieldRef) -> u64 {
    match f {
        FieldRef::EthSrc => 0,
        FieldRef::EthDst => 1 << 8,
        FieldRef::EtherType => 2 << 8,
        FieldRef::VlanVid => 3 << 8,
        FieldRef::Ipv4Src => 4 << 8,
        FieldRef::Ipv4Dst => 5 << 8,
        FieldRef::Ipv4Proto => 6 << 8,
        FieldRef::Ipv4Ttl => 7 << 8,
        FieldRef::L4Sport => 8 << 8,
        FieldRef::L4Dport => 9 << 8,
        FieldRef::NshSpi => 10 << 8,
        FieldRef::NshSi => 11 << 8,
        FieldRef::FlowHash(s) => (12 << 8) | s as u64,
        FieldRef::Meta(n) => (13 << 8) | n as u64,
    }
}

fn primitive_code(p: &Primitive, fp: &mut Fingerprint) {
    match p {
        Primitive::SetFieldConst(f, v) => {
            fp.word(1);
            fp.word(field_code(*f));
            fp.word(*v);
        }
        Primitive::SetFieldFromData(f, n) => {
            fp.word(2);
            fp.word(field_code(*f));
            fp.word(*n as u64);
        }
        Primitive::Drop => fp.word(3),
        Primitive::SetEgressFromData(n) => {
            fp.word(4);
            fp.word(*n as u64);
        }
        Primitive::SetEgressConst(p) => {
            fp.word(5);
            fp.word(*p as u64);
        }
        Primitive::PushVlanFromData(n) => {
            fp.word(6);
            fp.word(*n as u64);
        }
        Primitive::PopVlan => fp.word(7),
        Primitive::PushNshFromData(n) => {
            fp.word(8);
            fp.word(*n as u64);
        }
        Primitive::PopNsh => fp.word(9),
        Primitive::DecNshSi => fp.word(10),
        Primitive::NoOp => fp.word(11),
    }
}

fn control_code(c: &Control, fp: &mut Fingerprint) {
    match c {
        Control::Nop => fp.word(1),
        Control::Apply(t) => {
            fp.word(2);
            fp.word(t.0 as u64);
        }
        Control::Seq(items) => {
            fp.word(3);
            fp.word(items.len() as u64);
            for i in items {
                control_code(i, fp);
            }
        }
        Control::Switch { on, cases, default } => {
            fp.word(4);
            fp.word(field_code(*on));
            fp.word(cases.len() as u64);
            for (v, c) in cases {
                fp.word(*v);
                control_code(c, fp);
            }
            match default {
                Some(d) => {
                    fp.word(1);
                    control_code(d, fp);
                }
                None => fp.word(0),
            }
        }
        Control::If {
            field,
            op,
            value,
            then_,
        } => {
            fp.word(5);
            fp.word(field_code(*field));
            fp.word(*op as u64);
            fp.word(*value);
            control_code(then_, fp);
        }
        Control::Exclusive(items) => {
            fp.word(6);
            fp.word(items.len() as u64);
            for i in items {
                control_code(i, fp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_value_semantics() {
        assert!(MatchValue::Any.matches(123));
        assert!(MatchValue::Exact(5).matches(5));
        assert!(!MatchValue::Exact(5).matches(6));
        let lpm = MatchValue::Lpm {
            value: 0x0a000000,
            prefix_len: 8,
            width: 32,
        };
        assert!(lpm.matches(0x0a123456));
        assert!(!lpm.matches(0x0b000000));
        let tern = MatchValue::Ternary {
            value: 0x80,
            mask: 0xf0,
        };
        assert!(tern.matches(0x8f));
        assert!(!tern.matches(0x7f));
        let range = MatchValue::Range { lo: 10, hi: 20 };
        assert!(range.matches(10) && range.matches(20) && !range.matches(21));
    }

    #[test]
    fn lpm_zero_prefix_matches_all() {
        let lpm = MatchValue::Lpm {
            value: 0,
            prefix_len: 0,
            width: 32,
        };
        assert!(lpm.matches(u64::MAX));
    }

    #[test]
    fn specificity_ordering() {
        assert!(MatchValue::Exact(0).specificity() > MatchValue::Any.specificity());
        let short = MatchValue::Lpm {
            value: 0,
            prefix_len: 8,
            width: 32,
        };
        let long = MatchValue::Lpm {
            value: 0,
            prefix_len: 24,
            width: 32,
        };
        assert!(long.specificity() > short.specificity());
    }

    #[test]
    fn action_written_fields() {
        let a = Action::new(
            "nat_rewrite",
            vec![
                Primitive::SetFieldFromData(FieldRef::Ipv4Src, 0),
                Primitive::SetFieldFromData(FieldRef::L4Sport, 1),
            ],
        );
        let w = a.written_fields();
        assert!(w.contains(&FieldRef::Ipv4Src));
        assert!(w.contains(&FieldRef::L4Sport));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn table_tcam_detection() {
        let lpm_table = Table {
            name: "fwd".into(),
            keys: vec![(FieldRef::Ipv4Dst, MatchKind::Lpm)],
            actions: vec![],
            default_action: None,
            size: 100,
        };
        assert!(lpm_table.uses_tcam());
        let exact = Table {
            name: "nat".into(),
            keys: vec![(FieldRef::Ipv4Src, MatchKind::Exact)],
            actions: vec![],
            default_action: None,
            size: 100,
        };
        assert!(!exact.uses_tcam());
    }

    #[test]
    fn control_order_walk() {
        let mut p = P4Program::new();
        let mk = |name: &str| Table {
            name: name.into(),
            keys: vec![],
            actions: vec![],
            default_action: None,
            size: 1,
        };
        let a = p.add_table(mk("a"));
        let b = p.add_table(mk("b"));
        let c = p.add_table(mk("c"));
        p.control = Some(Control::Seq(vec![
            Control::Apply(a),
            Control::Switch {
                on: FieldRef::Meta(0),
                cases: vec![(0, Control::Apply(b)), (1, Control::Apply(c))],
                default: None,
            },
        ]));
        assert_eq!(p.tables_in_order(), vec![a, b, c]);
    }

    #[test]
    fn cmp_ops() {
        assert!(CmpOp::Eq.eval(1, 1));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(CmpOp::Ge.eval(2, 2));
    }

    fn fp_program(size: usize, kind: MatchKind) -> P4Program {
        let mut p = P4Program::new();
        let t = p.add_table(Table {
            name: "t".into(),
            keys: vec![(FieldRef::Ipv4Src, kind)],
            actions: vec![Action::new(
                "set",
                vec![Primitive::SetFieldConst(FieldRef::Meta(1), 7)],
            )],
            default_action: None,
            size,
        });
        p.control = Some(Control::Seq(vec![Control::Apply(t)]));
        p
    }

    #[test]
    fn fingerprint_is_stable_for_equal_programs() {
        let a = fp_program(100, MatchKind::Exact);
        let b = fp_program(100, MatchKind::Exact);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // And stable across repeated calls on the same program.
        assert_eq!(a.fingerprint(), a.fingerprint());
    }

    #[test]
    fn validate_catches_structural_malformations() {
        let mk = |name: &str| Table {
            name: name.into(),
            keys: vec![],
            actions: vec![Action::new("a", vec![Primitive::NoOp])],
            default_action: None,
            size: 1,
        };
        // Dangling table id.
        let mut p = P4Program::new();
        p.control = Some(Control::Apply(TableId(3)));
        assert_eq!(p.validate(), Err(ProgramError::DanglingTable(TableId(3))));
        // Revisited table.
        let mut p = P4Program::new();
        let t = p.add_table(mk("t"));
        p.control = Some(Control::Seq(vec![Control::Apply(t), Control::Apply(t)]));
        assert_eq!(p.validate(), Err(ProgramError::RevisitedTable(t)));
        // Default action out of range.
        let mut p = P4Program::new();
        let mut bad = mk("bad");
        bad.default_action = Some(5);
        let t = p.add_table(bad);
        p.control = Some(Control::Apply(t));
        assert_eq!(
            p.validate(),
            Err(ProgramError::BadDefaultAction {
                table: t,
                action: 5
            })
        );
        // A well-formed program passes.
        let mut p = P4Program::new();
        let t = p.add_table(mk("ok"));
        p.control = Some(Control::Apply(t));
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn fingerprint_sees_compile_relevant_changes() {
        let base = fp_program(100, MatchKind::Exact).fingerprint();
        // Size drives SRAM blocks.
        assert_ne!(base, fp_program(101, MatchKind::Exact).fingerprint());
        // Match kind drives TCAM usage.
        assert_ne!(base, fp_program(100, MatchKind::Ternary).fingerprint());
        // Control structure drives dependency analysis.
        let mut reordered = fp_program(100, MatchKind::Exact);
        reordered.control = Some(Control::Exclusive(vec![Control::Apply(TableId(0))]));
        assert_ne!(base, reordered.fingerprint());
        // An empty program differs from everything above.
        assert_ne!(base, P4Program::new().fingerprint());
    }
}
