//! P4 parser trees and the §A.2.1 unification algorithm.
//!
//! Each standalone P4 NF declares an *NF-local parser*: an ordered tree
//! rooted at Ethernet whose nodes are headers and whose edges are select
//! transitions ("on etherType 0x0800, parse ipv4"). When the meta-compiler
//! unifies NFs into one program it merges the local trees; a *conflicting*
//! transition (same header, same select value, different next header) means
//! the NFs cannot share the switch, and the placement is rejected.

use std::collections::BTreeMap;
use std::fmt;

/// A parser tree: `header -> (select value -> next header)`.
///
/// Select values are abstract `u64`s (etherType, IP protocol, ports);
/// `state` names are header names from the meta-compiler's header library.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParserTree {
    /// Root header (usually "ethernet").
    root: String,
    transitions: BTreeMap<String, BTreeMap<u64, String>>,
}

/// A merge conflict: two NFs disagree about a transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeError {
    pub state: String,
    pub select: u64,
    pub existing: String,
    pub incoming: String,
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conflicting parser transition at {} on {:#x}: {} vs {}",
            self.state, self.select, self.existing, self.incoming
        )
    }
}

impl std::error::Error for MergeError {}

impl ParserTree {
    /// A tree with only a root state.
    pub fn new(root: &str) -> ParserTree {
        ParserTree {
            root: root.to_string(),
            transitions: BTreeMap::new(),
        }
    }

    /// The root header name.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Add a transition `state --select--> next`.
    pub fn add_transition(&mut self, state: &str, select: u64, next: &str) -> &mut Self {
        self.transitions
            .entry(state.to_string())
            .or_default()
            .insert(select, next.to_string());
        self
    }

    /// Look up a transition.
    pub fn next(&self, state: &str, select: u64) -> Option<&str> {
        self.transitions
            .get(state)?
            .get(&select)
            .map(String::as_str)
    }

    /// All states reachable from the root (including the root), in BFS
    /// order.
    pub fn states(&self) -> Vec<String> {
        let mut seen = vec![self.root.clone()];
        let mut queue = std::collections::VecDeque::from([self.root.clone()]);
        while let Some(s) = queue.pop_front() {
            if let Some(edges) = self.transitions.get(&s) {
                for next in edges.values() {
                    if !seen.contains(next) {
                        seen.push(next.clone());
                        queue.push_back(next.clone());
                    }
                }
            }
        }
        seen
    }

    /// Total number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.values().map(BTreeMap::len).sum()
    }

    /// Merge `other` into this tree (§A.2.1): visit every state of the
    /// incoming tree and integrate non-existing transitions; a transition
    /// that exists with a *different* target is a conflict and rejects the
    /// merge (the unified tree is left unchanged on error).
    pub fn merge(&mut self, other: &ParserTree) -> Result<(), MergeError> {
        if self.transitions.is_empty() && self.root.is_empty() {
            self.root = other.root.clone();
        }
        // Validate first so a failed merge has no side effects.
        for (state, edges) in &other.transitions {
            if let Some(mine) = self.transitions.get(state) {
                for (select, next) in edges {
                    if let Some(existing) = mine.get(select) {
                        if existing != next {
                            return Err(MergeError {
                                state: state.clone(),
                                select: *select,
                                existing: existing.clone(),
                                incoming: next.clone(),
                            });
                        }
                    }
                }
            }
        }
        for (state, edges) in &other.transitions {
            let mine = self.transitions.entry(state.clone()).or_default();
            for (select, next) in edges {
                mine.entry(*select).or_insert_with(|| next.clone());
            }
        }
        Ok(())
    }

    /// Render in a P4-like textual form (used by generated-code output).
    pub fn to_p4_source(&self) -> String {
        let mut out = String::new();
        for state in self.states() {
            out.push_str(&format!("parser parse_{state} {{\n"));
            match self.transitions.get(&state) {
                Some(edges) if !edges.is_empty() => {
                    out.push_str("    select(next_header_field) {\n");
                    for (sel, next) in edges {
                        out.push_str(&format!("        {sel:#06x} : parse_{next};\n"));
                    }
                    out.push_str("        default : ingress;\n    }\n");
                }
                _ => out.push_str("    return ingress;\n"),
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Standard transitions used by the built-in header library.
pub mod well_known {
    use super::ParserTree;

    /// EtherType values (also usable as select constants).
    pub const ETH_IPV4: u64 = 0x0800;
    pub const ETH_VLAN: u64 = 0x8100;
    pub const ETH_NSH: u64 = 0x894f;
    /// IP protocols.
    pub const IP_TCP: u64 = 6;
    pub const IP_UDP: u64 = 17;

    /// The base tree every Lemur P4 program shares: ethernet → {nsh, vlan,
    /// ipv4}, ipv4 → {tcp, udp}.
    pub fn base_tree() -> ParserTree {
        let mut t = ParserTree::new("ethernet");
        t.add_transition("ethernet", ETH_IPV4, "ipv4")
            .add_transition("ethernet", ETH_NSH, "nsh")
            .add_transition("nsh", ETH_IPV4, "ipv4")
            .add_transition("ipv4", IP_TCP, "tcp")
            .add_transition("ipv4", IP_UDP, "udp");
        t
    }
}

#[cfg(test)]
mod tests {
    use super::well_known::*;
    use super::*;

    #[test]
    fn build_and_query() {
        let t = base_tree();
        assert_eq!(t.next("ethernet", ETH_IPV4), Some("ipv4"));
        assert_eq!(t.next("ipv4", IP_UDP), Some("udp"));
        assert_eq!(t.next("ipv4", 99), None);
        assert!(t.states().contains(&"tcp".to_string()));
    }

    #[test]
    fn merge_disjoint_extends() {
        let mut unified = base_tree();
        let before = unified.num_transitions();
        let mut vlan_nf = ParserTree::new("ethernet");
        vlan_nf
            .add_transition("ethernet", ETH_VLAN, "vlan")
            .add_transition("vlan", ETH_IPV4, "ipv4");
        unified.merge(&vlan_nf).unwrap();
        assert_eq!(unified.num_transitions(), before + 2);
        assert_eq!(unified.next("vlan", ETH_IPV4), Some("ipv4"));
    }

    #[test]
    fn merge_identical_is_idempotent() {
        let mut unified = base_tree();
        let copy = unified.clone();
        unified.merge(&copy).unwrap();
        assert_eq!(unified, copy);
    }

    #[test]
    fn merge_conflict_rejected_without_side_effects() {
        let mut unified = base_tree();
        let snapshot = unified.clone();
        let mut conflicting = ParserTree::new("ethernet");
        // Claims etherType 0x0800 parses a custom header, not ipv4.
        conflicting.add_transition("ethernet", ETH_IPV4, "myproto");
        let err = unified.merge(&conflicting).unwrap_err();
        assert_eq!(err.state, "ethernet");
        assert_eq!(err.existing, "ipv4");
        assert_eq!(err.incoming, "myproto");
        assert_eq!(unified, snapshot, "failed merge must not mutate the tree");
    }

    #[test]
    fn merge_partial_overlap_ok() {
        let mut unified = base_tree();
        let mut nf = ParserTree::new("ethernet");
        nf.add_transition("ethernet", ETH_IPV4, "ipv4") // same as existing
            .add_transition("ipv4", 47, "gre"); // new
        unified.merge(&nf).unwrap();
        assert_eq!(unified.next("ipv4", 47), Some("gre"));
    }

    #[test]
    fn states_bfs_from_root_only() {
        let mut t = ParserTree::new("ethernet");
        t.add_transition("orphan", 1, "nowhere"); // unreachable
        t.add_transition("ethernet", ETH_IPV4, "ipv4");
        let states = t.states();
        assert!(states.contains(&"ipv4".to_string()));
        assert!(!states.contains(&"orphan".to_string()));
    }

    #[test]
    fn p4_source_rendering() {
        let t = base_tree();
        let src = t.to_p4_source();
        assert!(src.contains("parser parse_ethernet"));
        assert!(src.contains("parse_ipv4"));
        assert!(src.contains("0x0800"));
    }
}
