//! The stage-packing compiler.
//!
//! Mirrors the role of the Tofino compiler in the paper: given a unified P4
//! program, decide whether it fits the pipeline's stages and, if so, how.
//! The Placer treats this as a black-box feasibility oracle (§3.2).
//!
//! Dependency analysis follows the paper's two rules (§4.2): a table cannot
//! be revisited, and two tables with a dependency cannot share a stage.
//! Tables in *mutually exclusive* branches get no cross-edges, which lets
//! first-fit packing place parallel branches into the same stages — the
//! effect the meta-compiler's dependency-elimination optimizations unlock.

use crate::ir::{Control, FieldRef, P4Program, TableId};
use crate::resources::PisaModel;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Why compilation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The program needs more stages than the pipeline has.
    OutOfStages { required: usize, available: usize },
    /// A single table exceeds per-stage resources and cannot be placed at
    /// all (e.g. wider than one stage's SRAM).
    TableTooLarge(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::OutOfStages {
                required,
                available,
            } => {
                write!(f, "program needs {required} stages, switch has {available}")
            }
            CompileError::TableTooLarge(name) => {
                write!(f, "table {name} exceeds per-stage resources")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiler options.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileOptions {
    /// Permit a table's entries to be split across consecutive stages when
    /// it does not fit one stage (real compilers do this for big exact
    /// tables). Enabled by default via `Default`? No — explicit.
    pub allow_table_splitting: bool,
}

/// The result of a successful compilation.
#[derive(Debug, Clone)]
pub struct StageAssignment {
    /// Tables (or table slices) per stage, in stage order.
    pub stages: Vec<Vec<TableId>>,
    /// Stage index of each table (first slice for split tables).
    pub table_stage: HashMap<TableId, usize>,
    /// Total stages used.
    pub num_stages_used: usize,
    /// Pipeline latency implied by the occupancy.
    pub latency_ns: f64,
}

#[derive(Debug, Default, Clone)]
struct DependencyGraph {
    /// preds[t] = tables that must be in strictly earlier stages.
    preds: HashMap<TableId, BTreeSet<TableId>>,
    /// Tables in control order.
    order: Vec<TableId>,
}

/// Build the table dependency graph for a program.
fn analyze(program: &P4Program) -> DependencyGraph {
    struct Ctx<'a> {
        program: &'a P4Program,
        graph: DependencyGraph,
        /// Effective read set of each visited table (keys + guard fields).
        reads: HashMap<TableId, BTreeSet<FieldRef>>,
        writes: HashMap<TableId, BTreeSet<FieldRef>>,
    }

    impl Ctx<'_> {
        /// Visit a control node. `before` holds tables that happen before
        /// this node; `guards` are fields the node's execution depends on.
        /// Returns the tables inside the node.
        fn visit(
            &mut self,
            node: &Control,
            before: &[TableId],
            guards: &BTreeSet<FieldRef>,
        ) -> Vec<TableId> {
            match node {
                Control::Nop => Vec::new(),
                Control::Apply(t) => {
                    let table = self.program.table(*t);
                    let mut reads = table.read_fields();
                    reads.extend(guards.iter().copied());
                    let writes = table.written_fields();
                    let mut preds = BTreeSet::new();
                    for &a in before {
                        let a_writes = &self.writes[&a];
                        let a_reads = &self.reads[&a];
                        let match_dep = a_writes.iter().any(|f| reads.contains(f));
                        let action_dep = a_writes.iter().any(|f| writes.contains(f));
                        let anti_dep = a_reads.iter().any(|f| writes.contains(f));
                        if match_dep || action_dep || anti_dep {
                            preds.insert(a);
                        }
                    }
                    self.reads.insert(*t, reads);
                    self.writes.insert(*t, writes);
                    self.graph.preds.insert(*t, preds);
                    self.graph.order.push(*t);
                    vec![*t]
                }
                Control::Seq(items) => {
                    let mut before = before.to_vec();
                    let mut all = Vec::new();
                    for item in items {
                        let inner = self.visit(item, &before, guards);
                        before.extend(inner.iter().copied());
                        all.extend(inner);
                    }
                    all
                }
                Control::Switch { on, cases, default } => {
                    let mut guards = guards.clone();
                    guards.insert(*on);
                    let mut all = Vec::new();
                    // Each case sees the same `before` set — cases are
                    // mutually exclusive, so no cross-case edges.
                    for (_, c) in cases {
                        all.extend(self.visit(c, before, &guards));
                    }
                    if let Some(d) = default {
                        all.extend(self.visit(d, before, &guards));
                    }
                    all
                }
                Control::If { field, then_, .. } => {
                    let mut guards = guards.clone();
                    guards.insert(*field);
                    self.visit(then_, before, &guards)
                }
                Control::Exclusive(items) => {
                    // Mutually exclusive blocks: each sees the same
                    // `before` set, so no cross-block edges are created
                    // and the packer may overlay them.
                    let mut all = Vec::new();
                    for item in items {
                        all.extend(self.visit(item, before, guards));
                    }
                    all
                }
            }
        }
    }

    let mut ctx = Ctx {
        program,
        graph: DependencyGraph::default(),
        reads: HashMap::new(),
        writes: HashMap::new(),
    };
    if let Some(control) = &program.control {
        ctx.visit(control, &[], &BTreeSet::new());
    }
    ctx.graph
}

/// Longest-path dependency level of each table (0-based).
fn levels(graph: &DependencyGraph) -> HashMap<TableId, usize> {
    let mut level = HashMap::new();
    for &t in &graph.order {
        let l = graph.preds[&t]
            .iter()
            .map(|p| level[p] + 1)
            .max()
            .unwrap_or(0);
        level.insert(t, l);
    }
    level
}

/// Compile a program against a hardware model: dependency analysis followed
/// by first-fit stage packing. Packing uses as many *virtual* stages as
/// needed, then errors if the count exceeds the model — this lets callers
/// report "would have required N stages" for diagnostics (§5.2).
pub fn compile(
    program: &P4Program,
    model: &PisaModel,
    opts: CompileOptions,
) -> Result<StageAssignment, CompileError> {
    let graph = analyze(program);

    #[derive(Clone, Default)]
    struct StageUse {
        sram: u32,
        tcam: u32,
        tables: u32,
    }
    let mut usage: Vec<StageUse> = Vec::new();
    let mut stages: Vec<Vec<TableId>> = Vec::new();
    let mut table_stage: HashMap<TableId, usize> = HashMap::new();

    for &t in &graph.order {
        let table = program.table(t);
        let sram = model.sram_cost(table);
        let tcam = model.tcam_cost(table);
        let earliest = graph.preds[&t]
            .iter()
            .map(|p| table_stage[p] + 1)
            .max()
            .unwrap_or(0);

        let fits_in_empty_stage =
            sram <= model.sram_blocks_per_stage && tcam <= model.tcam_blocks_per_stage;
        if !fits_in_empty_stage && !opts.allow_table_splitting {
            return Err(CompileError::TableTooLarge(table.name.clone()));
        }

        if fits_in_empty_stage {
            // First-fit: earliest stage with room.
            let mut s = earliest;
            loop {
                while s >= usage.len() {
                    usage.push(StageUse::default());
                    stages.push(Vec::new());
                }
                let u = &usage[s];
                if u.sram + sram <= model.sram_blocks_per_stage
                    && u.tcam + tcam <= model.tcam_blocks_per_stage
                    && u.tables < model.tables_per_stage
                {
                    break;
                }
                s += 1;
            }
            usage[s].sram += sram;
            usage[s].tcam += tcam;
            usage[s].tables += 1;
            stages[s].push(t);
            table_stage.insert(t, s);
        } else {
            // Split the table's blocks across consecutive stages starting
            // at the first stage with any room.
            let mut remaining_sram = sram;
            let mut remaining_tcam = tcam;
            let mut s = earliest;
            let mut first = None;
            let mut last = earliest;
            while remaining_sram > 0 || remaining_tcam > 0 {
                while s >= usage.len() {
                    usage.push(StageUse::default());
                    stages.push(Vec::new());
                }
                let u = &mut usage[s];
                if u.tables < model.tables_per_stage
                    && (u.sram < model.sram_blocks_per_stage
                        || u.tcam < model.tcam_blocks_per_stage)
                {
                    let take_sram = remaining_sram.min(model.sram_blocks_per_stage - u.sram);
                    let take_tcam = remaining_tcam.min(model.tcam_blocks_per_stage - u.tcam);
                    if take_sram > 0 || take_tcam > 0 {
                        u.sram += take_sram;
                        u.tcam += take_tcam;
                        u.tables += 1;
                        remaining_sram -= take_sram;
                        remaining_tcam -= take_tcam;
                        stages[s].push(t);
                        first.get_or_insert(s);
                        last = s;
                    }
                }
                if remaining_sram > 0 || remaining_tcam > 0 {
                    s += 1;
                }
            }
            table_stage.insert(t, first.unwrap_or(last));
        }
    }

    let num_stages_used = stages.len();
    if num_stages_used > model.num_stages {
        return Err(CompileError::OutOfStages {
            required: num_stages_used,
            available: model.num_stages,
        });
    }
    let latency_ns = model.pipeline_latency_ns(num_stages_used.max(1));
    Ok(StageAssignment {
        stages,
        table_stage,
        num_stages_used,
        latency_ns,
    })
}

/// The conservative analytic stage estimator the paper compares against
/// (§5.2): group tables by dependency level and provision whole stages per
/// level with first-fit *within* the level but no cross-level sharing.
/// Dominates the compiled stage count, which can interleave levels ("such
/// estimates were very conservative. For the 10 NAT placement, it
/// estimated 14 stages, while the compiler could fit these into 12").
pub fn estimate_conservative(program: &P4Program, model: &PisaModel) -> usize {
    let graph = analyze(program);
    let lv = levels(&graph);
    let max_level = lv.values().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut total = 0usize;
    for level in 0..max_level {
        let tables: Vec<_> = graph
            .order
            .iter()
            .filter(|t| lv[t] == level)
            .map(|t| program.table(*t))
            .collect();
        // First-fit within the level only.
        let mut stages: Vec<(u32, u32, u32)> = Vec::new(); // (sram, tcam, count)
        for t in tables {
            let (s, c) = (model.sram_cost(t), model.tcam_cost(t));
            let slot = stages.iter_mut().find(|(us, uc, un)| {
                us + s <= model.sram_blocks_per_stage
                    && uc + c <= model.tcam_blocks_per_stage
                    && *un < model.tables_per_stage
            });
            match slot {
                Some((us, uc, un)) => {
                    *us += s;
                    *uc += c;
                    *un += 1;
                }
                None => stages.push((s, c, 1)),
            }
        }
        total += stages.len().max(1);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Action, MatchKind, Primitive, Table};

    fn table(name: &str, reads: &[FieldRef], writes: &[FieldRef], size: usize) -> Table {
        Table {
            name: name.into(),
            keys: reads.iter().map(|f| (*f, MatchKind::Exact)).collect(),
            actions: vec![Action::new(
                "act",
                writes
                    .iter()
                    .map(|f| Primitive::SetFieldConst(*f, 0))
                    .collect(),
            )],
            default_action: None,
            size,
        }
    }

    fn seq_program(tables: Vec<Table>) -> P4Program {
        let mut p = P4Program::new();
        let ids: Vec<_> = tables.into_iter().map(|t| p.add_table(t)).collect();
        p.control = Some(Control::Seq(ids.into_iter().map(Control::Apply).collect()));
        p
    }

    #[test]
    fn independent_tables_share_a_stage() {
        let p = seq_program(vec![
            table("a", &[FieldRef::Ipv4Src], &[FieldRef::Meta(1)], 10),
            table("b", &[FieldRef::Ipv4Dst], &[FieldRef::Meta(2)], 10),
            table("c", &[FieldRef::L4Sport], &[FieldRef::Meta(3)], 10),
        ]);
        let out = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap();
        assert_eq!(out.num_stages_used, 1);
    }

    #[test]
    fn match_dependency_chains_stages() {
        // b matches the field a writes; c matches what b writes.
        let p = seq_program(vec![
            table("a", &[FieldRef::Ipv4Src], &[FieldRef::Meta(0)], 10),
            table("b", &[FieldRef::Meta(0)], &[FieldRef::Meta(1)], 10),
            table("c", &[FieldRef::Meta(1)], &[], 10),
        ]);
        let out = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap();
        assert_eq!(out.num_stages_used, 3);
        assert_eq!(out.table_stage[&TableId(0)], 0);
        assert_eq!(out.table_stage[&TableId(1)], 1);
        assert_eq!(out.table_stage[&TableId(2)], 2);
    }

    #[test]
    fn action_dependency_serializes() {
        // Both write the same field: write-write ordering.
        let p = seq_program(vec![
            table("a", &[], &[FieldRef::Ipv4Ttl], 10),
            table("b", &[], &[FieldRef::Ipv4Ttl], 10),
        ]);
        let out = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap();
        assert_eq!(out.num_stages_used, 2);
    }

    #[test]
    fn anti_dependency_serializes() {
        // a reads what b writes: b must come later.
        let p = seq_program(vec![
            table("a", &[FieldRef::Ipv4Dst], &[], 10),
            table("b", &[], &[FieldRef::Ipv4Dst], 10),
        ]);
        let out = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap();
        assert_eq!(out.num_stages_used, 2);
    }

    #[test]
    fn exclusive_branches_pack_together() {
        // A selector writes Meta(0); each branch holds a 2-table dependent
        // chain. With exclusivity, both branches overlay onto 2 stages.
        let mut p = P4Program::new();
        let sel = p.add_table(table("sel", &[FieldRef::Ipv4Src], &[FieldRef::Meta(0)], 10));
        let a1 = p.add_table(table("a1", &[FieldRef::Ipv4Dst], &[FieldRef::Meta(1)], 10));
        let a2 = p.add_table(table("a2", &[FieldRef::Meta(1)], &[], 10));
        let b1 = p.add_table(table("b1", &[FieldRef::Ipv4Dst], &[FieldRef::Meta(1)], 10));
        let b2 = p.add_table(table("b2", &[FieldRef::Meta(1)], &[], 10));
        p.control = Some(Control::Seq(vec![
            Control::Apply(sel),
            Control::Switch {
                on: FieldRef::Meta(0),
                cases: vec![
                    (
                        0,
                        Control::Seq(vec![Control::Apply(a1), Control::Apply(a2)]),
                    ),
                    (
                        1,
                        Control::Seq(vec![Control::Apply(b1), Control::Apply(b2)]),
                    ),
                ],
                default: None,
            },
        ]));
        let out = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap();
        // sel in stage 0; a1/b1 share stage 1; a2/b2 share stage 2.
        assert_eq!(out.num_stages_used, 3);
        assert_eq!(out.table_stage[&a1], out.table_stage[&b1]);
        assert_eq!(out.table_stage[&a2], out.table_stage[&b2]);
    }

    #[test]
    fn guard_field_creates_control_dependency() {
        // The branch tables read Meta(0) implicitly (guard), which `sel`
        // writes — so they land after it even with disjoint key fields.
        let mut p = P4Program::new();
        let sel = p.add_table(table("sel", &[], &[FieldRef::Meta(0)], 10));
        let x = p.add_table(table("x", &[FieldRef::L4Dport], &[], 10));
        p.control = Some(Control::Seq(vec![
            Control::Apply(sel),
            Control::Switch {
                on: FieldRef::Meta(0),
                cases: vec![(0, Control::Apply(x))],
                default: None,
            },
        ]));
        let out = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap();
        assert!(out.table_stage[&x] > out.table_stage[&sel]);
    }

    #[test]
    fn sram_spill_forces_new_stage() {
        let model = PisaModel::default(); // 8 SRAM blocks/stage
                                          // Three 12k-entry exact tables: 3 blocks each; two fit per stage
                                          // (6 ≤ 8), the third starts stage 2? 3 × 3 = 9 > 8 → two stages.
        let p = seq_program(vec![
            table("n1", &[FieldRef::Ipv4Src], &[FieldRef::Meta(1)], 12_000),
            table("n2", &[FieldRef::Ipv4Dst], &[FieldRef::Meta(2)], 12_000),
            table("n3", &[FieldRef::L4Sport], &[FieldRef::Meta(3)], 12_000),
        ]);
        let out = compile(&p, &model, CompileOptions::default()).unwrap();
        assert_eq!(out.num_stages_used, 2);
    }

    #[test]
    fn out_of_stages_reports_requirement() {
        // 14-deep dependency chain on a 12-stage pipeline.
        let tables: Vec<Table> = (0..14)
            .map(|i| {
                table(
                    &format!("t{i}"),
                    &[FieldRef::Meta(i as u8)],
                    &[FieldRef::Meta(i as u8 + 1)],
                    10,
                )
            })
            .collect();
        let p = seq_program(tables);
        let err = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap_err();
        assert_eq!(
            err,
            CompileError::OutOfStages {
                required: 14,
                available: 12
            }
        );
    }

    #[test]
    fn oversized_table_rejected_without_splitting() {
        // 8 blocks/stage × 4096 entries = 32768 max; 50k entries won't fit.
        let p = seq_program(vec![table("big", &[FieldRef::Ipv4Src], &[], 50_000)]);
        let err = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap_err();
        assert_eq!(err, CompileError::TableTooLarge("big".into()));
        // With splitting allowed it compiles across stages.
        let out = compile(
            &p,
            &PisaModel::default(),
            CompileOptions {
                allow_table_splitting: true,
            },
        )
        .unwrap();
        assert!(out.num_stages_used >= 2);
    }

    #[test]
    fn conservative_estimate_dominates_compiled() {
        // Mixed program: selector + exclusive branches + big tables.
        let mut p = P4Program::new();
        let sel = p.add_table(table("sel", &[], &[FieldRef::Meta(0)], 10));
        let mut cases = Vec::new();
        for i in 0..4 {
            let lookup = p.add_table(table(
                &format!("nat{i}_lookup"),
                &[FieldRef::Ipv4Src, FieldRef::L4Sport],
                &[FieldRef::Meta(1)],
                12_000,
            ));
            let rewrite = p.add_table(table(
                &format!("nat{i}_rewrite"),
                &[FieldRef::Meta(1)],
                &[FieldRef::Ipv4Src, FieldRef::L4Sport],
                12_000,
            ));
            cases.push((
                i as u64,
                Control::Seq(vec![Control::Apply(lookup), Control::Apply(rewrite)]),
            ));
        }
        p.control = Some(Control::Seq(vec![
            Control::Apply(sel),
            Control::Switch {
                on: FieldRef::Meta(0),
                cases,
                default: None,
            },
        ]));
        let model = PisaModel::default();
        let compiled = compile(&p, &model, CompileOptions::default())
            .unwrap()
            .num_stages_used;
        let estimate = estimate_conservative(&p, &model);
        assert!(
            estimate >= compiled,
            "estimate {estimate} must dominate compiled {compiled}"
        );
    }

    #[test]
    fn empty_program_compiles_to_zero_stages() {
        let p = P4Program::new();
        let out = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap();
        assert_eq!(out.num_stages_used, 0);
    }
}
