//! The stage-packing compiler.
//!
//! Mirrors the role of the Tofino compiler in the paper: given a unified P4
//! program, decide whether it fits the pipeline's stages and, if so, how.
//! The Placer treats this as a black-box feasibility oracle (§3.2).
//!
//! Dependency analysis follows the paper's two rules (§4.2): a table cannot
//! be revisited, and two tables with a dependency cannot share a stage.
//! Tables in *mutually exclusive* branches get no cross-edges, which lets
//! first-fit packing place parallel branches into the same stages — the
//! effect the meta-compiler's dependency-elimination optimizations unlock.

use crate::ir::{CmpOp, Control, FieldRef, P4Program, ProgramError, Table, TableId};
use crate::resources::PisaModel;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Why compilation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The program needs more stages than the pipeline has.
    OutOfStages { required: usize, available: usize },
    /// A single table exceeds per-stage resources and cannot be placed at
    /// all (e.g. wider than one stage's SRAM).
    TableTooLarge(String),
    /// The program is structurally malformed (see [`ProgramError`]).
    Invalid(ProgramError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::OutOfStages {
                required,
                available,
            } => {
                write!(f, "program needs {required} stages, switch has {available}")
            }
            CompileError::TableTooLarge(name) => {
                write!(f, "table {name} exceeds per-stage resources")
            }
            CompileError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiler options.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileOptions {
    /// Permit a table's entries to be split across consecutive stages when
    /// it does not fit one stage (real compilers do this for big exact
    /// tables). Enabled by default via `Default`? No — explicit.
    pub allow_table_splitting: bool,
    /// Track the implicit per-packet effects field-level analysis cannot
    /// see — egress-port writes, the drop flag, and header restructuring —
    /// as dependency tokens. Off by default: the paper's §4.2 rules are
    /// field-only, and the placer's stage counts are calibrated against
    /// them. The differential fuzzer turns this on, because without it
    /// stage-order execution can legally reorder e.g. two egress writers
    /// whose *fields* don't conflict.
    pub effect_deps: bool,
    /// Test-only fault injection for the fuzz harness's self-test: drop
    /// anti-dependency edges and prepend (rather than append) tables to
    /// their stage. Either half alone is mostly masked by in-stage order;
    /// together they let a writer overtake an earlier reader, which the
    /// differential executor must detect and shrink. Never enable outside
    /// tests.
    pub inject_packing_bug: bool,
}

/// The result of a successful compilation.
#[derive(Debug, Clone)]
pub struct StageAssignment {
    /// Tables (or table slices) per stage, in stage order.
    pub stages: Vec<Vec<TableId>>,
    /// Stage index of each table (first slice for split tables).
    pub table_stage: HashMap<TableId, usize>,
    /// Total stages used.
    pub num_stages_used: usize,
    /// Pipeline latency implied by the occupancy.
    pub latency_ns: f64,
}

#[derive(Debug, Default, Clone)]
struct DependencyGraph {
    /// preds[t] = tables that must be in strictly earlier stages.
    preds: HashMap<TableId, BTreeSet<TableId>>,
    /// Tables in control order.
    order: Vec<TableId>,
}

/// A dependency token. `Field` carries the paper's §4.2 field-level rules;
/// the other variants model per-packet effects that are invisible to
/// field analysis and only tracked when [`CompileOptions::effect_deps`]
/// is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Dep {
    Field(FieldRef),
    /// The egress-port intrinsic (last writer wins).
    Egress,
    /// The drop flag. Droppers write it; every table implicitly reads it
    /// because execution is conditioned on the packet being alive, which
    /// makes a potential dropper a barrier — exactly what short-circuit
    /// drop semantics need under stage-order execution.
    DropFlag,
    /// Header structure. Push/pop primitives shift the offsets of every
    /// packet-resident field behind the edit point.
    Structure,
}

/// Metadata registers live in the PHV, not the packet; everything else is
/// located by parsing the packet and moves when headers are pushed/popped.
fn is_packet_field(f: FieldRef) -> bool {
    !matches!(f, FieldRef::Meta(_))
}

/// The read/write dependency-token sets of one table (keys + guard fields,
/// action writes, plus effect tokens when `effect_deps` is on).
fn table_dep_sets(
    table: &Table,
    guards: &BTreeSet<FieldRef>,
    effect_deps: bool,
) -> (BTreeSet<Dep>, BTreeSet<Dep>) {
    let key_fields = table.read_fields();
    let written = table.written_fields();
    let mut reads: BTreeSet<Dep> = key_fields.iter().map(|f| Dep::Field(*f)).collect();
    reads.extend(guards.iter().map(|f| Dep::Field(*f)));
    let mut writes: BTreeSet<Dep> = written.iter().map(|f| Dep::Field(*f)).collect();
    if effect_deps {
        reads.insert(Dep::DropFlag);
        let touches_packet = key_fields
            .iter()
            .chain(written.iter())
            .chain(guards.iter())
            .any(|f| is_packet_field(*f));
        if touches_packet {
            reads.insert(Dep::Structure);
        }
        for action in &table.actions {
            for p in &action.primitives {
                if p.can_drop() {
                    writes.insert(Dep::DropFlag);
                }
                if p.sets_egress() {
                    writes.insert(Dep::Egress);
                }
                if p.restructures() {
                    reads.insert(Dep::Structure);
                    writes.insert(Dep::Structure);
                }
            }
        }
    }
    (reads, writes)
}

/// Build the table dependency graph for a program.
fn analyze(program: &P4Program, opts: &CompileOptions) -> DependencyGraph {
    struct Ctx<'a> {
        program: &'a P4Program,
        graph: DependencyGraph,
        /// Effective read set of each visited table (keys + guard fields).
        reads: HashMap<TableId, BTreeSet<Dep>>,
        writes: HashMap<TableId, BTreeSet<Dep>>,
        effect_deps: bool,
        ignore_anti_deps: bool,
    }

    impl Ctx<'_> {
        /// Visit a control node. `before` holds tables that happen before
        /// this node; `guards` are fields the node's execution depends on.
        /// Returns the tables inside the node.
        fn visit(
            &mut self,
            node: &Control,
            before: &[TableId],
            guards: &BTreeSet<FieldRef>,
        ) -> Vec<TableId> {
            match node {
                Control::Nop => Vec::new(),
                Control::Apply(t) => {
                    let table = self.program.table(*t);
                    let (reads, writes) = table_dep_sets(table, guards, self.effect_deps);
                    let mut preds = BTreeSet::new();
                    for &a in before {
                        let a_writes = &self.writes[&a];
                        let a_reads = &self.reads[&a];
                        let match_dep = a_writes.iter().any(|f| reads.contains(f));
                        let action_dep = a_writes.iter().any(|f| writes.contains(f));
                        let anti_dep = a_reads.iter().any(|f| writes.contains(f));
                        if match_dep || action_dep || (anti_dep && !self.ignore_anti_deps) {
                            preds.insert(a);
                        }
                    }
                    self.reads.insert(*t, reads);
                    self.writes.insert(*t, writes);
                    self.graph.preds.insert(*t, preds);
                    self.graph.order.push(*t);
                    vec![*t]
                }
                Control::Seq(items) => {
                    let mut before = before.to_vec();
                    let mut all = Vec::new();
                    for item in items {
                        let inner = self.visit(item, &before, guards);
                        before.extend(inner.iter().copied());
                        all.extend(inner);
                    }
                    all
                }
                Control::Switch { on, cases, default } => {
                    let mut guards = guards.clone();
                    guards.insert(*on);
                    let mut all = Vec::new();
                    // Each case sees the same `before` set — cases are
                    // mutually exclusive, so no cross-case edges.
                    for (_, c) in cases {
                        all.extend(self.visit(c, before, &guards));
                    }
                    if let Some(d) = default {
                        all.extend(self.visit(d, before, &guards));
                    }
                    all
                }
                Control::If { field, then_, .. } => {
                    let mut guards = guards.clone();
                    guards.insert(*field);
                    self.visit(then_, before, &guards)
                }
                Control::Exclusive(items) => {
                    // Mutually exclusive blocks: each sees the same
                    // `before` set, so no cross-block edges are created
                    // and the packer may overlay them.
                    let mut all = Vec::new();
                    for item in items {
                        all.extend(self.visit(item, before, guards));
                    }
                    all
                }
            }
        }
    }

    let mut ctx = Ctx {
        program,
        graph: DependencyGraph::default(),
        reads: HashMap::new(),
        writes: HashMap::new(),
        effect_deps: opts.effect_deps,
        ignore_anti_deps: opts.inject_packing_bug,
    };
    if let Some(control) = &program.control {
        ctx.visit(control, &[], &BTreeSet::new());
    }
    ctx.graph
}

/// Longest-path dependency level of each table (0-based).
fn levels(graph: &DependencyGraph) -> HashMap<TableId, usize> {
    let mut level = HashMap::new();
    for &t in &graph.order {
        let l = graph.preds[&t]
            .iter()
            .map(|p| level[p] + 1)
            .max()
            .unwrap_or(0);
        level.insert(t, l);
    }
    level
}

/// Compile a program against a hardware model: dependency analysis followed
/// by first-fit stage packing. Packing uses as many *virtual* stages as
/// needed, then errors if the count exceeds the model — this lets callers
/// report "would have required N stages" for diagnostics (§5.2).
pub fn compile(
    program: &P4Program,
    model: &PisaModel,
    opts: CompileOptions,
) -> Result<StageAssignment, CompileError> {
    program.validate().map_err(CompileError::Invalid)?;
    let graph = analyze(program, &opts);

    #[derive(Clone, Default)]
    struct StageUse {
        sram: u32,
        tcam: u32,
        tables: u32,
    }
    let mut usage: Vec<StageUse> = Vec::new();
    let mut stages: Vec<Vec<TableId>> = Vec::new();
    let mut table_stage: HashMap<TableId, usize> = HashMap::new();

    for &t in &graph.order {
        let table = program.table(t);
        let sram = model.sram_cost(table);
        let tcam = model.tcam_cost(table);
        let earliest = graph.preds[&t]
            .iter()
            .map(|p| table_stage[p] + 1)
            .max()
            .unwrap_or(0);

        let fits_in_empty_stage =
            sram <= model.sram_blocks_per_stage && tcam <= model.tcam_blocks_per_stage;
        if !fits_in_empty_stage && !opts.allow_table_splitting {
            return Err(CompileError::TableTooLarge(table.name.clone()));
        }

        if fits_in_empty_stage {
            // First-fit: earliest stage with room.
            let mut s = earliest;
            loop {
                while s >= usage.len() {
                    usage.push(StageUse::default());
                    stages.push(Vec::new());
                }
                let u = &usage[s];
                if u.sram + sram <= model.sram_blocks_per_stage
                    && u.tcam + tcam <= model.tcam_blocks_per_stage
                    && u.tables < model.tables_per_stage
                {
                    break;
                }
                s += 1;
            }
            usage[s].sram += sram;
            usage[s].tcam += tcam;
            usage[s].tables += 1;
            if opts.inject_packing_bug {
                // Second half of the injected fault: reverse in-stage order
                // so a writer that (wrongly) shares a reader's stage runs
                // first under stage-order execution.
                stages[s].insert(0, t);
            } else {
                stages[s].push(t);
            }
            table_stage.insert(t, s);
        } else {
            // Split the table's blocks across consecutive stages starting
            // at the first stage with any room.
            let mut remaining_sram = sram;
            let mut remaining_tcam = tcam;
            let mut s = earliest;
            let mut first = None;
            let mut last = earliest;
            while remaining_sram > 0 || remaining_tcam > 0 {
                while s >= usage.len() {
                    usage.push(StageUse::default());
                    stages.push(Vec::new());
                }
                let u = &mut usage[s];
                if u.tables < model.tables_per_stage
                    && (u.sram < model.sram_blocks_per_stage
                        || u.tcam < model.tcam_blocks_per_stage)
                {
                    let take_sram = remaining_sram.min(model.sram_blocks_per_stage - u.sram);
                    let take_tcam = remaining_tcam.min(model.tcam_blocks_per_stage - u.tcam);
                    if take_sram > 0 || take_tcam > 0 {
                        u.sram += take_sram;
                        u.tcam += take_tcam;
                        u.tables += 1;
                        remaining_sram -= take_sram;
                        remaining_tcam -= take_tcam;
                        stages[s].push(t);
                        first.get_or_insert(s);
                        last = s;
                    }
                }
                if remaining_sram > 0 || remaining_tcam > 0 {
                    s += 1;
                }
            }
            table_stage.insert(t, first.unwrap_or(last));
        }
    }

    let num_stages_used = stages.len();
    if num_stages_used > model.num_stages {
        return Err(CompileError::OutOfStages {
            required: num_stages_used,
            available: model.num_stages,
        });
    }
    let latency_ns = model.pipeline_latency_ns(num_stages_used.max(1));
    Ok(StageAssignment {
        stages,
        table_stage,
        num_stages_used,
        latency_ns,
    })
}

/// The reference compiler for differential testing: one table per stage in
/// control order, no parallel-branch packing, no exclusivity overlay, no
/// splitting. Trivially correct under stage-order execution (stage order
/// *is* control order), which is what makes it a useful oracle against the
/// packing compiler — per Wong et al. (2005.02310), any observable
/// divergence between the two on the same packets is a compiler bug.
pub fn compile_naive(
    program: &P4Program,
    model: &PisaModel,
) -> Result<StageAssignment, CompileError> {
    program.validate().map_err(CompileError::Invalid)?;
    let order = program.tables_in_order();
    let mut stages: Vec<Vec<TableId>> = Vec::with_capacity(order.len());
    let mut table_stage: HashMap<TableId, usize> = HashMap::new();
    for (s, &t) in order.iter().enumerate() {
        let table = program.table(t);
        if model.sram_cost(table) > model.sram_blocks_per_stage
            || model.tcam_cost(table) > model.tcam_blocks_per_stage
        {
            return Err(CompileError::TableTooLarge(table.name.clone()));
        }
        stages.push(vec![t]);
        table_stage.insert(t, s);
    }
    let num_stages_used = stages.len();
    if num_stages_used > model.num_stages {
        return Err(CompileError::OutOfStages {
            required: num_stages_used,
            available: model.num_stages,
        });
    }
    let latency_ns = model.pipeline_latency_ns(num_stages_used.max(1));
    Ok(StageAssignment {
        stages,
        table_stage,
        num_stages_used,
        latency_ns,
    })
}

/// One conjunct of a table's path condition: the control-tree tests that
/// must hold for the table to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardAtom {
    /// `Switch` case arm: the selector equals `value`.
    Eq { field: FieldRef, value: u64 },
    /// `Switch` default arm: the selector equals none of the case values.
    NotIn { field: FieldRef, values: Vec<u64> },
    /// `If` condition.
    Cmp {
        field: FieldRef,
        op: CmpOp,
        value: u64,
    },
}

impl GuardAtom {
    /// The field this guard tests.
    pub fn field(&self) -> FieldRef {
        match self {
            GuardAtom::Eq { field, .. }
            | GuardAtom::NotIn { field, .. }
            | GuardAtom::Cmp { field, .. } => *field,
        }
    }

    /// Evaluate against the field's current value.
    pub fn eval(&self, v: u64) -> bool {
        match self {
            GuardAtom::Eq { value, .. } => v == *value,
            GuardAtom::NotIn { values, .. } => !values.contains(&v),
            GuardAtom::Cmp { op, value, .. } => op.eval(v, *value),
        }
    }
}

/// Each table's path condition as a conjunction of [`GuardAtom`]s, from a
/// control-tree walk. Stage-order execution ([`crate::runtime::Switch::process_staged`])
/// re-evaluates these per table, which matches the tree's evaluate-once
/// semantics as long as no table writes a selector that guards itself or a
/// same-or-later table — the discipline the fuzz generator maintains.
pub fn table_guards(program: &P4Program) -> HashMap<TableId, Vec<GuardAtom>> {
    fn walk(node: &Control, path: &mut Vec<GuardAtom>, out: &mut HashMap<TableId, Vec<GuardAtom>>) {
        match node {
            Control::Nop => {}
            Control::Apply(t) => {
                out.insert(*t, path.clone());
            }
            Control::Seq(items) | Control::Exclusive(items) => {
                for item in items {
                    walk(item, path, out);
                }
            }
            Control::Switch { on, cases, default } => {
                for (v, c) in cases {
                    path.push(GuardAtom::Eq {
                        field: *on,
                        value: *v,
                    });
                    walk(c, path, out);
                    path.pop();
                }
                if let Some(d) = default {
                    path.push(GuardAtom::NotIn {
                        field: *on,
                        values: cases.iter().map(|(v, _)| *v).collect(),
                    });
                    walk(d, path, out);
                    path.pop();
                }
            }
            Control::If {
                field,
                op,
                value,
                then_,
            } => {
                path.push(GuardAtom::Cmp {
                    field: *field,
                    op: *op,
                    value: *value,
                });
                walk(then_, path, out);
                path.pop();
            }
        }
    }
    let mut out = HashMap::new();
    if let Some(c) = &program.control {
        walk(c, &mut Vec::new(), &mut out);
    }
    out
}

/// The conservative analytic stage estimator the paper compares against
/// (§5.2): group tables by dependency level and provision whole stages per
/// level with first-fit *within* the level but no cross-level sharing.
/// Dominates the compiled stage count, which can interleave levels ("such
/// estimates were very conservative. For the 10 NAT placement, it
/// estimated 14 stages, while the compiler could fit these into 12").
/// The program must be valid ([`P4Program::validate`]).
pub fn estimate_conservative(program: &P4Program, model: &PisaModel) -> usize {
    estimate_conservative_with(program, model, &CompileOptions::default())
}

/// [`estimate_conservative`] under explicit [`CompileOptions`], so callers
/// comparing against `compile(…, opts)` use the same dependency graph.
pub fn estimate_conservative_with(
    program: &P4Program,
    model: &PisaModel,
    opts: &CompileOptions,
) -> usize {
    let graph = analyze(program, opts);
    let lv = levels(&graph);
    let max_level = lv.values().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut total = 0usize;
    for level in 0..max_level {
        let tables: Vec<_> = graph
            .order
            .iter()
            .filter(|t| lv[t] == level)
            .map(|t| program.table(*t))
            .collect();
        // First-fit within the level only.
        let mut stages: Vec<(u32, u32, u32)> = Vec::new(); // (sram, tcam, count)
        for t in tables {
            let (s, c) = (model.sram_cost(t), model.tcam_cost(t));
            let slot = stages.iter_mut().find(|(us, uc, un)| {
                us + s <= model.sram_blocks_per_stage
                    && uc + c <= model.tcam_blocks_per_stage
                    && *un < model.tables_per_stage
            });
            match slot {
                Some((us, uc, un)) => {
                    *us += s;
                    *uc += c;
                    *un += 1;
                }
                None => stages.push((s, c, 1)),
            }
        }
        total += stages.len().max(1);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Action, MatchKind, Primitive, Table};

    fn table(name: &str, reads: &[FieldRef], writes: &[FieldRef], size: usize) -> Table {
        Table {
            name: name.into(),
            keys: reads.iter().map(|f| (*f, MatchKind::Exact)).collect(),
            actions: vec![Action::new(
                "act",
                writes
                    .iter()
                    .map(|f| Primitive::SetFieldConst(*f, 0))
                    .collect(),
            )],
            default_action: None,
            size,
        }
    }

    fn seq_program(tables: Vec<Table>) -> P4Program {
        let mut p = P4Program::new();
        let ids: Vec<_> = tables.into_iter().map(|t| p.add_table(t)).collect();
        p.control = Some(Control::Seq(ids.into_iter().map(Control::Apply).collect()));
        p
    }

    #[test]
    fn independent_tables_share_a_stage() {
        let p = seq_program(vec![
            table("a", &[FieldRef::Ipv4Src], &[FieldRef::Meta(1)], 10),
            table("b", &[FieldRef::Ipv4Dst], &[FieldRef::Meta(2)], 10),
            table("c", &[FieldRef::L4Sport], &[FieldRef::Meta(3)], 10),
        ]);
        let out = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap();
        assert_eq!(out.num_stages_used, 1);
    }

    #[test]
    fn match_dependency_chains_stages() {
        // b matches the field a writes; c matches what b writes.
        let p = seq_program(vec![
            table("a", &[FieldRef::Ipv4Src], &[FieldRef::Meta(0)], 10),
            table("b", &[FieldRef::Meta(0)], &[FieldRef::Meta(1)], 10),
            table("c", &[FieldRef::Meta(1)], &[], 10),
        ]);
        let out = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap();
        assert_eq!(out.num_stages_used, 3);
        assert_eq!(out.table_stage[&TableId(0)], 0);
        assert_eq!(out.table_stage[&TableId(1)], 1);
        assert_eq!(out.table_stage[&TableId(2)], 2);
    }

    #[test]
    fn action_dependency_serializes() {
        // Both write the same field: write-write ordering.
        let p = seq_program(vec![
            table("a", &[], &[FieldRef::Ipv4Ttl], 10),
            table("b", &[], &[FieldRef::Ipv4Ttl], 10),
        ]);
        let out = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap();
        assert_eq!(out.num_stages_used, 2);
    }

    #[test]
    fn anti_dependency_serializes() {
        // a reads what b writes: b must come later.
        let p = seq_program(vec![
            table("a", &[FieldRef::Ipv4Dst], &[], 10),
            table("b", &[], &[FieldRef::Ipv4Dst], 10),
        ]);
        let out = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap();
        assert_eq!(out.num_stages_used, 2);
    }

    #[test]
    fn exclusive_branches_pack_together() {
        // A selector writes Meta(0); each branch holds a 2-table dependent
        // chain. With exclusivity, both branches overlay onto 2 stages.
        let mut p = P4Program::new();
        let sel = p.add_table(table("sel", &[FieldRef::Ipv4Src], &[FieldRef::Meta(0)], 10));
        let a1 = p.add_table(table("a1", &[FieldRef::Ipv4Dst], &[FieldRef::Meta(1)], 10));
        let a2 = p.add_table(table("a2", &[FieldRef::Meta(1)], &[], 10));
        let b1 = p.add_table(table("b1", &[FieldRef::Ipv4Dst], &[FieldRef::Meta(1)], 10));
        let b2 = p.add_table(table("b2", &[FieldRef::Meta(1)], &[], 10));
        p.control = Some(Control::Seq(vec![
            Control::Apply(sel),
            Control::Switch {
                on: FieldRef::Meta(0),
                cases: vec![
                    (
                        0,
                        Control::Seq(vec![Control::Apply(a1), Control::Apply(a2)]),
                    ),
                    (
                        1,
                        Control::Seq(vec![Control::Apply(b1), Control::Apply(b2)]),
                    ),
                ],
                default: None,
            },
        ]));
        let out = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap();
        // sel in stage 0; a1/b1 share stage 1; a2/b2 share stage 2.
        assert_eq!(out.num_stages_used, 3);
        assert_eq!(out.table_stage[&a1], out.table_stage[&b1]);
        assert_eq!(out.table_stage[&a2], out.table_stage[&b2]);
    }

    #[test]
    fn guard_field_creates_control_dependency() {
        // The branch tables read Meta(0) implicitly (guard), which `sel`
        // writes — so they land after it even with disjoint key fields.
        let mut p = P4Program::new();
        let sel = p.add_table(table("sel", &[], &[FieldRef::Meta(0)], 10));
        let x = p.add_table(table("x", &[FieldRef::L4Dport], &[], 10));
        p.control = Some(Control::Seq(vec![
            Control::Apply(sel),
            Control::Switch {
                on: FieldRef::Meta(0),
                cases: vec![(0, Control::Apply(x))],
                default: None,
            },
        ]));
        let out = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap();
        assert!(out.table_stage[&x] > out.table_stage[&sel]);
    }

    #[test]
    fn sram_spill_forces_new_stage() {
        let model = PisaModel::default(); // 8 SRAM blocks/stage
                                          // Three 12k-entry exact tables: 3 blocks each; two fit per stage
                                          // (6 ≤ 8), the third starts stage 2? 3 × 3 = 9 > 8 → two stages.
        let p = seq_program(vec![
            table("n1", &[FieldRef::Ipv4Src], &[FieldRef::Meta(1)], 12_000),
            table("n2", &[FieldRef::Ipv4Dst], &[FieldRef::Meta(2)], 12_000),
            table("n3", &[FieldRef::L4Sport], &[FieldRef::Meta(3)], 12_000),
        ]);
        let out = compile(&p, &model, CompileOptions::default()).unwrap();
        assert_eq!(out.num_stages_used, 2);
    }

    #[test]
    fn out_of_stages_reports_requirement() {
        // 14-deep dependency chain on a 12-stage pipeline.
        let tables: Vec<Table> = (0..14)
            .map(|i| {
                table(
                    &format!("t{i}"),
                    &[FieldRef::Meta(i as u8)],
                    &[FieldRef::Meta(i as u8 + 1)],
                    10,
                )
            })
            .collect();
        let p = seq_program(tables);
        let err = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap_err();
        assert_eq!(
            err,
            CompileError::OutOfStages {
                required: 14,
                available: 12
            }
        );
    }

    #[test]
    fn oversized_table_rejected_without_splitting() {
        // 8 blocks/stage × 4096 entries = 32768 max; 50k entries won't fit.
        let p = seq_program(vec![table("big", &[FieldRef::Ipv4Src], &[], 50_000)]);
        let err = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap_err();
        assert_eq!(err, CompileError::TableTooLarge("big".into()));
        // With splitting allowed it compiles across stages.
        let out = compile(
            &p,
            &PisaModel::default(),
            CompileOptions {
                allow_table_splitting: true,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert!(out.num_stages_used >= 2);
    }

    #[test]
    fn conservative_estimate_dominates_compiled() {
        // Mixed program: selector + exclusive branches + big tables.
        let mut p = P4Program::new();
        let sel = p.add_table(table("sel", &[], &[FieldRef::Meta(0)], 10));
        let mut cases = Vec::new();
        for i in 0..4 {
            let lookup = p.add_table(table(
                &format!("nat{i}_lookup"),
                &[FieldRef::Ipv4Src, FieldRef::L4Sport],
                &[FieldRef::Meta(1)],
                12_000,
            ));
            let rewrite = p.add_table(table(
                &format!("nat{i}_rewrite"),
                &[FieldRef::Meta(1)],
                &[FieldRef::Ipv4Src, FieldRef::L4Sport],
                12_000,
            ));
            cases.push((
                i as u64,
                Control::Seq(vec![Control::Apply(lookup), Control::Apply(rewrite)]),
            ));
        }
        p.control = Some(Control::Seq(vec![
            Control::Apply(sel),
            Control::Switch {
                on: FieldRef::Meta(0),
                cases,
                default: None,
            },
        ]));
        let model = PisaModel::default();
        let compiled = compile(&p, &model, CompileOptions::default())
            .unwrap()
            .num_stages_used;
        let estimate = estimate_conservative(&p, &model);
        assert!(
            estimate >= compiled,
            "estimate {estimate} must dominate compiled {compiled}"
        );
    }

    #[test]
    fn empty_program_compiles_to_zero_stages() {
        let p = P4Program::new();
        let out = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap();
        assert_eq!(out.num_stages_used, 0);
    }

    #[test]
    fn invalid_program_rejected_with_typed_error() {
        let mut p = P4Program::new();
        p.control = Some(Control::Apply(TableId(9)));
        let err = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::Invalid(_)));
        assert!(matches!(
            compile_naive(&p, &PisaModel::default()).unwrap_err(),
            CompileError::Invalid(_)
        ));
    }

    #[test]
    fn naive_compiler_uses_control_order_one_table_per_stage() {
        let p = seq_program(vec![
            table("a", &[FieldRef::Ipv4Src], &[FieldRef::Meta(1)], 10),
            table("b", &[FieldRef::Ipv4Dst], &[FieldRef::Meta(2)], 10),
            table("c", &[FieldRef::L4Sport], &[FieldRef::Meta(3)], 10),
        ]);
        let out = compile_naive(&p, &PisaModel::default()).unwrap();
        assert_eq!(out.num_stages_used, 3);
        assert_eq!(
            out.stages,
            vec![vec![TableId(0)], vec![TableId(1)], vec![TableId(2)]]
        );
        // The packed compiler fits the same program into one stage.
        let packed = compile(&p, &PisaModel::default(), CompileOptions::default()).unwrap();
        assert_eq!(packed.num_stages_used, 1);
    }

    #[test]
    fn effect_deps_orders_invisible_effects() {
        // Two egress writers with disjoint field sets: field-only analysis
        // packs them together; effect tracking serializes them.
        let mk = |n: &str| {
            let mut t = table(n, &[], &[], 10);
            t.actions = vec![Action::new("out", vec![Primitive::SetEgressConst(1)])];
            t
        };
        let p = seq_program(vec![mk("e1"), mk("e2")]);
        let model = PisaModel::default();
        let plain = compile(&p, &model, CompileOptions::default()).unwrap();
        assert_eq!(plain.num_stages_used, 1);
        let strict = compile(
            &p,
            &model,
            CompileOptions {
                effect_deps: true,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(strict.num_stages_used, 2);
    }

    #[test]
    fn injected_bug_lets_writer_overtake_reader() {
        // a reads Ipv4Ttl, b writes it: an anti-dependency. The injected
        // bug drops that edge and prepends b, so b lands *before* a in the
        // shared stage — the divergence the fuzz self-test must catch.
        let p = seq_program(vec![
            table("a", &[FieldRef::Ipv4Ttl], &[], 10),
            table("b", &[], &[FieldRef::Ipv4Ttl], 10),
        ]);
        let model = PisaModel::default();
        let good = compile(&p, &model, CompileOptions::default()).unwrap();
        assert_eq!(good.num_stages_used, 2);
        let buggy = compile(
            &p,
            &model,
            CompileOptions {
                inject_packing_bug: true,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(buggy.num_stages_used, 1);
        assert_eq!(buggy.stages[0], vec![TableId(1), TableId(0)]);
    }

    #[test]
    fn table_guards_capture_path_conditions() {
        let mut p = P4Program::new();
        let sel = p.add_table(table("sel", &[], &[FieldRef::Meta(0)], 10));
        let a = p.add_table(table("a", &[], &[], 1));
        let b = p.add_table(table("b", &[], &[], 1));
        let c = p.add_table(table("c", &[], &[], 1));
        p.control = Some(Control::Seq(vec![
            Control::Apply(sel),
            Control::Switch {
                on: FieldRef::Meta(0),
                cases: vec![(7, Control::Apply(a))],
                default: Some(Box::new(Control::If {
                    field: FieldRef::Ipv4Ttl,
                    op: CmpOp::Lt,
                    value: 2,
                    then_: Box::new(Control::Apply(b)),
                })),
            },
            Control::Apply(c),
        ]));
        let g = table_guards(&p);
        assert!(g[&sel].is_empty());
        assert_eq!(
            g[&a],
            vec![GuardAtom::Eq {
                field: FieldRef::Meta(0),
                value: 7
            }]
        );
        assert_eq!(
            g[&b],
            vec![
                GuardAtom::NotIn {
                    field: FieldRef::Meta(0),
                    values: vec![7]
                },
                GuardAtom::Cmp {
                    field: FieldRef::Ipv4Ttl,
                    op: CmpOp::Lt,
                    value: 2
                },
            ]
        );
        assert!(g[&c].is_empty());
        // Atom evaluation.
        assert!(g[&a][0].eval(7) && !g[&a][0].eval(8));
        assert!(g[&b][0].eval(8) && !g[&b][0].eval(7));
        assert!(g[&b][1].eval(1) && !g[&b][1].eval(2));
    }
}
