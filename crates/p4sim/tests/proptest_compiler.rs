//! Property-based tests for the stage-packing compiler: for arbitrary
//! generated programs, any successful compilation must respect every
//! dependency and every per-stage resource limit, and the conservative
//! estimator must dominate the compiled stage count.

use lemur_p4sim::compiler::{compile, estimate_conservative, CompileOptions};
use lemur_p4sim::{Action, Control, FieldRef, MatchKind, P4Program, PisaModel, Primitive, Table};
use proptest::prelude::*;
use std::collections::HashSet;

/// A random program shape: a sequence of tables, each reading/writing a
/// few metadata registers (which induces random dependency structure),
/// with occasional exclusive branch blocks.
fn arb_program() -> impl Strategy<Value = P4Program> {
    let table = (
        prop::collection::vec(0u8..6, 0..3), // read regs
        prop::collection::vec(0u8..6, 0..3), // written regs
        1usize..6000,                        // entries
        prop::bool::ANY,                     // ternary?
    );
    (
        prop::collection::vec(table, 1..10),
        prop::bool::ANY, // wrap middle third in Exclusive?
    )
        .prop_map(|(specs, exclusive)| {
            let mut p = P4Program::new();
            let mut applies = Vec::new();
            for (i, (reads, writes, size, ternary)) in specs.into_iter().enumerate() {
                let keys: Vec<_> = reads
                    .iter()
                    .map(|r| {
                        (
                            FieldRef::Meta(*r),
                            if ternary {
                                MatchKind::Ternary
                            } else {
                                MatchKind::Exact
                            },
                        )
                    })
                    .collect();
                let prims: Vec<_> = writes
                    .iter()
                    .map(|w| Primitive::SetFieldConst(FieldRef::Meta(*w), 1))
                    .collect();
                let id = p.add_table(Table {
                    name: format!("t{i}"),
                    keys,
                    actions: vec![Action::new("a", prims)],
                    default_action: Some(0),
                    size,
                });
                applies.push(Control::Apply(id));
            }
            let control = if exclusive && applies.len() >= 3 {
                let tail = applies.split_off(2 * applies.len() / 3);
                let mid = applies.split_off(applies.len() / 3);
                let mut seq = applies;
                seq.push(Control::Exclusive(mid));
                seq.extend(tail);
                Control::Seq(seq)
            } else {
                Control::Seq(applies)
            };
            p.control = Some(control);
            p
        })
}

proptest! {
    #[test]
    fn compilation_respects_resources_and_estimator_dominates(
        program in arb_program(),
    ) {
        // Roomy stage budget: we check internal consistency.
        let model = PisaModel { num_stages: 64, ..Default::default() };
        let Ok(out) = compile(&program, &model, CompileOptions::default()) else {
            // Oversized single tables legitimately fail.
            return Ok(());
        };
        // (1) Every table placed exactly once.
        let mut seen = HashSet::new();
        for stage in &out.stages {
            for t in stage {
                prop_assert!(seen.insert(*t), "table placed twice");
            }
        }
        prop_assert_eq!(seen.len(), program.num_tables());
        // (2) Per-stage resource limits hold.
        for stage in &out.stages {
            let sram: u32 = stage.iter().map(|t| model.sram_cost(program.table(*t))).sum();
            let tcam: u32 = stage.iter().map(|t| model.tcam_cost(program.table(*t))).sum();
            prop_assert!(sram <= model.sram_blocks_per_stage);
            prop_assert!(tcam <= model.tcam_blocks_per_stage);
            prop_assert!(stage.len() as u32 <= model.tables_per_stage);
        }
        // (3) Sequential read-after-write pairs are stage-ordered.
        let order = program.tables_in_order();
        for (i, a) in order.iter().enumerate() {
            for b in order.iter().skip(i + 1) {
                let wa = program.table(*a).written_fields();
                let rb = program.table(*b).read_fields();
                let conflict = wa.iter().any(|f| rb.contains(f));
                // Only require ordering when both sit in the same Seq scope
                // (Exclusive siblings are unordered); approximate by
                // checking only pairs that ARE ordered by the compiler —
                // i.e. assert no conflict pair shares a stage.
                if conflict {
                    prop_assert!(
                        out.table_stage[a] != out.table_stage[b]
                            || in_exclusive_siblings(&program, *a, *b),
                        "dependent tables share a stage"
                    );
                }
            }
        }
        // (4) The conservative estimator dominates.
        let est = estimate_conservative(&program, &model);
        prop_assert!(
            est >= out.num_stages_used,
            "estimate {est} below compiled {}",
            out.num_stages_used
        );
    }
}

/// True if `a` and `b` live in different children of the same Exclusive.
fn in_exclusive_siblings(
    program: &P4Program,
    a: lemur_p4sim::TableId,
    b: lemur_p4sim::TableId,
) -> bool {
    fn tables_in(c: &Control, out: &mut Vec<lemur_p4sim::TableId>) {
        match c {
            Control::Seq(items) => items.iter().for_each(|i| tables_in(i, out)),
            Control::Apply(t) => out.push(*t),
            Control::Exclusive(items) => items.iter().for_each(|i| tables_in(i, out)),
            Control::Switch { cases, default, .. } => {
                cases.iter().for_each(|(_, c)| tables_in(c, out));
                if let Some(d) = default {
                    tables_in(d, out);
                }
            }
            Control::If { then_, .. } => tables_in(then_, out),
            Control::Nop => {}
        }
    }
    fn find_exclusive(c: &Control, a: lemur_p4sim::TableId, b: lemur_p4sim::TableId) -> bool {
        match c {
            Control::Exclusive(items) => {
                let mut has_a = None;
                let mut has_b = None;
                for (i, item) in items.iter().enumerate() {
                    let mut ts = Vec::new();
                    tables_in(item, &mut ts);
                    if ts.contains(&a) {
                        has_a = Some(i);
                    }
                    if ts.contains(&b) {
                        has_b = Some(i);
                    }
                }
                match (has_a, has_b) {
                    (Some(x), Some(y)) if x != y => true,
                    _ => items.iter().any(|i| find_exclusive(i, a, b)),
                }
            }
            Control::Seq(items) => items.iter().any(|i| find_exclusive(i, a, b)),
            Control::Switch { cases, default, .. } => {
                cases.iter().any(|(_, c)| find_exclusive(c, a, b))
                    || default.as_ref().is_some_and(|d| find_exclusive(d, a, b))
            }
            Control::If { then_, .. } => find_exclusive(then_, a, b),
            _ => false,
        }
    }
    program
        .control
        .as_ref()
        .map(|c| find_exclusive(c, a, b))
        .unwrap_or(false)
}
