//! 802.1Q VLAN tag view.
//!
//! Lemur uses VLAN tags in two roles: the `Tunnel`/`Detunnel` NFs push and
//! pop customer VLAN tags, and when an OpenFlow switch replaces the PISA ToR,
//! the 12-bit VID carries the SPI/SI pair in place of NSH (§5.3).

use crate::error::{Error, Result};
use crate::ethernet::EtherType;

/// Length of the 802.1Q tag (TCI + inner EtherType).
pub const TAG_LEN: usize = 4;

/// A view of the 4 bytes following the outer EtherType: TCI + inner type.
#[derive(Debug, Clone)]
pub struct Tag<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Tag<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Tag<T> {
        Tag { buffer }
    }

    /// Wrap a buffer, verifying it is long enough.
    pub fn new_checked(buffer: T) -> Result<Tag<T>> {
        if buffer.as_ref().len() < TAG_LEN {
            return Err(Error::Truncated);
        }
        Ok(Tag { buffer })
    }

    /// Priority code point (3 bits).
    pub fn pcp(&self) -> u8 {
        self.buffer.as_ref()[0] >> 5
    }

    /// Drop eligible indicator.
    pub fn dei(&self) -> bool {
        self.buffer.as_ref()[0] & 0x10 != 0
    }

    /// VLAN identifier (12 bits).
    pub fn vid(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[0], d[1]]) & 0x0fff
    }

    /// EtherType of the encapsulated payload.
    pub fn inner_ethertype(&self) -> EtherType {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]]).into()
    }

    /// Payload following the tag.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[TAG_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Tag<T> {
    /// Set PCP, DEI, and VID in one write.
    pub fn set_tci(&mut self, pcp: u8, dei: bool, vid: u16) {
        debug_assert!(pcp < 8 && vid < 4096);
        let tci = (u16::from(pcp) << 13) | (u16::from(dei) << 12) | (vid & 0x0fff);
        self.buffer.as_mut()[0..2].copy_from_slice(&tci.to_be_bytes());
    }

    /// Set only the VID, preserving PCP/DEI.
    pub fn set_vid(&mut self, vid: u16) {
        debug_assert!(vid < 4096);
        let d = self.buffer.as_mut();
        let tci = (u16::from_be_bytes([d[0], d[1]]) & 0xf000) | (vid & 0x0fff);
        d[0..2].copy_from_slice(&tci.to_be_bytes());
    }

    /// Set the inner EtherType.
    pub fn set_inner_ethertype(&mut self, ty: EtherType) {
        self.buffer.as_mut()[2..4].copy_from_slice(&u16::from(ty).to_be_bytes());
    }
}

/// Encoding of an SPI/SI pair into a 12-bit VID for OpenFlow steering.
///
/// The paper dedicates the VID to demultiplexing subgroups: we split it as
/// 6 bits of service path index and 6 bits of service index, bounding an
/// OpenFlow deployment to 63 paths × 63 indices ("this somewhat limits how
/// many chains and how many NFs can be configured", §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VidServiceEncoding {
    /// Service path index, 1..=63.
    pub spi: u8,
    /// Service index, 0..=63.
    pub si: u8,
}

impl VidServiceEncoding {
    /// Pack into a VID. Returns `Err` if either component overflows 6 bits.
    pub fn encode(self) -> Result<u16> {
        if self.spi >= 64 || self.si >= 64 {
            return Err(Error::Unsupported);
        }
        Ok((u16::from(self.spi) << 6) | u16::from(self.si))
    }

    /// Unpack from a VID.
    pub fn decode(vid: u16) -> VidServiceEncoding {
        VidServiceEncoding {
            spi: ((vid >> 6) & 0x3f) as u8,
            si: (vid & 0x3f) as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tci_roundtrip() {
        let mut buf = [0u8; TAG_LEN];
        {
            let mut tag = Tag::new_unchecked(&mut buf[..]);
            tag.set_tci(5, true, 0x123);
            tag.set_inner_ethertype(EtherType::Ipv4);
        }
        let tag = Tag::new_checked(&buf[..]).unwrap();
        assert_eq!(tag.pcp(), 5);
        assert!(tag.dei());
        assert_eq!(tag.vid(), 0x123);
        assert_eq!(tag.inner_ethertype(), EtherType::Ipv4);
    }

    #[test]
    fn set_vid_preserves_pcp() {
        let mut buf = [0u8; TAG_LEN];
        let mut tag = Tag::new_unchecked(&mut buf[..]);
        tag.set_tci(7, false, 1);
        tag.set_vid(0xfff);
        assert_eq!(tag.pcp(), 7);
        assert_eq!(tag.vid(), 0xfff);
    }

    #[test]
    fn short_buffer_rejected() {
        assert_eq!(
            Tag::new_checked(&[0u8; 3][..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn vid_service_encoding_roundtrip() {
        let e = VidServiceEncoding { spi: 17, si: 42 };
        let vid = e.encode().unwrap();
        assert_eq!(VidServiceEncoding::decode(vid), e);
    }

    #[test]
    fn vid_service_encoding_overflow() {
        assert!(VidServiceEncoding { spi: 64, si: 0 }.encode().is_err());
        assert!(VidServiceEncoding { spi: 0, si: 64 }.encode().is_err());
        assert!(VidServiceEncoding { spi: 63, si: 63 }.encode().is_ok());
    }
}
