//! Error type shared by all wire-format views in this crate.

use core::fmt;

/// Errors produced while parsing or emitting wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is too short to contain the protocol header.
    Truncated,
    /// A length field disagrees with the buffer (e.g. IPv4 `total_len`
    /// larger than the underlying slice, or a header length below the
    /// protocol minimum).
    Malformed,
    /// A checksum did not verify.
    Checksum,
    /// A field holds a value the protocol does not permit (e.g. IPv4
    /// version != 4, NSH with an unsupported MD type).
    Unsupported,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated => write!(f, "buffer too short for header"),
            Error::Malformed => write!(f, "length field inconsistent with buffer"),
            Error::Checksum => write!(f, "checksum mismatch"),
            Error::Unsupported => write!(f, "unsupported field value"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout `lemur-packet`.
pub type Result<T> = core::result::Result<T, Error>;
