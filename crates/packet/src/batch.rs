//! Owned packet buffers and BESS-style batches.
//!
//! [`PacketBuf`] keeps headroom in front of the frame so that pushing an
//! encapsulation header (NSH at the server edge, a VLAN tag at the Tunnel NF)
//! is a copy of the header bytes only, mirroring how DPDK mbufs prepend
//! headers. [`Batch`] groups packets the way BESS modules process them:
//! a run-to-completion subgroup fully processes one batch before pulling the
//! next (§3.2).

/// Default headroom reserved in front of a packet, enough for several
/// levels of encapsulation (Ethernet 14 + NSH 8 + VLAN 4, with slack).
pub const DEFAULT_HEADROOM: usize = 64;

/// The batch size BESS uses for run-to-completion processing.
pub const BATCH_SIZE: usize = 32;

/// An owned packet with prepend headroom.
///
/// Equality compares the *frame bytes only*: two packets with identical
/// frames are equal regardless of how much headroom each happens to carry
/// (headroom is an allocation detail, grown geometrically on demand).
#[derive(Debug, Clone)]
pub struct PacketBuf {
    storage: Vec<u8>,
    start: usize,
}

impl PartialEq for PacketBuf {
    fn eq(&self, other: &PacketBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PacketBuf {}

impl PacketBuf {
    /// Create a packet from frame bytes, reserving [`DEFAULT_HEADROOM`].
    pub fn from_bytes(frame: &[u8]) -> PacketBuf {
        let mut storage = vec![0u8; DEFAULT_HEADROOM + frame.len()];
        storage[DEFAULT_HEADROOM..].copy_from_slice(frame);
        PacketBuf {
            storage,
            start: DEFAULT_HEADROOM,
        }
    }

    /// Create an all-zero packet of `len` bytes.
    pub fn zeroed(len: usize) -> PacketBuf {
        PacketBuf {
            storage: vec![0u8; DEFAULT_HEADROOM + len],
            start: DEFAULT_HEADROOM,
        }
    }

    /// Current frame length.
    pub fn len(&self) -> usize {
        self.storage.len() - self.start
    }

    /// True if the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remaining headroom available for [`PacketBuf::push_front`].
    pub fn headroom(&self) -> usize {
        self.start
    }

    /// The frame bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.storage[self.start..]
    }

    /// Mutable frame bytes.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.storage[self.start..]
    }

    /// Overwrite this packet's frame with `src`'s frame, reusing the
    /// existing allocation whenever it is large enough. This is the
    /// buffer-recycle primitive: a steady-state dataplane refreshes a
    /// fixed ring of buffers instead of allocating fresh ones per packet.
    /// All slack beyond the frame is kept as headroom.
    pub fn copy_frame_from(&mut self, src: &PacketBuf) {
        let n = src.len();
        let need = DEFAULT_HEADROOM + n;
        if self.storage.len() < need {
            self.storage.resize(need, 0);
        }
        self.start = self.storage.len() - n;
        self.storage[self.start..].copy_from_slice(src.as_slice());
    }

    /// Prepend `bytes` to the frame. Falls back to reallocating when the
    /// existing headroom is exhausted, growing the headroom geometrically
    /// (at least doubling total storage) so a sequence of `push_front`
    /// calls costs amortized O(1) reallocations.
    pub fn push_front(&mut self, bytes: &[u8]) {
        if bytes.len() <= self.start {
            self.start -= bytes.len();
            self.storage[self.start..self.start + bytes.len()].copy_from_slice(bytes);
        } else {
            let new_headroom = (2 * bytes.len())
                .max(DEFAULT_HEADROOM)
                .max(self.storage.len());
            let mut storage = vec![0u8; new_headroom + bytes.len() + self.len()];
            storage[new_headroom..new_headroom + bytes.len()].copy_from_slice(bytes);
            storage[new_headroom + bytes.len()..].copy_from_slice(self.as_slice());
            self.storage = storage;
            self.start = new_headroom;
        }
    }

    /// Remove `n` bytes from the front of the frame without copying them
    /// anywhere: the bytes are reclaimed as headroom. This is the
    /// allocation-free decap primitive (the fused dataplane's steady state
    /// never allocates). Panics if the frame is shorter than `n`.
    pub fn advance_front(&mut self, n: usize) {
        assert!(n <= self.len(), "pull_front past end of frame");
        self.start += n;
    }

    /// Remove `n` bytes from the front of the frame into a caller-provided
    /// scratch buffer (cleared first; capacity is reused across calls).
    /// Panics if the frame is shorter than `n`.
    pub fn pull_front_into(&mut self, n: usize, scratch: &mut Vec<u8>) {
        assert!(n <= self.len(), "pull_front past end of frame");
        scratch.clear();
        scratch.extend_from_slice(&self.storage[self.start..self.start + n]);
        self.start += n;
    }

    /// Remove `n` bytes from the front of the frame, returning them as an
    /// owned vector. Compatibility wrapper over [`PacketBuf::pull_front_into`];
    /// prefer that (or [`PacketBuf::advance_front`]) on hot paths — this
    /// form allocates per call.
    pub fn pull_front(&mut self, n: usize) -> Vec<u8> {
        let mut removed = Vec::new();
        self.pull_front_into(n, &mut removed);
        removed
    }

    /// Insert `bytes` at `offset` within the frame (used to splice a VLAN tag
    /// after the Ethernet addresses). If `offset` is small and headroom is
    /// available, the bytes before the offset are shifted left so the
    /// operation costs `offset` bytes of copying, not the packet length.
    pub fn insert_at(&mut self, offset: usize, bytes: &[u8]) {
        assert!(offset <= self.len(), "insert_at past end of frame");
        if bytes.len() <= self.start {
            let new_start = self.start - bytes.len();
            // Shift [start, start+offset) left by bytes.len().
            self.storage
                .copy_within(self.start..self.start + offset, new_start);
            self.storage[new_start + offset..new_start + offset + bytes.len()]
                .copy_from_slice(bytes);
            self.start = new_start;
        } else {
            let mut v = self.as_slice().to_vec();
            v.splice(offset..offset, bytes.iter().copied());
            *self = PacketBuf::from_bytes(&v);
        }
    }

    /// Remove `len` bytes starting at `offset` within the frame, shifting
    /// the prefix right (cheap removal of a spliced tag) and discarding the
    /// removed bytes. Allocation-free: the vacated space becomes headroom.
    pub fn remove_at_discard(&mut self, offset: usize, len: usize) {
        assert!(offset + len <= self.len(), "remove_at past end of frame");
        self.storage
            .copy_within(self.start..self.start + offset, self.start + len);
        self.start += len;
    }

    /// [`PacketBuf::remove_at_discard`], copying the removed bytes into a
    /// caller-provided scratch buffer first (cleared; capacity reused).
    pub fn remove_at_into(&mut self, offset: usize, len: usize, scratch: &mut Vec<u8>) {
        assert!(offset + len <= self.len(), "remove_at past end of frame");
        scratch.clear();
        scratch.extend_from_slice(&self.storage[self.start + offset..self.start + offset + len]);
        self.remove_at_discard(offset, len);
    }

    /// Remove `len` bytes starting at `offset`, returning them as an owned
    /// vector. Compatibility wrapper over [`PacketBuf::remove_at_into`];
    /// prefer that (or [`PacketBuf::remove_at_discard`]) on hot paths —
    /// this form allocates per call.
    pub fn remove_at(&mut self, offset: usize, len: usize) -> Vec<u8> {
        let mut removed = Vec::new();
        self.remove_at_into(offset, len, &mut removed);
        removed
    }

    /// Truncate the frame to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.storage.truncate(self.start + len);
        }
    }

    /// Extend the frame at the tail with `bytes`.
    pub fn extend_tail(&mut self, bytes: &[u8]) {
        self.storage.extend_from_slice(bytes);
    }
}

/// A batch of packets, processed together by one subgroup invocation.
#[derive(Debug, Default, Clone)]
pub struct Batch {
    packets: Vec<PacketBuf>,
}

impl Batch {
    /// An empty batch with [`BATCH_SIZE`] capacity.
    pub fn new() -> Batch {
        Batch {
            packets: Vec::with_capacity(BATCH_SIZE),
        }
    }

    /// Build a batch from packets.
    pub fn from_packets(packets: Vec<PacketBuf>) -> Batch {
        Batch { packets }
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if the batch holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Sum of frame lengths in bytes.
    pub fn total_bytes(&self) -> usize {
        self.packets.iter().map(|p| p.len()).sum()
    }

    /// Append a packet.
    pub fn push(&mut self, p: PacketBuf) {
        self.packets.push(p);
    }

    /// Iterate over packets.
    pub fn iter(&self) -> impl Iterator<Item = &PacketBuf> {
        self.packets.iter()
    }

    /// Iterate mutably over packets.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut PacketBuf> {
        self.packets.iter_mut()
    }

    /// The packets as a mutable slice (random access for NF-major sweeps).
    pub fn as_mut_slice(&mut self) -> &mut [PacketBuf] {
        &mut self.packets
    }

    /// Drain all packets out of the batch.
    pub fn drain(&mut self) -> impl Iterator<Item = PacketBuf> + '_ {
        self.packets.drain(..)
    }

    /// Retain packets matching a predicate (drop the rest).
    pub fn retain(&mut self, f: impl FnMut(&PacketBuf) -> bool) {
        self.packets.retain(f);
    }

    /// Take the packets, leaving the batch empty.
    pub fn take(&mut self) -> Vec<PacketBuf> {
        std::mem::take(&mut self.packets)
    }
}

impl IntoIterator for Batch {
    type Item = PacketBuf;
    type IntoIter = std::vec::IntoIter<PacketBuf>;

    fn into_iter(self) -> Self::IntoIter {
        self.packets.into_iter()
    }
}

impl FromIterator<PacketBuf> for Batch {
    fn from_iter<I: IntoIterator<Item = PacketBuf>>(iter: I) -> Batch {
        Batch {
            packets: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_roundtrip() {
        let p = PacketBuf::from_bytes(b"hello");
        assert_eq!(p.as_slice(), b"hello");
        assert_eq!(p.len(), 5);
        assert_eq!(p.headroom(), DEFAULT_HEADROOM);
    }

    #[test]
    fn push_pull_front() {
        let mut p = PacketBuf::from_bytes(b"payload");
        p.push_front(b"hdr:");
        assert_eq!(p.as_slice(), b"hdr:payload");
        let removed = p.pull_front(4);
        assert_eq!(removed, b"hdr:");
        assert_eq!(p.as_slice(), b"payload");
    }

    #[test]
    fn push_front_exhausts_headroom_and_reallocates() {
        let mut p = PacketBuf::from_bytes(b"x");
        let big = vec![0xaa; DEFAULT_HEADROOM + 10];
        p.push_front(&big);
        assert_eq!(p.len(), big.len() + 1);
        assert_eq!(&p.as_slice()[..big.len()], &big[..]);
        assert_eq!(p.as_slice()[big.len()], b'x');
    }

    #[test]
    fn push_front_grows_headroom_geometrically() {
        // Exhausting headroom must at least double total storage, so a
        // stream of pushes reallocates O(log n) times, not O(n).
        let mut p = PacketBuf::from_bytes(b"x");
        let before = p.storage.len();
        let big = vec![0xbb; DEFAULT_HEADROOM + 1];
        p.push_front(&big);
        assert!(p.storage.len() >= 2 * before, "growth must be geometric");
        // The fresh headroom absorbs at least one more push of the same
        // size without reallocating.
        assert!(p.headroom() >= big.len());
        let cap_after_first = p.storage.len();
        p.push_front(&big);
        assert_eq!(
            p.storage.len(),
            cap_after_first,
            "second push must reuse headroom"
        );
        assert_eq!(p.len(), 1 + 2 * big.len());
    }

    #[test]
    fn pull_front_into_reuses_scratch() {
        let mut p = PacketBuf::from_bytes(b"hdr:payload");
        let mut scratch = Vec::with_capacity(16);
        p.pull_front_into(4, &mut scratch);
        assert_eq!(scratch, b"hdr:");
        assert_eq!(p.as_slice(), b"payload");
        // Scratch is cleared, not appended to.
        let mut q = PacketBuf::from_bytes(b"ab-rest");
        q.pull_front_into(3, &mut scratch);
        assert_eq!(scratch, b"ab-");
    }

    #[test]
    fn advance_front_reclaims_headroom() {
        let mut p = PacketBuf::from_bytes(b"ETHNSHinner");
        let head = p.headroom();
        p.advance_front(6);
        assert_eq!(p.as_slice(), b"inner");
        assert_eq!(p.headroom(), head + 6);
    }

    #[test]
    fn remove_at_discard_and_into() {
        let mut p = PacketBuf::from_bytes(b"AAAAAAAAAAAATAG!rest");
        let mut scratch = Vec::new();
        p.remove_at_into(12, 4, &mut scratch);
        assert_eq!(scratch, b"TAG!");
        assert_eq!(p.as_slice(), b"AAAAAAAAAAAArest");
        let mut q = PacketBuf::from_bytes(b"AAAAAAAAAAAATAG!rest");
        q.remove_at_discard(12, 4);
        assert_eq!(q.as_slice(), b"AAAAAAAAAAAArest");
    }

    #[test]
    fn copy_frame_from_reuses_allocation() {
        let template = PacketBuf::from_bytes(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut buf = PacketBuf::from_bytes(&[9; 200]);
        let cap = buf.storage.capacity();
        // Drain the buffer's headroom so the recycle must restore it.
        buf.advance_front(100);
        buf.copy_frame_from(&template);
        assert_eq!(buf, template);
        assert_eq!(buf.storage.capacity(), cap, "recycle reallocated");
        assert!(buf.headroom() >= DEFAULT_HEADROOM);
        // Growing into a too-small buffer still produces the right frame.
        let mut tiny = PacketBuf::from_bytes(&[]);
        tiny.copy_frame_from(&template);
        assert_eq!(tiny, template);
        assert!(tiny.headroom() >= DEFAULT_HEADROOM);
    }

    #[test]
    fn equality_ignores_headroom() {
        let a = PacketBuf::from_bytes(b"same-frame");
        let mut b = PacketBuf::from_bytes(b"same-frame");
        // Force b through a reallocation so its headroom differs.
        let big = vec![7u8; DEFAULT_HEADROOM + 8];
        b.push_front(&big);
        b.advance_front(big.len());
        assert_ne!(a.headroom(), b.headroom());
        assert_eq!(a, b);
    }

    #[test]
    fn insert_and_remove_at() {
        // Simulate splicing a VLAN tag after a 12-byte Ethernet address pair.
        let mut p = PacketBuf::from_bytes(b"AAAAAAAAAAAArest-of-frame");
        p.insert_at(12, b"TAG!");
        assert_eq!(&p.as_slice()[..16], b"AAAAAAAAAAAATAG!");
        assert_eq!(&p.as_slice()[16..], b"rest-of-frame");
        let tag = p.remove_at(12, 4);
        assert_eq!(tag, b"TAG!");
        assert_eq!(p.as_slice(), b"AAAAAAAAAAAArest-of-frame");
    }

    #[test]
    fn insert_at_without_headroom() {
        let mut p = PacketBuf::from_bytes(b"abcdef");
        p.pull_front(0);
        // Exhaust headroom first.
        let big = vec![1u8; DEFAULT_HEADROOM];
        p.push_front(&big);
        p.insert_at(2, b"ZZ");
        assert_eq!(p.len(), DEFAULT_HEADROOM + 6 + 2);
        assert_eq!(&p.as_slice()[2..4], b"ZZ");
    }

    #[test]
    #[should_panic(expected = "pull_front past end")]
    fn pull_front_past_end_panics() {
        let mut p = PacketBuf::from_bytes(b"ab");
        p.pull_front(3);
    }

    #[test]
    fn truncate_and_extend() {
        let mut p = PacketBuf::from_bytes(b"abcdef");
        p.truncate(3);
        assert_eq!(p.as_slice(), b"abc");
        p.extend_tail(b"XY");
        assert_eq!(p.as_slice(), b"abcXY");
        // Truncate longer than current length is a no-op.
        p.truncate(100);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn batch_accounting() {
        let mut b = Batch::new();
        assert!(b.is_empty());
        b.push(PacketBuf::from_bytes(&[0u8; 100]));
        b.push(PacketBuf::from_bytes(&[0u8; 50]));
        assert_eq!(b.len(), 2);
        assert_eq!(b.total_bytes(), 150);
        b.retain(|p| p.len() > 60);
        assert_eq!(b.len(), 1);
        let taken = b.take();
        assert_eq!(taken.len(), 1);
        assert!(b.is_empty());
    }
}
