//! # lemur-packet
//!
//! Wire formats and packet buffers for the Lemur NFV reproduction.
//!
//! This crate provides the packet-level substrate that every other Lemur
//! component builds on: Ethernet II, 802.1Q VLAN, IPv4, UDP, TCP, and the
//! Network Service Header (NSH, RFC 8300) that Lemur's meta-compiler uses to
//! stitch NF chains across platforms.
//!
//! The design follows the smoltcp idiom: each protocol exposes a thin
//! `Packet<T: AsRef<[u8]>>` view over a byte buffer with checked constructors
//! (`new_checked`) and explicit field offsets. Views never allocate; owned
//! packets live in [`PacketBuf`] and travel in [`Batch`]es, mirroring BESS's
//! packet-batch processing model.
//!
//! ```
//! use lemur_packet::{ethernet, ipv4, udp};
//!
//! // Build a UDP/IPv4/Ethernet packet and parse it back.
//! let payload = b"hello lemur";
//! let pkt = lemur_packet::builder::udp_packet(
//!     ethernet::Address([2, 0, 0, 0, 0, 1]),
//!     ethernet::Address([2, 0, 0, 0, 0, 2]),
//!     ipv4::Address::new(10, 0, 0, 1),
//!     ipv4::Address::new(10, 0, 0, 2),
//!     5000,
//!     53,
//!     payload,
//! );
//! let eth = ethernet::Frame::new_checked(pkt.as_slice()).unwrap();
//! assert_eq!(eth.ethertype(), ethernet::EtherType::Ipv4);
//! let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
//! assert!(ip.verify_checksum());
//! let u = udp::Packet::new_checked(ip.payload()).unwrap();
//! assert_eq!(u.payload(), payload);
//! ```

pub mod batch;
pub mod builder;
pub mod checksum;
pub mod error;
pub mod ethernet;
pub mod flow;
pub mod ipv4;
pub mod nsh;
pub mod tcp;
pub mod udp;
pub mod vlan;

pub use batch::{Batch, PacketBuf};
pub use error::{Error, Result};
pub use flow::{FiveTuple, TrafficAggregate};
