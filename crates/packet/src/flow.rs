//! Flow identification: 5-tuples and traffic aggregates.
//!
//! A Lemur NF chain processes one or more *traffic aggregates* — combinations
//! of flow 5-tuple values, e.g. "all traffic from customer prefix
//! 203.0.113.0/24" (§2). The dataplane classifies each packet into an
//! aggregate at the ToR switch to select the chain (and thus SPI) to apply.

use crate::error::{Error, Result};
use crate::ethernet::{self, EtherType};
use crate::ipv4::{self, Cidr, Protocol};
use crate::{tcp, udp, vlan};

/// A flow 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    pub src_ip: ipv4::Address,
    pub dst_ip: ipv4::Address,
    pub src_port: u16,
    pub dst_port: u16,
    pub protocol: u8,
}

impl FiveTuple {
    /// Extract the 5-tuple from an Ethernet frame, looking through at most
    /// one VLAN tag. Non-IPv4 and non-TCP/UDP packets yield `Err`.
    pub fn parse(frame: &[u8]) -> Result<FiveTuple> {
        let eth = ethernet::Frame::new_checked(frame)?;
        let (ethertype, l3) = match eth.ethertype() {
            EtherType::Vlan => {
                let tag = vlan::Tag::new_checked(eth.payload())?;
                (tag.inner_ethertype(), &eth.payload()[vlan::TAG_LEN..])
            }
            other => (other, eth.payload()),
        };
        if ethertype != EtherType::Ipv4 {
            return Err(Error::Unsupported);
        }
        let ip = ipv4::Packet::new_checked(l3)?;
        let (src_port, dst_port) = match ip.protocol() {
            Protocol::Tcp => {
                let t = tcp::Packet::new_checked(ip.payload())?;
                (t.src_port(), t.dst_port())
            }
            Protocol::Udp => {
                let u = udp::Packet::new_checked(ip.payload())?;
                (u.src_port(), u.dst_port())
            }
            _ => return Err(Error::Unsupported),
        };
        Ok(FiveTuple {
            src_ip: ip.src(),
            dst_ip: ip.dst(),
            src_port,
            dst_port,
            protocol: ip.protocol().into(),
        })
    }

    /// A symmetric hash that maps both directions of a flow to one value.
    /// Used by the L4 load balancer to keep connections sticky.
    pub fn symmetric_hash(&self) -> u64 {
        let a = (u64::from(self.src_ip.to_u32()) << 16) | u64::from(self.src_port);
        let b = (u64::from(self.dst_ip.to_u32()) << 16) | u64::from(self.dst_port);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        // Fibonacci-style mix; determinism matters more than quality here.
        let mut h = lo
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(hi.wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
        h ^= u64::from(self.protocol) << 32;
        h ^= h >> 29;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 32;
        h
    }
}

/// Decorrelate a flow hash for use at a specific branch stage: successive
/// traffic splits must not reuse the same hash, or a downstream splitter
/// only ever sees the keys its upstream already filtered (every gate but
/// one starves). Switches implement this with per-table hash seeds; `salt`
/// plays that role here.
pub fn salted_hash(h: u64, salt: u8) -> u64 {
    if salt == 0 {
        return h;
    }
    let mut x = h ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(salt as u64 + 1);
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

/// A range of ports, inclusive on both ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortRange {
    pub start: u16,
    pub end: u16,
}

impl PortRange {
    /// The full port range (matches anything).
    pub const ANY: PortRange = PortRange {
        start: 0,
        end: u16::MAX,
    };

    /// A single-port range.
    pub const fn single(p: u16) -> PortRange {
        PortRange { start: p, end: p }
    }

    /// True if `p` is inside the range.
    pub fn contains(&self, p: u16) -> bool {
        self.start <= p && p <= self.end
    }
}

/// A traffic aggregate: a 5-tuple pattern with prefix/range/wildcard fields.
///
/// In Lemur's setting an aggregate typically represents a customer (§2):
/// "an aggregate specifies a combination of flow 5-tuple values".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficAggregate {
    pub src: Option<Cidr>,
    pub dst: Option<Cidr>,
    pub src_ports: PortRange,
    pub dst_ports: PortRange,
    /// `None` matches any protocol.
    pub protocol: Option<u8>,
}

impl TrafficAggregate {
    /// An aggregate that matches everything.
    pub const fn any() -> TrafficAggregate {
        TrafficAggregate {
            src: None,
            dst: None,
            src_ports: PortRange::ANY,
            dst_ports: PortRange::ANY,
            protocol: None,
        }
    }

    /// Aggregate for a customer source prefix.
    pub fn from_src_prefix(cidr: Cidr) -> TrafficAggregate {
        TrafficAggregate {
            src: Some(cidr),
            ..TrafficAggregate::any()
        }
    }

    /// True if `t` matches this aggregate.
    pub fn matches(&self, t: &FiveTuple) -> bool {
        if let Some(src) = &self.src {
            if !src.contains(t.src_ip) {
                return false;
            }
        }
        if let Some(dst) = &self.dst {
            if !dst.contains(t.dst_ip) {
                return false;
            }
        }
        if !self.src_ports.contains(t.src_port) || !self.dst_ports.contains(t.dst_port) {
            return false;
        }
        if let Some(p) = self.protocol {
            if p != t.protocol {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;

    fn tuple() -> FiveTuple {
        FiveTuple {
            src_ip: ipv4::Address::new(203, 0, 113, 9),
            dst_ip: ipv4::Address::new(10, 1, 2, 3),
            src_port: 40000,
            dst_port: 443,
            protocol: 6,
        }
    }

    #[test]
    fn aggregate_any_matches_all() {
        assert!(TrafficAggregate::any().matches(&tuple()));
    }

    #[test]
    fn aggregate_prefix_filtering() {
        let agg = TrafficAggregate::from_src_prefix("203.0.113.0/24".parse().unwrap());
        assert!(agg.matches(&tuple()));
        let other = TrafficAggregate::from_src_prefix("198.51.100.0/24".parse().unwrap());
        assert!(!other.matches(&tuple()));
    }

    #[test]
    fn aggregate_port_and_proto() {
        let mut agg = TrafficAggregate::any();
        agg.dst_ports = PortRange::single(443);
        agg.protocol = Some(6);
        assert!(agg.matches(&tuple()));
        agg.protocol = Some(17);
        assert!(!agg.matches(&tuple()));
        agg.protocol = Some(6);
        agg.dst_ports = PortRange::single(80);
        assert!(!agg.matches(&tuple()));
    }

    #[test]
    fn parse_from_udp_packet() {
        let pkt = builder::udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(1, 2, 3, 4),
            ipv4::Address::new(5, 6, 7, 8),
            1111,
            2222,
            b"x",
        );
        let t = FiveTuple::parse(pkt.as_slice()).unwrap();
        assert_eq!(t.src_ip, ipv4::Address::new(1, 2, 3, 4));
        assert_eq!(t.dst_ip, ipv4::Address::new(5, 6, 7, 8));
        assert_eq!(t.src_port, 1111);
        assert_eq!(t.dst_port, 2222);
        assert_eq!(t.protocol, 17);
    }

    #[test]
    fn symmetric_hash_is_symmetric() {
        let fwd = tuple();
        let rev = FiveTuple {
            src_ip: fwd.dst_ip,
            dst_ip: fwd.src_ip,
            src_port: fwd.dst_port,
            dst_port: fwd.src_port,
            protocol: fwd.protocol,
        };
        assert_eq!(fwd.symmetric_hash(), rev.symmetric_hash());
        // And differs for a different flow.
        let other = FiveTuple {
            src_port: 40001,
            ..fwd
        };
        assert_ne!(fwd.symmetric_hash(), other.symmetric_hash());
    }

    #[test]
    fn parse_rejects_non_ip() {
        let mut frame = vec![0u8; 60];
        {
            let mut f = ethernet::Frame::new_unchecked(&mut frame[..]);
            f.set_ethertype(EtherType::Arp);
        }
        assert_eq!(FiveTuple::parse(&frame).unwrap_err(), Error::Unsupported);
    }

    #[test]
    fn port_range_bounds() {
        let r = PortRange { start: 10, end: 20 };
        assert!(r.contains(10));
        assert!(r.contains(20));
        assert!(!r.contains(9));
        assert!(!r.contains(21));
    }
}
