//! Internet checksum (RFC 1071) helpers used by IPv4, UDP, and TCP.

/// Incremental ones-complement sum over a byte slice.
///
/// The slice may have odd length; the final odd byte is treated as the
/// high-order byte of a 16-bit word, per RFC 1071.
pub fn ones_complement_sum(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Fold a 32-bit accumulator into a 16-bit ones-complement checksum.
pub fn fold(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    !(acc as u16)
}

/// Compute the RFC 1071 checksum of `data` with an initial accumulator.
pub fn checksum(init: u32, data: &[u8]) -> u16 {
    fold(ones_complement_sum(init, data))
}

/// Pseudo-header sum for UDP/TCP over IPv4 (RFC 768 / RFC 793).
pub fn pseudo_header_v4(src: [u8; 4], dst: [u8; 4], protocol: u8, length: u16) -> u32 {
    let mut acc = 0u32;
    acc = ones_complement_sum(acc, &src);
    acc = ones_complement_sum(acc, &dst);
    acc += u32::from(protocol);
    acc += u32::from(length);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example from RFC 1071 §3: {00 01, f2 03, f4 f5, f6 f7}.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = ones_complement_sum(0, &data);
        // Accumulated sum per the RFC is 0x2ddf0; folded is !0xddf2.
        assert_eq!(sum, 0x2ddf0);
        assert_eq!(fold(sum), !0xddf2u16);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(
            ones_complement_sum(0, &[0xab]),
            u32::from(u16::from_be_bytes([0xab, 0x00]))
        );
    }

    #[test]
    fn empty_slice_is_identity() {
        assert_eq!(ones_complement_sum(42, &[]), 42);
    }

    #[test]
    fn checksum_of_zeroes_is_all_ones() {
        assert_eq!(checksum(0, &[0u8; 20]), 0xffff);
    }

    #[test]
    fn verify_roundtrip() {
        // Insert a computed checksum into the data; re-summing the whole
        // buffer must then fold to zero.
        let mut data = vec![0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06];
        let c = checksum(0, &data);
        data.extend_from_slice(&c.to_be_bytes());
        assert_eq!(checksum(0, &data), 0);
    }
}
