//! TCP segment view (header fields only; Lemur's NFs classify and rewrite
//! ports/flags but never terminate connections).

use crate::checksum;
use crate::error::{Error, Result};
use crate::ipv4;

/// Minimum TCP header length (no options).
pub const HEADER_LEN: usize = 20;

mod field {
    use core::ops::Range;
    pub const SRC_PORT: Range<usize> = 0..2;
    pub const DST_PORT: Range<usize> = 2..4;
    pub const SEQ: Range<usize> = 4..8;
    pub const ACK: Range<usize> = 8..12;
    pub const DATA_OFF: usize = 12;
    pub const FLAGS: usize = 13;
    pub const WINDOW: Range<usize> = 14..16;
    pub const CHECKSUM: Range<usize> = 16..18;
    pub const URGENT: Range<usize> = 18..20;
}

/// Minimal bitflags macro to avoid an external dependency.
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident : $ty:ty {
            $(const $flag:ident = $value:expr;)*
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name(pub $ty);

        impl $name {
            $(pub const $flag: $name = $name($value);)*

            /// True if all bits of `other` are set in `self`.
            pub fn contains(self, other: $name) -> bool {
                (self.0 & other.0) == other.0
            }

            /// Bitwise-or of two flag sets.
            pub fn union(self, other: $name) -> $name {
                $name(self.0 | other.0)
            }
        }
    };
}

bitflags_lite! {
    /// TCP flag bits (subset of RFC 793 + ECN bits ignored).
    pub struct Flags: u8 {
        const FIN = 0x01;
        const SYN = 0x02;
        const RST = 0x04;
        const PSH = 0x08;
        const ACK = 0x10;
        const URG = 0x20;
    }
}

/// A view of a TCP segment.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wrap a buffer, validating the data offset.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let packet = Packet { buffer };
        let hl = packet.header_len() as usize;
        if hl < HEADER_LEN || hl > len {
            return Err(Error::Malformed);
        }
        Ok(packet)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[0], d[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        let d = self.buffer.as_ref();
        u32::from_be_bytes([d[4], d[5], d[6], d[7]])
    }

    /// Acknowledgement number.
    pub fn ack(&self) -> u32 {
        let d = self.buffer.as_ref();
        u32::from_be_bytes([d[8], d[9], d[10], d[11]])
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> u8 {
        (self.buffer.as_ref()[field::DATA_OFF] >> 4) * 4
    }

    /// Flag bits.
    pub fn flags(&self) -> Flags {
        Flags(self.buffer.as_ref()[field::FLAGS] & 0x3f)
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[14], d[15]])
    }

    /// Checksum field.
    pub fn checksum_field(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[16], d[17]])
    }

    /// Segment payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len() as usize..]
    }

    /// Verify the checksum against an IPv4 pseudo-header.
    pub fn verify_checksum(&self, src: ipv4::Address, dst: ipv4::Address) -> bool {
        let data = self.buffer.as_ref();
        let init = checksum::pseudo_header_v4(src.0, dst.0, 6, data.len() as u16);
        checksum::checksum(init, data) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, v: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&v.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, v: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&v.to_be_bytes());
    }

    /// Set the sequence number.
    pub fn set_seq(&mut self, v: u32) {
        self.buffer.as_mut()[field::SEQ].copy_from_slice(&v.to_be_bytes());
    }

    /// Set the acknowledgement number.
    pub fn set_ack(&mut self, v: u32) {
        self.buffer.as_mut()[field::ACK].copy_from_slice(&v.to_be_bytes());
    }

    /// Set the header length in bytes (must be a multiple of 4).
    pub fn set_header_len(&mut self, bytes: u8) {
        debug_assert_eq!(bytes % 4, 0);
        self.buffer.as_mut()[field::DATA_OFF] = (bytes / 4) << 4;
    }

    /// Set the flag bits.
    pub fn set_flags(&mut self, flags: Flags) {
        self.buffer.as_mut()[field::FLAGS] = flags.0;
    }

    /// Set the receive window.
    pub fn set_window(&mut self, v: u16) {
        self.buffer.as_mut()[field::WINDOW].copy_from_slice(&v.to_be_bytes());
    }

    /// Set the urgent pointer (Lemur ignores urgent data; kept for fidelity).
    pub fn set_urgent(&mut self, v: u16) {
        self.buffer.as_mut()[field::URGENT].copy_from_slice(&v.to_be_bytes());
    }

    /// Recompute and store the checksum.
    pub fn fill_checksum(&mut self, src: ipv4::Address, dst: ipv4::Address) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let sum = {
            let data = self.buffer.as_ref();
            let init = checksum::pseudo_header_v4(src.0, dst.0, 6, data.len() as u16);
            checksum::checksum(init, data)
        };
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&sum.to_be_bytes());
    }

    /// Mutable payload view.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len() as usize;
        &mut self.buffer.as_mut()[hl..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: ipv4::Address = ipv4::Address::new(192, 0, 2, 1);
    const DST: ipv4::Address = ipv4::Address::new(198, 51, 100, 1);

    fn build(payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        {
            let mut t = Packet::new_unchecked(&mut buf[..]);
            t.set_src_port(443);
            t.set_dst_port(51000);
            t.set_seq(0xdead_beef);
            t.set_ack(0x0102_0304);
            t.set_header_len(20);
            t.set_flags(Flags::SYN.union(Flags::ACK));
            t.set_window(65535);
            t.set_urgent(0);
            t.payload_mut().copy_from_slice(payload);
            t.fill_checksum(SRC, DST);
        }
        buf
    }

    #[test]
    fn roundtrip() {
        let buf = build(b"data");
        let t = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(t.src_port(), 443);
        assert_eq!(t.dst_port(), 51000);
        assert_eq!(t.seq(), 0xdead_beef);
        assert_eq!(t.ack(), 0x0102_0304);
        assert!(t.flags().contains(Flags::SYN));
        assert!(t.flags().contains(Flags::ACK));
        assert!(!t.flags().contains(Flags::FIN));
        assert_eq!(t.window(), 65535);
        assert_eq!(t.payload(), b"data");
        assert!(t.verify_checksum(SRC, DST));
    }

    #[test]
    fn corrupt_fails_checksum() {
        let mut buf = build(b"data");
        buf[4] ^= 1;
        let t = Packet::new_checked(&buf[..]).unwrap();
        assert!(!t.verify_checksum(SRC, DST));
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut buf = build(b"");
        buf[field::DATA_OFF] = 3 << 4; // 12 bytes < minimum
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
        let mut buf2 = build(b"");
        buf2[field::DATA_OFF] = 15 << 4; // 60 bytes > buffer
        assert_eq!(
            Packet::new_checked(&buf2[..]).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            Packet::new_checked(&[0u8; 19][..]).unwrap_err(),
            Error::Truncated
        );
    }
}
