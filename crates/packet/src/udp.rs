//! UDP datagram view.

use crate::checksum;
use crate::error::{Error, Result};
use crate::ipv4;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

mod field {
    use core::ops::Range;
    pub const SRC_PORT: Range<usize> = 0..2;
    pub const DST_PORT: Range<usize> = 2..4;
    pub const LENGTH: Range<usize> = 4..6;
    pub const CHECKSUM: Range<usize> = 6..8;
    pub const PAYLOAD: usize = 8;
}

/// A view of a UDP datagram.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wrap a buffer, validating header and length field.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let packet = Packet { buffer };
        let l = packet.length() as usize;
        if l < HEADER_LEN || l > len {
            return Err(Error::Malformed);
        }
        Ok(packet)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[0], d[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// The UDP length field (header + payload).
    pub fn length(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[4], d[5]])
    }

    /// The checksum field.
    pub fn checksum_field(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[6], d[7]])
    }

    /// Datagram payload.
    pub fn payload(&self) -> &[u8] {
        let l = self.length() as usize;
        &self.buffer.as_ref()[field::PAYLOAD..l]
    }

    /// Verify the checksum against an IPv4 pseudo-header. A zero checksum
    /// means "not computed" and is accepted, per RFC 768.
    pub fn verify_checksum(&self, src: ipv4::Address, dst: ipv4::Address) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let init = checksum::pseudo_header_v4(src.0, dst.0, 17, self.length());
        let data = &self.buffer.as_ref()[..self.length() as usize];
        checksum::checksum(init, data) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, v: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&v.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, v: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&v.to_be_bytes());
    }

    /// Set the UDP length field.
    pub fn set_length(&mut self, v: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&v.to_be_bytes());
    }

    /// Recompute and store the checksum over the pseudo-header and datagram.
    pub fn fill_checksum(&mut self, src: ipv4::Address, dst: ipv4::Address) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let init = checksum::pseudo_header_v4(src.0, dst.0, 17, self.length());
        let sum = {
            let data = &self.buffer.as_ref()[..self.length() as usize];
            checksum::checksum(init, data)
        };
        // RFC 768: an all-zero computed checksum is transmitted as all-ones.
        let sum = if sum == 0 { 0xffff } else { sum };
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&sum.to_be_bytes());
    }

    /// Mutable payload view.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let l = self.length() as usize;
        &mut self.buffer.as_mut()[field::PAYLOAD..l]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: ipv4::Address = ipv4::Address::new(10, 0, 0, 1);
    const DST: ipv4::Address = ipv4::Address::new(10, 0, 0, 2);

    fn build(payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        {
            let mut u = Packet::new_unchecked(&mut buf[..]);
            u.set_src_port(4242);
            u.set_dst_port(53);
            u.set_length((HEADER_LEN + payload.len()) as u16);
            u.payload_mut().copy_from_slice(payload);
            u.fill_checksum(SRC, DST);
        }
        buf
    }

    #[test]
    fn roundtrip() {
        let buf = build(b"query");
        let u = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(u.src_port(), 4242);
        assert_eq!(u.dst_port(), 53);
        assert_eq!(u.payload(), b"query");
        assert!(u.verify_checksum(SRC, DST));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut buf = build(b"query");
        *buf.last_mut().unwrap() ^= 0xff;
        let u = Packet::new_checked(&buf[..]).unwrap();
        assert!(!u.verify_checksum(SRC, DST));
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut buf = build(b"x");
        buf[6] = 0;
        buf[7] = 0;
        let u = Packet::new_checked(&buf[..]).unwrap();
        assert!(u.verify_checksum(SRC, DST));
    }

    #[test]
    fn truncated_and_malformed() {
        assert_eq!(
            Packet::new_checked(&[0u8; 7][..]).unwrap_err(),
            Error::Truncated
        );
        let mut buf = build(b"abc");
        buf[4..6].copy_from_slice(&100u16.to_be_bytes()); // length > buffer
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
        let mut buf2 = build(b"abc");
        buf2[4..6].copy_from_slice(&4u16.to_be_bytes()); // length < header
        assert_eq!(
            Packet::new_checked(&buf2[..]).unwrap_err(),
            Error::Malformed
        );
    }
}
