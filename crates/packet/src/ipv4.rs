//! IPv4 header view, addresses, and CIDR prefixes.

use crate::checksum;
use crate::error::{Error, Result};
use core::fmt;
use core::str::FromStr;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub [u8; 4]);

impl Address {
    /// Construct from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Address {
        Address([a, b, c, d])
    }

    /// The address as a host-order `u32`.
    pub fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Build from a host-order `u32`.
    pub fn from_u32(v: u32) -> Address {
        Address(v.to_be_bytes())
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl FromStr for Address {
    type Err = Error;

    fn from_str(s: &str) -> Result<Address> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for octet in octets.iter_mut() {
            let part = parts.next().ok_or(Error::Malformed)?;
            *octet = part.parse().map_err(|_| Error::Malformed)?;
        }
        if parts.next().is_some() {
            return Err(Error::Malformed);
        }
        Ok(Address(octets))
    }
}

/// An IPv4 CIDR prefix such as `10.0.0.0/8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cidr {
    address: Address,
    prefix_len: u8,
}

impl Cidr {
    /// Create a prefix; `prefix_len` must be `<= 32`.
    pub fn new(address: Address, prefix_len: u8) -> Result<Cidr> {
        if prefix_len > 32 {
            return Err(Error::Malformed);
        }
        Ok(Cidr {
            address,
            prefix_len,
        })
    }

    /// The base address of the prefix.
    pub fn address(&self) -> Address {
        self.address
    }

    /// The prefix length in bits.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// The network mask as a host-order `u32`.
    pub fn mask(&self) -> u32 {
        if self.prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - self.prefix_len)
        }
    }

    /// True if `addr` falls inside this prefix.
    pub fn contains(&self, addr: Address) -> bool {
        (addr.to_u32() & self.mask()) == (self.address.to_u32() & self.mask())
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.address, self.prefix_len)
    }
}

impl FromStr for Cidr {
    type Err = Error;

    fn from_str(s: &str) -> Result<Cidr> {
        let (addr, len) = s.split_once('/').ok_or(Error::Malformed)?;
        let address: Address = addr.parse()?;
        let prefix_len: u8 = len.parse().map_err(|_| Error::Malformed)?;
        Cidr::new(address, prefix_len)
    }
}

/// IP protocol numbers Lemur's NFs classify on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    Icmp,
    Tcp,
    Udp,
    Unknown(u8),
}

impl From<u8> for Protocol {
    fn from(v: u8) -> Self {
        match v {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Unknown(other),
        }
    }
}

impl From<Protocol> for u8 {
    fn from(v: Protocol) -> u8 {
        match v {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Unknown(other) => other,
        }
    }
}

/// Minimum IPv4 header length (no options).
pub const HEADER_LEN: usize = 20;

mod field {
    use core::ops::Range;
    pub const VER_IHL: usize = 0;
    pub const DSCP_ECN: usize = 1;
    pub const TOTAL_LEN: Range<usize> = 2..4;
    pub const IDENT: Range<usize> = 4..6;
    pub const FLAGS_FRAG: Range<usize> = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: Range<usize> = 10..12;
    pub const SRC: Range<usize> = 12..16;
    pub const DST: Range<usize> = 16..20;
}

/// A view of an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wrap a buffer, validating version, header length, and total length.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let packet = Packet { buffer };
        if packet.version() != 4 {
            return Err(Error::Unsupported);
        }
        let header_len = packet.header_len() as usize;
        if header_len < HEADER_LEN || header_len > len {
            return Err(Error::Malformed);
        }
        let total_len = packet.total_len() as usize;
        if total_len < header_len || total_len > len {
            return Err(Error::Malformed);
        }
        Ok(packet)
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// IP version (must be 4).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[field::VER_IHL] >> 4
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> u8 {
        (self.buffer.as_ref()[field::VER_IHL] & 0x0f) * 4
    }

    /// DSCP/ECN byte.
    pub fn dscp_ecn(&self) -> u8 {
        self.buffer.as_ref()[field::DSCP_ECN]
    }

    /// Total length field (header + payload).
    pub fn total_len(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::TOTAL_LEN.start], d[field::TOTAL_LEN.start + 1]])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::IDENT.start], d[field::IDENT.start + 1]])
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// Encapsulated protocol.
    pub fn protocol(&self) -> Protocol {
        self.buffer.as_ref()[field::PROTOCOL].into()
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::CHECKSUM.start], d[field::CHECKSUM.start + 1]])
    }

    /// Source address.
    pub fn src(&self) -> Address {
        let mut a = [0; 4];
        a.copy_from_slice(&self.buffer.as_ref()[field::SRC]);
        Address(a)
    }

    /// Destination address.
    pub fn dst(&self) -> Address {
        let mut a = [0; 4];
        a.copy_from_slice(&self.buffer.as_ref()[field::DST]);
        Address(a)
    }

    /// Verify the header checksum.
    pub fn verify_checksum(&self) -> bool {
        let header = &self.buffer.as_ref()[..self.header_len() as usize];
        checksum::checksum(0, header) == 0
    }

    /// Payload (bytes between the header and `total_len`).
    pub fn payload(&self) -> &[u8] {
        let hl = self.header_len() as usize;
        let tl = self.total_len() as usize;
        &self.buffer.as_ref()[hl..tl]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set version to 4 and header length (bytes, multiple of 4).
    pub fn set_version_and_len(&mut self, header_len: u8) {
        debug_assert_eq!(header_len % 4, 0);
        self.buffer.as_mut()[field::VER_IHL] = 0x40 | (header_len / 4);
    }

    /// Set the DSCP/ECN byte.
    pub fn set_dscp_ecn(&mut self, v: u8) {
        self.buffer.as_mut()[field::DSCP_ECN] = v;
    }

    /// Set the total length field.
    pub fn set_total_len(&mut self, v: u16) {
        self.buffer.as_mut()[field::TOTAL_LEN].copy_from_slice(&v.to_be_bytes());
    }

    /// Set the identification field.
    pub fn set_ident(&mut self, v: u16) {
        self.buffer.as_mut()[field::IDENT].copy_from_slice(&v.to_be_bytes());
    }

    /// Clear flags and fragment offset (Lemur does not fragment).
    pub fn clear_flags(&mut self) {
        self.buffer.as_mut()[field::FLAGS_FRAG].copy_from_slice(&[0, 0]);
    }

    /// Set the TTL.
    pub fn set_ttl(&mut self, v: u8) {
        self.buffer.as_mut()[field::TTL] = v;
    }

    /// Set the protocol field.
    pub fn set_protocol(&mut self, v: Protocol) {
        self.buffer.as_mut()[field::PROTOCOL] = v.into();
    }

    /// Set the source address.
    pub fn set_src(&mut self, a: Address) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(&a.0);
    }

    /// Set the destination address.
    pub fn set_dst(&mut self, a: Address) {
        self.buffer.as_mut()[field::DST].copy_from_slice(&a.0);
    }

    /// Recompute and store the header checksum.
    pub fn fill_checksum(&mut self) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let hl = self.header_len() as usize;
        let sum = checksum::checksum(0, &self.buffer.as_ref()[..hl]);
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&sum.to_be_bytes());
    }

    /// Mutable payload view.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len() as usize;
        let tl = self.total_len() as usize;
        &mut self.buffer.as_mut()[hl..tl]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        {
            let mut p = Packet::new_unchecked(&mut buf[..]);
            p.set_version_and_len(20);
            p.set_total_len((HEADER_LEN + payload.len()) as u16);
            p.set_ident(0x1234);
            p.clear_flags();
            p.set_ttl(64);
            p.set_protocol(Protocol::Udp);
            p.set_src(Address::new(192, 168, 1, 1));
            p.set_dst(Address::new(10, 0, 0, 1));
            p.payload_mut().copy_from_slice(payload);
            p.fill_checksum();
        }
        buf
    }

    #[test]
    fn roundtrip() {
        let buf = build(b"payload");
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.version(), 4);
        assert_eq!(p.header_len(), 20);
        assert_eq!(p.ttl(), 64);
        assert_eq!(p.protocol(), Protocol::Udp);
        assert_eq!(p.src(), Address::new(192, 168, 1, 1));
        assert_eq!(p.dst(), Address::new(10, 0, 0, 1));
        assert_eq!(p.payload(), b"payload");
        assert!(p.verify_checksum());
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut buf = build(b"x");
        buf[field::TTL] = 63; // mutate without re-checksumming
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert!(!p.verify_checksum());
    }

    #[test]
    fn version_must_be_4() {
        let mut buf = build(b"");
        buf[0] = 0x65; // version 6
        assert_eq!(
            Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Unsupported
        );
    }

    #[test]
    fn bad_total_len_rejected() {
        let mut buf = build(b"abc");
        let n = buf.len();
        buf[field::TOTAL_LEN].copy_from_slice(&((n + 10) as u16).to_be_bytes());
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn short_header_len_rejected() {
        let mut buf = build(b"");
        buf[0] = 0x43; // IHL = 3 words = 12 bytes < 20
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn address_parse_and_display() {
        let a: Address = "172.16.254.3".parse().unwrap();
        assert_eq!(a, Address::new(172, 16, 254, 3));
        assert_eq!(a.to_string(), "172.16.254.3");
        assert!("1.2.3".parse::<Address>().is_err());
        assert!("1.2.3.4.5".parse::<Address>().is_err());
        assert!("1.2.3.256".parse::<Address>().is_err());
    }

    #[test]
    fn cidr_contains() {
        let c: Cidr = "10.0.0.0/8".parse().unwrap();
        assert!(c.contains(Address::new(10, 255, 1, 2)));
        assert!(!c.contains(Address::new(11, 0, 0, 1)));
        let all: Cidr = "0.0.0.0/0".parse().unwrap();
        assert!(all.contains(Address::new(203, 0, 113, 7)));
        let host: Cidr = "192.0.2.1/32".parse().unwrap();
        assert!(host.contains(Address::new(192, 0, 2, 1)));
        assert!(!host.contains(Address::new(192, 0, 2, 2)));
    }

    #[test]
    fn cidr_rejects_long_prefix() {
        assert!(Cidr::new(Address::new(0, 0, 0, 0), 33).is_err());
    }

    #[test]
    fn u32_roundtrip() {
        let a = Address::new(1, 2, 3, 4);
        assert_eq!(Address::from_u32(a.to_u32()), a);
        assert_eq!(a.to_u32(), 0x01020304);
    }
}
