//! Ethernet II frame view.

use crate::error::{Error, Result};
use core::fmt;

/// A MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub [u8; 6]);

impl Address {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: Address = Address([0xff; 6]);

    /// True if the least-significant bit of the first octet is set
    /// (multicast or broadcast).
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for the all-ones broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True for a unicast address (not multicast, not all-zero).
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast() && self.0 != [0; 6]
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values Lemur's dataplane understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    Ipv4,
    /// 802.1Q VLAN tag.
    Vlan,
    /// Network Service Header (RFC 8300 allocates 0x894F).
    Nsh,
    Arp,
    Unknown(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x8100 => EtherType::Vlan,
            0x894f => EtherType::Nsh,
            0x0806 => EtherType::Arp,
            other => EtherType::Unknown(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Vlan => 0x8100,
            EtherType::Nsh => 0x894f,
            EtherType::Arp => 0x0806,
            EtherType::Unknown(other) => other,
        }
    }
}

/// Length of the Ethernet II header.
pub const HEADER_LEN: usize = 14;

mod field {
    use core::ops::Range;
    pub const DST: Range<usize> = 0..6;
    pub const SRC: Range<usize> = 6..12;
    pub const ETHERTYPE: Range<usize> = 12..14;
    pub const PAYLOAD: usize = 14;
}

/// A read (or read/write) view of an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wrap a buffer without checking its length.
    ///
    /// Accessors panic if the buffer is shorter than [`HEADER_LEN`]; prefer
    /// [`Frame::new_checked`].
    pub fn new_unchecked(buffer: T) -> Frame<T> {
        Frame { buffer }
    }

    /// Wrap a buffer, verifying it is long enough for the header.
    pub fn new_checked(buffer: T) -> Result<Frame<T>> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(Frame { buffer })
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn dst(&self) -> Address {
        let mut a = [0; 6];
        a.copy_from_slice(&self.buffer.as_ref()[field::DST]);
        Address(a)
    }

    /// Source MAC address.
    pub fn src(&self) -> Address {
        let mut a = [0; 6];
        a.copy_from_slice(&self.buffer.as_ref()[field::SRC]);
        Address(a)
    }

    /// EtherType of the encapsulated payload.
    pub fn ethertype(&self) -> EtherType {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::ETHERTYPE.start], d[field::ETHERTYPE.start + 1]]).into()
    }

    /// Immutable view of the frame payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[field::PAYLOAD..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Frame<T> {
    /// Set the destination MAC address.
    pub fn set_dst(&mut self, addr: Address) {
        self.buffer.as_mut()[field::DST].copy_from_slice(&addr.0);
    }

    /// Set the source MAC address.
    pub fn set_src(&mut self, addr: Address) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(&addr.0);
    }

    /// Set the EtherType.
    pub fn set_ethertype(&mut self, ty: EtherType) {
        self.buffer.as_mut()[field::ETHERTYPE].copy_from_slice(&u16::from(ty).to_be_bytes());
    }

    /// Mutable view of the frame payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[field::PAYLOAD..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut f = vec![0u8; HEADER_LEN + 4];
        {
            let mut frame = Frame::new_unchecked(&mut f[..]);
            frame.set_dst(Address([1, 2, 3, 4, 5, 6]));
            frame.set_src(Address([7, 8, 9, 10, 11, 12]));
            frame.set_ethertype(EtherType::Ipv4);
            frame.payload_mut().copy_from_slice(b"abcd");
        }
        f
    }

    #[test]
    fn roundtrip() {
        let buf = sample();
        let frame = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(frame.dst(), Address([1, 2, 3, 4, 5, 6]));
        assert_eq!(frame.src(), Address([7, 8, 9, 10, 11, 12]));
        assert_eq!(frame.ethertype(), EtherType::Ipv4);
        assert_eq!(frame.payload(), b"abcd");
    }

    #[test]
    fn too_short_rejected() {
        assert_eq!(
            Frame::new_checked(&[0u8; 13][..]).unwrap_err(),
            Error::Truncated
        );
        assert!(Frame::new_checked(&[0u8; 14][..]).is_ok());
    }

    #[test]
    fn ethertype_codes() {
        assert_eq!(u16::from(EtherType::Nsh), 0x894f);
        assert_eq!(EtherType::from(0x8100), EtherType::Vlan);
        assert_eq!(EtherType::from(0x1234), EtherType::Unknown(0x1234));
        assert_eq!(u16::from(EtherType::Unknown(0x4321)), 0x4321);
    }

    #[test]
    fn address_classes() {
        assert!(Address::BROADCAST.is_broadcast());
        assert!(Address::BROADCAST.is_multicast());
        assert!(Address([0x01, 0, 0, 0, 0, 0]).is_multicast());
        assert!(Address([0x02, 0, 0, 0, 0, 1]).is_unicast());
        assert!(!Address([0; 6]).is_unicast());
    }

    #[test]
    fn display_format() {
        assert_eq!(
            Address([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]).to_string(),
            "de:ad:be:ef:00:01"
        );
    }
}
