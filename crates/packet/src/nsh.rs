//! Network Service Header (NSH, RFC 8300) view.
//!
//! Lemur tags packets with an NSH carrying a Service Path Index (SPI, the
//! linear chain identifier) and a Service Index (SI, the position within the
//! chain). The ToR PISA switch sets the initial SPI/SI; platform-generated
//! coordination code decrements the SI as the packet traverses NFs (§4.1).
//!
//! We implement the fixed-size MD type 2 header with no metadata TLVs:
//! 8 bytes = base header (4) + service path header (4).

use crate::error::{Error, Result};

/// Length of the NSH base + service path headers (MD type 2, no TLVs).
pub const HEADER_LEN: usize = 8;

/// Next-protocol values (RFC 8300 §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NextProtocol {
    Ipv4,
    Ethernet,
    Unknown(u8),
}

impl From<u8> for NextProtocol {
    fn from(v: u8) -> Self {
        match v {
            0x01 => NextProtocol::Ipv4,
            0x03 => NextProtocol::Ethernet,
            other => NextProtocol::Unknown(other),
        }
    }
}

impl From<NextProtocol> for u8 {
    fn from(v: NextProtocol) -> u8 {
        match v {
            NextProtocol::Ipv4 => 0x01,
            NextProtocol::Ethernet => 0x03,
            NextProtocol::Unknown(other) => other,
        }
    }
}

/// A view of an NSH header.
#[derive(Debug, Clone)]
pub struct Header<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Header<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Header<T> {
        Header { buffer }
    }

    /// Wrap a buffer, validating version, length, and MD type.
    pub fn new_checked(buffer: T) -> Result<Header<T>> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let h = Header { buffer };
        if h.version() != 0 {
            return Err(Error::Unsupported);
        }
        // Length field is in 4-byte words; MD type 2 with no TLVs is 2 words.
        if h.length_words() < 2 || (h.length_words() as usize) * 4 > h.buffer.as_ref().len() {
            return Err(Error::Malformed);
        }
        if h.md_type() != 2 {
            return Err(Error::Unsupported);
        }
        Ok(h)
    }

    /// NSH version (2 bits; must be 0).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[0] >> 6
    }

    /// Header length in 4-byte words.
    pub fn length_words(&self) -> u8 {
        self.buffer.as_ref()[1] & 0x3f
    }

    /// Metadata type (4 bits).
    pub fn md_type(&self) -> u8 {
        self.buffer.as_ref()[2] & 0x0f
    }

    /// Next protocol after NSH.
    pub fn next_protocol(&self) -> NextProtocol {
        self.buffer.as_ref()[3].into()
    }

    /// Service Path Identifier (24 bits).
    pub fn spi(&self) -> u32 {
        let d = self.buffer.as_ref();
        u32::from_be_bytes([0, d[4], d[5], d[6]])
    }

    /// Service Index (8 bits).
    pub fn si(&self) -> u8 {
        self.buffer.as_ref()[7]
    }

    /// Payload following the NSH header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[(self.length_words() as usize) * 4..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Header<T> {
    /// Initialize an MD-type-2, zero-TLV header in place.
    pub fn init(&mut self, next: NextProtocol) {
        let d = self.buffer.as_mut();
        d[0] = 0; // version 0, no O/U bits
        d[1] = 2; // length = 2 words
        d[2] = 0x02; // MD type 2
        d[3] = next.into();
    }

    /// Set the Service Path Identifier (24 bits; high byte ignored).
    pub fn set_spi(&mut self, spi: u32) {
        debug_assert!(spi < (1 << 24));
        let b = spi.to_be_bytes();
        self.buffer.as_mut()[4..7].copy_from_slice(&b[1..4]);
    }

    /// Set the Service Index.
    pub fn set_si(&mut self, si: u8) {
        self.buffer.as_mut()[7] = si;
    }

    /// Decrement the Service Index, as each service-plane hop must (RFC 8300
    /// §2.3). Returns the new value, or `Err` if the SI would underflow — an
    /// underflow means the chain was mis-programmed and the packet must drop.
    pub fn decrement_si(&mut self) -> Result<u8> {
        let si = self.buffer.as_ref()[7];
        if si == 0 {
            return Err(Error::Malformed);
        }
        self.buffer.as_mut()[7] = si - 1;
        Ok(si - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(spi: u32, si: u8) -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + 3];
        {
            let mut h = Header::new_unchecked(&mut buf[..]);
            h.init(NextProtocol::Ipv4);
            h.set_spi(spi);
            h.set_si(si);
        }
        buf[HEADER_LEN..].copy_from_slice(b"abc");
        buf
    }

    #[test]
    fn roundtrip() {
        let buf = build(0x00ab_cdef, 7);
        let h = Header::new_checked(&buf[..]).unwrap();
        assert_eq!(h.version(), 0);
        assert_eq!(h.md_type(), 2);
        assert_eq!(h.next_protocol(), NextProtocol::Ipv4);
        assert_eq!(h.spi(), 0x00ab_cdef);
        assert_eq!(h.si(), 7);
        assert_eq!(h.payload(), b"abc");
    }

    #[test]
    fn decrement_si() {
        let mut buf = build(1, 2);
        let mut h = Header::new_unchecked(&mut buf[..]);
        assert_eq!(h.decrement_si().unwrap(), 1);
        assert_eq!(h.decrement_si().unwrap(), 0);
        assert_eq!(h.decrement_si().unwrap_err(), Error::Malformed);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = build(1, 1);
        buf[0] = 0x40; // version 1
        assert_eq!(
            Header::new_checked(&buf[..]).unwrap_err(),
            Error::Unsupported
        );
    }

    #[test]
    fn bad_md_type_rejected() {
        let mut buf = build(1, 1);
        buf[2] = 0x01;
        assert_eq!(
            Header::new_checked(&buf[..]).unwrap_err(),
            Error::Unsupported
        );
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            Header::new_checked(&[0u8; 7][..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn spi_is_24_bits() {
        let buf = build(0x00ff_ffff, 1);
        let h = Header::new_checked(&buf[..]).unwrap();
        assert_eq!(h.spi(), 0x00ff_ffff);
    }
}
