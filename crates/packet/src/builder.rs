//! Convenience builders for fully-formed packets.
//!
//! The traffic generator and the tests use these to construct valid frames
//! with correct lengths and checksums at every layer.

use crate::batch::PacketBuf;
use crate::ethernet::{self, EtherType};
use crate::ipv4::{self, Protocol};
use crate::{nsh, tcp, udp, vlan};

/// Build an Ethernet/IPv4/UDP packet with the given payload.
#[allow(clippy::too_many_arguments)]
pub fn udp_packet(
    eth_src: ethernet::Address,
    eth_dst: ethernet::Address,
    ip_src: ipv4::Address,
    ip_dst: ipv4::Address,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> PacketBuf {
    let udp_len = udp::HEADER_LEN + payload.len();
    let ip_len = ipv4::HEADER_LEN + udp_len;
    let total = ethernet::HEADER_LEN + ip_len;
    let mut buf = PacketBuf::zeroed(total);
    {
        let mut eth = ethernet::Frame::new_unchecked(buf.as_mut_slice());
        eth.set_src(eth_src);
        eth.set_dst(eth_dst);
        eth.set_ethertype(EtherType::Ipv4);
        let mut ip = ipv4::Packet::new_unchecked(eth.payload_mut());
        ip.set_version_and_len(ipv4::HEADER_LEN as u8);
        ip.set_dscp_ecn(0);
        ip.set_total_len(ip_len as u16);
        ip.set_ident(0);
        ip.clear_flags();
        ip.set_ttl(64);
        ip.set_protocol(Protocol::Udp);
        ip.set_src(ip_src);
        ip.set_dst(ip_dst);
        let mut u = udp::Packet::new_unchecked(ip.payload_mut());
        u.set_src_port(src_port);
        u.set_dst_port(dst_port);
        u.set_length(udp_len as u16);
        u.payload_mut().copy_from_slice(payload);
        u.fill_checksum(ip_src, ip_dst);
        ip.fill_checksum();
    }
    buf
}

/// Build an Ethernet/IPv4/TCP packet with the given payload and flags.
#[allow(clippy::too_many_arguments)]
pub fn tcp_packet(
    eth_src: ethernet::Address,
    eth_dst: ethernet::Address,
    ip_src: ipv4::Address,
    ip_dst: ipv4::Address,
    src_port: u16,
    dst_port: u16,
    flags: tcp::Flags,
    payload: &[u8],
) -> PacketBuf {
    let tcp_len = tcp::HEADER_LEN + payload.len();
    let ip_len = ipv4::HEADER_LEN + tcp_len;
    let total = ethernet::HEADER_LEN + ip_len;
    let mut buf = PacketBuf::zeroed(total);
    {
        let mut eth = ethernet::Frame::new_unchecked(buf.as_mut_slice());
        eth.set_src(eth_src);
        eth.set_dst(eth_dst);
        eth.set_ethertype(EtherType::Ipv4);
        let mut ip = ipv4::Packet::new_unchecked(eth.payload_mut());
        ip.set_version_and_len(ipv4::HEADER_LEN as u8);
        ip.set_total_len(ip_len as u16);
        ip.set_ident(0);
        ip.clear_flags();
        ip.set_ttl(64);
        ip.set_protocol(Protocol::Tcp);
        ip.set_src(ip_src);
        ip.set_dst(ip_dst);
        let mut t = tcp::Packet::new_unchecked(ip.payload_mut());
        t.set_src_port(src_port);
        t.set_dst_port(dst_port);
        t.set_seq(0);
        t.set_ack(0);
        t.set_header_len(tcp::HEADER_LEN as u8);
        t.set_flags(flags);
        t.set_window(65535);
        t.set_urgent(0);
        t.payload_mut().copy_from_slice(payload);
        t.fill_checksum(ip_src, ip_dst);
        ip.fill_checksum();
    }
    buf
}

/// Push an NSH header (plus an outer Ethernet header carrying EtherType NSH)
/// in front of an existing frame. This is what the generated `NSHencap`
/// module does at the tail of a server subgroup (§A.1.2).
pub fn nsh_encap(pkt: &mut PacketBuf, spi: u32, si: u8) {
    // Copy the original Ethernet addresses to the new outer header. A
    // frame too short to carry them cannot be service-chained: leave it
    // alone rather than fabricate an outer header from garbage.
    let Ok(eth) = ethernet::Frame::new_checked(pkt.as_slice()) else {
        return;
    };
    let (dst, src) = (eth.dst(), eth.src());
    let mut hdr = [0u8; ethernet::HEADER_LEN + nsh::HEADER_LEN];
    {
        let mut eth = ethernet::Frame::new_unchecked(&mut hdr[..]);
        eth.set_dst(dst);
        eth.set_src(src);
        eth.set_ethertype(EtherType::Nsh);
        let mut n = nsh::Header::new_unchecked(eth.payload_mut());
        n.init(nsh::NextProtocol::Ethernet);
        n.set_spi(spi);
        n.set_si(si);
    }
    pkt.push_front(&hdr);
}

/// Remove the outer Ethernet+NSH headers pushed by [`nsh_encap`], returning
/// the SPI/SI that were carried. Returns `None` if the packet does not start
/// with an NSH encapsulation.
pub fn nsh_decap(pkt: &mut PacketBuf) -> Option<(u32, u8)> {
    let eth = ethernet::Frame::new_checked(pkt.as_slice()).ok()?;
    if eth.ethertype() != EtherType::Nsh {
        return None;
    }
    let n = nsh::Header::new_checked(eth.payload()).ok()?;
    let out = (n.spi(), n.si());
    pkt.advance_front(ethernet::HEADER_LEN + nsh::HEADER_LEN);
    Some(out)
}

/// Read SPI/SI of an NSH-encapsulated frame without removing the header.
pub fn nsh_peek(frame: &[u8]) -> Option<(u32, u8)> {
    let eth = ethernet::Frame::new_checked(frame).ok()?;
    if eth.ethertype() != EtherType::Nsh {
        return None;
    }
    let n = nsh::Header::new_checked(eth.payload()).ok()?;
    Some((n.spi(), n.si()))
}

/// Rewrite the SI of an NSH-encapsulated frame in place. Returns false if
/// the frame is not NSH-encapsulated.
pub fn nsh_set_si(pkt: &mut PacketBuf, si: u8) -> bool {
    let is_nsh = matches!(
        ethernet::Frame::new_checked(pkt.as_slice()).map(|e| e.ethertype()),
        Ok(EtherType::Nsh)
    );
    // The EtherType may promise NSH on a frame truncated mid-header;
    // only a complete service header is writable.
    if !is_nsh || pkt.len() < ethernet::HEADER_LEN + nsh::HEADER_LEN {
        return false;
    }
    let data = pkt.as_mut_slice();
    let mut n = nsh::Header::new_unchecked(&mut data[ethernet::HEADER_LEN..]);
    n.set_si(si);
    true
}

/// Splice an 802.1Q tag into a plain Ethernet frame (Tunnel NF).
pub fn vlan_push(pkt: &mut PacketBuf, vid: u16) {
    vlan_push_at(pkt, 0, vid)
}

/// [`vlan_push`] on an Ethernet frame starting at `frame_off` within the
/// buffer — the form the PISA runtime uses on NSH-encapsulated packets
/// (the tag belongs to the *inner* frame, not the service header).
pub fn vlan_push_at(pkt: &mut PacketBuf, frame_off: usize, vid: u16) {
    // An offset beyond the buffer or a frame too short for an Ethernet
    // header has no EtherType to splice behind: no-op.
    let Some(frame) = pkt.as_slice().get(frame_off..) else {
        return;
    };
    let Ok(eth) = ethernet::Frame::new_checked(frame) else {
        return;
    };
    let inner_type = eth.ethertype();
    let mut tag = [0u8; vlan::TAG_LEN];
    {
        let mut t = vlan::Tag::new_unchecked(&mut tag[..]);
        t.set_tci(0, false, vid);
        t.set_inner_ethertype(inner_type);
    }
    pkt.insert_at(frame_off + 12, &tag);
    // Rewrite the frame's EtherType to VLAN.
    let data = &mut pkt.as_mut_slice()[frame_off..];
    data[12..14].copy_from_slice(&u16::from(EtherType::Vlan).to_be_bytes());
    data[14..16].copy_from_slice(&tag[0..2]);
    data[16..18].copy_from_slice(&tag[2..4]);
}

/// Remove an 802.1Q tag from a frame (Detunnel NF); returns the VID, or
/// `None` if the frame carried no tag.
pub fn vlan_pop(pkt: &mut PacketBuf) -> Option<u16> {
    vlan_pop_at(pkt, 0)
}

/// [`vlan_pop`] on an Ethernet frame starting at `frame_off`.
pub fn vlan_pop_at(pkt: &mut PacketBuf, frame_off: usize) -> Option<u16> {
    let (vid, inner) = {
        let eth = ethernet::Frame::new_checked(pkt.as_slice().get(frame_off..)?).ok()?;
        if eth.ethertype() != EtherType::Vlan {
            return None;
        }
        let tag = vlan::Tag::new_checked(eth.payload()).ok()?;
        (tag.vid(), tag.inner_ethertype())
    };
    pkt.remove_at_discard(frame_off + 12, vlan::TAG_LEN);
    let data = &mut pkt.as_mut_slice()[frame_off..];
    data[12..14].copy_from_slice(&u16::from(inner).to_be_bytes());
    Some(vid)
}

/// Read the VID of a tagged frame without modifying it.
pub fn vlan_peek(frame: &[u8]) -> Option<u16> {
    let eth = ethernet::Frame::new_checked(frame).ok()?;
    if eth.ethertype() != EtherType::Vlan {
        return None;
    }
    vlan::Tag::new_checked(eth.payload()).ok().map(|t| t.vid())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FiveTuple;

    fn sample() -> PacketBuf {
        udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(10, 0, 0, 1),
            ipv4::Address::new(10, 0, 0, 2),
            1234,
            80,
            b"data-data-data",
        )
    }

    #[test]
    fn udp_packet_is_valid_at_all_layers() {
        let pkt = sample();
        let eth = ethernet::Frame::new_checked(pkt.as_slice()).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let u = udp::Packet::new_checked(ip.payload()).unwrap();
        assert!(u.verify_checksum(ip.src(), ip.dst()));
        assert_eq!(u.payload(), b"data-data-data");
    }

    #[test]
    fn tcp_packet_is_valid_at_all_layers() {
        let pkt = tcp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(1, 1, 1, 1),
            ipv4::Address::new(2, 2, 2, 2),
            1000,
            2000,
            tcp::Flags::PSH.union(tcp::Flags::ACK),
            b"req",
        );
        let eth = ethernet::Frame::new_checked(pkt.as_slice()).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let t = tcp::Packet::new_checked(ip.payload()).unwrap();
        assert!(t.verify_checksum(ip.src(), ip.dst()));
        assert_eq!(t.payload(), b"req");
    }

    #[test]
    fn nsh_encap_decap_roundtrip() {
        let mut pkt = sample();
        let original = pkt.as_slice().to_vec();
        nsh_encap(&mut pkt, 42, 254);
        assert_eq!(nsh_peek(pkt.as_slice()), Some((42, 254)));
        assert_eq!(
            pkt.len(),
            original.len() + ethernet::HEADER_LEN + nsh::HEADER_LEN
        );
        assert!(nsh_set_si(&mut pkt, 200));
        assert_eq!(nsh_decap(&mut pkt), Some((42, 200)));
        assert_eq!(pkt.as_slice(), &original[..]);
    }

    #[test]
    fn nsh_decap_on_plain_frame_is_none() {
        let mut pkt = sample();
        assert_eq!(nsh_decap(&mut pkt), None);
        assert!(!nsh_set_si(&mut pkt, 1));
    }

    #[test]
    fn vlan_push_pop_roundtrip() {
        let mut pkt = sample();
        let original = pkt.as_slice().to_vec();
        vlan_push(&mut pkt, 0x0abc);
        assert_eq!(vlan_peek(pkt.as_slice()), Some(0x0abc));
        assert_eq!(pkt.len(), original.len() + vlan::TAG_LEN);
        // The 5-tuple must still parse through the tag.
        let t = FiveTuple::parse(pkt.as_slice()).unwrap();
        assert_eq!(t.dst_port, 80);
        assert_eq!(vlan_pop(&mut pkt), Some(0x0abc));
        assert_eq!(pkt.as_slice(), &original[..]);
    }

    #[test]
    fn vlan_pop_on_untagged_is_none() {
        let mut pkt = sample();
        assert_eq!(vlan_pop(&mut pkt), None);
        assert_eq!(vlan_peek(pkt.as_slice()), None);
    }

    #[test]
    fn nested_encap_nsh_over_vlan() {
        let mut pkt = sample();
        vlan_push(&mut pkt, 7);
        nsh_encap(&mut pkt, 1, 255);
        assert_eq!(nsh_decap(&mut pkt), Some((1, 255)));
        assert_eq!(vlan_pop(&mut pkt), Some(7));
        let u = FiveTuple::parse(pkt.as_slice()).unwrap();
        assert_eq!(u.src_port, 1234);
    }
}
