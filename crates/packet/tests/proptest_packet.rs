//! Property-based tests for the wire formats and packet buffers.

use lemur_packet::builder::{nsh_decap, nsh_encap, nsh_peek, udp_packet, vlan_pop, vlan_push};
use lemur_packet::flow::{salted_hash, FiveTuple};
use lemur_packet::{ethernet, ipv4, udp, PacketBuf};
use proptest::prelude::*;

fn arb_packet() -> impl Strategy<Value = PacketBuf> {
    (
        any::<[u8; 4]>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<u16>(),
        prop::collection::vec(any::<u8>(), 0..600),
    )
        .prop_map(|(src, dst, sport, dport, payload)| {
            udp_packet(
                ethernet::Address([2, 0, 0, 0, 0, 1]),
                ethernet::Address([2, 0, 0, 0, 0, 2]),
                ipv4::Address(src),
                ipv4::Address(dst),
                sport,
                dport,
                &payload,
            )
        })
}

proptest! {
    /// Builders always produce packets that validate at every layer with
    /// correct checksums, whatever the field values.
    #[test]
    fn built_packets_always_valid(pkt in arb_packet()) {
        let eth = ethernet::Frame::new_checked(pkt.as_slice()).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        prop_assert!(ip.verify_checksum());
        let u = udp::Packet::new_checked(ip.payload()).unwrap();
        prop_assert!(u.verify_checksum(ip.src(), ip.dst()));
    }

    /// NSH encap/decap is lossless for any packet, SPI, and SI.
    #[test]
    fn nsh_roundtrip(pkt in arb_packet(), spi in 0u32..(1 << 24), si: u8) {
        let original = pkt.as_slice().to_vec();
        let mut p = pkt;
        nsh_encap(&mut p, spi, si);
        prop_assert_eq!(nsh_peek(p.as_slice()), Some((spi, si)));
        prop_assert_eq!(nsh_decap(&mut p), Some((spi, si)));
        prop_assert_eq!(p.as_slice(), &original[..]);
    }

    /// VLAN push/pop is lossless and keeps the 5-tuple classifiable.
    #[test]
    fn vlan_roundtrip(pkt in arb_packet(), vid in 0u16..4096) {
        let original = pkt.as_slice().to_vec();
        let before = FiveTuple::parse(&original).unwrap();
        let mut p = pkt;
        vlan_push(&mut p, vid);
        prop_assert_eq!(FiveTuple::parse(p.as_slice()).unwrap(), before);
        prop_assert_eq!(vlan_pop(&mut p), Some(vid));
        prop_assert_eq!(p.as_slice(), &original[..]);
    }

    /// Arbitrary byte soup never panics the checked parsers; they either
    /// parse or return an error.
    #[test]
    fn parsers_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = ethernet::Frame::new_checked(&bytes[..]);
        let _ = ipv4::Packet::new_checked(&bytes[..]);
        let _ = udp::Packet::new_checked(&bytes[..]);
        let _ = FiveTuple::parse(&bytes);
        let _ = nsh_peek(&bytes);
    }

    /// PacketBuf front operations invert each other at any headroom state.
    #[test]
    fn pushfront_pullfront_inverse(
        base in prop::collection::vec(any::<u8>(), 1..200),
        hdr in prop::collection::vec(any::<u8>(), 1..100),
    ) {
        let mut p = PacketBuf::from_bytes(&base);
        p.push_front(&hdr);
        prop_assert_eq!(p.len(), base.len() + hdr.len());
        let taken = p.pull_front(hdr.len());
        prop_assert_eq!(taken, hdr);
        prop_assert_eq!(p.as_slice(), &base[..]);
    }

    /// Salted hashes stay deterministic and decorrelate across salts: two
    /// distinct salts must not produce identical low-bit splits for a
    /// varied flow population (the branch-starvation bug this guards).
    #[test]
    fn salted_hash_decorrelates(seeds in prop::collection::vec(any::<u64>(), 64..128)) {
        let mut same = 0usize;
        for h in &seeds {
            prop_assert_eq!(salted_hash(*h, 3), salted_hash(*h, 3));
            if salted_hash(*h, 1) % 2 == salted_hash(*h, 2) % 2 {
                same += 1;
            }
        }
        // Perfectly correlated splits would give same == len.
        prop_assert!(same < seeds.len());
    }
}
