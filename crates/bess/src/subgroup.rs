//! Run-to-completion subgroups.
//!
//! A subgroup is a maximal run of consecutive server NFs in one chain,
//! executed to completion on one core: "a packet batch is fully processed
//! by both NFs before B starts processing the next batch" (§3.2). Packets
//! move between the subgroup's NFs by reference — no copies, no queues, no
//! cross-core traffic.

use lemur_nf::{
    AggregateObservables, AggregateOutcome, AggregateUpdate, NetworkFunction, NfCtx, NfKind,
    NfSnapshot, SnapshotError, Verdict,
};
use lemur_packet::{Batch, PacketBuf};

/// Output of processing a batch: surviving packets with the gate each one
/// exited on. Gate 0 is the normal "next hop"; other gates appear only when
/// the subgroup's final NF is a branching `Match`.
#[derive(Debug, Default)]
pub struct SubgroupOutput {
    pub packets: Vec<(PacketBuf, usize)>,
    pub dropped: usize,
}

/// A run-to-completion subgroup instance (one replica on one core).
pub struct Subgroup {
    name: String,
    nfs: Vec<Box<dyn NetworkFunction>>,
    packets_in: u64,
    packets_dropped: u64,
}

impl Subgroup {
    /// Build from NF instances (must be non-empty).
    pub fn new(name: &str, nfs: Vec<Box<dyn NetworkFunction>>) -> Subgroup {
        assert!(!nfs.is_empty(), "subgroup needs at least one NF");
        Subgroup {
            name: name.to_string(),
            nfs,
            packets_in: 0,
            packets_dropped: 0,
        }
    }

    /// The subgroup's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of NFs coalesced into this subgroup.
    pub fn len(&self) -> usize {
        self.nfs.len()
    }

    /// True if the subgroup has no NFs (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nfs.is_empty()
    }

    /// True if any member NF is stateful (non-replicable, §3.2).
    pub fn is_stateful(&self) -> bool {
        self.nfs.iter().any(|nf| nf.is_stateful())
    }

    /// Replicate onto another core: fresh state, same configuration.
    /// Callers must check [`Subgroup::is_stateful`] first; the Placer never
    /// replicates stateful subgroups.
    pub fn clone_fresh(&self) -> Subgroup {
        Subgroup {
            name: self.name.clone(),
            nfs: self.nfs.iter().map(|nf| nf.clone_fresh()).collect(),
            packets_in: 0,
            packets_dropped: 0,
        }
    }

    /// Process one packet through the whole subgroup. Returns the exit gate
    /// or `None` if dropped.
    pub fn process_packet(&mut self, ctx: &NfCtx, pkt: &mut PacketBuf) -> Option<usize> {
        self.packets_in += 1;
        let last = self.nfs.len() - 1;
        for (i, nf) in self.nfs.iter_mut().enumerate() {
            match nf.process(ctx, pkt) {
                Verdict::Forward => {}
                Verdict::Drop => {
                    self.packets_dropped += 1;
                    return None;
                }
                Verdict::Gate(g) => {
                    if i == last {
                        return Some(g);
                    }
                    // A branching verdict mid-subgroup means the
                    // meta-compiler put a Match in a non-terminal slot;
                    // gate 0 continues the run (all other traffic was
                    // already split upstream).
                    if g != 0 {
                        self.packets_dropped += 1;
                        return None;
                    }
                }
            }
        }
        Some(0)
    }

    /// Run a batch to completion, collecting survivors per exit gate.
    pub fn process_batch(&mut self, ctx: &NfCtx, batch: Batch) -> SubgroupOutput {
        let mut out = SubgroupOutput::default();
        for mut pkt in batch {
            match self.process_packet(ctx, &mut pkt) {
                Some(gate) => out.packets.push((pkt, gate)),
                None => out.dropped += 1,
            }
        }
        out
    }

    /// Packets seen so far.
    pub fn packets_in(&self) -> u64 {
        self.packets_in
    }

    /// Packets dropped so far.
    pub fn packets_dropped(&self) -> u64 {
        self.packets_dropped
    }

    /// The kind of the NF at `idx`, if in range.
    pub fn nf_kind(&self, idx: usize) -> Option<NfKind> {
        self.nfs.get(idx).map(|nf| nf.kind())
    }

    /// Snapshot the migratable state of the NF at `idx` (`None` if the NF
    /// exports none or `idx` is out of range).
    pub fn snapshot_nf(&self, idx: usize) -> Option<NfSnapshot> {
        self.nfs.get(idx).and_then(|nf| nf.snapshot_state())
    }

    /// Restore a snapshot into the NF at `idx`. All-or-nothing: on `Err`
    /// the NF is unchanged.
    pub fn restore_nf(&mut self, idx: usize, snapshot: &NfSnapshot) -> Result<(), SnapshotError> {
        match self.nfs.get_mut(idx) {
            Some(nf) => nf.restore_state(snapshot),
            None => Err(SnapshotError::Invalid("NF index out of range in subgroup")),
        }
    }

    /// FNV-1a/128 state fingerprint of the NF at `idx` (0 when stateless
    /// or out of range).
    pub fn nf_state_fingerprint(&self, idx: usize) -> u128 {
        self.nfs
            .get(idx)
            .map(|nf| nf.state_fingerprint())
            .unwrap_or(0)
    }

    /// Apply one SLO window's analytic-tail mass to the NF at `idx`
    /// (hybrid engine). `None` when `idx` is out of range.
    pub fn apply_aggregate_nf(
        &mut self,
        idx: usize,
        update: &AggregateUpdate,
    ) -> Option<AggregateOutcome> {
        self.nfs.get_mut(idx).map(|nf| nf.apply_aggregate(update))
    }

    /// Combined exact + tail observables of the NF at `idx`.
    pub fn nf_observables(&self, idx: usize) -> Option<AggregateObservables> {
        self.nfs.get(idx).map(|nf| nf.observables())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_nf::{build_nf, NfKind, NfParams, ParamValue};
    use lemur_packet::builder::udp_packet;
    use lemur_packet::{ethernet, ipv4};

    fn pkt(dst: ipv4::Address) -> PacketBuf {
        udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(203, 0, 113, 1),
            dst,
            1111,
            80,
            b"subgroup payload",
        )
    }

    fn acl_allowing(prefix: &str) -> Box<dyn NetworkFunction> {
        let mut params = NfParams::new();
        let mut d = std::collections::BTreeMap::new();
        d.insert("dst_ip".to_string(), ParamValue::Str(prefix.into()));
        d.insert("drop".to_string(), ParamValue::Bool(false));
        params.set("rules", ParamValue::List(vec![ParamValue::Dict(d)]));
        build_nf(NfKind::Acl, &params)
    }

    #[test]
    fn batch_runs_all_nfs_in_order() {
        // ACL (allow 10/8) -> Monitor -> IPv4Fwd: an in-prefix packet
        // survives, an out-of-prefix one is dropped by the ACL.
        let nfs = vec![
            acl_allowing("10.0.0.0/8"),
            build_nf(NfKind::Monitor, &NfParams::new()),
            build_nf(NfKind::Ipv4Fwd, &NfParams::new()),
        ];
        let mut sg = Subgroup::new("sg0", nfs);
        assert_eq!(sg.len(), 3);
        let ctx = NfCtx::default();
        let batch = Batch::from_packets(vec![
            pkt(ipv4::Address::new(10, 1, 1, 1)),
            pkt(ipv4::Address::new(99, 1, 1, 1)),
        ]);
        let out = sg.process_batch(&ctx, batch);
        assert_eq!(out.packets.len(), 1);
        assert_eq!(out.dropped, 1);
        assert_eq!(sg.packets_in(), 2);
        assert_eq!(sg.packets_dropped(), 1);
    }

    #[test]
    fn terminal_match_reports_gate() {
        let mut params = NfParams::new();
        params.set("split", ParamValue::Int(3));
        let nfs = vec![
            build_nf(NfKind::Monitor, &NfParams::new()),
            build_nf(NfKind::Match, &params),
        ];
        let mut sg = Subgroup::new("brancher", nfs);
        let ctx = NfCtx::default();
        let mut gates = std::collections::HashSet::new();
        for i in 0..50u16 {
            let mut p = udp_packet(
                ethernet::Address([2, 0, 0, 0, 0, 1]),
                ethernet::Address([2, 0, 0, 0, 0, 2]),
                ipv4::Address::new(10, 0, 0, 1),
                ipv4::Address::new(10, 0, 0, 2),
                1000 + i,
                80,
                b"x",
            );
            gates.insert(sg.process_packet(&ctx, &mut p).unwrap());
        }
        assert!(gates.len() >= 2, "split must use several gates: {gates:?}");
        assert!(gates.iter().all(|g| *g < 3));
    }

    #[test]
    fn stateful_detection() {
        let stateless = Subgroup::new(
            "s",
            vec![
                build_nf(NfKind::Acl, &NfParams::new()),
                build_nf(NfKind::Ipv4Fwd, &NfParams::new()),
            ],
        );
        assert!(!stateless.is_stateful());
        let stateful = Subgroup::new(
            "t",
            vec![
                build_nf(NfKind::Acl, &NfParams::new()),
                build_nf(NfKind::Limiter, &NfParams::new()),
            ],
        );
        assert!(stateful.is_stateful());
    }

    #[test]
    fn clone_fresh_replicates_config_not_state() {
        let mut sg = Subgroup::new("m", vec![build_nf(NfKind::Monitor, &NfParams::new())]);
        let ctx = NfCtx::default();
        let mut p = pkt(ipv4::Address::new(10, 0, 0, 1));
        sg.process_packet(&ctx, &mut p);
        assert_eq!(sg.packets_in(), 1);
        let replica = sg.clone_fresh();
        assert_eq!(replica.packets_in(), 0);
        assert_eq!(replica.len(), 1);
        assert_eq!(replica.name(), "m");
    }

    #[test]
    #[should_panic(expected = "at least one NF")]
    fn empty_subgroup_panics() {
        Subgroup::new("x", vec![]);
    }
}
