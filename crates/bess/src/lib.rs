//! # lemur-bess
//!
//! The x86 server substrate: a BESS-style software dataplane on a modeled
//! commodity server.
//!
//! Pieces, mirroring the paper's Appendix A.1:
//!
//! * [`machine`] — server hardware model: sockets, cores, NIC attachment,
//!   clock rate, and the NUMA cross-socket penalty visible in Table 4.
//! * [`subgroup`] — run-to-completion subgroups: consecutive server NFs
//!   coalesced onto one core, processing a whole batch through every NF
//!   before pulling the next (§3.2), with zero-copy packet hand-off.
//! * [`demux`] — the shared `NSHdecap`/demultiplexer module that steers
//!   packets to the right subgroup (by SPI/SI) and replica (by flow hash),
//!   and the `NSHencap` mux at the tail (§A.1.2).
//! * [`scheduler`] — the per-core scheduler tree: round-robin interior
//!   nodes, task leaves, and token-bucket rate enforcement of `t_max`
//!   (§A.1.3).
//! * [`profiler`] — measures cycles/packet of the *real* Rust NFs in this
//!   repository under the paper's two worst-case traffic patterns
//!   (footnote 6), producing Table 4-shaped statistics.

pub mod demux;
pub mod machine;
pub mod profiler;
pub mod scheduler;
pub mod subgroup;

pub use demux::{Demux, DemuxKey};
pub use machine::{CoreId, NicSpec, ServerSpec, SocketId};
pub use profiler::{profile_nf, ProfileStats, TrafficPattern};
pub use scheduler::{SchedulerTree, TaskId};
pub use subgroup::{Subgroup, SubgroupOutput};
