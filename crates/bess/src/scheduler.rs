//! The per-core scheduler tree (§A.1.3).
//!
//! BESS separates the module graph from the scheduler: each core owns a
//! tree whose interior nodes are policies and whose leaves are schedulable
//! tasks (subgroup instances). We implement the two node types Lemur's
//! generated configuration uses: round-robin, and token-bucket rate limits
//! that enforce each chain's `t_max`.

use std::collections::HashMap;

/// Identifies a schedulable task (a subgroup instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// A node in the scheduler tree.
#[derive(Debug)]
enum Node {
    /// Round-robin over children.
    RoundRobin { children: Vec<Node>, next: usize },
    /// Rate limit (bits/sec with a burst) over a single child.
    RateLimit {
        rate_bps: f64,
        burst_bits: f64,
        tokens: f64,
        last_ns: u64,
        child: Box<Node>,
    },
    /// A leaf task.
    Leaf(TaskId),
}

/// One core's scheduler tree.
#[derive(Debug)]
pub struct SchedulerTree {
    root: Node,
    /// Bits consumed per task (for accounting tests).
    consumed: HashMap<TaskId, f64>,
}

impl SchedulerTree {
    /// A tree with an empty round-robin root.
    pub fn new() -> SchedulerTree {
        SchedulerTree {
            root: Node::RoundRobin {
                children: Vec::new(),
                next: 0,
            },
            consumed: HashMap::new(),
        }
    }

    /// Add a plain leaf under the root (default BESS behaviour: "a single
    /// pipeline is assigned to the first system core under a round-robin
    /// root node").
    pub fn add_task(&mut self, task: TaskId) {
        if let Node::RoundRobin { children, .. } = &mut self.root {
            children.push(Node::Leaf(task));
        }
    }

    /// Add a rate-limited leaf: `t_max` enforcement for the chain the task
    /// serves.
    pub fn add_rate_limited_task(&mut self, task: TaskId, rate_bps: f64, burst_bits: f64) {
        if let Node::RoundRobin { children, .. } = &mut self.root {
            children.push(Node::RateLimit {
                rate_bps,
                burst_bits,
                tokens: burst_bits,
                last_ns: 0,
                child: Box::new(Node::Leaf(task)),
            });
        }
    }

    /// Number of leaves under the root.
    pub fn num_tasks(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::RoundRobin { children, .. } => children.iter().map(count).sum(),
                Node::RateLimit { child, .. } => count(child),
                Node::Leaf(_) => 1,
            }
        }
        count(&self.root)
    }

    /// Pick the next task allowed to run a batch of `batch_bits` at virtual
    /// time `now_ns`. Returns `None` when every child is rate-throttled.
    pub fn pick(&mut self, now_ns: u64, batch_bits: f64) -> Option<TaskId> {
        fn try_node(n: &mut Node, now_ns: u64, batch_bits: f64) -> Option<TaskId> {
            match n {
                Node::Leaf(t) => Some(*t),
                Node::RateLimit {
                    rate_bps,
                    burst_bits,
                    tokens,
                    last_ns,
                    child,
                } => {
                    if now_ns > *last_ns {
                        let dt = (now_ns - *last_ns) as f64 / 1e9;
                        *tokens = (*tokens + dt * *rate_bps).min(*burst_bits);
                        *last_ns = now_ns;
                    }
                    if *tokens >= batch_bits {
                        let picked = try_node(child, now_ns, batch_bits);
                        if picked.is_some() {
                            *tokens -= batch_bits;
                        }
                        picked
                    } else {
                        None
                    }
                }
                Node::RoundRobin { children, next } => {
                    let n_children = children.len();
                    for i in 0..n_children {
                        let idx = (*next + i) % n_children;
                        if let Some(t) = try_node(&mut children[idx], now_ns, batch_bits) {
                            *next = (idx + 1) % n_children;
                            return Some(t);
                        }
                    }
                    None
                }
            }
        }
        if self.num_tasks() == 0 {
            return None;
        }
        let picked = try_node(&mut self.root, now_ns, batch_bits);
        if let Some(t) = picked {
            *self.consumed.entry(t).or_insert(0.0) += batch_bits;
        }
        picked
    }

    /// Bits scheduled for a task so far.
    pub fn consumed_bits(&self, task: TaskId) -> f64 {
        self.consumed.get(&task).copied().unwrap_or(0.0)
    }
}

impl Default for SchedulerTree {
    fn default() -> Self {
        SchedulerTree::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_alternates() {
        let mut s = SchedulerTree::new();
        s.add_task(TaskId(0));
        s.add_task(TaskId(1));
        s.add_task(TaskId(2));
        assert_eq!(s.num_tasks(), 3);
        let picks: Vec<_> = (0..6).map(|i| s.pick(i, 1.0).unwrap().0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn empty_tree_picks_nothing() {
        let mut s = SchedulerTree::new();
        assert_eq!(s.pick(0, 1.0), None);
    }

    #[test]
    fn rate_limit_throttles_tmax() {
        let mut s = SchedulerTree::new();
        // 8 kbit/s with an 8 kbit burst; batches of 4 kbit.
        s.add_rate_limited_task(TaskId(7), 8_000.0, 8_000.0);
        // Burst admits two batches at t=0.
        assert_eq!(s.pick(0, 4_000.0), Some(TaskId(7)));
        assert_eq!(s.pick(0, 4_000.0), Some(TaskId(7)));
        assert_eq!(s.pick(0, 4_000.0), None);
        // Half a second later: 4 kbit refilled, one batch passes.
        assert_eq!(s.pick(500_000_000, 4_000.0), Some(TaskId(7)));
        assert_eq!(s.pick(500_000_000, 4_000.0), None);
    }

    #[test]
    fn round_robin_skips_throttled_children() {
        let mut s = SchedulerTree::new();
        s.add_rate_limited_task(TaskId(0), 1.0, 1.0); // effectively always throttled
        s.add_task(TaskId(1));
        // The free task keeps getting picked even though RR points at the
        // throttled one first.
        for _ in 0..5 {
            assert_eq!(s.pick(0, 1000.0), Some(TaskId(1)));
        }
    }

    #[test]
    fn accounting_tracks_bits() {
        let mut s = SchedulerTree::new();
        s.add_task(TaskId(3));
        s.pick(0, 100.0);
        s.pick(1, 50.0);
        assert_eq!(s.consumed_bits(TaskId(3)), 150.0);
        assert_eq!(s.consumed_bits(TaskId(4)), 0.0);
    }

    #[test]
    fn sustained_rate_convergence() {
        // 1 Mbit/s limiter, 1 kbit batches offered every 0.1 ms (10 Mbit/s
        // offered) for one virtual second → ~10% admitted.
        let mut s = SchedulerTree::new();
        s.add_rate_limited_task(TaskId(0), 1e6, 10e3);
        let mut admitted = 0u64;
        let total = 10_000u64;
        for i in 0..total {
            if s.pick(i * 100_000, 1_000.0).is_some() {
                admitted += 1;
            }
        }
        let ratio = admitted as f64 / total as f64;
        assert!((0.09..=0.12).contains(&ratio), "ratio {ratio}");
    }
}
