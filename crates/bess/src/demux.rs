//! The shared NSH demultiplexer and muxer (§A.1.2).
//!
//! In a generated BESS pipeline, a single-core demux pulls packets from the
//! NIC, strips the NSH header (BESS NFs are NSH-oblivious), and steers each
//! packet to a subgroup instance: the (SPI, SI) pair selects the subgroup,
//! and the symmetric flow hash selects the replica so replicated subgroups
//! see per-flow sharded traffic. The mux re-inserts the NSH header with the
//! *next* service index before the packet returns to the NIC.

use lemur_packet::builder::{nsh_decap, nsh_encap};
use lemur_packet::flow::FiveTuple;
use lemur_packet::PacketBuf;
use std::collections::HashMap;

/// Key identifying a position in a service path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DemuxKey {
    pub spi: u32,
    pub si: u8,
}

/// Steering target: subgroup id plus its replica instances.
#[derive(Debug, Clone)]
struct Target {
    subgroup: usize,
    replicas: usize,
}

/// The demultiplexer: (SPI, SI) → (subgroup, replica).
#[derive(Debug, Default)]
pub struct Demux {
    table: HashMap<DemuxKey, Target>,
    /// Packets that arrived without NSH or with an unknown (SPI, SI).
    pub unmatched: u64,
}

impl Demux {
    /// An empty demux.
    pub fn new() -> Demux {
        Demux::default()
    }

    /// Install a steering entry.
    pub fn add_entry(&mut self, key: DemuxKey, subgroup: usize, replicas: usize) {
        assert!(replicas >= 1);
        self.table.insert(key, Target { subgroup, replicas });
    }

    /// Number of installed entries.
    pub fn num_entries(&self) -> usize {
        self.table.len()
    }

    /// Decapsulate and steer one packet. On success the NSH header has been
    /// removed and `(subgroup, replica, key)` identifies the worker. On
    /// failure the packet is left untouched.
    pub fn steer(&mut self, pkt: &mut PacketBuf) -> Option<(usize, usize, DemuxKey)> {
        let Some((spi, si)) = lemur_packet::builder::nsh_peek(pkt.as_slice()) else {
            self.unmatched += 1;
            return None;
        };
        let key = DemuxKey { spi, si };
        let Some(target) = self.table.get(&key) else {
            self.unmatched += 1;
            return None;
        };
        let replica = if target.replicas == 1 {
            0
        } else {
            // Hash the inner frame's flow; fall back to replica 0 for
            // unparseable payloads.
            let inner_off = lemur_packet::ethernet::HEADER_LEN + lemur_packet::nsh::HEADER_LEN;
            FiveTuple::parse(&pkt.as_slice()[inner_off..])
                .map(|t| (t.symmetric_hash() % target.replicas as u64) as usize)
                .unwrap_or(0)
        };
        let (subgroup, _) = (target.subgroup, target.replicas);
        nsh_decap(pkt).expect("peeked NSH must decap");
        Some((subgroup, replica, key))
    }
}

/// The muxer: re-encapsulate with the service path's next hop.
pub fn mux(pkt: &mut PacketBuf, spi: u32, next_si: u8) {
    nsh_encap(pkt, spi, next_si);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_packet::builder::{nsh_peek, udp_packet};
    use lemur_packet::{ethernet, ipv4};

    fn encapped(spi: u32, si: u8, sport: u16) -> PacketBuf {
        let mut p = udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(10, 0, 0, 1),
            ipv4::Address::new(10, 0, 0, 2),
            sport,
            80,
            b"x",
        );
        nsh_encap(&mut p, spi, si);
        p
    }

    #[test]
    fn steer_by_spi_si() {
        let mut d = Demux::new();
        d.add_entry(DemuxKey { spi: 1, si: 250 }, 0, 1);
        d.add_entry(DemuxKey { spi: 2, si: 250 }, 1, 1);
        let mut a = encapped(1, 250, 1000);
        let mut b = encapped(2, 250, 1000);
        assert_eq!(d.steer(&mut a).map(|x| x.0), Some(0));
        assert_eq!(d.steer(&mut b).map(|x| x.0), Some(1));
        // NSH removed after steering.
        assert_eq!(nsh_peek(a.as_slice()), None);
    }

    #[test]
    fn unknown_path_counted_and_untouched() {
        let mut d = Demux::new();
        let mut p = encapped(9, 9, 1);
        assert!(d.steer(&mut p).is_none());
        assert_eq!(d.unmatched, 1);
        assert_eq!(nsh_peek(p.as_slice()), Some((9, 9)));
        // Plain packets (no NSH) are unmatched too.
        let mut plain = udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(1, 1, 1, 1),
            ipv4::Address::new(2, 2, 2, 2),
            1,
            2,
            b"x",
        );
        assert!(d.steer(&mut plain).is_none());
        assert_eq!(d.unmatched, 2);
    }

    #[test]
    fn replica_sharding_is_per_flow_and_covers_replicas() {
        let mut d = Demux::new();
        d.add_entry(DemuxKey { spi: 1, si: 200 }, 0, 4);
        let mut seen = [0usize; 4];
        for sport in 1000..1200u16 {
            let mut p = encapped(1, 200, sport);
            let (_, replica, _) = d.steer(&mut p).unwrap();
            seen[replica] += 1;
            // Same flow → same replica.
            let mut p2 = encapped(1, 200, sport);
            let (_, replica2, _) = d.steer(&mut p2).unwrap();
            assert_eq!(replica, replica2);
        }
        assert!(
            seen.iter().all(|&c| c > 20),
            "imbalanced sharding: {seen:?}"
        );
    }

    #[test]
    fn mux_restores_nsh_for_next_hop() {
        let mut d = Demux::new();
        d.add_entry(DemuxKey { spi: 3, si: 100 }, 0, 1);
        let mut p = encapped(3, 100, 1);
        let (_, _, key) = d.steer(&mut p).unwrap();
        mux(&mut p, key.spi, key.si - 1);
        assert_eq!(nsh_peek(p.as_slice()), Some((3, 99)));
    }
}
