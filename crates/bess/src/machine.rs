//! Server hardware model: sockets, cores, NICs, NUMA.

/// A CPU socket index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SocketId(pub usize);

/// A core index (global across sockets, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

/// A NIC attached to a server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicSpec {
    /// Line rate in bits per second.
    pub rate_bps: f64,
    /// Socket the NIC's PCIe lanes hang off.
    pub socket: SocketId,
}

/// A server's hardware shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSpec {
    pub name: String,
    pub sockets: usize,
    pub cores_per_socket: usize,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Attached NICs.
    pub nics: Vec<NicSpec>,
    /// Multiplier on cycle costs when the processing core is on a
    /// different socket from the NIC. Table 4 puts the penalty around
    /// 4–7% (e.g. Encrypt 8593 → 8950 cycles).
    pub cross_socket_penalty: f64,
}

impl ServerSpec {
    /// The paper's BESS server: dual-socket 8-core Xeon Bronze 3106 at
    /// 1.7 GHz with one 40 Gbps Intel XL710 on socket 0.
    pub fn lemur_testbed() -> ServerSpec {
        ServerSpec {
            name: "xeon-bronze-3106".to_string(),
            sockets: 2,
            cores_per_socket: 8,
            clock_hz: 1.7e9,
            nics: vec![NicSpec {
                rate_bps: 40e9,
                socket: SocketId(0),
            }],
            cross_socket_penalty: 1.05,
        }
    }

    /// A single-socket 8-core server (the §5.3 multi-server experiment).
    pub fn eight_core() -> ServerSpec {
        ServerSpec {
            name: "xeon-8core".to_string(),
            sockets: 1,
            cores_per_socket: 8,
            clock_hz: 1.7e9,
            nics: vec![NicSpec {
                rate_bps: 40e9,
                socket: SocketId(0),
            }],
            cross_socket_penalty: 1.05,
        }
    }

    /// Total cores.
    pub fn num_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Socket a core belongs to.
    pub fn socket_of(&self, core: CoreId) -> SocketId {
        SocketId(core.0 / self.cores_per_socket)
    }

    /// Effective cycles for running `base_cycles` of work on `core` with
    /// I/O through `nic`: the cross-socket penalty applies when they sit on
    /// different sockets.
    pub fn effective_cycles(&self, base_cycles: f64, core: CoreId, nic: usize) -> f64 {
        let nic_socket = self.nics.get(nic).map(|n| n.socket).unwrap_or(SocketId(0));
        if self.socket_of(core) == nic_socket {
            base_cycles
        } else {
            base_cycles * self.cross_socket_penalty
        }
    }

    /// Packets per second one core sustains at a given per-packet cost.
    pub fn pps_for_cycles(&self, cycles_per_packet: f64) -> f64 {
        self.clock_hz / cycles_per_packet
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_shape() {
        let s = ServerSpec::lemur_testbed();
        assert_eq!(s.num_cores(), 16);
        assert_eq!(s.socket_of(CoreId(0)), SocketId(0));
        assert_eq!(s.socket_of(CoreId(7)), SocketId(0));
        assert_eq!(s.socket_of(CoreId(8)), SocketId(1));
        assert_eq!(s.socket_of(CoreId(15)), SocketId(1));
    }

    #[test]
    fn numa_penalty_applies_cross_socket_only() {
        let s = ServerSpec::lemur_testbed();
        let same = s.effective_cycles(1000.0, CoreId(0), 0);
        let diff = s.effective_cycles(1000.0, CoreId(8), 0);
        assert_eq!(same, 1000.0);
        assert!((diff - 1050.0).abs() < 1e-9);
    }

    #[test]
    fn rate_from_cycles() {
        let s = ServerSpec::lemur_testbed();
        // 1.7 GHz / 1700 cycles = 1 Mpps.
        assert!((s.pps_for_cycles(1700.0) - 1e6).abs() < 1.0);
    }

    #[test]
    fn table4_encrypt_penalty_within_model() {
        // Table 4: Encrypt 8593 same-NUMA vs 8950 cross-NUMA ≈ 4.2%; our
        // 5% default penalty is within the paper's observed 4–7% band.
        let s = ServerSpec::lemur_testbed();
        let ratio = s.effective_cycles(8593.0, CoreId(8), 0) / 8593.0;
        assert!((1.03..=1.08).contains(&ratio));
    }
}
