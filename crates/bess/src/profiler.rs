//! NF profiling (§3.2, Table 4).
//!
//! "To estimate the throughput of an NF chain, Placer precomputes profiles
//! for each NF … NF B's profile is the CPU cycle count c to execute it."
//!
//! This profiler measures the *actual* Rust NF implementations in
//! `lemur-nf` by timing them over generated worst-case traffic and
//! converting wall time to cycles at a nominal clock. The paper's two
//! traffic patterns (footnote 6) are both provided:
//!
//! * long-lived: 30–50 uniformly distributed long-lived flows;
//! * short-lived: high flow churn (10 000 new flows/s shape).

use crate::machine::ServerSpec;
use lemur_nf::{build_nf, NfCtx, NfKind, NfParams};
use lemur_packet::builder::udp_packet;
use lemur_packet::{ethernet, ipv4, PacketBuf};
use std::time::Instant;

/// Which worst-case workload to profile under (paper footnote 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// 30–50 uniformly distributed long-lived flows.
    LongLived,
    /// Short-lived flows with high churn.
    ShortLived,
}

/// Profile statistics over repeated runs (Table 4's Mean/Min/Max shape).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileStats {
    pub mean_cycles: f64,
    pub min_cycles: f64,
    pub max_cycles: f64,
    /// Number of timed runs.
    pub runs: usize,
}

impl ProfileStats {
    /// Worst-case cycles — what the Placer provisions with ("when we
    /// profile an NF, we pick the worst-case cycle count").
    pub fn worst_case(&self) -> f64 {
        self.max_cycles
    }

    /// Max deviation of the worst case from the mean (the paper observes
    /// ≤ 6.5% across Table 4).
    pub fn spread(&self) -> f64 {
        (self.max_cycles - self.mean_cycles) / self.mean_cycles
    }
}

/// Deterministic traffic for a pattern: `n` packets with `payload` bytes.
pub fn generate_traffic(pattern: TrafficPattern, n: usize, payload_len: usize) -> Vec<PacketBuf> {
    let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
    (0..n)
        .map(|i| {
            let (src_ip, sport) = match pattern {
                // ~40 stable flows.
                TrafficPattern::LongLived => (
                    ipv4::Address::new(10, 0, 1, (i % 40) as u8),
                    10_000 + (i % 40) as u16,
                ),
                // Every packet a fresh flow.
                TrafficPattern::ShortLived => (
                    ipv4::Address::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8),
                    (1024 + (i % 60_000)) as u16,
                ),
            };
            udp_packet(
                ethernet::Address([2, 0, 0, 0, 0, 1]),
                ethernet::Address([2, 0, 0, 0, 0, 2]),
                src_ip,
                ipv4::Address::new(10, 99, 0, 1),
                sport,
                80,
                &payload,
            )
        })
        .collect()
}

/// Measure one NF's cycles/packet on this machine, reported in cycles of
/// the given server's clock. `runs` independent timing runs of
/// `packets_per_run` packets each.
pub fn profile_nf(
    kind: NfKind,
    params: &NfParams,
    pattern: TrafficPattern,
    server: &ServerSpec,
    runs: usize,
    packets_per_run: usize,
) -> ProfileStats {
    assert!(runs > 0 && packets_per_run > 0);
    let traffic = generate_traffic(pattern, packets_per_run, 512);
    // One untimed warm-up run primes caches, branch predictors, and lazy
    // tables (e.g. the AES S-box) so timed runs measure steady state.
    {
        let mut nf = build_nf(kind, params);
        let mut batch: Vec<PacketBuf> = traffic.clone();
        let ctx = NfCtx { now_ns: 0 };
        for pkt in batch.iter_mut() {
            let _ = nf.process(&ctx, pkt);
        }
    }
    let mut per_run = Vec::with_capacity(runs);
    for run in 0..runs {
        // Fresh NF per run: state effects (table fill, fingerprint stores)
        // are part of the measured worst case, not carried across runs.
        let mut nf = build_nf(kind, params);
        // Warm up allocations outside the timed section.
        let mut batch: Vec<PacketBuf> = traffic.clone();
        let ctx = NfCtx { now_ns: run as u64 };
        let start = Instant::now();
        for pkt in batch.iter_mut() {
            let _ = nf.process(&ctx, pkt);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let cycles = elapsed * server.clock_hz / packets_per_run as f64;
        per_run.push(cycles);
    }
    let mean = per_run.iter().sum::<f64>() / runs as f64;
    let min = per_run.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_run.iter().cloned().fold(0.0f64, f64::max);
    ProfileStats {
        mean_cycles: mean,
        min_cycles: min,
        max_cycles: max,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: NfKind, pattern: TrafficPattern) -> ProfileStats {
        profile_nf(
            kind,
            &NfParams::new(),
            pattern,
            &ServerSpec::lemur_testbed(),
            3,
            200,
        )
    }

    #[test]
    fn stats_are_ordered_and_positive() {
        let s = quick(NfKind::Acl, TrafficPattern::LongLived);
        assert!(s.min_cycles > 0.0);
        assert!(s.min_cycles <= s.mean_cycles);
        assert!(s.mean_cycles <= s.max_cycles);
        assert_eq!(s.runs, 3);
        assert!(s.worst_case() >= s.mean_cycles);
    }

    #[test]
    fn encrypt_costs_more_than_tunnel() {
        // AES over a 512-byte payload vs a 4-byte tag splice: the gap is
        // enormous and robust to timer noise.
        let enc = quick(NfKind::Encrypt, TrafficPattern::LongLived);
        let tun = quick(NfKind::Tunnel, TrafficPattern::LongLived);
        assert!(
            enc.mean_cycles > tun.mean_cycles * 3.0,
            "encrypt {:.0} vs tunnel {:.0}",
            enc.mean_cycles,
            tun.mean_cycles
        );
    }

    #[test]
    fn traffic_patterns_have_expected_flow_structure() {
        use lemur_packet::flow::FiveTuple;
        use std::collections::HashSet;
        let long = generate_traffic(TrafficPattern::LongLived, 200, 64);
        let flows: HashSet<_> = long
            .iter()
            .map(|p| FiveTuple::parse(p.as_slice()).unwrap())
            .collect();
        assert!(
            flows.len() <= 50,
            "long-lived must reuse flows: {}",
            flows.len()
        );
        let short = generate_traffic(TrafficPattern::ShortLived, 200, 64);
        let churn: HashSet<_> = short
            .iter()
            .map(|p| FiveTuple::parse(p.as_slice()).unwrap())
            .collect();
        assert_eq!(churn.len(), 200, "short-lived must be all-new flows");
    }

    #[test]
    fn chacha_faster_than_aes_on_server() {
        // Table 3 calls it "Fast Enc." for a reason.
        let fast = quick(NfKind::FastEncrypt, TrafficPattern::LongLived);
        let slow = quick(NfKind::Encrypt, TrafficPattern::LongLived);
        assert!(
            fast.mean_cycles < slow.mean_cycles,
            "chacha {:.0} vs aes {:.0}",
            fast.mean_cycles,
            slow.mean_cycles
        );
    }
}
