//! The fleet soak's hard-invariant battery: exact conservation, fencing
//! exclusivity, post-storm settlement, WAL consistency, worker-count
//! reproducibility, and cross-PoP stateful failover — all under the
//! seeded storm weather of `lemur_control::chaos::fleet_storm`.

use lemur_fleet::sim::{FleetSim, FleetSimConfig, FleetSpec};
use lemur_placer::oracle::AlwaysFits;
use lemur_placer::parallel::Workers;

fn soak(seed: u64, n_pops: usize, validate: bool, workers: Workers) -> lemur_fleet::FleetReport {
    let spec = FleetSpec::canonical(n_pops);
    let mut cfg = FleetSimConfig::soak(seed, n_pops);
    cfg.validate = validate;
    cfg.workers = workers;
    FleetSim::new(spec, cfg).run(&AlwaysFits)
}

#[test]
fn soak_invariants_hold_across_seeds() {
    for seed in [1, 2, 3, 4] {
        let report = soak(seed, 2, false, Workers::new(1));
        assert!(
            report.invariants_hold(),
            "seed {seed} violated an invariant: {report:?}"
        );
        assert!(report.drains >= 1, "the guaranteed blackout must drain");
    }
}

#[test]
fn validation_runs_the_real_dataplane_per_surviving_pop() {
    let report = soak(3, 2, true, Workers::new(1));
    assert!(report.invariants_hold(), "{report:?}");
    assert!(
        !report.validations.is_empty(),
        "survivors must be validated: {report:?}"
    );
    for v in &report.validations {
        assert!(v.ran && v.settled && v.balanced, "{v:?}");
        assert!(!v.chains.is_empty());
    }
}

#[test]
fn blackout_recovers_via_cross_site_state_migration() {
    // Seed 3's storm blacks out PoP 0 for a full drain window while it
    // holds a stateful (NAT) chain; the failover must ship the last
    // replicated snapshot to the survivor, not start fresh.
    let report = soak(3, 2, false, Workers::new(1));
    assert_eq!(report.blackout_victim, Some(0), "{report:?}");
    assert!(report.drains >= 1, "{report:?}");
    assert!(report.state_failovers >= 1, "{report:?}");
    assert!(report.state_restores >= 1, "{report:?}");
    assert!(report.invariants_hold(), "{report:?}");
}

#[test]
fn three_pop_fleets_survive_the_storm_too() {
    let report = soak(7, 3, false, Workers::new(1));
    assert!(report.invariants_hold(), "{report:?}");
}

#[test]
fn reports_are_bit_identical_across_worker_counts() {
    let one = soak(11, 2, true, Workers::new(1));
    let two = soak(11, 2, true, Workers::new(2));
    assert_eq!(one, two, "worker count must not leak into the report");
}
